# Developer convenience targets.

.PHONY: install test lint lint-concurrency check chaos serve-smoke serve-http-smoke bench bench-features bench-kernel bench-blocking bench-suite bench-tiny bench-paper examples lines

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

# Invariant-enforcing static analysis (repro.analysis): unseeded RNG,
# non-atomic writes, wall-clock deadlines, float equality, swallowed
# exceptions, worker-side journal writes, mutable defaults, fork-unsafe
# module state, watch-loop/serve-blocking discipline, and the
# whole-program concurrency pass (REP012-REP015).  Exit 1 on any fresh
# finding or stale baseline entry.
lint:
	PYTHONPATH=src python -m repro lint src tests scripts

# Just the concurrency rules, with the JSON document (lock-order graph,
# thread roots) on stdout -- what the lint-concurrency CI job runs.
lint-concurrency:
	PYTHONPATH=src python -m repro lint src --select REP012,REP013,REP014,REP015 --json

# Tier-1 tests plus the static pass plus a fast fault-injection smoke:
# an evaluation run with an injected failure must complete, report the
# skip, and a killed run must resume from its journal with identical
# aggregates.
check: lint
	PYTHONPATH=src python -m pytest -x -q
	PYTHONPATH=src python scripts/fault_smoke.py

# Chaos suite: real worker deaths (os._exit), hangs past the cell
# deadline, SIGTERM mid-grid, follow-daemon kills at every journaled
# ingestion stage, and tenant-registry kills at every journaled serve
# stage (including mid copy-on-swap reload) -- asserting the journals
# stay valid and resumed outputs match a clean run byte for byte.
chaos:
	PYTHONPATH=src python -m pytest -q \
		tests/evaluation/test_supervisor.py \
		tests/evaluation/test_chaos.py \
		tests/evaluation/test_fault_tolerance.py \
		tests/ingest/test_chaos_ingest.py \
		tests/serve/test_chaos_serve.py

# Follow-mode smoke: a forked `repro serve` daemon is hard-killed after
# its first fused batch, resumed, and must land byte-identical to a
# cold rebuild; a poison source must quarantine with a reason.
serve-smoke:
	PYTHONPATH=src python scripts/serve_smoke.py

# HTTP service smoke: a real `repro serve --http` subprocess on a real
# socket -- probes go ready, a tenant is created and matched over HTTP,
# SIGTERM drains to exit 143, and a warm restart from the registry
# journal serves byte-identical match bodies.
serve-http-smoke:
	PYTHONPATH=src python scripts/serve_http_smoke.py

# Evaluation-engine benchmark: serial legacy grid vs shared feature
# store + process-pool executor.  Writes BENCH_grid.json.
bench:
	PYTHONPATH=src python scripts/bench_grid.py

# Featurization micro-benchmark: staged float32 pipeline vs the legacy
# monolithic float64 path, each in its own forked child (stage-level
# timings + peak RSS).  Merges a "features" section into BENCH_grid.json.
bench-features:
	PYTHONPATH=src python scripts/bench_grid.py --features

# Name-distance kernel micro-benchmark: scalar per-pair reference vs
# the batched kernel vs the warm memo vs a persistent-cache reload,
# with batched rows asserted bit-identical to the reference.  Merges a
# "kernel" section into BENCH_grid.json.
bench-kernel:
	PYTHONPATH=src python scripts/bench_grid.py --kernel

# Candidate-generation benchmark: the 9-config grid over the full
# cross product vs the same grid under the minhash blocking policy
# (paper network, so the F1 comparison is against converged
# classifiers).  Merges a "blocking" section into BENCH_grid.json with
# candidate counts, reduction ratio, pair recall and per-cell F1
# deltas.
bench-blocking:
	PYTHONPATH=src python scripts/bench_grid.py --blocking --network paper

bench-suite:
	pytest benchmarks/ --benchmark-only -s

bench-tiny:
	REPRO_BENCH_SCALE=tiny pytest benchmarks/ --benchmark-only -s

bench-paper:
	REPRO_BENCH_SCALE=paper REPRO_BENCH_REPS=25 pytest benchmarks/ --benchmark-only -s

examples:
	for script in examples/*.py; do echo "== $$script"; python $$script || exit 1; done

lines:
	find src tests benchmarks examples -name "*.py" | xargs wc -l | tail -1
