"""Legacy setup shim.

`pip install -e .` requires the `wheel` package to build a PEP 660
editable wheel; on fully offline machines without `wheel`,
`python setup.py develop` (which this shim enables) installs the package
in editable mode using setuptools alone.  All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
