"""The 3x3 feature-configuration grid of Section V-A on one dataset.

Reproduces the paper's central analysis dimension-by-dimension: feature
scope (instances / names / both) crossed with feature kind (embedding /
non-embedding / both).

Run:  python examples/feature_ablation.py [dataset]
"""

from __future__ import annotations

import sys

from repro import (
    FeatureConfig,
    LeapmeMatcher,
    build_domain_embeddings,
    evaluate_matcher,
    load_dataset,
)
from repro.evaluation import RunSettings


def main() -> None:
    dataset_name = sys.argv[1] if len(sys.argv) > 1 else "headphones"
    dataset = load_dataset(dataset_name, scale="small")
    embeddings = build_domain_embeddings(dataset_name, scale="small")
    settings = RunSettings(train_fraction=0.8, repetitions=3)

    print(f"feature ablation on {dataset_name} @ 80% training, "
          f"{settings.repetitions} repetitions\n")
    print(f"{'configuration':<28} {'P':>6} {'R':>6} {'F1':>6}")
    print("-" * 48)
    best_label, best_f1 = "", -1.0
    for config in FeatureConfig.grid():
        matcher = LeapmeMatcher(embeddings, config)
        result = evaluate_matcher(matcher, dataset, settings)
        print(
            f"{config.label():<28} {result.precision:>6.2f} "
            f"{result.recall:>6.2f} {result.f1:>6.2f}"
        )
        if result.f1 > best_f1:
            best_label, best_f1 = config.label(), result.f1
    print(f"\nbest configuration: {best_label} (F1={best_f1:.2f})")
    print("expected shape: embedding kinds beat non-embedding kinds; "
          "name scope beats instance scope; 'both' is at least as good "
          "as names alone.")


if __name__ == "__main__":
    main()
