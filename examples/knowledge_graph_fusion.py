"""Knowledge-graph property fusion: match, build the similarity graph,
cluster equivalent properties, and fuse their instances.

This is the downstream scenario motivating the paper (Section I): when
integrating many shop sources into a product knowledge graph, matching
properties must be found and *fused* so the KG has one canonical
"resolution" attribute rather than 24 differently-named copies.  The
clustering step implements the paper's stated future work (Section VI).

Run:  python examples/knowledge_graph_fusion.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    LeapmeMatcher,
    build_domain_embeddings,
    build_pairs,
    cluster_connected_components,
    cluster_correlation,
    cluster_star,
    clustering_metrics,
    fuse_clusters,
    load_dataset,
    sample_training_pairs,
    split_sources,
)


def main() -> None:
    rng = np.random.default_rng(7)
    dataset = load_dataset("phones", scale="small")
    embeddings = build_domain_embeddings("phones", scale="small")

    # Train on most sources, then match EVERY cross-source pair to build
    # the integration-time similarity graph.
    split = split_sources(dataset, train_fraction=0.8, rng=rng)
    training = sample_training_pairs(
        build_pairs(dataset, list(split.train_sources), within=True), rng=rng
    )
    matcher = LeapmeMatcher(embeddings)
    matcher.fit(dataset, training)

    all_pairs = build_pairs(dataset)
    graph = matcher.match(dataset, all_pairs.pairs)
    print(f"similarity graph: {len(graph)} scored pairs, "
          f"{len(graph.matches(0.5))} matches at threshold 0.5\n")

    # Compare the three clustering strategies on pairwise quality.
    strategies = {
        "connected components": cluster_connected_components,
        "star": cluster_star,
        "correlation (greedy pivot)": cluster_correlation,
    }
    best_name, best_clusters, best_f1 = None, None, -1.0
    for name, strategy in strategies.items():
        clusters = strategy(graph, threshold=0.5)
        multi = [c for c in clusters if len(c) > 1]
        quality = clustering_metrics(clusters, dataset)
        print(
            f"{name:<28} clusters={len(multi):>3} "
            f"P={quality.precision:.2f} R={quality.recall:.2f} F1={quality.f1:.2f}"
        )
        if quality.f1 > best_f1:
            best_name, best_clusters, best_f1 = name, clusters, quality.f1

    # Fuse the best clustering into canonical KG attributes.
    print(f"\nfusing with: {best_name}")
    fused = fuse_clusters(dataset, best_clusters, strategy="majority")
    print(f"{len(fused)} canonical attributes spanning >= 2 sources; largest:")
    for attribute in fused[:6]:
        samples = list(attribute.values.values())[:4]
        print(f"  {attribute.describe()}  e.g. {samples}")


if __name__ == "__main__":
    main()
