"""Quickstart: match camera properties across sources with LEAPME.

Mirrors the paper's running example (Fig. 1): several shop sources
describe the same cameras with differently-named properties; LEAPME
learns to match them from a fraction of the sources.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    LeapmeMatcher,
    build_domain_embeddings,
    build_pairs,
    dataset_stats,
    evaluate_scores,
    load_dataset,
    sample_training_pairs,
    split_sources,
)


def show_figure1_style_sample(dataset, n_sources: int = 3) -> None:
    """Print a few sources' schemas with their ground-truth alignment."""
    print("Heterogeneous property names across sources (cf. paper Fig. 1):")
    for source in dataset.sources()[:n_sources]:
        print(f"\n  {source}:")
        for ref in dataset.properties(source)[:6]:
            reference = dataset.reference_of(ref) or "(unaligned)"
            value = dataset.values_of(ref)[0]
            print(f"    {ref.name:<28} = {value:<16} -> {reference}")


def main() -> None:
    rng = np.random.default_rng(0)

    # 1. Load a multi-source product dataset and train domain embeddings
    #    (the offline substitute for pre-trained GloVe).
    dataset = load_dataset("cameras", scale="small")
    print(dataset_stats(dataset).describe())
    embeddings = build_domain_embeddings("cameras", scale="small")
    print(f"embeddings: {len(embeddings)} words x {embeddings.dimension} dims\n")

    show_figure1_style_sample(dataset)

    # 2. Hold out 20% of the sources for training, as in the paper.
    split = split_sources(dataset, train_fraction=0.2, rng=rng)
    print(f"\ntraining sources: {', '.join(split.train_sources)}")
    training = sample_training_pairs(
        build_pairs(dataset, list(split.train_sources), within=True),
        negative_ratio=2.0,
        rng=rng,
    )
    test = build_pairs(dataset, list(split.train_sources), within=False)
    print(f"training pairs: {len(training)} ({len(training.positives())} positive)")
    print(f"test pairs:     {len(test)} ({len(test.positives())} positive)")

    # 3. Train LEAPME and classify every unseen cross-source pair.
    matcher = LeapmeMatcher(embeddings)
    matcher.prepare(dataset)
    matcher.fit(dataset, training)
    scores = matcher.score_pairs(dataset, test.pairs)

    quality = evaluate_scores(scores, test.labels())
    print(
        f"\nLEAPME on held-out sources: precision={quality.precision:.2f} "
        f"recall={quality.recall:.2f} F1={quality.f1:.2f}"
    )

    # 4. Show a few confident matches the classifier found.
    print("\nTop predicted matches:")
    order = np.argsort(-scores)
    for index in order[:8]:
        pair = test.pairs[int(index)]
        marker = "+" if pair.label else "-"
        print(
            f"  [{marker}] {scores[index]:.2f}  "
            f"{pair.left.source}::{pair.left.name}  <->  "
            f"{pair.right.source}::{pair.right.name}"
        )


if __name__ == "__main__":
    main()
