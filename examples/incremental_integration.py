"""Incremental integration: fold new sources into a growing KG schema.

Real knowledge-graph pipelines do not see all sources at once.  This
example trains LEAPME on an initial batch of camera sources, then
integrates the remaining sources one at a time with
:class:`repro.graph.IncrementalClusterer`, tracking cluster quality as
the schema grows, and finally fuses the clusters into canonical KG
attributes.

Run:  python examples/incremental_integration.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    IncrementalClusterer,
    LeapmeMatcher,
    build_domain_embeddings,
    build_pairs,
    clustering_metrics,
    fuse_clusters,
    load_dataset,
    sample_training_pairs,
)


def main() -> None:
    rng = np.random.default_rng(11)
    dataset = load_dataset("cameras", scale="small")
    embeddings = build_domain_embeddings("cameras", scale="small")
    sources = dataset.sources()
    initial, arriving = sources[:6], sources[6:]

    # Train once on the initial batch (labels exist only there).
    training = sample_training_pairs(
        build_pairs(dataset, initial, within=True), rng=rng
    )
    matcher = LeapmeMatcher(embeddings)
    matcher.fit(dataset, training)

    # Integrate: seed clusters with the initial sources, then stream the rest.
    clusterer = IncrementalClusterer(matcher, dataset)
    clusterer.add_all(order=initial)
    print(f"seeded with {len(initial)} sources "
          f"({len(clusterer.clusters())} clusters)\n")
    print(f"{'source':<18} {'joined':>6} {'new':>4} {'clusters':>9} {'pairwise F1':>12}")
    for index, source in enumerate(arriving):
        changes = clusterer.add_source(source)
        clusters = clusterer.clusters()
        integrated = set(clusterer.integrated_sources)
        quality = clustering_metrics(
            clusters,
            dataset,
            restrict_to={ref for c in clusters for ref in c},
        )
        if index % 3 == 0 or index == len(arriving) - 1:
            print(
                f"{source:<18} {changes['joined']:>6} {changes['founded']:>4} "
                f"{len(clusters):>9} {quality.f1:>12.2f}"
            )

    # Fuse the final clusters into canonical KG attributes.
    fused = fuse_clusters(dataset, clusterer.clusters(), strategy="majority")
    print(f"\n{len(fused)} canonical attributes spanning >= 2 sources; top 5:")
    for attribute in fused[:5]:
        print(f"  {attribute.describe()}")


if __name__ == "__main__":
    main()
