"""Transfer learning: train on one product domain, apply to another.

The paper (Section V) studies whether a LEAPME model trained on, say,
phone properties can match TV properties it has never seen.  This works
because LEAPME's features are domain-independent *shapes* -- embedding
differences and string distances -- provided one embedding space covers
both domains (a single pre-trained GloVe does in the paper; here we
train a joint space over both domains' corpora).

Run:  python examples/transfer_learning.py
"""

from __future__ import annotations

from repro import (
    DATASET_NAMES,
    LeapmeMatcher,
    build_domain_embeddings,
    load_dataset,
    run_transfer_experiment,
)


def main() -> None:
    datasets = {name: load_dataset(name, scale="small") for name in DATASET_NAMES}
    # One embedding space covering all four domains, as one GloVe would.
    embeddings = build_domain_embeddings(list(DATASET_NAMES), scale="small")

    print("transfer matrix (rows = trained on, columns = tested on), F1:\n")
    corner = "train / test"
    header = f"{corner:<14}" + "".join(f"{name:>12}" for name in DATASET_NAMES)
    print(header)
    for source_name in DATASET_NAMES:
        cells = [f"{source_name:<14}"]
        for target_name in DATASET_NAMES:
            if source_name == target_name:
                cells.append(f"{'-':>12}")
                continue
            matcher = LeapmeMatcher(embeddings)
            result = run_transfer_experiment(
                matcher, datasets[source_name], datasets[target_name]
            )
            cells.append(f"{result.quality.f1:>12.2f}")
        print("".join(cells))

    print(
        "\nexpected shape: transfer F1 clearly above zero everywhere "
        "(the learned feature weighting carries across domains), but "
        "below the in-domain scores of Table II."
    )


if __name__ == "__main__":
    main()
