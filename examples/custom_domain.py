"""Bring your own domain: define a schema spec, generate sources, match.

Shows the full extension path a downstream user would follow to apply
LEAPME to a new vertical (here: wristwatches): declare the reference
ontology with synonym-rich name variants and value models, generate a
heterogeneous multi-source dataset, train embeddings from the derived
semantics, and evaluate the matcher.

Run:  python examples/custom_domain.py
"""

from __future__ import annotations

from repro import LeapmeMatcher, dataset_stats, evaluate_matcher
from repro.datasets import (
    CodeValueSpec,
    DomainSpec,
    EnumValueSpec,
    GenerationConfig,
    NumericValueSpec,
    ReferencePropertySpec,
    generate_dataset,
)
from repro.datasets.generator import derive_semantics
from repro.embeddings import CorpusGenerator, build_cooccurrence, train_glove_like
from repro.evaluation import RunSettings


def watches_spec() -> DomainSpec:
    """A small hand-written reference ontology for wristwatches."""
    properties = (
        ReferencePropertySpec(
            reference_name="case_diameter",
            name_variants=("case diameter", "dial width", "face size"),
            value_spec=NumericValueSpec(28.0, 50.0, decimals=1, units=("mm", "millimeters")),
            exposure=0.9,
        ),
        ReferencePropertySpec(
            reference_name="water_resistance",
            name_variants=("water resistance", "depth rating", "dive limit"),
            value_spec=NumericValueSpec(30.0, 300.0, decimals=0, units=("m", "meters", "atm")),
            exposure=0.8,
        ),
        ReferencePropertySpec(
            reference_name="movement",
            name_variants=("movement", "caliber mechanism", "drive type"),
            value_spec=EnumValueSpec(
                options=(
                    ("automatic", "self winding"),
                    ("quartz", "battery powered"),
                    ("manual", "hand wound"),
                    ("solar",),
                )
            ),
            exposure=0.8,
        ),
        ReferencePropertySpec(
            reference_name="strap",
            name_variants=("strap material", "band composition", "bracelet kind"),
            value_spec=EnumValueSpec(
                options=(
                    ("leather", "calfskin"),
                    ("steel", "stainless"),
                    ("rubber", "silicone"),
                    ("nylon", "nato"),
                )
            ),
            exposure=0.7,
        ),
        ReferencePropertySpec(
            reference_name="reference_number",
            name_variants=("reference number", "model code", "sku"),
            value_spec=CodeValueSpec(prefixes=("ref", "sbga", "iw"), digits=5),
            exposure=0.8,
        ),
    )
    return DomainSpec(
        name="watches",
        properties=properties,
        n_sources=8,
        entities_per_source=(10, 40),
        junk_properties_per_source=2,
        name_noise=0.2,
        value_noise=0.08,
    )


def main() -> None:
    spec = watches_spec()

    # 1. Generate the heterogeneous multi-source dataset.
    dataset = generate_dataset(spec, GenerationConfig(seed=42))
    print(dataset_stats(dataset).describe())

    # 2. Train embeddings from the domain's derived semantics -- the same
    #    recipe the built-in domains use under the hood.
    semantics = derive_semantics(spec)
    corpus = CorpusGenerator(
        semantics.lexicon,
        soft_words=semantics.soft_words,
        singletons=semantics.singletons,
        namespace="watches",
        seed=0,
    )
    counts = build_cooccurrence(corpus.sentences(sentences_per_group=25))
    embeddings = train_glove_like(counts, dimension=64, anisotropy=0.25, seed=0)
    print(f"embeddings: {len(embeddings)} words x {embeddings.dimension} dims")
    print(f"sanity: sim(automatic, winding) = "
          f"{embeddings.cosine_similarity('automatic', 'winding'):.2f}\n")

    # 3. Evaluate LEAPME with the paper's protocol.
    matcher = LeapmeMatcher(embeddings)
    result = evaluate_matcher(
        matcher, dataset, RunSettings(train_fraction=0.8, repetitions=3)
    )
    print(result.describe())


if __name__ == "__main__":
    main()
