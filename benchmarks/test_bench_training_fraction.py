"""Extension A: F1 as a function of the training-source fraction.

Section V announces an analysis of "the impact of different amounts of
training data"; Table II reports the 20% and 80% endpoints.  This bench
regenerates the full curve, sweeping the fraction from 0.1 to 0.9 on the
camera dataset.  Expected shape: monotone-ish improvement that saturates
well before 0.9 ("improvements are even achieved for relatively little
training data").
"""

from __future__ import annotations

import numpy as np
from conftest import BENCH_REPS, STRICT_SHAPE, bench_dataset, bench_embeddings, run_once

from repro.core import LeapmeMatcher
from repro.evaluation import RunSettings, evaluate_matcher

FRACTIONS = (0.1, 0.2, 0.4, 0.6, 0.8, 0.9)


def test_bench_training_fraction_sweep(benchmark):
    dataset = bench_dataset("cameras")
    embeddings = bench_embeddings("cameras")

    def sweep():
        curve = {}
        for fraction in FRACTIONS:
            result = evaluate_matcher(
                LeapmeMatcher(embeddings),
                dataset,
                RunSettings(train_fraction=fraction, repetitions=BENCH_REPS),
            )
            curve[fraction] = result.f1
        return curve

    curve = run_once(benchmark, sweep)
    print("\nF1 vs training fraction (cameras):")
    for fraction in FRACTIONS:
        bar = "#" * int(round(curve[fraction] * 40))
        print(f"  {fraction:>4.0%}  {curve[fraction]:.3f}  {bar}")
    benchmark.extra_info.update(
        {f"f1_at_{fraction:.0%}": round(curve[fraction], 3) for fraction in FRACTIONS}
    )

    if not STRICT_SHAPE:
        return  # tiny smoke scale: execution only
    values = [curve[fraction] for fraction in FRACTIONS]
    # More sources help overall...
    assert values[-1] > values[0] - 0.02
    # ...and the curve is roughly increasing (tolerate small dips).
    violations = sum(b < a - 0.08 for a, b in zip(values, values[1:]))
    assert violations <= 1, f"curve not monotone-ish: {values}"
    # Diminishing returns: most of the gain is realised early.
    gain_early = values[3] - values[0]  # 0.1 -> 0.6
    gain_late = values[-1] - values[3]  # 0.6 -> 0.9
    assert gain_late <= max(gain_early, 0.05) + 0.05
