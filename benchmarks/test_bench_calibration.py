"""Extension G: operating points of the LEAPME similarity scores.

The paper evaluates at the softmax-argmax threshold (0.5).  Because
training pairs are 2:1 negative-sampled while the candidate distribution
is ~25:1 negative, that threshold is not automatically the best
operating point -- especially with little training data.  This bench
maps the full precision-recall curve of the scores at 20% training and
reports the achievable operating points (the analysis behind deviation 4
in EXPERIMENTS.md).

A monotone recalibration (Platt/isotonic/prior correction; see
``repro.ml.calibration``) cannot repair *ranking* errors, so the curve
itself -- not any post-hoc calibration -- is the honest picture of what
score thresholds can and cannot buy.
"""

from __future__ import annotations

import numpy as np
from conftest import STRICT_SHAPE, bench_dataset, bench_embeddings, run_once

from repro.core import LeapmeMatcher
from repro.data.pairs import build_pairs, sample_training_pairs
from repro.data.splits import split_sources
from repro.evaluation.curves import precision_recall_curve
from repro.metrics import evaluate_scores


def test_bench_operating_points(benchmark):
    dataset = bench_dataset("headphones")
    embeddings = bench_embeddings("headphones")

    def run():
        rows = []
        for repetition in range(3):
            rng = np.random.default_rng([repetition, 97])
            split = split_sources(dataset, 0.2, rng)
            training = sample_training_pairs(
                build_pairs(dataset, list(split.train_sources), within=True), rng=rng
            )
            if not training.positives() or not training.negatives():
                continue
            test = build_pairs(dataset, list(split.train_sources), within=False)
            matcher = LeapmeMatcher(embeddings)
            matcher.fit(dataset, training)
            scores = matcher.score_pairs(dataset, test.pairs)
            labels = test.labels()
            curve = precision_recall_curve(scores, labels)
            best_f1, best_threshold = curve.best_f1()
            rows.append(
                {
                    "f1_at_half": evaluate_scores(scores, labels, 0.5).f1,
                    "best_f1": best_f1,
                    "best_threshold": best_threshold,
                    "average_precision": curve.average_precision,
                    "base_rate": float(labels.mean()),
                    "p_at_r50": curve.precision_at_recall(0.5),
                }
            )
        return rows

    rows = run_once(benchmark, run)
    mean = {key: float(np.mean([row[key] for row in rows])) for key in rows[0]}
    print("\noperating points at 20% training (headphones, mean of reps):")
    print(f"  F1 @ threshold 0.5 : {mean['f1_at_half']:.2f}")
    print(f"  best achievable F1 : {mean['best_f1']:.2f} "
          f"(threshold ~{mean['best_threshold']:.2f})")
    print(f"  average precision  : {mean['average_precision']:.2f} "
          f"(positive base rate {mean['base_rate']:.3f})")
    print(f"  precision @ R>=0.5 : {mean['p_at_r50']:.2f}")
    benchmark.extra_info.update({key: round(value, 3) for key, value in mean.items()})

    if not STRICT_SHAPE:
        return  # tiny smoke scale: execution only
    # The ranking is far better than random (AP >> base rate)...
    assert mean["average_precision"] > 10 * mean["base_rate"]
    # ...and threshold tuning recovers substantial F1 over the fixed 0.5,
    # which is exactly why the 20% rows of Table II underestimate the
    # score quality.
    assert mean["best_f1"] >= mean["f1_at_half"]
    # A usable high-precision operating point exists at recall 0.5 --
    # an order of magnitude above the positive base rate.
    assert mean["p_at_r50"] > 10 * mean["base_rate"]
