"""Shared experiment drivers for the Table II benchmark blocks."""

from __future__ import annotations

from conftest import BENCH_REPS, bench_dataset, bench_embeddings

from repro.baselines import (
    AmlMatcher,
    FcaMapMatcher,
    LshMatcher,
    NezhadiMatcher,
    SemPropMatcher,
)
from repro.core import FeatureConfig, FeatureKinds, FeatureScope, LeapmeMatcher
from repro.evaluation import RunSettings, evaluate_matcher, format_table2

TRAIN_FRACTIONS = (0.2, 0.8)

#: LEAPME's three headline variants per feature scope, as in Table II.
LEAPME_KINDS = (
    ("LEAPME", FeatureKinds.BOTH),
    ("LEAPME(emb)", FeatureKinds.EMBEDDING),
    ("LEAPME(-emb)", FeatureKinds.NON_EMBEDDING),
)


def leapme_factories(scope: FeatureScope, embeddings) -> dict:
    """The three LEAPME variants for one feature scope."""
    return {
        label: (
            lambda kinds=kinds: LeapmeMatcher(
                embeddings, FeatureConfig(scope=scope, kinds=kinds)
            )
        )
        for label, kinds in LEAPME_KINDS
    }


def baseline_factories(block: str, embeddings) -> dict:
    """The baselines that appear in a given Table II block.

    The paper runs the name-based baselines (Nezhadi, AML, FCA-Map,
    SemProp) in the Names and Both blocks, and the instance-based LSH in
    the Instances and Both blocks.
    """
    name_based = {
        "Nezhadi": NezhadiMatcher,
        "AML": AmlMatcher,
        "FCA-Map": FcaMapMatcher,
        "SemProp": lambda: SemPropMatcher(embeddings),
    }
    instance_based = {"LSH": LshMatcher}
    if block == "instances":
        return instance_based
    if block == "names":
        return name_based
    return {**name_based, **instance_based}


def run_block(block: str, scope: FeatureScope, datasets: list[str]) -> list:
    """Run one Table II block over all datasets and training fractions."""
    results = []
    for dataset_name in datasets:
        dataset = bench_dataset(dataset_name)
        embeddings = bench_embeddings(dataset_name)
        factories = {
            **leapme_factories(scope, embeddings),
            **baseline_factories(block, embeddings),
        }
        for fraction in TRAIN_FRACTIONS:
            settings = RunSettings(train_fraction=fraction, repetitions=BENCH_REPS)
            for label, factory in factories.items():
                result = evaluate_matcher(factory(), dataset, settings)
                result.matcher_name = label
                results.append(result)
    return results


def summarize(block: str, results: list) -> dict:
    """Print the block table and return headline F1s for extra_info."""
    title = f"Table II -- {block} block (scale-dependent absolute values; compare shape)"
    print("\n" + format_table2(results, title=title))
    leapme = {
        (r.dataset_name, r.settings.train_fraction): r.f1
        for r in results
        if r.matcher_name == "LEAPME"
    }
    return {f"f1_{name}_{frac:.0%}": round(f1, 3) for (name, frac), f1 in leapme.items()}
