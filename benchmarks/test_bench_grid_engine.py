"""Evaluation engine: cache-aware parallel grid vs the legacy serial path.

Runs the 9-config feature grid once through the engine (shared pair-
feature store + process-pool executor) and once through the legacy
serial path, asserts the aggregates are identical, and reports the
wall-clock ratio.  ``scripts/bench_grid.py`` (``make bench``) is the
standalone driver with knobs; this module keeps the comparison in the
benchmark suite so regressions show up alongside the paper tables.
"""

from __future__ import annotations

from time import perf_counter

from conftest import BENCH_REPS, bench_dataset, bench_embeddings, run_once

from repro.core import FeatureConfig, LeapmeConfig, LeapmeMatcher
from repro.evaluation import ExperimentRunner
from repro.nn.schedule import TrainingSchedule

#: Sparse-supervision fractions: the cell cost is dominated by pair
#: enumeration and feature assembly, the layers the engine caches.
TRAIN_FRACTIONS = (0.1, 0.2)

#: A small network isolates the engine from NN training, which is
#: identical work in both modes.
LIGHT_NETWORK = LeapmeConfig(
    hidden_sizes=(8,), schedule=TrainingSchedule.constant(1, 1e-3)
)


def _factories(embeddings) -> dict:
    return {
        config.label(): (
            lambda config=config: LeapmeMatcher(
                embeddings, config, config=LIGHT_NETWORK
            )
        )
        for config in FeatureConfig.grid()
    }


def _aggregates(results) -> list:
    return [
        (
            result.matcher_name,
            result.settings.train_fraction,
            [
                (q.true_positives, q.false_positives, q.false_negatives)
                for q in result.qualities
            ],
            result.skipped_repetitions,
        )
        for result in results
    ]


def test_bench_grid_engine(benchmark):
    """Engine grid wall-clock, with serial parity checked in-test."""
    dataset = bench_dataset("headphones")
    embeddings = bench_embeddings("headphones")
    runner = ExperimentRunner(_factories(embeddings))
    kwargs = dict(
        train_fractions=list(TRAIN_FRACTIONS),
        repetitions=BENCH_REPS,
        seed=0,
    )

    engine_results = run_once(
        benchmark,
        lambda: runner.run(
            [dataset], workers=2, share_features=True, **kwargs
        ),
    )

    started = perf_counter()
    serial_results = runner.run(
        [dataset], workers=1, share_features=False, **kwargs
    )
    serial_seconds = perf_counter() - started

    assert _aggregates(engine_results) == _aggregates(serial_results)
    engine_seconds = benchmark.stats.stats.mean
    benchmark.extra_info["serial_seconds"] = round(serial_seconds, 4)
    benchmark.extra_info["speedup"] = (
        round(serial_seconds / engine_seconds, 3) if engine_seconds else 0.0
    )
    benchmark.extra_info["cells"] = 9 * len(TRAIN_FRACTIONS)
    benchmark.extra_info["repetitions"] = BENCH_REPS
