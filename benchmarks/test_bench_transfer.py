"""Extension B: transfer learning across product domains.

Section V announces a transfer-learning study (detailed in the paper's
extended arXiv version): train LEAPME on one domain's property pairs,
apply it unchanged to another domain.  Expected shape: clearly better
than unsupervised chance everywhere (the learned feature weighting is
domain-independent), but below the in-domain Table II scores.
"""

from __future__ import annotations

from conftest import BENCH_SCALE, STRICT_SHAPE, bench_dataset, run_once

from repro.core import LeapmeMatcher
from repro.datasets import build_domain_embeddings
from repro.evaluation import RunSettings, evaluate_matcher, run_transfer_experiment

PAIRS = (
    ("phones", "tvs"),
    ("tvs", "phones"),
    ("headphones", "phones"),
    ("cameras", "headphones"),
)


def test_bench_transfer_matrix(benchmark):
    domains = sorted({name for pair in PAIRS for name in pair})
    embeddings = build_domain_embeddings(domains, scale=BENCH_SCALE)

    def run():
        rows = []
        for source_name, target_name in PAIRS:
            transfer = run_transfer_experiment(
                LeapmeMatcher(embeddings),
                bench_dataset(source_name),
                bench_dataset(target_name),
            )
            in_domain = evaluate_matcher(
                LeapmeMatcher(embeddings),
                bench_dataset(target_name),
                RunSettings(train_fraction=0.8, repetitions=1),
            )
            rows.append((source_name, target_name, transfer.quality.f1, in_domain.f1))
        return rows

    rows = run_once(benchmark, run)
    print("\ntransfer learning (train on A, test on B):")
    print(f"{'A -> B':<28} {'transfer F1':>12} {'in-domain F1':>13}")
    for source_name, target_name, transfer_f1, in_domain_f1 in rows:
        print(
            f"{source_name + ' -> ' + target_name:<28} "
            f"{transfer_f1:>12.2f} {in_domain_f1:>13.2f}"
        )
        benchmark.extra_info[f"{source_name}->{target_name}"] = round(transfer_f1, 3)

    if not STRICT_SHAPE:
        return  # tiny smoke scale: execution only
    for source_name, target_name, transfer_f1, in_domain_f1 in rows:
        # Far better than chance: the positive rate of the candidate pair
        # distribution is a few percent, so F1 > 0.3 demonstrates real
        # transfer of the learned feature weighting.
        assert transfer_f1 > 0.3, f"{source_name}->{target_name}: {transfer_f1:.2f}"
        # ...but in-domain training stays at least as good.
        assert in_domain_f1 >= transfer_f1 - 0.1
