"""Extension D: substrate micro-benchmarks.

Performance baselines for the building blocks everything else sits on:
string distances (the dominant cost of pair features), embedding
training, the neural network, and minhash signatures.  These catch
accidental complexity regressions in the from-scratch implementations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import LeapmeClassifier, LeapmeConfig
from repro.baselines.lsh import MinHasher
from repro.embeddings import CorpusGenerator, SynonymLexicon, build_cooccurrence
from repro.embeddings.glove_like import train_glove_like
from repro.nn.schedule import TrainingSchedule
from repro.text.similarity import name_distance_vector

NAMES = [
    "camera resolution", "effective pixels", "megapixel", "mp rating",
    "shutter speed", "exposure time", "optical zoom", "battery life",
    "SCREEN_SIZE", "display-diagonal", "sensor size", "image stabilization",
]
PAIRS = [(a, b) for i, a in enumerate(NAMES) for b in NAMES[i + 1 :]]


def test_bench_name_distances(benchmark):
    """All 8 Table I string distances over 66 realistic name pairs."""

    def run():
        return [name_distance_vector(a, b) for a, b in PAIRS]

    vectors = benchmark(run)
    assert len(vectors) == len(PAIRS)


def test_bench_embedding_training(benchmark):
    """PPMI+SVD training on a mid-sized synthetic corpus."""
    lexicon = SynonymLexicon(
        [[f"w{g}m{m}" for m in range(4)] for g in range(30)]
    )
    generator = CorpusGenerator(lexicon, seed=0)
    sentences = generator.corpus(sentences_per_group=20)

    def run():
        counts = build_cooccurrence(sentences)
        return train_glove_like(counts, dimension=64, seed=0)

    embeddings = benchmark.pedantic(run, rounds=1, iterations=1)
    assert embeddings.dimension == 64


def test_bench_network_training(benchmark):
    """The paper's network (128/64/2) on 1k pairs of 137-d features."""
    rng = np.random.default_rng(0)
    features = rng.standard_normal((1000, 137))
    labels = (features[:, 0] + features[:, 1] > 0).astype(int)
    config = LeapmeConfig(schedule=TrainingSchedule.from_pairs([(5, 1e-3)]))

    def run():
        return LeapmeClassifier(config).fit(features, labels)

    classifier = benchmark.pedantic(run, rounds=1, iterations=1)
    assert (classifier.predict(features) == labels).mean() > 0.9


def test_bench_minhash_signatures(benchmark):
    """Minhash signatures over 200 token sets of ~30 tokens."""
    rng = np.random.default_rng(0)
    token_sets = [
        {f"token{int(t)}" for t in rng.integers(0, 500, size=30)} for _ in range(200)
    ]
    hasher = MinHasher(num_hashes=64)

    def run():
        return [hasher.signature(tokens) for tokens in token_sets]

    signatures = benchmark(run)
    assert len(signatures) == 200


@pytest.mark.parametrize("length", [8, 32])
def test_bench_single_distance_scaling(benchmark, length):
    """Edit-distance cost as the strings grow (quadratic DP)."""
    a = "ab" * (length // 2)
    b = "ba" * (length // 2)
    benchmark(lambda: name_distance_vector(a, b))
