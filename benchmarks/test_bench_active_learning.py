"""Extension I: active learning -- fewer labels for the same quality.

The paper emphasises good results "for relatively little training
data"; uncertainty sampling pushes the labelling budget further by
asking for labels only where the classifier is unsure.  Expected shape:
at small budgets, uncertainty sampling matches or beats random labelling
of the same size.
"""

from __future__ import annotations

import numpy as np
from conftest import STRICT_SHAPE, bench_dataset, bench_embeddings, run_once

from repro.core import LeapmeConfig, LeapmeMatcher
from repro.data.pairs import build_pairs
from repro.data.splits import split_sources
from repro.evaluation.active import run_active_learning
from repro.nn.schedule import TrainingSchedule

BUDGETS = [20, 60, 120, 240]
FAST = LeapmeConfig(
    hidden_sizes=(64, 32),
    schedule=TrainingSchedule.from_pairs([(8, 1e-3), (3, 1e-4)]),
)


def test_bench_active_vs_random(benchmark):
    dataset = bench_dataset("phones")
    embeddings = bench_embeddings("phones")

    def run():
        curves = {}
        for strategy in ("random", "uncertainty"):
            f1_matrix = []
            for repetition in range(2):
                rng = np.random.default_rng([repetition, 31])
                split = split_sources(dataset, 0.8, rng)
                pool = build_pairs(dataset, list(split.train_sources), within=True)
                evaluation = build_pairs(
                    dataset, list(split.train_sources), within=False
                )
                curve = run_active_learning(
                    LeapmeMatcher(embeddings, config=FAST),
                    dataset,
                    pool,
                    evaluation,
                    budgets=BUDGETS,
                    strategy=strategy,
                    rng=rng,
                )
                f1_matrix.append(curve.f1_scores)
            curves[strategy] = np.mean(f1_matrix, axis=0)
        return curves

    curves = run_once(benchmark, run)
    print("\nactive learning on phones (F1 vs labels spent):")
    print(f"{'labels':>8} {'random':>8} {'uncertainty':>12}")
    for i, budget in enumerate(BUDGETS):
        print(
            f"{budget:>8} {curves['random'][i]:>8.2f} "
            f"{curves['uncertainty'][i]:>12.2f}"
        )
        benchmark.extra_info[f"random_{budget}"] = round(float(curves["random"][i]), 3)
        benchmark.extra_info[f"active_{budget}"] = round(
            float(curves["uncertainty"][i]), 3
        )

    if not STRICT_SHAPE:
        return  # tiny smoke scale: execution only
    # At a small-to-mid budget, choosing labels beats random labelling.
    mid = len(BUDGETS) // 2
    assert (
        curves["uncertainty"][mid] >= curves["random"][mid] - 0.05
    ), "uncertainty sampling should not lag random at mid budgets"
    # Both improve with budget overall.
    for strategy in ("random", "uncertainty"):
        assert curves[strategy][-1] >= curves[strategy][0] - 0.05
