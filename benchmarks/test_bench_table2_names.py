"""Table II, "Names" block: name features only.

LEAPME variants restricted to name features, compared with the four
name-based baselines (Nezhadi, AML, FCA-Map, SemProp).  Expected shape
(paper):

* name-embedding features are LEAPME's strongest single block;
* the unsupervised lexical baselines (AML, FCA-Map) have very high
  precision but low recall;
* LEAPME at 80% training beats every baseline.
"""

from __future__ import annotations

from bench_common import run_block, summarize
from conftest import STRICT_SHAPE, run_once

from repro.core import FeatureScope
from repro.datasets import DATASET_NAMES


def test_bench_table2_names_block(benchmark):
    results = run_once(
        benchmark,
        lambda: run_block("names", FeatureScope.NAMES, list(DATASET_NAMES)),
    )
    benchmark.extra_info.update(summarize("names", results))

    if not STRICT_SHAPE:
        # Tiny smoke scale: verify execution only; the paper's shape needs
        # the small/paper data sizes.
        return
    by_cell = {
        (r.matcher_name, r.dataset_name, r.settings.train_fraction): r for r in results
    }
    # Unsupervised lexical matchers: high precision, low recall.
    for baseline in ("AML", "FCA-Map"):
        for name in DATASET_NAMES:
            cell = by_cell[(baseline, name, 0.8)]
            assert cell.precision > 0.8, f"{baseline}/{name} P={cell.precision:.2f}"
            assert cell.recall < 0.7, f"{baseline}/{name} R={cell.recall:.2f}"
    # Embedding name features beat string distances in most cells.
    wins = sum(
        by_cell[("LEAPME(emb)", name, frac)].f1
        >= by_cell[("LEAPME(-emb)", name, frac)].f1
        for name in DATASET_NAMES
        for frac in (0.2, 0.8)
    )
    assert wins >= 6, f"embedding features won only {wins}/8 name cells"
    # LEAPME at 80% beats every name baseline on every dataset.
    baselines = ("Nezhadi", "AML", "FCA-Map", "SemProp")
    for name in DATASET_NAMES:
        leapme = by_cell[("LEAPME", name, 0.8)].f1
        for baseline in baselines:
            other = by_cell[(baseline, name, 0.8)].f1
            assert leapme >= other - 0.05, (
                f"{name}: LEAPME {leapme:.2f} vs {baseline} {other:.2f}"
            )
