"""Table II, "Both" block: the headline comparison.

Full LEAPME (instance + name features) and its embedding-only /
non-embedding-only variants against all five baselines on all four
datasets at 20% and 80% training.  This is the paper's main result:

* LEAPME achieves the best F1 on every dataset at 80% training;
* combining instance and name features matches or improves on either
  scope alone;
* embedding features carry most of the signal.
"""

from __future__ import annotations

from bench_common import run_block, summarize
from conftest import BENCH_REPS, STRICT_SHAPE, run_once

from repro.core import FeatureScope
from repro.datasets import DATASET_NAMES
from repro.evaluation import compare_results


def test_bench_table2_both_block(benchmark):
    results = run_once(
        benchmark,
        lambda: run_block("both", FeatureScope.BOTH, list(DATASET_NAMES)),
    )
    benchmark.extra_info.update(summarize("both", results))

    if not STRICT_SHAPE:
        # Tiny smoke scale: verify execution only; the paper's shape needs
        # the small/paper data sizes.
        return
    by_cell = {
        (r.matcher_name, r.dataset_name, r.settings.train_fraction): r for r in results
    }
    baselines = ("Nezhadi", "AML", "FCA-Map", "SemProp", "LSH")
    # Headline: at 80% training LEAPME beats every baseline everywhere.
    for name in DATASET_NAMES:
        leapme = by_cell[("LEAPME", name, 0.8)].f1
        for baseline in baselines:
            other = by_cell[(baseline, name, 0.8)].f1
            assert leapme >= other - 0.05, (
                f"{name}@80%: LEAPME {leapme:.2f} vs {baseline} {other:.2f}"
            )
    # On the flagship camera dataset LEAPME also wins at 20% training.
    cameras_leapme_20 = by_cell[("LEAPME", "cameras", 0.2)].f1
    for baseline in baselines:
        other = by_cell[(baseline, "cameras", 0.2)].f1
        assert cameras_leapme_20 >= other - 0.05, (
            f"cameras@20%: LEAPME {cameras_leapme_20:.2f} vs {baseline} {other:.2f}"
        )
    # Embedding features beat non-embedding features in most cells.
    wins = sum(
        by_cell[("LEAPME(emb)", name, frac)].f1
        >= by_cell[("LEAPME(-emb)", name, frac)].f1
        for name in DATASET_NAMES
        for frac in (0.2, 0.8)
    )
    assert wins >= 6, f"embedding features won only {wins}/8 cells"
    # Excellent absolute scores at 80%, led by the balanced camera set.
    assert by_cell[("LEAPME", "cameras", 0.8)].f1 > 0.9
    # With enough repetitions (paper scale), the camera win over the
    # supervised baseline is statistically significant, not split luck.
    if BENCH_REPS >= 10:
        comparison = compare_results(
            by_cell[("LEAPME", "cameras", 0.8)],
            by_cell[("Nezhadi", "cameras", 0.8)],
        )
        print(f"LEAPME vs Nezhadi (cameras @80%): {comparison.describe()}")
        assert comparison.significant(0.05)
