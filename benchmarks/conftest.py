"""Shared infrastructure for the benchmark suite.

Every table and figure of the paper's evaluation has a bench module here
(see DESIGN.md section 4 for the index).  Scale is controlled by two
environment variables so the same suite runs as a quick CI check or a
full paper-scale reproduction:

* ``REPRO_BENCH_SCALE``  -- dataset scale preset: ``tiny`` (smoke),
  ``small`` (default) or ``paper`` (the paper's dimensions, slow).
* ``REPRO_BENCH_REPS``   -- repetitions per experiment cell (default 2;
  the paper uses 25).

The benches print the regenerated tables to stdout (run pytest with
``-s`` to see them) and attach the headline numbers to the
pytest-benchmark ``extra_info`` so they land in the benchmark JSON.
"""

from __future__ import annotations

import os

import pytest

from repro.data.model import Dataset
from repro.datasets import build_domain_embeddings, load_dataset
from repro.embeddings.base import WordEmbeddings

BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")
BENCH_REPS = int(os.environ.get("REPRO_BENCH_REPS", "2"))

#: The paper-shape assertions only hold with enough data; at the ``tiny``
#: smoke scale the benches verify execution, not shape.
STRICT_SHAPE = BENCH_SCALE != "tiny"

_dataset_cache: dict[str, Dataset] = {}
_embedding_cache: dict[str, WordEmbeddings] = {}


def bench_dataset(name: str) -> Dataset:
    """Load (and cache) a dataset at the benchmark scale."""
    if name not in _dataset_cache:
        _dataset_cache[name] = load_dataset(name, scale=BENCH_SCALE)
    return _dataset_cache[name]


def bench_embeddings(name: str) -> WordEmbeddings:
    """Train (and cache) embeddings at the benchmark scale."""
    if name not in _embedding_cache:
        _embedding_cache[name] = build_domain_embeddings(name, scale=BENCH_SCALE)
    return _embedding_cache[name]


@pytest.fixture(scope="session")
def bench_scale() -> str:
    return BENCH_SCALE


@pytest.fixture(scope="session")
def bench_reps() -> int:
    return BENCH_REPS


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing.

    Experiment cells are macro-benchmarks (seconds to minutes); repeated
    timing rounds would multiply the suite's runtime for no statistical
    gain, so a single round is used.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
