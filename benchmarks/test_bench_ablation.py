"""Extension E: ablations of LEAPME's design choices.

Section IV-D reports that the hyper-parameters were hand-tuned but that
"most alterations (such as changing the size of the layers) do not
significantly impact on the results".  This bench verifies that claim
and ablates the two protocol-level choices Section V-B fixes: the 2:1
negative-sampling ratio and the phased learning-rate schedule.
"""

from __future__ import annotations

from conftest import BENCH_REPS, STRICT_SHAPE, bench_dataset, bench_embeddings, run_once

from repro.core import LeapmeConfig, LeapmeMatcher
from repro.evaluation import RunSettings, evaluate_matcher
from repro.nn.schedule import TrainingSchedule, paper_schedule

DATASET = "phones"


def _run(config: LeapmeConfig, negative_ratio: float = 2.0) -> float:
    result = evaluate_matcher(
        LeapmeMatcher(bench_embeddings(DATASET), config=config),
        bench_dataset(DATASET),
        RunSettings(
            train_fraction=0.8, repetitions=BENCH_REPS, negative_ratio=negative_ratio
        ),
    )
    return result.f1


def test_bench_ablation_negative_ratio(benchmark):
    """The paper fixes 2 negatives per positive; sweep the ratio."""
    ratios = (0.5, 1.0, 2.0, 4.0, 8.0)

    def sweep():
        return {ratio: _run(LeapmeConfig(), negative_ratio=ratio) for ratio in ratios}

    curve = run_once(benchmark, sweep)
    print("\nnegative-sampling ratio ablation (phones @80%):")
    for ratio, f1 in curve.items():
        print(f"  {ratio:>4.1f} negatives/positive  F1={f1:.3f}")
        benchmark.extra_info[f"f1_ratio_{ratio}"] = round(f1, 3)
    if not STRICT_SHAPE:
        return  # tiny smoke scale: execution only
    # The paper's 2:1 choice is near the top of the curve.
    assert curve[2.0] >= max(curve.values()) - 0.1


def test_bench_ablation_network_width(benchmark):
    """"Most alterations (such as changing the size of the layers) do not
    significantly impact on the results." """
    widths = {
        "paper (128,64)": (128, 64),
        "half (64,32)": (64, 32),
        "double (256,128)": (256, 128),
        "single (96,)": (96,),
    }

    def sweep():
        return {
            label: _run(LeapmeConfig(hidden_sizes=sizes))
            for label, sizes in widths.items()
        }

    scores = run_once(benchmark, sweep)
    print("\nnetwork-width ablation (phones @80%):")
    for label, f1 in scores.items():
        print(f"  {label:<18} F1={f1:.3f}")
        benchmark.extra_info[f"f1_{label.split()[0]}"] = round(f1, 3)
    if not STRICT_SHAPE:
        return  # tiny smoke scale: execution only
    spread = max(scores.values()) - min(scores.values())
    assert spread < 0.15, f"width unexpectedly matters: spread={spread:.2f}"


def test_bench_ablation_classifier_family(benchmark):
    """Section IV-C: embeddings "may require nonlinear combinations",
    hence the neural network.  Swap the classifier family on identical
    Table I features and check the network earns its place."""
    from repro.core import LeapmeMatcher
    from repro.core.classical import ClassicalPairClassifier
    from repro.ml import AdaBoostClassifier, DecisionTreeClassifier, LogisticRegression

    families = {
        "neural net (paper)": None,
        "adaboost": lambda: ClassicalPairClassifier(
            AdaBoostClassifier(n_estimators=40, max_depth=2)
        ),
        "decision tree": lambda: ClassicalPairClassifier(
            DecisionTreeClassifier(max_depth=8)
        ),
        "logistic": lambda: ClassicalPairClassifier(LogisticRegression(max_iter=300)),
    }

    def sweep():
        scores = {}
        for label, factory in families.items():
            matcher = LeapmeMatcher(
                bench_embeddings(DATASET), classifier_factory=factory
            )
            result = evaluate_matcher(
                matcher,
                bench_dataset(DATASET),
                RunSettings(train_fraction=0.8, repetitions=BENCH_REPS),
            )
            scores[label] = result.f1
        return scores

    scores = run_once(benchmark, sweep)
    print("\nclassifier-family ablation (phones @80%, identical features):")
    for label, f1 in scores.items():
        print(f"  {label:<20} F1={f1:.3f}")
        benchmark.extra_info[f"f1_{label.split()[0]}"] = round(f1, 3)
    if not STRICT_SHAPE:
        return  # tiny smoke scale: execution only
    # The network clearly beats the *linear* and single-tree families on
    # the embedding-heavy features (the paper's nonlinearity argument);
    # boosted trees are competitive -- at this substrate's scale AdaBoost
    # can even edge the network out, a finding worth reporting rather
    # than asserting away.
    assert scores["neural net (paper)"] >= scores["logistic"]
    assert scores["neural net (paper)"] >= scores["decision tree"]
    assert scores["neural net (paper)"] >= max(scores.values()) - 0.1


def test_bench_ablation_text_encoder(benchmark):
    """Plain word-vector averaging (the paper) vs SIF-weighted encoding.

    SIF (Arora et al., 2017) down-weights frequent words and removes the
    common discourse direction before averaging.  Since LEAPME's
    classifier already learns feature weights, the expected effect is
    modest -- the interesting question is whether the better text
    representation helps at all once supervised learning sits on top.
    """
    from repro.core import LeapmeMatcher
    from repro.embeddings import SifEncoder

    dataset = bench_dataset(DATASET)
    embeddings = bench_embeddings(DATASET)
    texts = [instance.value for instance in dataset.instances]
    names = [ref.name for ref in dataset.properties()]
    sif = SifEncoder(
        embeddings, SifEncoder.frequencies_from_texts(texts + names)
    ).fit_common_direction(names)

    def sweep():
        scores = {}
        for label, space in (("plain average (paper)", embeddings), ("SIF", sif)):
            result = evaluate_matcher(
                LeapmeMatcher(space),
                dataset,
                RunSettings(train_fraction=0.8, repetitions=BENCH_REPS),
            )
            scores[label] = result.f1
        return scores

    scores = run_once(benchmark, sweep)
    print("\ntext-encoder ablation (phones @80%):")
    for label, f1 in scores.items():
        print(f"  {label:<22} F1={f1:.3f}")
        benchmark.extra_info[f"f1_{label.split()[0]}"] = round(f1, 3)
    if not STRICT_SHAPE:
        return  # tiny smoke scale: execution only
    # With a learned classifier on top, the encoders should be close.
    assert abs(scores["SIF"] - scores["plain average (paper)"]) < 0.15


def test_bench_ablation_schedule(benchmark):
    """The phased LR schedule vs a flat schedule of the same length."""
    schedules = {
        "paper 10/5/5 phased": paper_schedule(),
        "flat 20 @ 1e-3": TrainingSchedule.constant(20, 1e-3),
        "short 5 @ 1e-3": TrainingSchedule.constant(5, 1e-3),
    }

    def sweep():
        return {
            label: _run(LeapmeConfig(schedule=schedule))
            for label, schedule in schedules.items()
        }

    scores = run_once(benchmark, sweep)
    print("\nlearning-rate schedule ablation (phones @80%):")
    for label, f1 in scores.items():
        print(f"  {label:<22} F1={f1:.3f}")
    if not STRICT_SHAPE:
        return  # tiny smoke scale: execution only
    # The paper schedule is not worse than the alternatives.
    paper_f1 = scores["paper 10/5/5 phased"]
    assert paper_f1 >= max(scores.values()) - 0.08
