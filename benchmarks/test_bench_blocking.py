"""Extension H: blocking for scalable multi-source matching.

The paper's camera dataset already implies ~5M candidate pairs; at web
scale, classifying all of them is the bottleneck.  This bench measures
the standard blocking trade-off -- reduction ratio vs pair completeness
-- and the end-to-end effect: match quality and wall-clock when LEAPME
scores only the surviving candidates.
"""

from __future__ import annotations

import time

import numpy as np
from conftest import STRICT_SHAPE, bench_dataset, bench_embeddings, run_once

from repro.blocking import MinHashBlocker, NullBlocker, TokenBlocker, blocking_quality
from repro.core import LeapmeMatcher
from repro.data.pairs import PairSet, build_pairs, sample_training_pairs
from repro.data.splits import split_sources
from repro.metrics import evaluate_scores

BLOCKERS = {
    "none": NullBlocker,
    "token": TokenBlocker,
    "minhash": lambda: MinHashBlocker(num_hashes=32, band_size=2),
}


def test_bench_blocking_tradeoff(benchmark):
    dataset = bench_dataset("cameras")
    embeddings = bench_embeddings("cameras")
    rng = np.random.default_rng(0)
    split = split_sources(dataset, 0.8, rng)
    training = sample_training_pairs(
        build_pairs(dataset, list(split.train_sources), within=True), rng=rng
    )
    matcher = LeapmeMatcher(embeddings)
    matcher.fit(dataset, training)
    test_keys = {pair.key for pair in build_pairs(dataset, list(split.train_sources), within=False)}

    def run():
        rows = {}
        for label, factory in BLOCKERS.items():
            blocker = factory()
            start = time.perf_counter()
            keys = blocker.candidate_keys(dataset)
            blocking_seconds = time.perf_counter() - start
            quality = blocking_quality(dataset, keys)
            # Score only the surviving held-out pairs.
            candidates = PairSet(
                [pair for pair in blocker.candidate_pairs(dataset) if pair.key in test_keys]
            )
            start = time.perf_counter()
            scores = matcher.score_pairs(dataset, candidates.pairs)
            scoring_seconds = time.perf_counter() - start
            match_quality = evaluate_scores(scores, candidates.labels(), matcher.threshold)
            # Pairs pruned by blocking are implicit non-matches: recall is
            # evaluated against ALL held-out true pairs.
            kept_true = sum(1 for pair in candidates.pairs if pair.label)
            total_true = sum(
                1 for key in test_keys for pair in [sorted(key)] if dataset.is_match(*pair)
            )
            effective_recall = (
                match_quality.recall * (kept_true / total_true) if total_true else 1.0
            )
            rows[label] = {
                "rr": quality.reduction_ratio,
                "pc": quality.pair_completeness,
                "precision": match_quality.precision,
                "effective_recall": effective_recall,
                "blocking_s": blocking_seconds,
                "scoring_s": scoring_seconds,
            }
        return rows

    rows = run_once(benchmark, run)
    print("\nblocking trade-off (cameras @80%):")
    print(f"{'blocker':<10} {'RR':>5} {'PC':>5} {'P':>5} {'eff.R':>6} {'block s':>8} {'score s':>8}")
    for label, row in rows.items():
        print(
            f"{label:<10} {row['rr']:>5.2f} {row['pc']:>5.2f} "
            f"{row['precision']:>5.2f} {row['effective_recall']:>6.2f} "
            f"{row['blocking_s']:>8.2f} {row['scoring_s']:>8.2f}"
        )
        benchmark.extra_info[f"{label}_rr"] = round(row["rr"], 3)
        benchmark.extra_info[f"{label}_pc"] = round(row["pc"], 3)

    if not STRICT_SHAPE:
        return  # tiny smoke scale: execution only
    # The null blocker defines the reference.
    assert rows["none"]["rr"] == 0.0 and rows["none"]["pc"] == 1.0
    # Real blockers must prune substantially while keeping most true pairs.
    for label in ("token", "minhash"):
        assert rows[label]["rr"] > 0.3, f"{label} prunes too little"
        assert rows[label]["pc"] > 0.6, f"{label} loses too many true pairs"
    # Pruning must pay off in scoring time.
    assert rows["token"]["scoring_s"] <= rows["none"]["scoring_s"] * 1.1
