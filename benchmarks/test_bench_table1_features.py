"""Table I: the feature inventory and its extraction cost.

Asserts the exact feature counts the paper reports (at 300-d
embeddings: 329 instance features, 629 property features, 637 pair
features) and benchmarks feature-extraction throughput on real data.
"""

from __future__ import annotations

from conftest import bench_dataset, bench_embeddings, run_once

from repro.core import FeatureConfig, PropertyFeatureTable, pair_feature_matrix
from repro.core.instance_features import NUM_META_FEATURES, instance_meta_matrix
from repro.core.pair_features import NUM_NAME_DISTANCES, feature_block_names
from repro.data.pairs import build_pairs


def test_bench_instance_features(benchmark):
    """Throughput of Table I rows 1-3 over a dataset's instance values.

    Also asserts the paper's instance-feature count: rows 1-3 are 29
    meta-features, row 4 a 300-d embedding, totalling 329.
    """
    assert NUM_META_FEATURES + 300 == 329
    dataset = bench_dataset("headphones")
    values = [instance.value for instance in dataset.instances]

    matrix = run_once(benchmark, lambda: instance_meta_matrix(values))
    assert matrix.shape == (len(values), NUM_META_FEATURES)
    benchmark.extra_info["n_values"] = len(values)


def test_bench_property_table(benchmark):
    """Cost of Algorithm 1 steps 1-4 (the full property feature table).

    Also asserts the paper's property-feature count at 300 dimensions:
    row 5 averages the 329 instance features, row 6 adds a 300-d name
    embedding, totalling 629.
    """
    assert (NUM_META_FEATURES + 300) + 300 == 629
    dataset = bench_dataset("headphones")
    embeddings = bench_embeddings("headphones")

    table = run_once(benchmark, lambda: PropertyFeatureTable(dataset, embeddings))
    assert len(table) == len(dataset.properties())
    benchmark.extra_info["n_properties"] = len(table)


def test_bench_pair_features(benchmark):
    """Cost of assembling the pair feature matrix for all candidate pairs.

    Also asserts the paper's pair-feature count at 300 dimensions:
    row 7 is the 629-d property difference, rows 8-15 add 8 string
    distances, totalling 637.
    """
    assert len(feature_block_names(FeatureConfig(), dimension=300)) == 637
    assert NUM_NAME_DISTANCES == 8
    dataset = bench_dataset("headphones")
    embeddings = bench_embeddings("headphones")
    table = PropertyFeatureTable(dataset, embeddings)
    pairs = build_pairs(dataset).pairs
    config = FeatureConfig()

    matrix = run_once(benchmark, lambda: pair_feature_matrix(table, pairs, config))
    assert matrix.shape[0] == len(pairs)
    benchmark.extra_info["n_pairs"] = len(pairs)
    benchmark.extra_info["n_features"] = matrix.shape[1]
