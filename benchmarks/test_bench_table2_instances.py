"""Table II, "Instances" block: instance features only.

LEAPME / LEAPME(emb) / LEAPME(-emb) restricted to instance features,
compared with the instance-based LSH baseline, on all four datasets at
20% and 80% training.  Expected shape (paper):

* embedding instance features beat the format meta-features;
* 80% training beats 20%;
* LSH is competitive on the value-rich camera dataset but recall-starved
  on the low-quality datasets.
"""

from __future__ import annotations

from bench_common import run_block, summarize
from conftest import STRICT_SHAPE, run_once

from repro.core import FeatureScope
from repro.datasets import DATASET_NAMES


def test_bench_table2_instances_block(benchmark):
    results = run_once(
        benchmark,
        lambda: run_block("instances", FeatureScope.INSTANCES, list(DATASET_NAMES)),
    )
    benchmark.extra_info.update(summarize("instances", results))

    if not STRICT_SHAPE:
        # Tiny smoke scale: verify execution only; the paper's shape needs
        # the small/paper data sizes.
        return
    by_cell = {
        (r.matcher_name, r.dataset_name, r.settings.train_fraction): r for r in results
    }
    # Embedding instance features beat non-embedding ones on most cells.
    wins = sum(
        by_cell[("LEAPME(emb)", name, frac)].f1
        >= by_cell[("LEAPME(-emb)", name, frac)].f1
        for name in DATASET_NAMES
        for frac in (0.2, 0.8)
    )
    assert wins >= 6, f"embedding features won only {wins}/8 instance cells"
    # More training data helps the full variant on every dataset.
    for name in DATASET_NAMES:
        assert (
            by_cell[("LEAPME", name, 0.8)].f1 >= by_cell[("LEAPME", name, 0.2)].f1 - 0.05
        )
    # LSH does best on cameras (the paper's pattern).
    lsh = {name: by_cell[("LSH", name, 0.8)].f1 for name in DATASET_NAMES}
    assert lsh["cameras"] == max(lsh.values())
