"""Extension F: which Table I feature families does the classifier use?

Section I claims supervised learning "learn[s] what features are more
important".  Permutation importance makes that measurable: shuffle one
feature block across the evaluation pairs and watch F1 drop.

Note the distinction from Table II's single-block ablations: permutation
importance is *marginal* (how much a block adds given the redundant
others), while the paper's "name embeddings are the most effective
features" statement is about *solo* block performance -- asserted by the
names-block bench.  Here we assert the marginal version of the paper's
embedding claim: the two embedding blocks together carry more of the
model than the two non-embedding blocks together.
"""

from __future__ import annotations

import numpy as np
from conftest import STRICT_SHAPE, bench_dataset, bench_embeddings, run_once

from repro.core import LeapmeMatcher, permutation_importance, render_importance
from repro.data.pairs import build_pairs, sample_training_pairs
from repro.data.splits import split_sources


def test_bench_feature_importance(benchmark):
    dataset = bench_dataset("cameras")
    embeddings = bench_embeddings("cameras")
    rng = np.random.default_rng(3)
    split = split_sources(dataset, 0.8, rng)
    training = sample_training_pairs(
        build_pairs(dataset, list(split.train_sources), within=True), rng=rng
    )
    test = build_pairs(dataset, list(split.train_sources), within=False)
    matcher = LeapmeMatcher(embeddings)
    matcher.fit(dataset, training)

    importances = run_once(
        benchmark,
        lambda: permutation_importance(matcher, dataset, test, repeats=3, rng=rng),
    )
    print("\npermutation importance of Table I feature blocks (cameras @80%):")
    print(render_importance(importances))
    for item in importances:
        benchmark.extra_info[f"dF1_{item.block}"] = round(item.importance, 3)

    if not STRICT_SHAPE:
        return  # tiny smoke scale: execution only
    by_block = {item.block: item.importance for item in importances}
    # Every block must matter (the network uses the whole Table I).
    assert all(importance > 0.0 for importance in by_block.values())
    # Embedding blocks jointly out-weigh non-embedding blocks.
    embedding_total = by_block["instance_embedding"] + by_block["name_embedding"]
    classic_total = by_block["instance_meta"] + by_block["name_distances"]
    assert embedding_total > classic_total
