"""Extension C: property clustering from the similarity graph.

Section VI names "deriving clusters of equivalent properties from the
match results" as the planned next step.  This bench scores the three
implemented clustering strategies on the similarity graph produced by a
trained LEAPME matcher.  Expected shape: star / correlation clustering
trade a little recall for substantially better precision than raw
connected components (which chain matching errors together).
"""

from __future__ import annotations

import numpy as np
from conftest import STRICT_SHAPE, bench_dataset, bench_embeddings, run_once

from repro.core import LeapmeMatcher
from repro.data.pairs import build_pairs, sample_training_pairs
from repro.data.splits import split_sources
from repro.graph import (
    cluster_connected_components,
    cluster_correlation,
    cluster_star,
    clustering_metrics,
)

STRATEGIES = {
    "components": cluster_connected_components,
    "star": cluster_star,
    "correlation": cluster_correlation,
}


def test_bench_clustering_strategies(benchmark):
    dataset = bench_dataset("phones")
    embeddings = bench_embeddings("phones")
    rng = np.random.default_rng(0)
    split = split_sources(dataset, 0.8, rng)
    training = sample_training_pairs(
        build_pairs(dataset, list(split.train_sources), within=True), rng=rng
    )
    matcher = LeapmeMatcher(embeddings)
    matcher.fit(dataset, training)
    graph = matcher.match(dataset, build_pairs(dataset).pairs)

    def run():
        return {
            name: clustering_metrics(strategy(graph, 0.5), dataset)
            for name, strategy in STRATEGIES.items()
        }

    qualities = run_once(benchmark, run)
    print("\nproperty clustering from the LEAPME similarity graph (phones):")
    for name, quality in qualities.items():
        print(
            f"  {name:<12} P={quality.precision:.2f} "
            f"R={quality.recall:.2f} F1={quality.f1:.2f}"
        )
        benchmark.extra_info[f"f1_{name}"] = round(quality.f1, 3)

    if not STRICT_SHAPE:
        return  # tiny smoke scale: execution only
    # Error-chain splitting: the selective strategies must not be less
    # precise than connected components.
    assert qualities["star"].precision >= qualities["components"].precision - 0.02
    assert qualities["correlation"].precision >= qualities["components"].precision - 0.02
    # And everything should produce usable clusters.
    for name, quality in qualities.items():
        assert quality.f1 > 0.4, f"{name}: F1={quality.f1:.2f}"
