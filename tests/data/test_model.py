"""Tests for the core data model (Section III definitions)."""

import pytest

from repro.data.model import Dataset, PropertyInstance, PropertyRef
from repro.errors import DataError


def _instance(source, prop, entity, value):
    return PropertyInstance(source, prop, entity, value)


@pytest.fixture()
def dataset():
    instances = [
        _instance("s1", "resolution", "e1", "20 MP"),
        _instance("s1", "resolution", "e2", "24 MP"),
        _instance("s1", "weight", "e1", "500 g"),
        _instance("s2", "megapixels", "e3", "18"),
        _instance("s2", "mass", "e3", "600 grams"),
        _instance("s3", "pixels", "e4", "12 mp"),
        _instance("s3", "junk", "e4", "zzz"),
    ]
    alignment = {
        PropertyRef("s1", "resolution"): "resolution",
        PropertyRef("s2", "megapixels"): "resolution",
        PropertyRef("s3", "pixels"): "resolution",
        PropertyRef("s1", "weight"): "weight",
        PropertyRef("s2", "mass"): "weight",
    }
    return Dataset(name="test", instances=instances, alignment=alignment)


class TestAccessors:
    def test_sources_sorted(self, dataset):
        assert dataset.sources() == ["s1", "s2", "s3"]

    def test_properties_all(self, dataset):
        assert len(dataset.properties()) == 6

    def test_properties_per_source(self, dataset):
        assert dataset.properties("s1") == [
            PropertyRef("s1", "resolution"),
            PropertyRef("s1", "weight"),
        ]

    def test_schema_of(self, dataset):
        assert dataset.schema_of("s3") == ["junk", "pixels"]

    def test_entities(self, dataset):
        assert dataset.entities("s1") == ["e1", "e2"]
        assert len(dataset.entities()) == 4

    def test_values_of(self, dataset):
        assert dataset.values_of(PropertyRef("s1", "resolution")) == ["20 MP", "24 MP"]
        assert dataset.values_of(PropertyRef("nope", "nope")) == []

    def test_instance_ref(self):
        instance = _instance("s", "p", "e", "v")
        assert instance.ref == PropertyRef("s", "p")


class TestGroundTruth:
    def test_aligned_same_reference_match(self, dataset):
        assert dataset.is_match(
            PropertyRef("s1", "resolution"), PropertyRef("s2", "megapixels")
        )

    def test_different_reference_no_match(self, dataset):
        assert not dataset.is_match(
            PropertyRef("s1", "resolution"), PropertyRef("s2", "mass")
        )

    def test_same_source_never_matches(self, dataset):
        assert not dataset.is_match(
            PropertyRef("s1", "resolution"), PropertyRef("s1", "resolution")
        )

    def test_unaligned_matches_nothing(self, dataset):
        assert not dataset.is_match(
            PropertyRef("s3", "junk"), PropertyRef("s1", "resolution")
        )

    def test_matching_pairs_count(self, dataset):
        # resolution: 3 sources -> 3 pairs; weight: 2 sources -> 1 pair.
        assert len(dataset.matching_pairs()) == 4

    def test_matching_pairs_are_cross_source(self, dataset):
        for pair in dataset.matching_pairs():
            left, right = sorted(pair)
            assert left.source != right.source

    def test_reference_of(self, dataset):
        assert dataset.reference_of(PropertyRef("s3", "pixels")) == "resolution"
        assert dataset.reference_of(PropertyRef("s3", "junk")) is None


class TestValidation:
    def test_alignment_without_instances_rejected(self):
        with pytest.raises(DataError, match="no instances"):
            Dataset(
                name="bad",
                instances=[_instance("s1", "p", "e", "v")],
                alignment={PropertyRef("s1", "ghost"): "r"},
            )


class TestTransforms:
    def test_restrict_to_sources(self, dataset):
        restricted = dataset.restrict_to_sources(["s1", "s2"])
        assert restricted.sources() == ["s1", "s2"]
        assert len(restricted.matching_pairs()) == 2

    def test_restrict_unknown_source(self, dataset):
        with pytest.raises(DataError, match="unknown sources"):
            dataset.restrict_to_sources(["s1", "nope"])

    def test_cap_entities(self, dataset):
        capped = dataset.cap_entities_per_source(1)
        assert capped.entities("s1") == ["e1"]
        # e2's instances are gone; s1 still has its two properties via e1.
        assert len(capped.values_of(PropertyRef("s1", "resolution"))) == 1

    def test_cap_drops_empty_alignments(self):
        instances = [
            _instance("s1", "p", "e1", "v1"),
            _instance("s1", "q", "e2", "v2"),
            _instance("s2", "p2", "e9", "w"),
        ]
        alignment = {
            PropertyRef("s1", "p"): "r",
            PropertyRef("s1", "q"): "r2",
            PropertyRef("s2", "p2"): "r",
        }
        dataset = Dataset("x", instances, alignment)
        capped = dataset.cap_entities_per_source(1)
        # q only had e2 > cap, so it disappears from schema and alignment.
        assert PropertyRef("s1", "q") not in capped.alignment
        assert capped.schema_of("s1") == ["p"]

    def test_cap_invalid(self, dataset):
        with pytest.raises(DataError):
            dataset.cap_entities_per_source(0)
