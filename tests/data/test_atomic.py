"""Tests for the crash-safe write helpers and their use by persistence."""

import json

import numpy as np
import pytest

from repro.data.io import load_dataset_json, save_dataset_json
from repro.data.model import Dataset, PropertyInstance
from repro.ioutils import (
    atomic_path,
    atomic_save,
    atomic_write_bytes,
    atomic_write_text,
    fsync_append_line,
)


def _no_temp_leftovers(directory):
    return [p.name for p in directory.iterdir() if p.name.startswith(".")] == []


class TestAtomicWrite:
    def test_write_text_round_trip(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_text(target, '{"a": 1}')
        assert json.loads(target.read_text()) == {"a": 1}
        assert _no_temp_leftovers(tmp_path)

    def test_write_bytes_round_trip(self, tmp_path):
        target = tmp_path / "blob.bin"
        atomic_write_bytes(target, b"\x00\x01")
        assert target.read_bytes() == b"\x00\x01"

    def test_creates_parent_directories(self, tmp_path):
        target = tmp_path / "nested" / "deep" / "out.txt"
        atomic_write_text(target, "content")
        assert target.read_text() == "content"

    def test_failed_write_preserves_previous_content(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "original")
        with pytest.raises(RuntimeError):
            with atomic_path(target) as temp:
                temp.write_text("partial garbage")
                raise RuntimeError("simulated kill mid-write")
        assert target.read_text() == "original"
        assert _no_temp_leftovers(tmp_path)

    def test_atomic_save_with_npz_writer(self, tmp_path):
        target = tmp_path / "arrays.npz"
        atomic_save(
            target, lambda path: np.savez(path, x=np.arange(3)), suffix=".npz"
        )
        with np.load(target) as payload:
            np.testing.assert_array_equal(payload["x"], np.arange(3))
        assert _no_temp_leftovers(tmp_path)

    def test_append_line_appends_and_terminates(self, tmp_path):
        target = tmp_path / "log.jsonl"
        fsync_append_line(target, "one")
        fsync_append_line(target, "two\n")
        assert target.read_text() == "one\ntwo\n"

    def test_append_line_truncates_torn_tail(self, tmp_path):
        target = tmp_path / "log.jsonl"
        fsync_append_line(target, "one")
        target.write_text("one\ntw")  # kill mid-append: newline-less tail
        fsync_append_line(target, "three")
        assert target.read_text() == "one\nthree\n"

    def test_append_line_to_torn_only_line(self, tmp_path):
        target = tmp_path / "log.jsonl"
        target.write_text("tw")  # torn very first line, no newline at all
        fsync_append_line(target, "one")
        assert target.read_text() == "one\n"


class TestDatasetJsonAtomicity:
    def _dataset(self):
        return Dataset(
            name="demo",
            instances=[
                PropertyInstance(
                    source="a", property_name="p", entity_id="e", value="1"
                )
            ],
        )

    def test_round_trip(self, tmp_path):
        path = tmp_path / "dataset.json"
        save_dataset_json(self._dataset(), path)
        assert load_dataset_json(path).name == "demo"
        assert _no_temp_leftovers(tmp_path)

    def test_overwrite_is_all_or_nothing(self, tmp_path, monkeypatch):
        path = tmp_path / "dataset.json"
        save_dataset_json(self._dataset(), path)
        before = path.read_text()
        monkeypatch.setattr(
            "repro.data.io.dataset_to_dict",
            lambda dataset: (_ for _ in ()).throw(RuntimeError("mid-write kill")),
        )
        with pytest.raises(RuntimeError):
            save_dataset_json(self._dataset(), path)
        assert path.read_text() == before
