"""Tests for CSV dataset ingestion."""

import pytest

from repro.data.csvio import load_dataset_csv, save_dataset_csv
from repro.data.model import Dataset, PropertyInstance, PropertyRef
from repro.errors import DataError, TransientDataError


@pytest.fixture()
def dataset():
    instances = [
        PropertyInstance("shopA", "resolution", "e1", "20 mp"),
        PropertyInstance("shopB", "megapixels", "e2", "24, with \"quotes\""),
    ]
    alignment = {
        PropertyRef("shopA", "resolution"): "resolution",
        PropertyRef("shopB", "megapixels"): "resolution",
    }
    return Dataset("shop", instances, alignment)


class TestCsvRoundtrip:
    def test_roundtrip_with_alignment(self, dataset, tmp_path):
        instances_csv = tmp_path / "instances.csv"
        alignment_csv = tmp_path / "alignment.csv"
        save_dataset_csv(dataset, instances_csv, alignment_csv)
        loaded = load_dataset_csv(instances_csv, alignment_csv, name="shop")
        assert loaded.instances == dataset.instances
        assert loaded.alignment == dataset.alignment

    def test_roundtrip_without_alignment(self, dataset, tmp_path):
        instances_csv = tmp_path / "instances.csv"
        save_dataset_csv(dataset, instances_csv)
        loaded = load_dataset_csv(instances_csv)
        assert loaded.alignment == {}
        assert len(loaded.instances) == 2

    def test_name_defaults_to_stem(self, dataset, tmp_path):
        path = tmp_path / "myshop.csv"
        save_dataset_csv(dataset, path)
        assert load_dataset_csv(path).name == "myshop"

    def test_quoted_values_preserved(self, dataset, tmp_path):
        path = tmp_path / "instances.csv"
        save_dataset_csv(dataset, path)
        loaded = load_dataset_csv(path)
        assert loaded.instances[1].value == '24, with "quotes"'


class TestCsvValidation:
    def test_missing_file(self, tmp_path):
        with pytest.raises(DataError, match="not found"):
            load_dataset_csv(tmp_path / "nope.csv")

    def test_missing_columns(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("source,property\nA,p\n")
        with pytest.raises(DataError, match="missing required columns"):
            load_dataset_csv(path)

    def test_empty_cell_quarantined_with_line(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("source,property,entity,value\nA,p,e,v\nA,,e,v\n")
        loaded = load_dataset_csv(path)
        assert len(loaded.instances) == 1
        assert len(loaded.validation) == 1
        record = loaded.validation[0]
        assert record.line == 3
        assert record.source == "A"
        assert "property" in record.reason
        assert ":3" in record.describe()

    def test_short_row_quarantined(self, tmp_path):
        path = tmp_path / "short.csv"
        path.write_text("source,property,entity,value\nA,p,e,v\nB,p2\nA,p,e2,v2\n")
        loaded = load_dataset_csv(path)
        assert len(loaded.instances) == 2
        assert len(loaded.validation) == 1
        record = loaded.validation[0]
        assert record.line == 3
        assert record.source == "B"
        assert "short row" in record.reason

    def test_rows_dropped_counted_per_source(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "source,property,entity,value\n"
            "A,p,e,v\n"
            "A,,e,v\n"
            "B,p\n"
            "B,p,e,\n"
        )
        loaded = load_dataset_csv(path)
        assert loaded.rows_dropped() == {"A": 1, "B": 2}

    def test_clean_load_has_no_validation_records(self, dataset, tmp_path):
        path = tmp_path / "instances.csv"
        save_dataset_csv(dataset, path)
        loaded = load_dataset_csv(path)
        assert loaded.validation == ()
        assert loaded.rows_dropped() == {}

    def test_quarantine_reported_in_stats(self, tmp_path):
        from repro.data.stats import dataset_stats

        path = tmp_path / "bad.csv"
        path.write_text("source,property,entity,value\nA,p,e,v\nA,,e,v\n")
        stats = dataset_stats(load_dataset_csv(path))
        assert stats.n_rows_dropped == 1
        assert "quarantined" in stats.describe()

    def test_bad_alignment_rows_quarantined(self, tmp_path):
        instances = tmp_path / "instances.csv"
        instances.write_text("source,property,entity,value\nA,p,e,v\n")
        alignment = tmp_path / "alignment.csv"
        alignment.write_text("source,property,reference\nA,p,r\nA,p,\n")
        loaded = load_dataset_csv(instances, alignment)
        assert loaded.alignment == {PropertyRef("A", "p"): "r"}
        assert len(loaded.validation) == 1
        assert loaded.validation[0].path.endswith("alignment.csv")

    def test_alignment_quarantine_warns_loudly(self, tmp_path, caplog):
        # Alignment rows are ground truth: dropping one shifts
        # recall/F1, so the quarantine must log a warning, not just sit
        # in Dataset.validation.
        instances = tmp_path / "instances.csv"
        instances.write_text("source,property,entity,value\nA,p,e,v\n")
        alignment = tmp_path / "alignment.csv"
        alignment.write_text("source,property,reference\nA,p,r\nA,p,\n")
        with caplog.at_level("WARNING", logger="repro.data.csvio"):
            load_dataset_csv(instances, alignment)
        (warning,) = [
            r for r in caplog.records if "alignment" in r.getMessage()
        ]
        assert "1 malformed alignment row(s)" in warning.getMessage()
        assert "recall/F1" in warning.getMessage()

    def test_instance_quarantine_does_not_warn_about_alignment(
        self, tmp_path, caplog
    ):
        instances = tmp_path / "instances.csv"
        instances.write_text("source,property,entity,value\nA,p,e,v\nA,,e,v\n")
        alignment = tmp_path / "alignment.csv"
        alignment.write_text("source,property,reference\nA,p,r\n")
        with caplog.at_level("WARNING", logger="repro.data.csvio"):
            load_dataset_csv(instances, alignment)
        assert not [
            r for r in caplog.records if "alignment" in r.getMessage()
        ]

    def test_alignment_for_unknown_property_rejected(self, tmp_path):
        instances = tmp_path / "instances.csv"
        instances.write_text("source,property,entity,value\nA,p,e,v\n")
        alignment = tmp_path / "alignment.csv"
        alignment.write_text("source,property,reference\nA,ghost,r\n")
        with pytest.raises(DataError, match="no instances"):
            load_dataset_csv(instances, alignment)

    def test_empty_file_is_transient(self, tmp_path):
        # A zero-byte file is a state every file passes through while an
        # external writer produces it: retryable, not a verdict.
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(TransientDataError, match="empty"):
            load_dataset_csv(path)


class TestTransientVsPermanent:
    """Follow-mode retry vs. quarantine hinges on this split."""

    def test_transient_is_a_data_error(self):
        # Callers that do not care about the split keep catching
        # DataError; followers catch the subclass first.
        assert issubclass(TransientDataError, DataError)

    def test_missing_file_is_permanent(self, tmp_path):
        with pytest.raises(DataError) as excinfo:
            load_dataset_csv(tmp_path / "nope.csv")
        assert not isinstance(excinfo.value, TransientDataError)

    def test_missing_columns_is_permanent(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("wrong,header\nso,what\n")
        with pytest.raises(DataError) as excinfo:
            load_dataset_csv(path)
        assert not isinstance(excinfo.value, TransientDataError)

    def test_headerless_whitespace_file_is_transient(self, tmp_path):
        path = tmp_path / "blank.csv"
        path.write_text("\n\n")
        with pytest.raises(TransientDataError):
            load_dataset_csv(path)
