"""Tests for pair generation, negative sampling and source splits."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.model import Dataset, PropertyInstance, PropertyRef
from repro.data.pairs import build_pairs, sample_training_pairs
from repro.data.splits import repeated_source_splits, split_sources
from repro.errors import ConfigurationError


def _dataset(n_sources=4, props_per_source=3):
    """Synthetic dataset where property p<i> of every source aligns to r<i>."""
    instances = []
    alignment = {}
    for s in range(n_sources):
        source = f"s{s}"
        for p in range(props_per_source):
            name = f"p{p}"
            instances.append(PropertyInstance(source, name, f"e{s}", f"v{p}"))
            alignment[PropertyRef(source, name)] = f"r{p}"
    return Dataset("synthetic", instances, alignment)


class TestBuildPairs:
    def test_all_pairs_cross_source(self):
        pairs = build_pairs(_dataset())
        for pair in pairs:
            assert pair.left.source != pair.right.source

    def test_pair_count(self):
        # 4 sources x 3 props = 12 properties; cross-source pairs:
        # C(12,2) - 4*C(3,2) = 66 - 12 = 54.
        assert len(build_pairs(_dataset())) == 54

    def test_labels_match_ground_truth(self):
        dataset = _dataset()
        for pair in build_pairs(dataset):
            assert pair.label == dataset.is_match(pair.left, pair.right)

    def test_within_restricts_to_both_inside(self):
        dataset = _dataset()
        pairs = build_pairs(dataset, ["s0", "s1"], within=True)
        for pair in pairs:
            assert {pair.left.source, pair.right.source} <= {"s0", "s1"}

    def test_outside_is_complement(self):
        dataset = _dataset()
        inside = build_pairs(dataset, ["s0", "s1"], within=True)
        outside = build_pairs(dataset, ["s0", "s1"], within=False)
        assert len(inside) + len(outside) == len(build_pairs(dataset))
        inside_keys = {pair.key for pair in inside}
        assert all(pair.key not in inside_keys for pair in outside)

    def test_unknown_source_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown sources"):
            build_pairs(_dataset(), ["nope"])

    def test_no_duplicate_pairs(self):
        pairs = build_pairs(_dataset())
        keys = [pair.key for pair in pairs]
        assert len(keys) == len(set(keys))


class TestNegativeSampling:
    def test_ratio_respected(self, rng):
        candidates = build_pairs(_dataset(n_sources=5))
        sampled = sample_training_pairs(candidates, negative_ratio=2.0, rng=rng)
        positives = len(sampled.positives())
        negatives = len(sampled.negatives())
        assert negatives == 2 * positives

    def test_all_positives_kept(self, rng):
        candidates = build_pairs(_dataset())
        sampled = sample_training_pairs(candidates, negative_ratio=1.0, rng=rng)
        assert len(sampled.positives()) == len(candidates.positives())

    def test_insufficient_negatives_keeps_all(self, rng):
        candidates = build_pairs(_dataset(n_sources=2))
        sampled = sample_training_pairs(candidates, negative_ratio=100.0, rng=rng)
        assert len(sampled.negatives()) == len(candidates.negatives())

    def test_shuffled(self, rng):
        candidates = build_pairs(_dataset(n_sources=6))
        sampled = sample_training_pairs(candidates, rng=rng)
        labels = sampled.labels()
        # Positives must not all be at the front.
        first_block = labels[: len(sampled.positives())]
        assert first_block.sum() < len(sampled.positives())

    def test_deterministic_under_seed(self):
        candidates = build_pairs(_dataset(n_sources=5))
        one = sample_training_pairs(candidates, rng=np.random.default_rng(3))
        two = sample_training_pairs(candidates, rng=np.random.default_rng(3))
        assert [p.key for p in one] == [p.key for p in two]

    def test_negative_ratio_validation(self, rng):
        with pytest.raises(ConfigurationError):
            sample_training_pairs(build_pairs(_dataset()), negative_ratio=-1, rng=rng)

    def test_pairset_refs(self):
        pairs = build_pairs(_dataset(n_sources=2))
        refs = pairs.refs()
        assert len(refs) == 6
        assert refs == sorted(refs)


class TestSplits:
    def test_partition_complete_and_disjoint(self, rng):
        dataset = _dataset(n_sources=10)
        split = split_sources(dataset, 0.4, rng)
        assert sorted(split.train_sources + split.test_sources) == dataset.sources()
        assert not set(split.train_sources) & set(split.test_sources)

    def test_fraction_respected(self, rng):
        dataset = _dataset(n_sources=10)
        split = split_sources(dataset, 0.4, rng)
        assert len(split.train_sources) == 4

    def test_small_fraction_clamps_to_two_train_sources(self, rng):
        dataset = _dataset(n_sources=10)
        split = split_sources(dataset, 0.05, rng)
        assert len(split.train_sources) == 2

    def test_large_fraction_keeps_one_test_source(self, rng):
        dataset = _dataset(n_sources=5)
        split = split_sources(dataset, 0.99, rng)
        assert len(split.test_sources) >= 1

    def test_single_source_rejected(self, rng):
        with pytest.raises(ConfigurationError, match="need >= 2"):
            split_sources(_dataset(n_sources=1), 0.5, rng)

    @given(fraction=st.floats(min_value=0.01, max_value=0.99))
    @settings(max_examples=25, deadline=None)
    def test_any_fraction_yields_valid_split(self, fraction):
        dataset = _dataset(n_sources=8)
        split = split_sources(dataset, fraction, np.random.default_rng(0))
        assert len(split.train_sources) >= 2
        assert len(split.test_sources) >= 1

    def test_invalid_fraction(self, rng):
        with pytest.raises(ConfigurationError):
            split_sources(_dataset(), 0.0, rng)
        with pytest.raises(ConfigurationError):
            split_sources(_dataset(), 1.0, rng)

    def test_repeated_splits_differ(self):
        dataset = _dataset(n_sources=10)
        splits = list(repeated_source_splits(dataset, 0.5, repetitions=10, seed=0))
        assert len(splits) == 10
        assert len({split.train_sources for split in splits}) > 1

    def test_repeated_splits_deterministic(self):
        dataset = _dataset(n_sources=10)
        one = [s.train_sources for s in repeated_source_splits(dataset, 0.5, 5, seed=1)]
        two = [s.train_sources for s in repeated_source_splits(dataset, 0.5, 5, seed=1)]
        assert one == two
