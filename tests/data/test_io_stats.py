"""Tests for dataset JSON persistence and statistics."""

import json

import pytest

from repro.data.io import dataset_from_dict, dataset_to_dict, load_dataset_json, save_dataset_json
from repro.data.model import Dataset, PropertyInstance, PropertyRef
from repro.data.stats import dataset_stats
from repro.errors import DataError


@pytest.fixture()
def dataset():
    instances = [
        PropertyInstance("s1", "p", "e1", "v1"),
        PropertyInstance("s1", "p", "e2", "v2"),
        PropertyInstance("s2", "q", "e3", "v3"),
    ]
    alignment = {
        PropertyRef("s1", "p"): "r",
        PropertyRef("s2", "q"): "r",
    }
    return Dataset("demo", instances, alignment)


class TestIo:
    def test_roundtrip(self, dataset, tmp_path):
        path = tmp_path / "dataset.json"
        save_dataset_json(dataset, path)
        loaded = load_dataset_json(path)
        assert loaded.name == dataset.name
        assert loaded.instances == dataset.instances
        assert loaded.alignment == dataset.alignment

    def test_dict_roundtrip(self, dataset):
        assert dataset_from_dict(dataset_to_dict(dataset)).alignment == dataset.alignment

    def test_missing_file(self, tmp_path):
        with pytest.raises(DataError, match="not found"):
            load_dataset_json(tmp_path / "nope.json")

    def test_bad_version(self, dataset):
        payload = dataset_to_dict(dataset)
        payload["version"] = 99
        with pytest.raises(DataError, match="version"):
            dataset_from_dict(payload)

    def test_missing_key(self, dataset):
        payload = dataset_to_dict(dataset)
        del payload["instances"][0]["value"]
        with pytest.raises(DataError, match="missing key"):
            dataset_from_dict(payload)

    def test_file_is_valid_json(self, dataset, tmp_path):
        path = tmp_path / "dataset.json"
        save_dataset_json(dataset, path)
        payload = json.loads(path.read_text())
        assert payload["name"] == "demo"


class TestStats:
    def test_counts(self, dataset):
        stats = dataset_stats(dataset)
        assert stats.n_sources == 2
        assert stats.n_entities == 3
        assert stats.n_properties == 2
        assert stats.n_instances == 3
        assert stats.n_matching_pairs == 1
        assert stats.n_reference_properties == 1

    def test_balance(self, dataset):
        stats = dataset_stats(dataset)
        assert stats.min_entities_per_source == 1
        assert stats.max_entities_per_source == 2
        assert stats.entity_balance == 0.5

    def test_describe_mentions_name(self, dataset):
        assert "demo" in dataset_stats(dataset).describe()
