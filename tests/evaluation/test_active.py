"""Tests for the active-learning harness."""

import numpy as np
import pytest

from repro.core import LeapmeConfig, LeapmeMatcher
from repro.data.pairs import build_pairs
from repro.data.splits import split_sources
from repro.errors import ConfigurationError
from repro.evaluation.active import ActiveLearningCurve, run_active_learning
from repro.nn.schedule import TrainingSchedule

FAST = LeapmeConfig(
    hidden_sizes=(24,),
    schedule=TrainingSchedule.constant(6, 1e-3),
)


@pytest.fixture()
def setup(tiny_headphones, tiny_embeddings, rng):
    split = split_sources(tiny_headphones, 0.6, rng)
    pool = build_pairs(tiny_headphones, list(split.train_sources), within=True)
    evaluation = build_pairs(tiny_headphones, list(split.train_sources), within=False)
    matcher = LeapmeMatcher(tiny_embeddings, config=FAST)
    return tiny_headphones, matcher, pool, evaluation


class TestRunActiveLearning:
    def test_curve_structure(self, setup, rng):
        dataset, matcher, pool, evaluation = setup
        curve = run_active_learning(
            matcher, dataset, pool, evaluation,
            budgets=[10, 30], strategy="random", rng=rng,
        )
        assert curve.budgets == (10, 30)
        assert len(curve.f1_scores) == 2
        assert all(0.0 <= f1 <= 1.0 for f1 in curve.f1_scores)

    def test_uncertainty_runs(self, setup, rng):
        dataset, matcher, pool, evaluation = setup
        curve = run_active_learning(
            matcher, dataset, pool, evaluation,
            budgets=[10, 30], strategy="uncertainty", rng=rng,
        )
        assert curve.strategy == "uncertainty"
        assert curve.final_f1() >= 0.0

    def test_budget_exceeding_pool_is_capped(self, setup, rng):
        dataset, matcher, pool, evaluation = setup
        curve = run_active_learning(
            matcher, dataset, pool, evaluation,
            budgets=[10, 10_000], strategy="random", rng=rng,
        )
        assert len(curve.f1_scores) == 2

    def test_more_labels_do_not_hurt_much(self, setup, rng):
        dataset, matcher, pool, evaluation = setup
        curve = run_active_learning(
            matcher, dataset, pool, evaluation,
            budgets=[10, 60], strategy="random", rng=rng,
        )
        assert curve.f1_scores[1] >= curve.f1_scores[0] - 0.25

    def test_invalid_strategy(self, setup, rng):
        dataset, matcher, pool, evaluation = setup
        with pytest.raises(ConfigurationError, match="unknown strategy"):
            run_active_learning(
                matcher, dataset, pool, evaluation, budgets=[10], strategy="magic"
            )

    def test_invalid_budgets(self, setup, rng):
        dataset, matcher, pool, evaluation = setup
        with pytest.raises(ConfigurationError):
            run_active_learning(
                matcher, dataset, pool, evaluation, budgets=[30, 10]
            )
        with pytest.raises(ConfigurationError):
            run_active_learning(
                matcher, dataset, pool, evaluation, budgets=[2], seed_size=10
            )

    def test_describe(self):
        curve = ActiveLearningCurve("random", (10, 20), (0.5, 0.6))
        assert "random" in curve.describe()
        assert curve.final_f1() == 0.6
