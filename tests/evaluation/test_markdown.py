"""Tests for markdown result rendering."""

import pytest

from repro.evaluation.markdown import results_to_markdown, summary_to_markdown
from repro.evaluation.runner import ExperimentResult, RunSettings
from repro.metrics import MatchQuality


def _result(system, dataset, fraction, f1_counts=(80, 20, 20)):
    tp, fp, fn = f1_counts
    return ExperimentResult(
        matcher_name=system,
        dataset_name=dataset,
        settings=RunSettings(train_fraction=fraction),
        qualities=[MatchQuality(tp, fp, fn)],
    )


@pytest.fixture()
def results():
    return [
        _result("LEAPME", "cameras", 0.8, (90, 5, 5)),
        _result("AML", "cameras", 0.8, (40, 5, 55)),
        _result("LEAPME", "cameras", 0.2, (70, 20, 30)),
    ]


class TestResultsToMarkdown:
    def test_structure(self, results):
        text = results_to_markdown(results, caption="Table II")
        lines = text.splitlines()
        assert lines[0] == "**Table II**"
        assert lines[2].startswith("| dataset | train % | LEAPME | AML |")
        assert lines[3].count("---") == 4

    def test_best_f1_bolded(self, results):
        text = results_to_markdown(results)
        row_80 = next(line for line in text.splitlines() if "80%" in line)
        assert "**" in row_80
        assert row_80.index("0.95") > 0  # LEAPME precision present

    def test_missing_cell_dashed(self, results):
        text = results_to_markdown(results, systems=["LEAPME", "AML", "ghost"])
        row_20 = next(line for line in text.splitlines() if "20%" in line)
        assert "–" in row_20

    def test_no_bold_option(self, results):
        text = results_to_markdown(results, bold_best=False)
        assert "**" not in text

    def test_rows_sorted(self, results):
        text = results_to_markdown(results)
        body = [line for line in text.splitlines() if line.startswith("| cameras")]
        assert "20%" in body[0] and "80%" in body[1]


class TestSummaryToMarkdown:
    def test_bullets(self, results):
        text = summary_to_markdown(results)
        assert text.count("\n") == 2
        assert "`LEAPME` on **cameras**" in text
        assert "±" in text
