"""Unit tests for the pool supervisor's failure model.

These exercise :class:`PoolSupervisor` against *real* worker processes
dying in real ways -- ``os._exit`` mid-task, hangs past the deadline --
with plain integers as items and file flags as one-shot fault budgets
(a flag survives the worker's death, unlike in-process state).  Worker
functions live at module level so the executor can pickle them.
"""

import functools
import multiprocessing
import os
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from queue import Empty

import pytest

from repro.errors import ConfigurationError, GridInterrupted
from repro.evaluation.checkpoint import REASON_TIMEOUT, REASON_WORKER_CRASH
from repro.evaluation.supervisor import PoolSupervisor, SupervisorPolicy


def _ok(item):
    return f"ok-{item}"


def _crash_if_flagged(item, flag_dir):
    """Die hard (``os._exit``) once per ``crash-<item>`` flag file."""
    flag = Path(flag_dir) / f"crash-{item}"
    if flag.exists():
        flag.unlink()
        os._exit(23)
    return f"ok-{item}"


def _hang_if_flagged(item, flag_dir):
    """Hang far past any test deadline, once per ``hang-<item>`` flag."""
    flag = Path(flag_dir) / f"hang-{item}"
    if flag.exists():
        flag.unlink()
        time.sleep(600)
    return f"ok-{item}"


def _poison(item, victim):
    """``victim`` kills its worker every single time it runs."""
    if item == victim:
        os._exit(23)
    return f"ok-{item}"


def _always_hang(item, victim):
    if item == victim:
        time.sleep(600)
    return f"ok-{item}"


def _always_crash(item):
    os._exit(23)


def _raise_value_error(item, victim):
    if item == victim:
        raise ValueError(f"work function failed on {item}")
    return f"ok-{item}"


def _hang_or_raise(item):
    """Item 0 hangs forever; everything else raises a work error."""
    if item == 0:
        time.sleep(600)
    raise ValueError(f"work function failed on {item}")


# Start-report channel for the reported-starts deadline test: the queue
# reaches workers through the pool initializer (multiprocessing queues
# cannot travel through submit() arguments).
_START_CHANNEL = None


def _init_start_channel(channel):
    global _START_CHANNEL
    _START_CHANNEL = channel


def _report_then_maybe_hang(item, victim):
    _START_CHANNEL.put(item)
    if item == victim:
        time.sleep(600)
    return f"ok-{item}"


class _FakePool:
    """Pool stand-in for submit-time failure tests (no real processes)."""

    def shutdown(self, wait=True, cancel_futures=False):
        pass


FAST = dict(backoff_base=0.01, backoff_cap=0.05, watchdog_interval=0.02)


def _supervise(items, worker, *, window=2, policy=None, stop=None):
    completed = {}
    supervisor = PoolSupervisor(
        items,
        make_pool=lambda: ProcessPoolExecutor(
            max_workers=window, mp_context=multiprocessing.get_context("fork")
        ),
        submit=lambda pool, item: pool.submit(worker, item),
        on_complete=completed.__setitem__,
        quarantine_outcome=lambda item, reason, faults: (
            "quarantined",
            reason,
            faults,
        ),
        run_serial=lambda item: f"serial-{item}",
        window=window,
        policy=policy if policy is not None else SupervisorPolicy(**FAST),
        stop=stop,
    )
    supervisor.run()
    return supervisor, completed


class TestHealthyPool:
    def test_all_items_complete_once(self):
        supervisor, completed = _supervise(list(range(6)), _ok)
        assert completed == {i: f"ok-{i}" for i in range(6)}
        assert supervisor.respawns == 0
        assert supervisor.crashes == 0
        assert supervisor.quarantined == []
        assert not supervisor.degraded_to_serial

    def test_empty_item_list_is_a_noop(self):
        supervisor, completed = _supervise([], _ok)
        assert completed == {}

    def test_duplicate_items_rejected(self):
        with pytest.raises(ConfigurationError, match="unique"):
            _supervise([1, 1], _ok)

    def test_window_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="window"):
            _supervise([1], _ok, window=0)


class TestCrashRecovery:
    def test_single_worker_death_is_absorbed(self, tmp_path):
        (tmp_path / "crash-2").touch()
        worker = functools.partial(_crash_if_flagged, flag_dir=str(tmp_path))
        supervisor, completed = _supervise(list(range(5)), worker)
        assert completed == {i: f"ok-{i}" for i in range(5)}
        assert supervisor.crashes >= 1
        assert supervisor.respawns >= 1
        assert supervisor.quarantined == []

    def test_poison_item_is_quarantined_not_retried_forever(self):
        worker = functools.partial(_poison, victim=1)
        supervisor, completed = _supervise(list(range(4)), worker)
        assert completed[1] == ("quarantined", REASON_WORKER_CRASH, 2)
        for item in (0, 2, 3):
            assert completed[item] == f"ok-{item}"
        (record,) = supervisor.quarantined
        assert record.item == 1
        assert record.reason == REASON_WORKER_CRASH
        assert record.faults == 2

    def test_innocent_covictims_accumulate_no_strikes(self, tmp_path):
        # Items co-flighted with the crash are re-dispatched via solo
        # probes; every innocent item must still complete normally.
        (tmp_path / "crash-0").touch()
        worker = functools.partial(_crash_if_flagged, flag_dir=str(tmp_path))
        supervisor, completed = _supervise(list(range(4)), worker, window=4)
        assert completed == {i: f"ok-{i}" for i in range(4)}
        assert supervisor.quarantined == []


class TestSubmitTimeBreaks:
    """The pool breaking *inside submit()* must lose and blame nothing."""

    def test_submit_time_pool_break_loses_no_items(self):
        completed = {}
        submits = []

        def submit(pool, item):
            submits.append(item)
            if len(submits) == 1:
                raise BrokenProcessPool("pool broke at submit time")
            future = Future()
            future.set_result(f"ok-{item}")
            return future

        supervisor = PoolSupervisor(
            [0, 1, 2],
            make_pool=_FakePool,
            submit=submit,
            on_complete=completed.__setitem__,
            quarantine_outcome=lambda item, reason, faults: None,
            run_serial=lambda item: f"serial-{item}",
            window=2,
            policy=SupervisorPolicy(**FAST),
        )
        supervisor.run()
        # The item whose submission broke the pool is still dispatched
        # on the next generation -- nothing silently disappears.
        assert completed == {i: f"ok-{i}" for i in range(3)}
        assert supervisor.quarantined == []

    def test_probe_submit_break_is_not_a_strike(self):
        # Crash both co-flight items (futures resolve to
        # BrokenProcessPool), then break the pool again at the *probe
        # submission*.  The probed item never ran, so with a one-strike
        # quarantine policy it must still complete, unblamed, on the
        # next generation.
        completed = {}
        submits = []

        def submit(pool, item):
            submits.append(item)
            future = Future()
            if len(submits) <= 2:
                future.set_exception(BrokenProcessPool("worker died"))
            elif len(submits) == 3:
                raise BrokenProcessPool("pool broke at probe submit")
            else:
                future.set_result(f"ok-{item}")
            return future

        supervisor = PoolSupervisor(
            [0, 1],
            make_pool=_FakePool,
            submit=submit,
            on_complete=completed.__setitem__,
            quarantine_outcome=lambda item, reason, faults: (
                "quarantined",
                reason,
                faults,
            ),
            run_serial=lambda item: f"serial-{item}",
            window=2,
            policy=SupervisorPolicy(max_item_faults=1, **FAST),
        )
        supervisor.run()
        assert completed == {0: "ok-0", 1: "ok-1"}
        assert supervisor.quarantined == []


class TestDeadlines:
    def test_hung_item_is_killed_and_retried(self, tmp_path):
        (tmp_path / "hang-1").touch()
        worker = functools.partial(_hang_if_flagged, flag_dir=str(tmp_path))
        policy = SupervisorPolicy(cell_timeout=0.5, **FAST)
        supervisor, completed = _supervise(
            list(range(4)), worker, policy=policy
        )
        assert completed == {i: f"ok-{i}" for i in range(4)}
        assert supervisor.timeouts >= 1
        assert supervisor.quarantined == []

    def test_always_hanging_item_quarantined_as_timeout(self):
        worker = functools.partial(_always_hang, victim=0)
        policy = SupervisorPolicy(cell_timeout=0.3, max_item_faults=1, **FAST)
        supervisor, completed = _supervise(
            list(range(3)), worker, policy=policy
        )
        assert completed[0] == ("quarantined", REASON_TIMEOUT, 1)
        assert completed[1] == "ok-1"
        assert completed[2] == "ok-2"
        (record,) = supervisor.quarantined
        assert record.reason == REASON_TIMEOUT

    def test_deadline_uses_worker_reported_starts(self):
        # With a poll_started channel, the deadline clock starts at the
        # worker's own report, not the executor's RUNNING transition --
        # the hanging item still trips the watchdog, and only it.
        context = multiprocessing.get_context("fork")
        channel = context.Queue()

        def poll_started():
            started = []
            while True:
                try:
                    started.append(channel.get_nowait())
                except Empty:
                    break
            return started

        completed = {}
        supervisor = PoolSupervisor(
            [0, 1, 2],
            make_pool=lambda: ProcessPoolExecutor(
                max_workers=2,
                mp_context=context,
                initializer=_init_start_channel,
                initargs=(channel,),
            ),
            submit=lambda pool, item: pool.submit(
                _report_then_maybe_hang, item, 0
            ),
            on_complete=completed.__setitem__,
            quarantine_outcome=lambda item, reason, faults: (
                "quarantined",
                reason,
                faults,
            ),
            run_serial=lambda item: f"serial-{item}",
            window=2,
            policy=SupervisorPolicy(
                cell_timeout=0.4, max_item_faults=1, **FAST
            ),
            poll_started=poll_started,
        )
        supervisor.run()
        assert completed[0] == ("quarantined", REASON_TIMEOUT, 1)
        assert completed[1] == "ok-1"
        assert completed[2] == "ok-2"
        assert supervisor.timeouts >= 1


class TestSerialDegradation:
    def test_exhausted_respawns_fall_back_to_serial(self):
        policy = SupervisorPolicy(max_pool_respawns=0, **FAST)
        supervisor, completed = _supervise(
            list(range(4)), _always_crash, policy=policy
        )
        assert supervisor.degraded_to_serial
        assert completed == {i: f"serial-{i}" for i in range(4)}
        assert supervisor.respawns == 0


class TestShutdown:
    def test_preset_stop_raises_grid_interrupted(self):
        stop = threading.Event()
        stop.set()
        with pytest.raises(GridInterrupted):
            _supervise(list(range(4)), _ok, stop=stop)

    def test_stop_during_serial_degradation_interrupts(self):
        stop = threading.Event()
        completed = {}

        def serial(item):
            stop.set()  # first serial item pulls the plug
            return f"serial-{item}"

        supervisor = PoolSupervisor(
            list(range(4)),
            make_pool=lambda: ProcessPoolExecutor(
                max_workers=2, mp_context=multiprocessing.get_context("fork")
            ),
            submit=lambda pool, item: pool.submit(_always_crash, item),
            on_complete=completed.__setitem__,
            quarantine_outcome=lambda item, reason, faults: None,
            run_serial=serial,
            window=2,
            policy=SupervisorPolicy(max_pool_respawns=0, **FAST),
            stop=stop,
        )
        with pytest.raises(GridInterrupted):
            supervisor.run()
        assert len(completed) < 4


class TestWorkFunctionErrors:
    def test_work_exception_propagates_after_settling(self):
        worker = functools.partial(_raise_value_error, victim=2)
        with pytest.raises(ValueError, match="failed on 2"):
            _supervise(list(range(5)), worker)

    def test_work_exception_with_hung_sibling_does_not_deadlock(self):
        # Settling must never wait on cell_timeout (None = forever):
        # with item 0 hung and item 1 raising, the error has to surface
        # within the shutdown grace, not block behind the hang.
        started = time.monotonic()
        with pytest.raises(ValueError, match="failed on 1"):
            _supervise([0, 1], _hang_or_raise)
        assert time.monotonic() - started < 30.0


class TestPolicy:
    def test_respawn_delay_is_capped_exponential(self):
        policy = SupervisorPolicy(backoff_base=0.05, backoff_cap=0.4)
        assert policy.respawn_delay(1) == pytest.approx(0.05)
        assert policy.respawn_delay(2) == pytest.approx(0.1)
        assert policy.respawn_delay(3) == pytest.approx(0.2)
        assert policy.respawn_delay(4) == pytest.approx(0.4)
        assert policy.respawn_delay(10) == pytest.approx(0.4)

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ConfigurationError):
            SupervisorPolicy(cell_timeout=0.0)
        with pytest.raises(ConfigurationError):
            SupervisorPolicy(max_pool_respawns=-1)
        with pytest.raises(ConfigurationError):
            SupervisorPolicy(max_item_faults=0)
        with pytest.raises(ConfigurationError):
            SupervisorPolicy(watchdog_interval=0.0)
        with pytest.raises(ConfigurationError):
            SupervisorPolicy(shutdown_grace=-0.1)

    def test_backoff_sleeps_use_injected_clock(self, tmp_path):
        # One real crash, with a measurable backoff routed through the
        # injected sleep -- the run must not actually wait.
        (tmp_path / "crash-0").touch()
        worker = functools.partial(_crash_if_flagged, flag_dir=str(tmp_path))
        slept = []
        supervisor = PoolSupervisor(
            [0],
            make_pool=lambda: ProcessPoolExecutor(
                max_workers=1, mp_context=multiprocessing.get_context("fork")
            ),
            submit=lambda pool, item: pool.submit(worker, item),
            on_complete=lambda item, outcome: None,
            quarantine_outcome=lambda item, reason, faults: None,
            run_serial=lambda item: None,
            window=1,
            policy=SupervisorPolicy(
                backoff_base=0.5, backoff_cap=8.0, watchdog_interval=0.02
            ),
            sleep=slept.append,
        )
        supervisor.run()
        assert slept[0] == pytest.approx(0.5)
