"""Unit tests for the pool supervisor's failure model.

These exercise :class:`PoolSupervisor` against *real* worker processes
dying in real ways -- ``os._exit`` mid-task, hangs past the deadline --
with plain integers as items and file flags as one-shot fault budgets
(a flag survives the worker's death, unlike in-process state).  Worker
functions live at module level so the executor can pickle them.
"""

import functools
import multiprocessing
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

import pytest

from repro.errors import ConfigurationError, GridInterrupted
from repro.evaluation.checkpoint import REASON_TIMEOUT, REASON_WORKER_CRASH
from repro.evaluation.supervisor import PoolSupervisor, SupervisorPolicy


def _ok(item):
    return f"ok-{item}"


def _crash_if_flagged(item, flag_dir):
    """Die hard (``os._exit``) once per ``crash-<item>`` flag file."""
    flag = Path(flag_dir) / f"crash-{item}"
    if flag.exists():
        flag.unlink()
        os._exit(23)
    return f"ok-{item}"


def _hang_if_flagged(item, flag_dir):
    """Hang far past any test deadline, once per ``hang-<item>`` flag."""
    flag = Path(flag_dir) / f"hang-{item}"
    if flag.exists():
        flag.unlink()
        time.sleep(600)
    return f"ok-{item}"


def _poison(item, victim):
    """``victim`` kills its worker every single time it runs."""
    if item == victim:
        os._exit(23)
    return f"ok-{item}"


def _always_hang(item, victim):
    if item == victim:
        time.sleep(600)
    return f"ok-{item}"


def _always_crash(item):
    os._exit(23)


def _raise_value_error(item, victim):
    if item == victim:
        raise ValueError(f"work function failed on {item}")
    return f"ok-{item}"


FAST = dict(backoff_base=0.01, backoff_cap=0.05, watchdog_interval=0.02)


def _supervise(items, worker, *, window=2, policy=None, stop=None):
    completed = {}
    supervisor = PoolSupervisor(
        items,
        make_pool=lambda: ProcessPoolExecutor(
            max_workers=window, mp_context=multiprocessing.get_context("fork")
        ),
        submit=lambda pool, item: pool.submit(worker, item),
        on_complete=completed.__setitem__,
        quarantine_outcome=lambda item, reason, faults: (
            "quarantined",
            reason,
            faults,
        ),
        run_serial=lambda item: f"serial-{item}",
        window=window,
        policy=policy if policy is not None else SupervisorPolicy(**FAST),
        stop=stop,
    )
    supervisor.run()
    return supervisor, completed


class TestHealthyPool:
    def test_all_items_complete_once(self):
        supervisor, completed = _supervise(list(range(6)), _ok)
        assert completed == {i: f"ok-{i}" for i in range(6)}
        assert supervisor.respawns == 0
        assert supervisor.crashes == 0
        assert supervisor.quarantined == []
        assert not supervisor.degraded_to_serial

    def test_empty_item_list_is_a_noop(self):
        supervisor, completed = _supervise([], _ok)
        assert completed == {}

    def test_duplicate_items_rejected(self):
        with pytest.raises(ConfigurationError, match="unique"):
            _supervise([1, 1], _ok)

    def test_window_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="window"):
            _supervise([1], _ok, window=0)


class TestCrashRecovery:
    def test_single_worker_death_is_absorbed(self, tmp_path):
        (tmp_path / "crash-2").touch()
        worker = functools.partial(_crash_if_flagged, flag_dir=str(tmp_path))
        supervisor, completed = _supervise(list(range(5)), worker)
        assert completed == {i: f"ok-{i}" for i in range(5)}
        assert supervisor.crashes >= 1
        assert supervisor.respawns >= 1
        assert supervisor.quarantined == []

    def test_poison_item_is_quarantined_not_retried_forever(self):
        worker = functools.partial(_poison, victim=1)
        supervisor, completed = _supervise(list(range(4)), worker)
        assert completed[1] == ("quarantined", REASON_WORKER_CRASH, 2)
        for item in (0, 2, 3):
            assert completed[item] == f"ok-{item}"
        (record,) = supervisor.quarantined
        assert record.item == 1
        assert record.reason == REASON_WORKER_CRASH
        assert record.faults == 2

    def test_innocent_covictims_accumulate_no_strikes(self, tmp_path):
        # Items co-flighted with the crash are re-dispatched via solo
        # probes; every innocent item must still complete normally.
        (tmp_path / "crash-0").touch()
        worker = functools.partial(_crash_if_flagged, flag_dir=str(tmp_path))
        supervisor, completed = _supervise(list(range(4)), worker, window=4)
        assert completed == {i: f"ok-{i}" for i in range(4)}
        assert supervisor.quarantined == []


class TestDeadlines:
    def test_hung_item_is_killed_and_retried(self, tmp_path):
        (tmp_path / "hang-1").touch()
        worker = functools.partial(_hang_if_flagged, flag_dir=str(tmp_path))
        policy = SupervisorPolicy(cell_timeout=0.5, **FAST)
        supervisor, completed = _supervise(
            list(range(4)), worker, policy=policy
        )
        assert completed == {i: f"ok-{i}" for i in range(4)}
        assert supervisor.timeouts >= 1
        assert supervisor.quarantined == []

    def test_always_hanging_item_quarantined_as_timeout(self):
        worker = functools.partial(_always_hang, victim=0)
        policy = SupervisorPolicy(cell_timeout=0.3, max_item_faults=1, **FAST)
        supervisor, completed = _supervise(
            list(range(3)), worker, policy=policy
        )
        assert completed[0] == ("quarantined", REASON_TIMEOUT, 1)
        assert completed[1] == "ok-1"
        assert completed[2] == "ok-2"
        (record,) = supervisor.quarantined
        assert record.reason == REASON_TIMEOUT


class TestSerialDegradation:
    def test_exhausted_respawns_fall_back_to_serial(self):
        policy = SupervisorPolicy(max_pool_respawns=0, **FAST)
        supervisor, completed = _supervise(
            list(range(4)), _always_crash, policy=policy
        )
        assert supervisor.degraded_to_serial
        assert completed == {i: f"serial-{i}" for i in range(4)}
        assert supervisor.respawns == 0


class TestShutdown:
    def test_preset_stop_raises_grid_interrupted(self):
        stop = threading.Event()
        stop.set()
        with pytest.raises(GridInterrupted):
            _supervise(list(range(4)), _ok, stop=stop)

    def test_stop_during_serial_degradation_interrupts(self):
        stop = threading.Event()
        completed = {}

        def serial(item):
            stop.set()  # first serial item pulls the plug
            return f"serial-{item}"

        supervisor = PoolSupervisor(
            list(range(4)),
            make_pool=lambda: ProcessPoolExecutor(
                max_workers=2, mp_context=multiprocessing.get_context("fork")
            ),
            submit=lambda pool, item: pool.submit(_always_crash, item),
            on_complete=completed.__setitem__,
            quarantine_outcome=lambda item, reason, faults: None,
            run_serial=serial,
            window=2,
            policy=SupervisorPolicy(max_pool_respawns=0, **FAST),
            stop=stop,
        )
        with pytest.raises(GridInterrupted):
            supervisor.run()
        assert len(completed) < 4


class TestWorkFunctionErrors:
    def test_work_exception_propagates_after_settling(self):
        worker = functools.partial(_raise_value_error, victim=2)
        with pytest.raises(ValueError, match="failed on 2"):
            _supervise(list(range(5)), worker)


class TestPolicy:
    def test_respawn_delay_is_capped_exponential(self):
        policy = SupervisorPolicy(backoff_base=0.05, backoff_cap=0.4)
        assert policy.respawn_delay(1) == pytest.approx(0.05)
        assert policy.respawn_delay(2) == pytest.approx(0.1)
        assert policy.respawn_delay(3) == pytest.approx(0.2)
        assert policy.respawn_delay(4) == pytest.approx(0.4)
        assert policy.respawn_delay(10) == pytest.approx(0.4)

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ConfigurationError):
            SupervisorPolicy(cell_timeout=0.0)
        with pytest.raises(ConfigurationError):
            SupervisorPolicy(max_pool_respawns=-1)
        with pytest.raises(ConfigurationError):
            SupervisorPolicy(max_item_faults=0)
        with pytest.raises(ConfigurationError):
            SupervisorPolicy(watchdog_interval=0.0)
        with pytest.raises(ConfigurationError):
            SupervisorPolicy(shutdown_grace=-0.1)

    def test_backoff_sleeps_use_injected_clock(self, tmp_path):
        # One real crash, with a measurable backoff routed through the
        # injected sleep -- the run must not actually wait.
        (tmp_path / "crash-0").touch()
        worker = functools.partial(_crash_if_flagged, flag_dir=str(tmp_path))
        slept = []
        supervisor = PoolSupervisor(
            [0],
            make_pool=lambda: ProcessPoolExecutor(
                max_workers=1, mp_context=multiprocessing.get_context("fork")
            ),
            submit=lambda pool, item: pool.submit(worker, item),
            on_complete=lambda item, outcome: None,
            quarantine_outcome=lambda item, reason, faults: None,
            run_serial=lambda item: None,
            window=1,
            policy=SupervisorPolicy(
                backoff_base=0.5, backoff_cap=8.0, watchdog_interval=0.02
            ),
            sleep=slept.append,
        )
        supervisor.run()
        assert slept[0] == pytest.approx(0.5)
