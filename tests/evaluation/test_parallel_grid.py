"""Parallel grid execution must be invisible except for speed.

``workers=4`` and ``workers=1`` must produce byte-identical journals
and identical aggregates -- on healthy grids, under injected faults,
and across kill/resume cycles.  Matcher factories live at module level
so worker processes can construct them.
"""

import numpy as np
import pytest

from repro.core import LeapmeConfig, LeapmeMatcher
from repro.core.api import Matcher
from repro.evaluation import (
    ExperimentRunner,
    RetryPolicy,
    RunJournal,
)
from repro.nn.schedule import TrainingSchedule
from repro.testing import FaultPlan, FaultyMatcher, SimulatedKill
from repro.text.normalize import token_set


class NameEqMatcher(Matcher):
    """Cheap deterministic supervised matcher: token-set name equality."""

    name = "NameEq"
    is_supervised = True

    def fit(self, dataset, training_pairs):
        pass

    def score_pairs(self, dataset, pairs):
        return np.array(
            [
                1.0 if token_set(p.left.name) == token_set(p.right.name) else 0.0
                for p in pairs
            ]
        )


class JaccardMatcher(Matcher):
    """Second cheap matcher so grids have heterogeneous cells."""

    name = "Jaccard"
    is_supervised = False

    def score_pairs(self, dataset, pairs):
        scores = []
        for pair in pairs:
            left = token_set(pair.left.name)
            right = token_set(pair.right.name)
            union = left | right
            scores.append(len(left & right) / len(union) if union else 0.0)
        return np.array(scores)


def _flaky_factory():
    # Repetition 1 fails once (recovered by retry); repetition 2 always
    # fails (exhausts retries into a structured failure).
    return FaultyMatcher(
        NameEqMatcher(), FaultPlan(fail_attempts={1: 1, 2: 10**9})
    )


def _doomed_factory():
    return FaultyMatcher(NameEqMatcher(), FaultPlan.kill_at(2))


def _healthy_factory():
    return FaultyMatcher(NameEqMatcher(), FaultPlan())


FACTORIES = {"nameeq": NameEqMatcher, "jaccard": JaccardMatcher}


def _summaries(results):
    return [
        (
            r.matcher_name,
            r.dataset_name,
            r.settings.train_fraction,
            r.qualities,
            r.skipped_repetitions,
            [(f.repetition, f.error_type, f.attempts) for f in r.failures],
            r.degraded_repetitions,
            r.resumed_repetitions,
        )
        for r in results
    ]


class TestParallelDeterminism:
    def test_parallel_grid_matches_serial_bytes_and_aggregates(
        self, tiny_headphones, tiny_cameras, tmp_path
    ):
        datasets = [tiny_headphones, tiny_cameras]
        kwargs = dict(
            train_fractions=[0.5], repetitions=3, seed=11
        )
        runner = ExperimentRunner(FACTORIES)
        serial_journal = RunJournal(tmp_path / "serial.jsonl")
        serial = runner.run(datasets, journal=serial_journal, **kwargs)
        parallel_journal = RunJournal(tmp_path / "parallel.jsonl")
        parallel = runner.run(
            datasets, journal=parallel_journal, workers=4, **kwargs
        )
        assert _summaries(parallel) == _summaries(serial)
        assert (
            parallel_journal.path.read_bytes()
            == serial_journal.path.read_bytes()
        )

    def test_parallel_matches_serial_without_feature_sharing(
        self, tiny_headphones
    ):
        runner = ExperimentRunner({"nameeq": NameEqMatcher})
        baseline = runner.run(
            [tiny_headphones], train_fractions=[0.5], repetitions=3, seed=2,
            share_features=False,
        )
        shared = runner.run(
            [tiny_headphones], train_fractions=[0.5], repetitions=3, seed=2
        )
        parallel = runner.run(
            [tiny_headphones], train_fractions=[0.5], repetitions=3, seed=2,
            workers=3,
        )
        assert _summaries(shared) == _summaries(baseline)
        assert _summaries(parallel) == _summaries(baseline)

    def test_fault_injection_is_deterministic_across_workers(
        self, tiny_headphones, tmp_path
    ):
        runner = ExperimentRunner({"flaky": _flaky_factory})
        kwargs = dict(
            train_fractions=[0.5],
            repetitions=4,
            seed=7,
            retry_policy=RetryPolicy(max_retries=1),
        )
        serial_journal = RunJournal(tmp_path / "serial.jsonl")
        serial = runner.run(
            [tiny_headphones], journal=serial_journal, **kwargs
        )
        parallel_journal = RunJournal(tmp_path / "parallel.jsonl")
        parallel = runner.run(
            [tiny_headphones], journal=parallel_journal, workers=4, **kwargs
        )
        # Repetition 2's failure record (attempts exhausted) and
        # repetition 1's recovered retry must match exactly.
        assert serial[0].failures[0].repetition == 2
        assert serial[0].failures[0].attempts == 2
        assert _summaries(parallel) == _summaries(serial)
        assert (
            parallel_journal.path.read_bytes()
            == serial_journal.path.read_bytes()
        )

    def test_parallel_kill_leaves_serial_prefix_and_resumes(
        self, tiny_headphones, tmp_path
    ):
        uninterrupted = ExperimentRunner({"cell": _healthy_factory}).run(
            [tiny_headphones], train_fractions=[0.5], repetitions=4, seed=7
        )

        journal = RunJournal(tmp_path / "run.jsonl")
        doomed = ExperimentRunner({"cell": _doomed_factory})
        with pytest.raises(SimulatedKill):
            doomed.run(
                [tiny_headphones],
                train_fractions=[0.5],
                repetitions=4,
                seed=7,
                journal=journal,
                workers=4,
            )
        (key,) = journal.keys()
        assert set(journal.entries(key)) == {0, 1}

        # The parallel rerun restores 0-1 and recomputes only 2-3.
        survivor = ExperimentRunner({"cell": _healthy_factory})
        resumed = survivor.run(
            [tiny_headphones],
            train_fractions=[0.5],
            repetitions=4,
            seed=7,
            journal=journal,
            workers=4,
        )
        assert resumed[0].resumed_repetitions == 2
        assert resumed[0].qualities == uninterrupted[0].qualities
        assert set(journal.entries(key)) == {0, 1, 2, 3}

    def test_fully_journaled_parallel_rerun_executes_nothing(
        self, tiny_headphones, tmp_path
    ):
        journal = RunJournal(tmp_path / "run.jsonl")
        runner = ExperimentRunner({"nameeq": NameEqMatcher})
        kwargs = dict(train_fractions=[0.5], repetitions=3, seed=5)
        first = runner.run([tiny_headphones], journal=journal, **kwargs)
        before = journal.path.read_bytes()
        rerun = runner.run(
            [tiny_headphones], journal=journal, workers=4, **kwargs
        )
        assert rerun[0].resumed_repetitions == 3
        assert rerun[0].qualities == first[0].qualities
        # Nothing was re-executed, so nothing was re-journaled.
        assert journal.path.read_bytes() == before

    def test_workers_must_be_positive(self, tiny_headphones):
        from repro.errors import ConfigurationError

        runner = ExperimentRunner({"nameeq": NameEqMatcher})
        with pytest.raises(ConfigurationError):
            runner.run([tiny_headphones], workers=0)


class TestParallelLeapme:
    def test_leapme_grid_parallel_and_store_match_serial(
        self, tiny_headphones, tiny_embeddings
    ):
        config = LeapmeConfig(
            hidden_sizes=(8,), schedule=TrainingSchedule.constant(2, 1e-3)
        )

        def factory():
            return LeapmeMatcher(tiny_embeddings, config=config)

        runner = ExperimentRunner({"leapme": factory})
        kwargs = dict(train_fractions=[0.5], repetitions=2, seed=3)
        baseline = runner.run(
            [tiny_headphones], share_features=False, **kwargs
        )
        shared = runner.run([tiny_headphones], **kwargs)
        parallel = runner.run([tiny_headphones], workers=2, **kwargs)
        assert _summaries(shared) == _summaries(baseline)
        assert _summaries(parallel) == _summaries(baseline)
        assert shared[0].f1 == baseline[0].f1
