"""Chaos tests: real process deaths against the full experiment grid.

Each test injects a process-level fault -- a worker hard-killed with
``os._exit``, a worker hung past the cell deadline, a SIGTERM delivered
to the parent mid-grid -- and asserts the PR 2 invariant survives it:
the journal stays valid and the final aggregates (and journal bytes)
are identical to a clean serial run.

Factories are ``functools.partial`` over module-level functions so the
pool can construct them in workers; fault budgets live in files under a
per-test directory, so they survive the process deaths they cause and a
re-dispatched repetition runs clean.
"""

import functools
import signal

import numpy as np
import pytest

from repro.core.api import Matcher
from repro.errors import GridInterrupted
from repro.evaluation import (
    ExperimentRunner,
    RunJournal,
    SupervisorPolicy,
)
from repro.evaluation.checkpoint import REASON_WORKER_CRASH, STATUS_FAILED
from repro.testing import FaultPlan, FaultyMatcher
from repro.text.normalize import token_set

FAST = dict(backoff_base=0.01, backoff_cap=0.05, watchdog_interval=0.02)


class NameEqMatcher(Matcher):
    name = "NameEq"
    is_supervised = True

    def fit(self, dataset, training_pairs):
        pass

    def score_pairs(self, dataset, pairs):
        return np.array(
            [
                1.0 if token_set(p.left.name) == token_set(p.right.name) else 0.0
                for p in pairs
            ]
        )


def _healthy_factory():
    return FaultyMatcher(NameEqMatcher(), FaultPlan())


def _exit_factory(state_dir, repetition, times):
    return FaultyMatcher(
        NameEqMatcher(),
        FaultPlan.worker_exit(repetition, state_dir=state_dir, times=times),
    )


def _hang_factory(state_dir, repetition, seconds):
    return FaultyMatcher(
        NameEqMatcher(),
        FaultPlan.worker_hang(
            repetition, state_dir=state_dir, seconds=seconds
        ),
    )


def _sigterm_factory(state_dir, repetition):
    return FaultyMatcher(
        NameEqMatcher(),
        FaultPlan.sigterm_parent(repetition, state_dir=state_dir),
    )


def _summaries(results):
    return [
        (
            r.matcher_name,
            r.dataset_name,
            r.qualities,
            r.skipped_repetitions,
            [(f.repetition, f.error_type) for f in r.failures],
        )
        for r in results
    ]


GRID = dict(train_fractions=[0.5], repetitions=4, seed=7)


@pytest.fixture()
def clean_serial(tiny_headphones, tmp_path):
    """A clean serial run and its journal: the ground truth to match."""
    journal = RunJournal(tmp_path / "clean.jsonl")
    results = ExperimentRunner({"cell": _healthy_factory}).run(
        [tiny_headphones], journal=journal, **GRID
    )
    return results, journal.path.read_bytes()


class TestWorkerKillChaos:
    def test_worker_killed_mid_grid_completes_byte_identical(
        self, tiny_headphones, tmp_path, clean_serial
    ):
        clean_results, clean_bytes = clean_serial
        factory = functools.partial(
            _exit_factory, str(tmp_path / "faults"), 2, 1
        )
        journal = RunJournal(tmp_path / "chaos.jsonl")
        results = ExperimentRunner({"cell": factory}).run(
            [tiny_headphones],
            journal=journal,
            workers=2,
            supervisor=SupervisorPolicy(**FAST),
            **GRID,
        )
        assert _summaries(results) == _summaries(clean_results)
        assert journal.path.read_bytes() == clean_bytes

    def test_poison_repetition_quarantined_then_resumable(
        self, tiny_headphones, tmp_path, clean_serial
    ):
        clean_results, clean_bytes = clean_serial
        poison = functools.partial(
            _exit_factory, str(tmp_path / "faults"), 1, 10**6
        )
        journal = RunJournal(tmp_path / "chaos.jsonl")
        results = ExperimentRunner({"cell": poison}).run(
            [tiny_headphones],
            journal=journal,
            workers=2,
            supervisor=SupervisorPolicy(**FAST),
            **GRID,
        )
        (result,) = results
        assert result.quarantined_repetitions == 1
        (failure,) = result.failures
        assert failure.repetition == 1
        assert failure.error_type == REASON_WORKER_CRASH
        (key,) = journal.keys()
        entry = journal.entries(key)[1]
        assert entry.status == STATUS_FAILED
        assert entry.error_type == REASON_WORKER_CRASH
        assert "quarantined" in journal.describe()

        # Quarantine is not a verdict: a resumed run with the fault gone
        # re-attempts the repetition and lands on the clean aggregates.
        resumed = ExperimentRunner({"cell": _healthy_factory}).run(
            [tiny_headphones], journal=journal, workers=2, **GRID
        )
        assert resumed[0].qualities == clean_results[0].qualities
        assert resumed[0].failures == []

    def test_respawn_budget_zero_degrades_to_serial_in_grid(
        self, tiny_headphones, tmp_path, clean_serial
    ):
        clean_results, _ = clean_serial
        factory = functools.partial(
            _exit_factory, str(tmp_path / "faults"), 2, 1
        )
        results = ExperimentRunner({"cell": factory}).run(
            [tiny_headphones],
            workers=2,
            supervisor=SupervisorPolicy(max_pool_respawns=0, **FAST),
            **GRID,
        )
        assert _summaries(results) == _summaries(clean_results)


class TestHangChaos:
    def test_hung_worker_killed_at_deadline_and_recovered(
        self, tiny_headphones, tmp_path, clean_serial
    ):
        clean_results, clean_bytes = clean_serial
        factory = functools.partial(
            _hang_factory, str(tmp_path / "faults"), 1, 30.0
        )
        journal = RunJournal(tmp_path / "chaos.jsonl")
        results = ExperimentRunner({"cell": factory}).run(
            [tiny_headphones],
            journal=journal,
            workers=2,
            supervisor=SupervisorPolicy(cell_timeout=0.75, **FAST),
            **GRID,
        )
        assert _summaries(results) == _summaries(clean_results)
        assert journal.path.read_bytes() == clean_bytes


class TestSignalChaos:
    def test_sigterm_drains_prefix_and_resume_matches_serial(
        self, tiny_headphones, tmp_path, clean_serial
    ):
        clean_results, clean_bytes = clean_serial
        factory = functools.partial(
            _sigterm_factory, str(tmp_path / "faults"), 2
        )
        journal = RunJournal(tmp_path / "chaos.jsonl")
        with pytest.raises(GridInterrupted) as excinfo:
            ExperimentRunner({"cell": factory}).run(
                [tiny_headphones],
                journal=journal,
                workers=2,
                supervisor=SupervisorPolicy(**FAST),
                **GRID,
            )
        assert excinfo.value.signum == signal.SIGTERM

        # The journal holds a valid serial-order prefix: every entry ok,
        # repetition indices contiguous from zero.
        keys = journal.keys()
        journaled = journal.entries(keys[0]) if keys else {}
        assert set(journaled) == set(range(len(journaled)))

        resumed = ExperimentRunner({"cell": _healthy_factory}).run(
            [tiny_headphones], journal=journal, workers=2, **GRID
        )
        assert _summaries(resumed) == _summaries(clean_results)
        assert resumed[0].resumed_repetitions == len(journaled)
        assert journal.path.read_bytes() == clean_bytes
