"""Edge-case tests for the experiment runner."""

import numpy as np

from repro.core.api import Matcher
from repro.data.model import Dataset, PropertyInstance
from repro.evaluation import RunSettings, evaluate_matcher


class NeverCalledMatcher(Matcher):
    """Supervised matcher that must never be fitted nor score."""

    name = "NeverCalled"
    is_supervised = True

    def __init__(self):
        self.fit_calls = 0

    def fit(self, dataset, training_pairs):
        self.fit_calls += 1

    def score_pairs(self, dataset, pairs):
        return np.zeros(len(pairs))


class ConstantMatcher(Matcher):
    """Unsupervised matcher scoring everything the same."""

    name = "Constant"
    is_supervised = False

    def __init__(self, score):
        self._score = score

    def score_pairs(self, dataset, pairs):
        return np.full(len(pairs), self._score)


def _unlabelled_dataset():
    instances = [
        PropertyInstance(f"s{i}", f"p{i}{j}", f"e{i}", "v")
        for i in range(4)
        for j in range(2)
    ]
    return Dataset("nolabels", instances, {})


class TestSkippedRepetitions:
    def test_no_positive_training_pairs_skips_all(self):
        dataset = _unlabelled_dataset()
        matcher = NeverCalledMatcher()
        result = evaluate_matcher(matcher, dataset, RunSettings(repetitions=3))
        assert result.skipped_repetitions == 3
        assert result.qualities == []
        assert matcher.fit_calls == 0

    def test_metrics_of_empty_result(self):
        dataset = _unlabelled_dataset()
        result = evaluate_matcher(
            NeverCalledMatcher(), dataset, RunSettings(repetitions=2)
        )
        assert result.precision == 0.0
        assert result.f1 == 0.0
        assert result.f1_std == 0.0


class TestConstantMatchers:
    def test_all_positive_predictions(self):
        dataset = _unlabelled_dataset()
        result = evaluate_matcher(
            ConstantMatcher(1.0), dataset, RunSettings(repetitions=1)
        )
        # No true matches exist: precision 0, recall (vacuous) 1.
        quality = result.qualities[0]
        assert quality.precision == 0.0
        assert quality.recall == 1.0

    def test_all_negative_predictions_on_unlabelled(self):
        dataset = _unlabelled_dataset()
        result = evaluate_matcher(
            ConstantMatcher(0.0), dataset, RunSettings(repetitions=1)
        )
        # Predicting nothing when there is nothing to find is perfect.
        quality = result.qualities[0]
        assert quality.precision == 1.0
        assert quality.recall == 1.0
        assert quality.f1 == 1.0
