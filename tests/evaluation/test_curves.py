"""Tests for precision-recall curves."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DimensionError
from repro.evaluation.curves import (
    PrecisionRecallCurve,
    precision_recall_curve,
    render_pr_curve,
)


class TestPrecisionRecallCurve:
    def test_perfect_scorer(self):
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        labels = np.array([1, 1, 0, 0])
        curve = precision_recall_curve(scores, labels)
        assert curve.average_precision == pytest.approx(1.0)
        best_f1, _ = curve.best_f1()
        assert best_f1 == pytest.approx(1.0)

    def test_worst_scorer(self):
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        labels = np.array([1, 1, 0, 0])
        curve = precision_recall_curve(scores, labels)
        assert curve.average_precision < 0.6

    def test_random_scorer_ap_near_base_rate(self):
        rng = np.random.default_rng(0)
        scores = rng.random(5000)
        labels = (rng.random(5000) < 0.1).astype(int)
        curve = precision_recall_curve(scores, labels)
        assert curve.average_precision == pytest.approx(0.1, abs=0.05)

    def test_one_point_per_distinct_score(self):
        scores = np.array([0.5, 0.5, 0.5, 0.9])
        labels = np.array([1, 0, 1, 1])
        curve = precision_recall_curve(scores, labels)
        assert len(curve) == 2

    def test_recall_monotone_nondecreasing(self):
        rng = np.random.default_rng(1)
        scores = rng.random(100)
        labels = (rng.random(100) < 0.3).astype(int)
        curve = precision_recall_curve(scores, labels)
        assert (np.diff(curve.recalls) >= 0).all()
        assert curve.recalls[-1] == pytest.approx(1.0)

    def test_precision_at_recall(self):
        scores = np.array([0.9, 0.8, 0.7, 0.6])
        labels = np.array([1, 0, 1, 0])
        curve = precision_recall_curve(scores, labels)
        assert curve.precision_at_recall(0.5) == pytest.approx(1.0)
        assert curve.precision_at_recall(1.0) == pytest.approx(2 / 3)

    def test_best_f1_threshold_is_attainable(self):
        scores = np.array([0.9, 0.6, 0.4, 0.1])
        labels = np.array([1, 1, 0, 0])
        curve = precision_recall_curve(scores, labels)
        best_f1, threshold = curve.best_f1()
        from repro.metrics import evaluate_scores

        recomputed = evaluate_scores(scores, labels, threshold)
        assert recomputed.f1 == pytest.approx(best_f1)

    def test_empty_inputs(self):
        curve = precision_recall_curve(np.zeros(0), np.zeros(0))
        assert len(curve) == 0
        assert curve.average_precision == 0.0
        assert curve.best_f1() == (0.0, 0.5)

    def test_no_positives(self):
        curve = precision_recall_curve(np.array([0.5]), np.array([0]))
        assert len(curve) == 0

    def test_shape_mismatch(self):
        with pytest.raises(DimensionError):
            precision_recall_curve(np.zeros(3), np.zeros(2))

    @given(
        scores=st.lists(st.floats(0, 1), min_size=2, max_size=40),
        seed=st.integers(0, 100),
    )
    def test_ap_in_unit_interval(self, scores, seed):
        scores = np.array(scores)
        labels = np.random.default_rng(seed).integers(0, 2, size=len(scores))
        if not labels.any():
            labels[0] = 1
        curve = precision_recall_curve(scores, labels)
        assert 0.0 <= curve.average_precision <= 1.0 + 1e-9

    def test_render(self):
        scores = np.array([0.9, 0.1])
        labels = np.array([1, 0])
        text = render_pr_curve(precision_recall_curve(scores, labels))
        assert "AP=" in text

    def test_render_empty(self):
        empty = PrecisionRecallCurve(np.zeros(0), np.zeros(0), np.zeros(0))
        assert "empty" in render_pr_curve(empty)
