"""Tests for significance testing of matcher comparisons."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.evaluation.significance import (
    ComparisonResult,
    bootstrap_confidence_interval,
    compare_results,
    paired_permutation_test,
)


class TestPairedPermutationTest:
    def test_identical_scores_not_significant(self):
        scores = [0.8, 0.7, 0.9, 0.85]
        result = paired_permutation_test(scores, list(scores))
        assert result.p_value == 1.0
        assert not result.significant()

    def test_consistent_large_gap_significant(self):
        scores_a = [0.9, 0.91, 0.89, 0.92, 0.9, 0.88, 0.93, 0.9, 0.91, 0.9]
        scores_b = [0.5, 0.52, 0.48, 0.51, 0.5, 0.49, 0.53, 0.5, 0.52, 0.51]
        result = paired_permutation_test(scores_a, scores_b)
        assert result.mean_difference == pytest.approx(0.4, abs=0.02)
        assert result.significant(0.05)

    def test_balanced_differences_not_significant(self):
        # Differences alternate +d / -d: the mean difference is exactly 0
        # and no sign-flip assignment is more extreme than observed.
        scores_a = [0.8, 0.7, 0.9, 0.6, 0.85, 0.75]
        scores_b = [0.75, 0.75, 0.85, 0.65, 0.8, 0.8]
        result = paired_permutation_test(scores_a, scores_b)
        assert result.mean_difference == pytest.approx(0.0)
        assert result.p_value > 0.5

    def test_symmetry(self):
        scores_a = [0.9, 0.8, 0.85]
        scores_b = [0.6, 0.65, 0.55]
        forward = paired_permutation_test(scores_a, scores_b)
        backward = paired_permutation_test(scores_b, scores_a)
        assert forward.p_value == pytest.approx(backward.p_value)
        assert forward.mean_difference == pytest.approx(-backward.mean_difference)

    def test_exact_small_n_matches_enumeration(self):
        # n=2, differences (0.1, 0.1): 4 assignments, |mean| >= 0.1 for
        # (+,+) and (-,-) -> p = 0.5.
        result = paired_permutation_test([0.6, 0.7], [0.5, 0.6])
        assert result.p_value == pytest.approx(0.5)

    def test_large_n_sampled_path(self):
        rng = np.random.default_rng(1)
        scores_a = list(0.8 + rng.normal(0, 0.01, 20))
        scores_b = list(0.5 + rng.normal(0, 0.01, 20))
        result = paired_permutation_test(scores_a, scores_b, n_permutations=2000)
        assert result.p_value < 0.01

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            paired_permutation_test([0.5], [0.5, 0.6])
        with pytest.raises(ConfigurationError):
            paired_permutation_test([], [])

    def test_describe(self):
        result = ComparisonResult(0.123, 0.01, 5)
        assert "+0.123" in result.describe()


class TestBootstrap:
    def test_interval_contains_mean(self):
        scores = [0.8, 0.82, 0.78, 0.81, 0.79]
        low, high = bootstrap_confidence_interval(scores)
        assert low <= np.mean(scores) <= high

    def test_wider_confidence_wider_interval(self):
        scores = list(np.random.default_rng(0).random(10))
        narrow = bootstrap_confidence_interval(scores, confidence=0.5)
        wide = bootstrap_confidence_interval(scores, confidence=0.99)
        assert wide[0] <= narrow[0] and narrow[1] <= wide[1]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bootstrap_confidence_interval([], confidence=0.9)
        with pytest.raises(ConfigurationError):
            bootstrap_confidence_interval([0.5], confidence=1.0)


class TestCompareResults:
    def _result(self, f1s, dataset="d"):
        from repro.evaluation.runner import ExperimentResult, RunSettings
        from repro.metrics import MatchQuality

        qualities = []
        for f1 in f1s:
            # Construct counts realising roughly the requested F1.
            tp = int(round(100 * f1))
            fp = 100 - tp
            fn = 100 - tp
            qualities.append(MatchQuality(tp, fp, fn))
        return ExperimentResult(
            matcher_name="m",
            dataset_name=dataset,
            settings=RunSettings(),
            qualities=qualities,
        )

    def test_compare(self):
        a = self._result([0.9, 0.91, 0.9, 0.92])
        b = self._result([0.6, 0.62, 0.59, 0.61])
        comparison = compare_results(a, b)
        assert comparison.mean_difference > 0.2

    def test_mismatched_datasets_rejected(self):
        a = self._result([0.9], dataset="x")
        b = self._result([0.8], dataset="y")
        with pytest.raises(ConfigurationError, match="different datasets"):
            compare_results(a, b)

    def test_unknown_metric(self):
        a = self._result([0.9])
        b = self._result([0.8])
        with pytest.raises(ConfigurationError, match="unknown metric"):
            compare_results(a, b, metric="accuracy")
