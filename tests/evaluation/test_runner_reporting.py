"""Tests for the experiment runner, reporting and transfer learning."""

import numpy as np
import pytest

from repro.core.api import Matcher
from repro.data.pairs import build_pairs
from repro.datasets import build_domain_embeddings
from repro.errors import ConfigurationError
from repro.evaluation import (
    ExperimentRunner,
    RunSettings,
    evaluate_matcher,
    format_table2,
    render_results_table,
    run_transfer_experiment,
)
from repro.text.normalize import token_set


class OracleMatcher(Matcher):
    """Scores pairs by ground truth -- a perfect matcher for harness tests."""

    name = "Oracle"
    is_supervised = False

    def score_pairs(self, dataset, pairs):
        return np.array(
            [1.0 if dataset.is_match(p.left, p.right) else 0.0 for p in pairs]
        )


class TokenMatcher(Matcher):
    """Unsupervised token-equality matcher (imperfect on purpose)."""

    name = "Token"
    is_supervised = False

    def score_pairs(self, dataset, pairs):
        return np.array(
            [
                1.0 if token_set(p.left.name) == token_set(p.right.name) else 0.0
                for p in pairs
            ]
        )


class RecordingMatcher(Matcher):
    """Supervised matcher that records what it was fitted on."""

    name = "Recorder"
    is_supervised = True

    def __init__(self):
        self.training_sets = []

    def fit(self, dataset, training_pairs):
        self.training_sets.append(training_pairs)

    def score_pairs(self, dataset, pairs):
        return np.zeros(len(pairs))


class TestEvaluateMatcher:
    def test_oracle_is_perfect(self, tiny_headphones):
        result = evaluate_matcher(
            OracleMatcher(), tiny_headphones, RunSettings(repetitions=2)
        )
        assert result.precision == 1.0
        assert result.recall == 1.0
        assert result.f1 == 1.0

    def test_repetitions_recorded(self, tiny_headphones):
        result = evaluate_matcher(
            TokenMatcher(), tiny_headphones, RunSettings(repetitions=3)
        )
        assert len(result.qualities) + result.skipped_repetitions == 3

    def test_supervised_fitted_per_repetition(self, tiny_headphones):
        matcher = RecordingMatcher()
        result = evaluate_matcher(matcher, tiny_headphones, RunSettings(repetitions=3))
        assert len(matcher.training_sets) == len(result.qualities)

    def test_training_pairs_use_negative_ratio(self, tiny_headphones):
        matcher = RecordingMatcher()
        evaluate_matcher(
            matcher,
            tiny_headphones,
            RunSettings(repetitions=1, train_fraction=0.8, negative_ratio=2.0),
        )
        training = matcher.training_sets[0]
        positives = len(training.positives())
        assert len(training.negatives()) <= 2 * positives + 1

    def test_training_pairs_within_train_sources_only(self, tiny_headphones):
        matcher = RecordingMatcher()
        evaluate_matcher(matcher, tiny_headphones, RunSettings(repetitions=1))
        training = matcher.training_sets[0]
        sources = {ref.source for ref in training.refs()}
        assert len(sources) >= 2

    def test_settings_validation(self):
        with pytest.raises(ConfigurationError):
            RunSettings(train_fraction=0.0)
        with pytest.raises(ConfigurationError):
            RunSettings(repetitions=0)
        with pytest.raises(ConfigurationError):
            RunSettings(negative_ratio=-1.0)

    def test_describe(self, tiny_headphones):
        result = evaluate_matcher(
            OracleMatcher(), tiny_headphones, RunSettings(repetitions=1)
        )
        text = result.describe()
        assert "Oracle" in text and "headphones" in text

    def test_f1_std(self, tiny_headphones):
        result = evaluate_matcher(
            TokenMatcher(), tiny_headphones, RunSettings(repetitions=3)
        )
        assert result.f1_std >= 0.0


class TestRunner:
    def test_grid_shape(self, tiny_headphones, tiny_cameras):
        runner = ExperimentRunner(
            {"oracle": OracleMatcher, "token": TokenMatcher}
        )
        results = runner.run(
            [tiny_headphones, tiny_cameras],
            train_fractions=[0.5],
            repetitions=1,
        )
        assert len(results) == 4
        names = {result.matcher_name for result in results}
        assert names == {"oracle", "token"}

    def test_empty_factories_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentRunner({})


class TestBlockedGrid:
    """Candidate-policy evaluation: pruned universes, honest metrics."""

    def _run(self, dataset, label, repetitions=2):
        from repro.blocking import CandidatePolicy

        runner = ExperimentRunner({"oracle": OracleMatcher})
        return runner.run(
            [dataset],
            train_fractions=[0.5],
            repetitions=repetitions,
            policy=CandidatePolicy.from_label(label),
        )[0]

    def test_blocked_result_carries_policy_stats(self, tiny_headphones):
        from repro.blocking import CandidatePolicy
        from repro.core import PairUniverse

        result = self._run(tiny_headphones, "minhash")
        stats = PairUniverse(
            tiny_headphones, CandidatePolicy.from_label("minhash")
        ).blocking_stats()
        assert result.pair_recall == pytest.approx(stats["pair_recall"])
        assert result.reduction_ratio == pytest.approx(stats["reduction_ratio"])
        assert "blocking:" in result.describe()

    def test_lossless_policy_keeps_oracle_perfect(self, tiny_headphones):
        # minhash keeps every true pair on this dataset, so pruning the
        # candidate set must not cost the oracle anything.
        result = self._run(tiny_headphones, "minhash")
        assert result.pair_recall == 1.0
        assert result.recall == 1.0
        assert result.f1 == 1.0

    def test_pruned_true_matches_score_as_misses(self, tiny_headphones):
        # The token policy drops true pairs (pair recall well below 1);
        # an oracle scoring only surviving candidates must not be
        # credited with perfect recall against the full ground truth.
        result = self._run(tiny_headphones, "token", repetitions=3)
        assert result.pair_recall < 1.0
        assert result.recall < 1.0
        assert result.precision == 1.0  # pruning never adds false positives

    def test_null_policy_leaves_results_unannotated(self, tiny_headphones):
        result = self._run(tiny_headphones, "null")
        assert result.pair_recall is None
        assert result.reduction_ratio is None
        assert "blocking:" not in result.describe()

    def test_blocked_needs_shared_features(self, tiny_headphones):
        from repro.blocking import CandidatePolicy

        runner = ExperimentRunner({"oracle": OracleMatcher})
        with pytest.raises(ConfigurationError, match="share_features"):
            runner.run(
                [tiny_headphones],
                train_fractions=[0.5],
                repetitions=1,
                share_features=False,
                policy=CandidatePolicy.from_label("minhash"),
            )

    def test_as_row_includes_blocking_columns(self, tiny_headphones):
        row = self._run(tiny_headphones, "minhash").as_row()
        assert row["pair_recall"] == 1.0
        assert 0.0 < row["reduction_ratio"] < 1.0
        assert "pair_recall" not in self._run(tiny_headphones, "null").as_row()

    def test_render_table_adds_columns_only_when_blocked(self, tiny_headphones):
        blocked = render_results_table([self._run(tiny_headphones, "minhash")])
        assert "pairR" in blocked and "redux" in blocked
        unblocked = render_results_table([self._run(tiny_headphones, "null")])
        assert "pairR" not in unblocked


class TestReporting:
    def _results(self, tiny_headphones):
        runner = ExperimentRunner({"oracle": OracleMatcher, "token": TokenMatcher})
        return runner.run([tiny_headphones], train_fractions=[0.5], repetitions=1)

    def test_flat_table(self, tiny_headphones):
        text = render_results_table(self._results(tiny_headphones))
        assert "oracle" in text and "headphones" in text

    def test_table2_best_marked(self, tiny_headphones):
        text = format_table2(self._results(tiny_headphones), title="demo")
        assert "demo" in text
        assert "*" in text  # the best F1 per row carries the bold marker

    def test_table2_missing_cells_dashed(self, tiny_headphones):
        results = self._results(tiny_headphones)
        text = format_table2(results, systems=["oracle", "token", "ghost"])
        assert "-" in text


class TestTransfer:
    def test_oracle_transfers_perfectly(self, tiny_headphones, tiny_cameras):
        result = run_transfer_experiment(
            OracleMatcher(), tiny_headphones, tiny_cameras
        )
        assert result.quality.f1 == 1.0
        assert result.source_dataset == "headphones"
        assert result.target_dataset == "cameras"

    def test_leapme_transfer_runs(self, tiny_headphones, tiny_cameras):
        from repro.core import LeapmeConfig, LeapmeMatcher
        from repro.nn.schedule import TrainingSchedule

        embeddings = build_domain_embeddings(["headphones", "cameras"], scale="tiny")
        matcher = LeapmeMatcher(
            embeddings,
            config=LeapmeConfig(
                hidden_sizes=(32,),
                schedule=TrainingSchedule.constant(5, 1e-3),
            ),
        )
        result = run_transfer_experiment(matcher, tiny_headphones, tiny_cameras)
        # Cross-domain transfer must do clearly better than random guessing.
        assert result.quality.f1 > 0.2

    def test_describe(self, tiny_headphones, tiny_cameras):
        result = run_transfer_experiment(OracleMatcher(), tiny_headphones, tiny_cameras)
        assert "headphones -> cameras" in result.describe()
