"""Tests for match-quality metrics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DimensionError
from repro.metrics import MatchQuality, evaluate_predictions, evaluate_scores, mean_quality


class TestMatchQuality:
    def test_simple_counts(self):
        quality = MatchQuality(true_positives=8, false_positives=2, false_negatives=4)
        assert quality.precision == 0.8
        assert quality.recall == pytest.approx(8 / 12)
        assert quality.f1 == pytest.approx(2 * 0.8 * (8 / 12) / (0.8 + 8 / 12))

    def test_no_predictions_nothing_to_find(self):
        quality = MatchQuality(0, 0, 0)
        assert quality.precision == 1.0
        assert quality.recall == 1.0
        assert quality.f1 == 1.0

    def test_no_predictions_but_positives_exist(self):
        quality = MatchQuality(0, 0, 5)
        assert quality.precision == 0.0
        assert quality.recall == 0.0
        assert quality.f1 == 0.0

    def test_addition_micro_averages(self):
        total = MatchQuality(1, 2, 3) + MatchQuality(4, 5, 6)
        assert total == MatchQuality(5, 7, 9)

    def test_negative_counts_rejected(self):
        with pytest.raises(DimensionError):
            MatchQuality(-1, 0, 0)

    def test_as_row(self):
        quality = MatchQuality(1, 1, 1)
        assert quality.as_row() == (0.5, 0.5, 0.5)

    @given(
        tp=st.integers(0, 100),
        fp=st.integers(0, 100),
        fn=st.integers(0, 100),
    )
    def test_f1_between_precision_and_recall(self, tp, fp, fn):
        quality = MatchQuality(tp, fp, fn)
        low = min(quality.precision, quality.recall)
        high = max(quality.precision, quality.recall)
        assert low - 1e-9 <= quality.f1 <= high + 1e-9


class TestEvaluate:
    def test_evaluate_predictions(self):
        predictions = np.array([1, 1, 0, 0])
        labels = np.array([1, 0, 1, 0])
        quality = evaluate_predictions(predictions, labels)
        assert (quality.true_positives, quality.false_positives, quality.false_negatives) == (1, 1, 1)

    def test_evaluate_scores_threshold(self):
        scores = np.array([0.9, 0.4, 0.6])
        labels = np.array([1, 1, 0])
        quality = evaluate_scores(scores, labels, threshold=0.5)
        assert quality.true_positives == 1
        assert quality.false_positives == 1
        assert quality.false_negatives == 1

    def test_shape_mismatch(self):
        with pytest.raises(DimensionError):
            evaluate_predictions(np.array([1]), np.array([1, 0]))

    def test_mean_quality(self):
        qualities = [MatchQuality(1, 0, 0), MatchQuality(0, 0, 1)]
        precision, recall, f1 = mean_quality(qualities)
        assert precision == pytest.approx(0.5)
        assert recall == pytest.approx(0.5)
        assert f1 == pytest.approx(0.5)

    def test_mean_quality_empty(self):
        assert mean_quality([]) == (0.0, 0.0, 0.0)
