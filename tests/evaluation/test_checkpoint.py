"""Tests for the run journal (checkpoint/resume storage layer)."""

import json

import pytest

from repro.data.model import Dataset, PropertyInstance
from repro.errors import JournalError
from repro.evaluation import RunSettings
from repro.evaluation.checkpoint import (
    STATUS_FAILED,
    STATUS_OK,
    STATUS_SKIPPED,
    JournalEntry,
    RunJournal,
    run_key,
)
from repro.metrics import MatchQuality


def _dataset(name="demo", n=2):
    instances = [
        PropertyInstance(source=f"s{i}", property_name="p", entity_id="e", value=str(i))
        for i in range(n)
    ]
    return Dataset(name=name, instances=instances)


class TestRunKey:
    def test_stable_for_same_inputs(self):
        dataset = _dataset()
        settings = RunSettings(repetitions=3)
        assert run_key("m", dataset, settings) == run_key("m", dataset, settings)

    def test_sensitive_to_every_protocol_knob(self):
        dataset = _dataset()
        base = run_key("m", dataset, RunSettings())
        assert run_key("other", dataset, RunSettings()) != base
        assert run_key("m", dataset, RunSettings(seed=1)) != base
        assert run_key("m", dataset, RunSettings(train_fraction=0.5)) != base
        assert run_key("m", dataset, RunSettings(repetitions=7)) != base
        assert run_key("m", dataset, RunSettings(negative_ratio=1.0)) != base

    def test_sensitive_to_dataset_content_not_just_name(self):
        settings = RunSettings()
        assert run_key("m", _dataset(n=2), settings) != run_key(
            "m", _dataset(n=3), settings
        )

    def test_human_readable_prefix(self):
        key = run_key("LEAPME", _dataset(), RunSettings())
        assert key.startswith("LEAPME|demo|")


class TestJournalRoundTrip:
    def test_missing_file_is_empty(self, tmp_path):
        journal = RunJournal(tmp_path / "absent.jsonl")
        assert journal.entries("any") == {}
        assert journal.keys() == []

    def test_quality_round_trips_exactly(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        quality = MatchQuality(true_positives=7, false_positives=2, false_negatives=3)
        journal.record_quality("k", 0, quality, degradation="reduced-lr", attempts=2)
        entry = journal.entries("k")[0]
        assert entry.status == STATUS_OK
        assert entry.quality == quality
        assert entry.degradation == "reduced-lr"
        assert entry.attempts == 2

    def test_skip_and_failure_records(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        journal.record_skip("k", 1, "no positives")
        journal.record_failure("k", 2, ValueError("boom"), attempts=3)
        entries = journal.entries("k")
        assert entries[1].status == STATUS_SKIPPED
        assert entries[2].status == STATUS_FAILED
        assert entries[2].error_type == "ValueError"
        assert entries[2].error == "boom"
        assert entries[2].attempts == 3

    def test_keys_isolated_per_cell(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        quality = MatchQuality(1, 0, 0)
        journal.record_quality("a", 0, quality)
        journal.record_quality("b", 0, quality)
        assert journal.keys() == ["a", "b"]
        assert set(journal.entries("a")) == {0}

    def test_last_record_per_repetition_wins(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        journal.record_failure("k", 0, RuntimeError("first try"), attempts=1)
        journal.record_quality("k", 0, MatchQuality(5, 0, 0))
        assert journal.entries("k")[0].status == STATUS_OK

    def test_describe_summarises(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        journal.record_quality("k", 0, MatchQuality(1, 0, 0))
        journal.record_failure("k", 1, RuntimeError("x"), attempts=2)
        text = journal.describe()
        assert "1 ok" in text and "1 failed" in text

    def test_describe_reports_last_failure_reason(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        journal.record_failure("k", 1, RuntimeError("first"), attempts=1)
        journal.record_failure("k", 3, ValueError("most recent"), attempts=2)
        text = journal.describe()
        assert "last failure: repetition 3" in text
        assert "ValueError: most recent" in text
        assert "after 2 attempt(s)" in text

    def test_describe_omits_failures_superseded_by_resume(self, tmp_path):
        # A failure later re-attempted successfully is history: the
        # latest entry for the repetition is ok, so a healthy journal
        # must not advertise a "last failure" post-mortem line.
        journal = RunJournal(tmp_path / "run.jsonl")
        journal.record_failure("k", 0, RuntimeError("transient"), attempts=1)
        journal.record_quality("k", 0, MatchQuality(1, 0, 0))
        text = journal.describe()
        assert "1 ok" in text
        assert "failed" not in text
        assert "last failure" not in text

    def test_describe_last_failure_respects_latest_entry_semantics(
        self, tmp_path
    ):
        # Repetition 0's failure is journaled *after* repetition 1's,
        # but a resumed run then fixed repetition 0 -- so the reported
        # last failure must be repetition 1's, the only one still live.
        journal = RunJournal(tmp_path / "run.jsonl")
        journal.record_failure("k", 1, RuntimeError("still broken"), attempts=1)
        journal.record_failure("k", 0, RuntimeError("later fixed"), attempts=1)
        journal.record_quality("k", 0, MatchQuality(1, 0, 0))
        text = journal.describe()
        assert "last failure: repetition 1" in text
        assert "still broken" in text
        assert "later fixed" not in text

    def test_describe_counts_quarantined_separately(self, tmp_path):
        from repro.evaluation.checkpoint import REASON_TIMEOUT, REASON_WORKER_CRASH

        journal = RunJournal(tmp_path / "run.jsonl")
        journal.record_quality("k", 0, MatchQuality(1, 0, 0))
        journal.record_failure("k", 1, RuntimeError("plain failure"), attempts=1)
        journal.append(
            JournalEntry(
                key="k",
                repetition=2,
                status=STATUS_FAILED,
                attempts=2,
                error_type=REASON_WORKER_CRASH,
                error="quarantined by the pool supervisor",
            )
        )
        journal.append(
            JournalEntry(
                key="k",
                repetition=3,
                status=STATUS_FAILED,
                attempts=2,
                error_type=REASON_TIMEOUT,
                error="quarantined by the pool supervisor",
            )
        )
        text = journal.describe()
        assert "3 failed" in text
        assert "2 quarantined" in text

    def test_describe_empty_journal(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        assert "(empty)" in journal.describe()


class TestJournalDurability:
    def test_torn_final_line_is_ignored(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = RunJournal(path)
        journal.record_quality("k", 0, MatchQuality(1, 0, 0))
        with path.open("a") as handle:
            handle.write('{"type": "repetition", "key": "k", "repe')  # torn write
        assert set(RunJournal(path).entries("k")) == {0}

    def test_append_after_torn_line_stays_readable(self, tmp_path):
        # A kill mid-append must not poison later appends: the torn tail
        # is truncated away, the new record lands on its own line, and
        # every subsequent read (and resume) still works.
        path = tmp_path / "run.jsonl"
        journal = RunJournal(path)
        journal.record_quality("k", 0, MatchQuality(1, 0, 0))
        with path.open("a") as handle:
            handle.write('{"type": "repetition", "key": "k", "repe')  # torn write
        journal.record_quality("k", 1, MatchQuality(2, 0, 0))
        journal.record_quality("k", 2, MatchQuality(3, 0, 0))
        entries = RunJournal(path).entries("k")
        assert set(entries) == {0, 1, 2}
        assert entries[1].quality == MatchQuality(2, 0, 0)

    def test_corruption_mid_file_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = RunJournal(path)
        journal.record_quality("k", 0, MatchQuality(1, 0, 0))
        with path.open("a") as handle:
            handle.write("GARBAGE\n")
        journal.record_quality("k", 1, MatchQuality(1, 0, 0))
        with pytest.raises(JournalError):
            RunJournal(path).entries("k")

    def test_non_journal_file_rejected(self, tmp_path):
        path = tmp_path / "not-a-journal.jsonl"
        path.write_text(json.dumps({"type": "something-else"}) + "\n")
        with pytest.raises(JournalError):
            RunJournal(path).entries("k")

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(json.dumps({"type": "journal", "version": 99}) + "\n")
        with pytest.raises(JournalError):
            RunJournal(path).entries("k")

    def test_malformed_record_raises(self):
        with pytest.raises(JournalError):
            JournalEntry.from_record({"type": "repetition"})  # missing fields
