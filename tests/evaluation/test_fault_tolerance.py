"""Integration tests: failure isolation, retries, resume, degradation.

These are the proofs behind the fault-tolerance layer's claims:

* a repetition that raises is recorded and never aborts its siblings;
* a killed run resumed from its journal re-executes only the missing
  repetitions and reproduces the uninterrupted aggregates exactly;
* injected divergence completes the repetition through the classical
  fallback, and the degradation is visible in journal and report.
"""

import numpy as np
import pytest

from repro.core import LeapmeConfig, LeapmeMatcher, ResilientClassifier
from repro.core.api import Matcher
from repro.evaluation import (
    ExperimentRunner,
    RetryPolicy,
    RunJournal,
    RunSettings,
    evaluate_matcher,
    render_robustness_report,
    run_key,
)
from repro.evaluation.checkpoint import STATUS_FAILED, STATUS_OK
from repro.nn.schedule import TrainingSchedule
from repro.testing import (
    AlwaysDivergingClassifier,
    FaultInjected,
    FaultPlan,
    FaultyMatcher,
    SimulatedKill,
)
from repro.text.normalize import token_set

SETTINGS = RunSettings(train_fraction=0.5, repetitions=4, seed=7)


class NameEqMatcher(Matcher):
    """Cheap deterministic supervised matcher: token-set name equality.

    ``fit`` is a recorded no-op, so tests can count which repetitions
    actually executed training.
    """

    name = "NameEq"
    is_supervised = True

    def __init__(self):
        self.fit_calls = 0

    def fit(self, dataset, training_pairs):
        self.fit_calls += 1

    def score_pairs(self, dataset, pairs):
        return np.array(
            [
                1.0 if token_set(p.left.name) == token_set(p.right.name) else 0.0
                for p in pairs
            ]
        )


class TestFailureIsolation:
    def test_failing_repetition_does_not_poison_the_rest(self, tiny_headphones):
        clean = evaluate_matcher(NameEqMatcher(), tiny_headphones, SETTINGS)
        faulty = FaultyMatcher(NameEqMatcher(), FaultPlan.failing(1))
        result = evaluate_matcher(
            faulty, tiny_headphones, SETTINGS, retry_policy=RetryPolicy(max_retries=0)
        )
        assert result.skipped_repetitions == 1
        assert len(result.qualities) == SETTINGS.repetitions - 1
        assert len(result.failures) == 1
        failure = result.failures[0]
        assert failure.repetition == 1
        assert failure.error_type == "FaultInjected"
        # The surviving repetitions are exactly the clean run's others.
        clean_without_rep1 = [q for i, q in enumerate(clean.qualities) if i != 1]
        assert result.qualities == clean_without_rep1

    def test_transient_failure_recovered_by_retry(self, tiny_headphones):
        faulty = FaultyMatcher(NameEqMatcher(), FaultPlan(fail_attempts={1: 1}))
        result = evaluate_matcher(
            faulty, tiny_headphones, SETTINGS, retry_policy=RetryPolicy(max_retries=1)
        )
        assert result.skipped_repetitions == 0
        assert len(result.qualities) == SETTINGS.repetitions
        assert (1, 1, "fail") in faulty.injected

    def test_retries_exhausted_becomes_structured_failure(self, tiny_headphones):
        faulty = FaultyMatcher(NameEqMatcher(), FaultPlan(fail_attempts={0: 5}))
        result = evaluate_matcher(
            faulty, tiny_headphones, SETTINGS, retry_policy=RetryPolicy(max_retries=2)
        )
        assert result.failures[0].attempts == 3

    def test_backoff_hook_is_exercised(self, tiny_headphones):
        slept = []
        faulty = FaultyMatcher(NameEqMatcher(), FaultPlan(fail_attempts={0: 2}))
        evaluate_matcher(
            faulty,
            tiny_headphones,
            SETTINGS,
            retry_policy=RetryPolicy(max_retries=2, backoff_base=0.5),
            sleep=slept.append,
        )
        assert slept == [0.5, 1.0]  # exponential doubling

    def test_jittered_backoff_is_deterministic_and_bounded(self):
        policy = RetryPolicy(max_retries=3, backoff_base=0.5, jitter=0.5)
        for attempt in (1, 2, 3):
            base = 0.5 * (2.0 ** (attempt - 1))
            delays = {
                policy.delay(attempt, seed=7, repetition=2) for _ in range(5)
            }
            assert len(delays) == 1  # pure function of (seed, repetition, attempt)
            delay = delays.pop()
            assert base <= delay < base * 1.5

    def test_jitter_varies_across_repetitions_and_seeds(self):
        policy = RetryPolicy(backoff_base=0.5, jitter=1.0)
        delays = {
            policy.delay(1, seed=seed, repetition=repetition)
            for seed in range(3)
            for repetition in range(3)
        }
        assert len(delays) == 9  # hash spreads concurrent retries apart

    def test_zero_jitter_keeps_exact_exponential_schedule(self):
        policy = RetryPolicy(backoff_base=0.5, jitter=0.0)
        assert [policy.delay(a, seed=3, repetition=1) for a in (1, 2)] == [0.5, 1.0]

    def test_negative_jitter_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="jitter"):
            RetryPolicy(jitter=-0.1)

    def test_nan_scores_tripped_by_numeric_guard(self, tiny_headphones):
        faulty = FaultyMatcher(NameEqMatcher(), FaultPlan(nan_scores_on=frozenset({0})))
        result = evaluate_matcher(
            faulty, tiny_headphones, SETTINGS, retry_policy=RetryPolicy(max_retries=0)
        )
        assert result.failures[0].error_type == "NumericError"
        assert "similarity scores" in result.failures[0].message


class TestCheckpointResume:
    def test_kill_then_resume_is_bit_identical(self, tiny_headphones, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        uninterrupted = evaluate_matcher(NameEqMatcher(), tiny_headphones, SETTINGS)

        # The process dies as repetition 2 starts...
        doomed = FaultyMatcher(NameEqMatcher(), FaultPlan.kill_at(2))
        with pytest.raises(SimulatedKill):
            evaluate_matcher(doomed, tiny_headphones, SETTINGS, journal=journal)
        key = run_key("NameEq", tiny_headphones, SETTINGS)
        assert set(journal.entries(key)) == {0, 1}

        # ...and the rerun executes only repetitions 2..N.
        survivor = FaultyMatcher(NameEqMatcher(), FaultPlan())
        resumed = evaluate_matcher(
            survivor, tiny_headphones, SETTINGS, journal=journal
        )
        assert survivor.executed_repetitions == {2, 3}
        assert resumed.resumed_repetitions == 2
        assert resumed.qualities == uninterrupted.qualities
        assert (resumed.precision, resumed.recall, resumed.f1) == (
            uninterrupted.precision,
            uninterrupted.recall,
            uninterrupted.f1,
        )

    def test_fully_journaled_run_executes_nothing(self, tiny_headphones, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        first = evaluate_matcher(
            NameEqMatcher(), tiny_headphones, SETTINGS, journal=journal
        )
        rerun_matcher = NameEqMatcher()
        rerun = evaluate_matcher(
            rerun_matcher, tiny_headphones, SETTINGS, journal=journal
        )
        assert rerun_matcher.fit_calls == 0
        assert rerun.resumed_repetitions == SETTINGS.repetitions
        assert rerun.qualities == first.qualities

    def test_resume_false_re_executes(self, tiny_headphones, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        evaluate_matcher(NameEqMatcher(), tiny_headphones, SETTINGS, journal=journal)
        rerun_matcher = NameEqMatcher()
        rerun = evaluate_matcher(
            rerun_matcher, tiny_headphones, SETTINGS, journal=journal, resume=False
        )
        assert rerun_matcher.fit_calls > 0
        assert rerun.resumed_repetitions == 0

    def test_journaled_failures_are_retried_on_resume(self, tiny_headphones, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        faulty = FaultyMatcher(NameEqMatcher(), FaultPlan.failing(0))
        first = evaluate_matcher(
            faulty,
            tiny_headphones,
            SETTINGS,
            journal=journal,
            retry_policy=RetryPolicy(max_retries=0),
        )
        assert first.failures[0].error_type == "FaultInjected"

        # The rerun restores the healthy repetitions but re-attempts the
        # failed one (e.g. after raising --max-retries), and the fresh
        # outcome supersedes the journaled failure.
        survivor = FaultyMatcher(NameEqMatcher(), FaultPlan())
        resumed = evaluate_matcher(
            survivor, tiny_headphones, SETTINGS, journal=journal
        )
        assert survivor.executed_repetitions == {0}
        assert resumed.resumed_repetitions == SETTINGS.repetitions - 1
        assert resumed.skipped_repetitions == 0
        assert resumed.failures == []
        assert len(resumed.qualities) == SETTINGS.repetitions
        key = run_key("NameEq", tiny_headphones, SETTINGS)
        assert journal.entries(key)[0].status == STATUS_OK

    def test_runner_grid_resumes_through_journal(
        self, tiny_headphones, tiny_cameras, tmp_path
    ):
        journal = RunJournal(tmp_path / "grid.jsonl")
        runner = ExperimentRunner({"nameeq": NameEqMatcher})
        first = runner.run(
            [tiny_headphones, tiny_cameras],
            train_fractions=[0.5],
            repetitions=2,
            seed=3,
            journal=journal,
        )
        second = runner.run(
            [tiny_headphones, tiny_cameras],
            train_fractions=[0.5],
            repetitions=2,
            seed=3,
            journal=journal,
        )
        assert [r.qualities for r in second] == [r.qualities for r in first]
        assert all(r.resumed_repetitions == 2 for r in second)


class TestDegradation:
    def _resilient_leapme(self, embeddings):
        config = LeapmeConfig(
            hidden_sizes=(8,), schedule=TrainingSchedule.constant(2, 1e-3)
        )
        return LeapmeMatcher(
            embeddings,
            config=config,
            classifier_factory=lambda: ResilientClassifier(
                config, primary_factory=AlwaysDivergingClassifier
            ),
        )

    def test_divergence_completes_via_classical_fallback(
        self, tiny_headphones, tiny_embeddings, tmp_path
    ):
        journal = RunJournal(tmp_path / "run.jsonl")
        matcher = self._resilient_leapme(tiny_embeddings)
        settings = RunSettings(train_fraction=0.5, repetitions=1, seed=0)
        result = evaluate_matcher(matcher, tiny_headphones, settings, journal=journal)
        # The repetition completed despite every network fit diverging...
        assert len(result.qualities) == 1
        assert result.skipped_repetitions == 0
        assert result.degraded_repetitions == 1
        # ...the journal records how...
        key = run_key(matcher.name, tiny_headphones, settings)
        entry = journal.entries(key)[0]
        assert entry.status == STATUS_OK
        assert entry.degradation == "classical-fallback"
        # ...and reporting surfaces it.
        report = render_robustness_report([result])
        assert "1 degraded" in report
        assert "degraded" in result.describe()

    def test_matcher_level_divergence_without_resilience_is_isolated(
        self, tiny_headphones, tmp_path
    ):
        journal = RunJournal(tmp_path / "run.jsonl")
        faulty = FaultyMatcher(NameEqMatcher(), FaultPlan(diverge_on=frozenset({0})))
        result = evaluate_matcher(
            faulty,
            tiny_headphones,
            SETTINGS,
            journal=journal,
            retry_policy=RetryPolicy(max_retries=0),
        )
        assert result.failures[0].error_type == "TrainingDivergedError"
        key = run_key("NameEq", tiny_headphones, SETTINGS)
        assert journal.entries(key)[0].status == STATUS_FAILED

    def test_healthy_run_reports_nothing(self, tiny_headphones):
        result = evaluate_matcher(NameEqMatcher(), tiny_headphones, SETTINGS)
        assert render_robustness_report([result]) == ""


class TestFaultPlanUnits:
    def test_failing_plan_always_fails(self):
        plan = FaultPlan.failing(0, 2)
        assert plan.fail_attempts[0] > 100
        assert 1 not in plan.fail_attempts

    def test_injected_error_is_catchable_as_exception(self):
        with pytest.raises(Exception):
            raise FaultInjected("boom")

    def test_simulated_kill_is_not_an_exception(self):
        assert not issubclass(SimulatedKill, Exception)
        assert issubclass(SimulatedKill, BaseException)
