"""Tests for optimisers, schedules and the Sequential network."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, NotFittedError
from repro.nn.activations import ReLU
from repro.nn.layers import Dense
from repro.nn.metrics import accuracy, confusion_counts
from repro.nn.network import Sequential
from repro.nn.optimizers import SGD, Adam
from repro.nn.schedule import TrainingPhase, TrainingSchedule, paper_schedule


class TestOptimizers:
    def _quadratic_descent(self, optimizer, steps=200):
        """Minimise ||x||^2; gradient is 2x."""
        x = np.array([3.0, -2.0])
        for _ in range(steps):
            optimizer.step([x], [2.0 * x])
        return x

    def test_sgd_converges(self):
        x = self._quadratic_descent(SGD(learning_rate=0.1))
        assert np.linalg.norm(x) < 1e-6

    def test_sgd_momentum_converges(self):
        x = self._quadratic_descent(SGD(learning_rate=0.05, momentum=0.9))
        assert np.linalg.norm(x) < 1e-4

    def test_adam_converges(self):
        x = self._quadratic_descent(Adam(learning_rate=0.2), steps=400)
        assert np.linalg.norm(x) < 1e-3

    def test_learning_rate_mutable(self):
        optimizer = SGD(learning_rate=0.1)
        optimizer.learning_rate = 0.01
        x = np.array([1.0])
        optimizer.step([x], [np.array([1.0])])
        assert x[0] == pytest.approx(0.99)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            SGD(learning_rate=0.0)
        with pytest.raises(ConfigurationError):
            SGD(momentum=1.0)
        with pytest.raises(ConfigurationError):
            Adam(beta1=1.0)

    def test_adam_step_size_invariant_to_gradient_scale(self):
        # Adam normalises by the gradient's running magnitude, so a
        # constant gradient of any scale produces ~lr-sized steps.
        big, small = np.array([0.0]), np.array([0.0])
        optimizer = Adam(learning_rate=0.1)
        optimizer.step([big, small], [np.array([100.0]), np.array([1e-3])])
        assert big[0] == pytest.approx(-0.1, rel=1e-3)
        assert small[0] == pytest.approx(-0.1, rel=1e-3)


class TestSchedule:
    def test_paper_schedule(self):
        schedule = paper_schedule()
        assert schedule.total_epochs == 20
        rates = list(schedule.epoch_rates())
        assert rates[:10] == [1e-3] * 10
        assert rates[10:15] == [1e-4] * 5
        assert rates[15:] == [1e-5] * 5

    def test_constant(self):
        schedule = TrainingSchedule.constant(3, 0.01)
        assert list(schedule.epoch_rates()) == [0.01] * 3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TrainingPhase(0, 0.1)
        with pytest.raises(ConfigurationError):
            TrainingPhase(1, 0.0)
        with pytest.raises(ConfigurationError):
            TrainingSchedule(())


def _toy_problem(rng, n=240):
    """Two Gaussian blobs, linearly separable."""
    half = n // 2
    x0 = rng.standard_normal((half, 4)) + 2.0
    x1 = rng.standard_normal((half, 4)) - 2.0
    inputs = np.vstack([x0, x1])
    labels = np.array([0] * half + [1] * half)
    order = rng.permutation(n)
    return inputs[order], labels[order]


def _paper_network(rng):
    return Sequential(
        [
            Dense(4, 16, rng=rng),
            ReLU(),
            Dense(16, 2, rng=rng),
        ]
    )


class TestSequential:
    def test_learns_separable_problem(self, rng):
        inputs, labels = _toy_problem(rng)
        network = _paper_network(rng)
        history = network.fit(
            inputs, labels, TrainingSchedule.constant(10, 1e-2), rng=rng
        )
        assert history.epochs == 10
        assert accuracy(network.predict(inputs), labels) > 0.95

    def test_loss_decreases(self, rng):
        inputs, labels = _toy_problem(rng)
        network = _paper_network(rng)
        history = network.fit(
            inputs, labels, TrainingSchedule.constant(10, 1e-2), rng=rng
        )
        assert history.losses[-1] < history.losses[0]

    def test_predict_proba_rows_sum_to_one(self, rng):
        inputs, labels = _toy_problem(rng)
        network = _paper_network(rng)
        network.fit(inputs, labels, TrainingSchedule.constant(2, 1e-2), rng=rng)
        probs = network.predict_proba(inputs)
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert (probs >= 0).all()

    def test_predict_before_fit_raises(self, rng):
        network = _paper_network(rng)
        with pytest.raises(NotFittedError):
            network.predict(np.zeros((1, 4)))

    def test_deterministic_training(self):
        inputs, labels = _toy_problem(np.random.default_rng(5))
        results = []
        for _ in range(2):
            network = _paper_network(np.random.default_rng(0))
            network.fit(
                inputs,
                labels,
                TrainingSchedule.constant(3, 1e-2),
                rng=np.random.default_rng(1),
            )
            results.append(network.predict_proba(inputs))
        assert np.allclose(results[0], results[1])

    def test_history_records_schedule(self, rng):
        inputs, labels = _toy_problem(rng)
        network = _paper_network(rng)
        schedule = TrainingSchedule.from_pairs([(2, 1e-2), (1, 1e-3)])
        history = network.fit(inputs, labels, schedule, rng=rng)
        assert history.learning_rates == [1e-2, 1e-2, 1e-3]

    def test_input_validation(self, rng):
        network = _paper_network(rng)
        schedule = TrainingSchedule.constant(1, 1e-2)
        with pytest.raises(ConfigurationError):
            network.fit(np.zeros((0, 4)), np.zeros(0), schedule)
        with pytest.raises(ConfigurationError):
            network.fit(np.zeros((2, 4)), np.zeros(3), schedule)
        with pytest.raises(ConfigurationError):
            network.fit(np.zeros((2, 4)), np.zeros(2), schedule, batch_size=0)

    def test_num_parameters(self, rng):
        network = _paper_network(rng)
        # (4*16 + 16) + (16*2 + 2)
        assert network.num_parameters() == 80 + 34

    def test_empty_layer_list_rejected(self):
        with pytest.raises(ConfigurationError):
            Sequential([])


class TestMetrics:
    def test_accuracy_from_labels(self):
        assert accuracy(np.array([1, 0, 1]), np.array([1, 1, 1])) == pytest.approx(2 / 3)

    def test_accuracy_from_scores(self):
        scores = np.array([[0.9, 0.1], [0.2, 0.8]])
        assert accuracy(scores, np.array([0, 1])) == 1.0

    def test_accuracy_empty(self):
        assert accuracy(np.array([]), np.array([])) == 0.0

    def test_confusion_counts(self):
        predictions = np.array([1, 1, 0, 0])
        labels = np.array([1, 0, 1, 0])
        assert confusion_counts(predictions, labels) == (1, 1, 1, 1)
