"""Property-based tests on neural-network training behaviour."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Dense, ReLU, Sequential, TrainingSchedule


def _network(input_dim, hidden, seed):
    rng = np.random.default_rng(seed)
    return Sequential(
        [Dense(input_dim, hidden, rng=rng), ReLU(), Dense(hidden, 2, rng=rng)]
    )


class TestTrainingProperties:
    @given(
        seed=st.integers(0, 50),
        separation=st.floats(1.5, 4.0),
        hidden=st.integers(4, 24),
    )
    @settings(max_examples=10, deadline=None)
    def test_separable_blobs_always_learnable(self, seed, separation, hidden):
        rng = np.random.default_rng(seed)
        half = 60
        x0 = rng.standard_normal((half, 3)) + separation
        x1 = rng.standard_normal((half, 3)) - separation
        inputs = np.vstack([x0, x1])
        labels = np.array([0] * half + [1] * half)
        network = _network(3, hidden, seed)
        # 20 epochs: the hardest corner (hidden=4..6, separation=1.5,
        # any seed <= 50) converges past 0.96; 12 epochs leaves some
        # narrow networks at ~0.78.
        network.fit(inputs, labels, TrainingSchedule.constant(20, 1e-2), rng=rng)
        accuracy = (network.predict(inputs) == labels).mean()
        assert accuracy > 0.9

    @given(seed=st.integers(0, 50))
    @settings(max_examples=10, deadline=None)
    def test_loss_trajectory_descends_on_average(self, seed):
        rng = np.random.default_rng(seed)
        inputs = rng.standard_normal((120, 4))
        labels = (inputs[:, 0] + 0.5 * inputs[:, 1] > 0).astype(int)
        network = _network(4, 16, seed)
        history = network.fit(
            inputs, labels, TrainingSchedule.constant(10, 1e-2), rng=rng
        )
        first_half = np.mean(history.losses[:5])
        second_half = np.mean(history.losses[5:])
        assert second_half < first_half

    @given(seed=st.integers(0, 20), scale=st.floats(0.5, 20.0))
    @settings(max_examples=10, deadline=None)
    def test_probabilities_always_valid(self, seed, scale):
        rng = np.random.default_rng(seed)
        inputs = rng.standard_normal((40, 5)) * scale
        labels = rng.integers(0, 2, 40)
        network = _network(5, 8, seed)
        network.fit(inputs, labels, TrainingSchedule.constant(2, 1e-3), rng=rng)
        probs = network.predict_proba(inputs * scale)
        assert np.isfinite(probs).all()
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert (probs >= 0).all()
