"""Tests for network serialisation."""

import numpy as np
import pytest

from repro.errors import DataError
from repro.nn import Dense, Dropout, ReLU, Sequential, Sigmoid, Tanh
from repro.nn.schedule import TrainingSchedule
from repro.nn.serialize import load_network, save_network


@pytest.fixture()
def trained_network(rng):
    network = Sequential([Dense(4, 8, rng=rng), ReLU(), Dense(8, 2, rng=rng)])
    inputs = rng.standard_normal((60, 4))
    labels = (inputs[:, 0] > 0).astype(int)
    network.fit(inputs, labels, TrainingSchedule.constant(3, 1e-2), rng=rng)
    return network


class TestSerialize:
    def test_roundtrip_predictions(self, trained_network, rng, tmp_path):
        path = tmp_path / "net.npz"
        save_network(trained_network, path)
        loaded = load_network(path)
        inputs = rng.standard_normal((10, 4))
        assert np.allclose(
            trained_network.predict_proba(inputs), loaded.predict_proba(inputs)
        )

    def test_all_layer_kinds(self, rng, tmp_path):
        network = Sequential(
            [Dense(3, 5, rng=rng), Sigmoid(), Dropout(0.2), Dense(5, 4, rng=rng), Tanh(), Dense(4, 2, rng=rng)]
        )
        inputs = rng.standard_normal((30, 3))
        labels = rng.integers(0, 2, 30)
        network.fit(inputs, labels, TrainingSchedule.constant(1, 1e-2), rng=rng)
        path = tmp_path / "net.npz"
        save_network(network, path)
        loaded = load_network(path)
        assert np.allclose(network.predict_proba(inputs), loaded.predict_proba(inputs))

    def test_fitted_flag_preserved(self, rng, tmp_path):
        network = Sequential([Dense(2, 2, rng=rng)])
        path = tmp_path / "net.npz"
        save_network(network, path)
        loaded = load_network(path)
        # Unfitted in, unfitted out: prediction must still be guarded.
        from repro.errors import NotFittedError

        with pytest.raises(NotFittedError):
            loaded.predict(np.zeros((1, 2)))

    def test_missing_file(self, tmp_path):
        with pytest.raises(DataError, match="not found"):
            load_network(tmp_path / "ghost.npz")

    def test_wrong_file(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, stuff=np.zeros(2))
        with pytest.raises(DataError, match="not a network file"):
            load_network(path)
