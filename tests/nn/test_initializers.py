"""Tests for weight initialisers."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn.initializers import get_initializer, glorot_uniform, he_normal, zeros


class TestInitializers:
    def test_he_normal_scale(self, rng):
        weights = he_normal(400, 50, rng)
        assert weights.shape == (400, 50)
        # Std should be close to sqrt(2/fan_in).
        assert weights.std() == pytest.approx(np.sqrt(2.0 / 400), rel=0.15)
        assert abs(weights.mean()) < 0.02

    def test_glorot_uniform_bounds(self, rng):
        weights = glorot_uniform(30, 70, rng)
        limit = np.sqrt(6.0 / 100)
        assert weights.shape == (30, 70)
        assert (np.abs(weights) <= limit).all()

    def test_zeros(self, rng):
        weights = zeros(3, 4, rng)
        assert weights.shape == (3, 4)
        assert not weights.any()

    def test_registry_lookup(self):
        assert get_initializer("he_normal") is he_normal
        assert get_initializer("glorot_uniform") is glorot_uniform
        assert get_initializer("zeros") is zeros

    def test_unknown_initializer(self):
        with pytest.raises(ConfigurationError, match="unknown initializer"):
            get_initializer("fancy")

    def test_deterministic_under_seed(self):
        one = he_normal(5, 5, np.random.default_rng(3))
        two = he_normal(5, 5, np.random.default_rng(3))
        assert np.allclose(one, two)
