"""Layer tests including finite-difference gradient verification."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DimensionError
from repro.nn.activations import ReLU, Sigmoid, Tanh
from repro.nn.layers import Dense, Dropout
from repro.nn.losses import SoftmaxCrossEntropy


def finite_difference_check(layer, inputs, epsilon=1e-6):
    """Compare analytic parameter gradients with central differences.

    The scalar objective is ``sum(layer.forward(x))``; its gradient w.r.t.
    the output is all-ones, which backward() turns into input and
    parameter gradients.
    """
    outputs = layer.forward(inputs, training=False)
    grad_inputs = layer.backward(np.ones_like(outputs))
    # Parameter gradients.
    for param, grad in zip(layer.parameters(), layer.gradients()):
        flat = param.ravel()
        for index in np.random.default_rng(0).choice(
            flat.size, size=min(10, flat.size), replace=False
        ):
            original = flat[index]
            flat[index] = original + epsilon
            up = layer.forward(inputs, training=False).sum()
            flat[index] = original - epsilon
            down = layer.forward(inputs, training=False).sum()
            flat[index] = original
            numeric = (up - down) / (2 * epsilon)
            assert grad.ravel()[index] == pytest.approx(numeric, abs=1e-4)
    # Input gradients.
    flat_inputs = inputs.ravel()
    for index in np.random.default_rng(1).choice(
        flat_inputs.size, size=min(10, flat_inputs.size), replace=False
    ):
        original = flat_inputs[index]
        flat_inputs[index] = original + epsilon
        up = layer.forward(inputs, training=False).sum()
        flat_inputs[index] = original - epsilon
        down = layer.forward(inputs, training=False).sum()
        flat_inputs[index] = original
        numeric = (up - down) / (2 * epsilon)
        assert grad_inputs.ravel()[index] == pytest.approx(numeric, abs=1e-4)


class TestDense:
    def test_forward_shape(self, rng):
        layer = Dense(4, 3, rng=rng)
        out = layer.forward(rng.standard_normal((5, 4)))
        assert out.shape == (5, 3)

    def test_forward_values(self):
        layer = Dense(2, 2)
        layer.weights[...] = np.eye(2)
        layer.bias[...] = [1.0, -1.0]
        out = layer.forward(np.array([[2.0, 3.0]]))
        assert np.allclose(out, [[3.0, 2.0]])

    def test_gradients_match_finite_differences(self, rng):
        layer = Dense(4, 3, rng=rng)
        finite_difference_check(layer, rng.standard_normal((6, 4)))

    def test_wrong_input_width(self, rng):
        layer = Dense(4, 3, rng=rng)
        with pytest.raises(DimensionError):
            layer.forward(rng.standard_normal((5, 7)))

    def test_backward_before_forward(self):
        with pytest.raises(DimensionError):
            Dense(2, 2).backward(np.ones((1, 2)))

    def test_invalid_sizes(self):
        with pytest.raises(ConfigurationError):
            Dense(0, 3)

    def test_parameters_and_gradients_aligned(self, rng):
        layer = Dense(3, 2, rng=rng)
        assert [p.shape for p in layer.parameters()] == [
            g.shape for g in layer.gradients()
        ]


@pytest.mark.parametrize("activation_cls", [ReLU, Sigmoid, Tanh])
class TestActivations:
    def test_gradient_matches_finite_differences(self, activation_cls, rng):
        layer = activation_cls()
        # Avoid the ReLU kink at exactly zero.
        inputs = rng.standard_normal((4, 5)) + 0.1
        inputs[np.abs(inputs) < 1e-3] = 0.5
        finite_difference_check(layer, inputs)

    def test_shape_preserved(self, activation_cls, rng):
        layer = activation_cls()
        inputs = rng.standard_normal((3, 7))
        assert layer.forward(inputs).shape == inputs.shape


class TestActivationValues:
    def test_relu_clips(self):
        out = ReLU().forward(np.array([[-1.0, 0.0, 2.0]]))
        assert np.allclose(out, [[0.0, 0.0, 2.0]])

    def test_sigmoid_range_and_stability(self):
        out = Sigmoid().forward(np.array([[-1000.0, 0.0, 1000.0]]))
        assert np.allclose(out, [[0.0, 0.5, 1.0]], atol=1e-9)

    def test_tanh_odd(self):
        layer = Tanh()
        assert np.allclose(
            layer.forward(np.array([[1.0]])), -layer.forward(np.array([[-1.0]]))
        )


class TestDropout:
    def test_inactive_at_inference(self, rng):
        layer = Dropout(0.5, rng=rng)
        inputs = rng.standard_normal((4, 4))
        assert np.allclose(layer.forward(inputs, training=False), inputs)

    def test_scales_at_training(self, rng):
        layer = Dropout(0.5, rng=rng)
        inputs = np.ones((1000, 1))
        out = layer.forward(inputs, training=True)
        # Inverted dropout keeps the expectation roughly 1.
        assert out.mean() == pytest.approx(1.0, abs=0.1)
        assert set(np.unique(out)) <= {0.0, 2.0}

    def test_backward_uses_same_mask(self, rng):
        layer = Dropout(0.5, rng=rng)
        inputs = np.ones((10, 10))
        out = layer.forward(inputs, training=True)
        grad = layer.backward(np.ones_like(out))
        assert np.allclose(grad, out)

    def test_invalid_rate(self):
        with pytest.raises(ConfigurationError):
            Dropout(1.0)


class TestSoftmaxCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        loss = SoftmaxCrossEntropy()
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        assert loss.forward(logits, np.array([0, 1])) < 1e-6

    def test_uniform_prediction_log2(self):
        loss = SoftmaxCrossEntropy()
        value = loss.forward(np.zeros((4, 2)), np.array([0, 1, 0, 1]))
        assert value == pytest.approx(np.log(2))

    def test_gradient_matches_finite_differences(self, rng):
        loss = SoftmaxCrossEntropy()
        logits = rng.standard_normal((5, 3))
        labels = np.array([0, 1, 2, 1, 0])
        loss.forward(logits, labels)
        analytic = loss.backward()
        epsilon = 1e-6
        for i in range(logits.shape[0]):
            for j in range(logits.shape[1]):
                perturbed = logits.copy()
                perturbed[i, j] += epsilon
                up = loss.forward(perturbed, labels)
                perturbed[i, j] -= 2 * epsilon
                down = loss.forward(perturbed, labels)
                numeric = (up - down) / (2 * epsilon)
                assert analytic[i, j] == pytest.approx(numeric, abs=1e-5)

    def test_label_validation(self):
        loss = SoftmaxCrossEntropy()
        with pytest.raises(DimensionError):
            loss.forward(np.zeros((2, 2)), np.array([0, 5]))
        with pytest.raises(DimensionError):
            loss.forward(np.zeros((2, 2)), np.array([0]))
        with pytest.raises(DimensionError):
            loss.forward(np.zeros(4), np.array([0]))

    def test_backward_before_forward(self):
        with pytest.raises(DimensionError):
            SoftmaxCrossEntropy().backward()
