"""Tests for the numeric health guards."""

import numpy as np
import pytest

from repro.errors import NumericError, TrainingDivergedError
from repro.nn.activations import ReLU
from repro.nn.guards import assert_finite, check_loss, fraction_nonfinite
from repro.nn.layers import Dense
from repro.nn.network import Sequential
from repro.nn.schedule import TrainingSchedule
from repro.testing import corrupt_with_nan


class TestAssertFinite:
    def test_finite_array_passes_through(self):
        array = np.arange(6.0).reshape(2, 3)
        assert assert_finite(array, "x") is array

    def test_empty_array_passes(self):
        assert_finite(np.zeros((0, 4)), "empty")

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_nonfinite_raises_with_location(self, bad):
        array = np.zeros((3, 3))
        array[1, 2] = bad
        with pytest.raises(NumericError) as excinfo:
            assert_finite(array, "features")
        message = str(excinfo.value)
        assert "features" in message
        assert "(1, 2)" in message

    def test_fraction_nonfinite(self):
        array = np.zeros(10)
        array[:3] = np.nan
        assert fraction_nonfinite(array) == pytest.approx(0.3)
        assert fraction_nonfinite(np.zeros(0)) == 0.0


class TestCheckLoss:
    def test_finite_loss_passes(self):
        assert check_loss(0.25, 3) == 0.25

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_nonfinite_loss_raises(self, bad):
        with pytest.raises(TrainingDivergedError) as excinfo:
            check_loss(bad, epoch=4)
        assert "epoch 4" in str(excinfo.value)


class TestNetworkGuards:
    def _network(self, rng):
        return Sequential([Dense(4, 8, rng=rng), ReLU(), Dense(8, 2, rng=rng)])

    def test_nan_inputs_rejected_before_training(self):
        rng = np.random.default_rng(0)
        network = self._network(rng)
        inputs = corrupt_with_nan(rng.normal(size=(32, 4)))
        labels = np.zeros(32, dtype=np.int64)
        with pytest.raises(NumericError):
            network.fit(
                inputs, labels, schedule=TrainingSchedule.constant(1, 1e-3)
            )

    def test_divergence_raises_training_diverged(self):
        rng = np.random.default_rng(0)
        network = self._network(rng)
        # Poison one weight so the very first epoch's loss is non-finite.
        network.layers[0].parameters()[0][0, 0] = np.inf
        inputs = rng.normal(size=(32, 4))
        labels = (rng.random(32) > 0.5).astype(np.int64)
        with np.errstate(all="ignore"), pytest.raises(TrainingDivergedError):
            network.fit(
                inputs, labels, schedule=TrainingSchedule.constant(2, 1e-3)
            )

    def test_classifier_rejects_nan_features(self):
        from repro.core import LeapmeConfig
        from repro.core.classifier import LeapmeClassifier

        rng = np.random.default_rng(1)
        features = corrupt_with_nan(rng.normal(size=(40, 5)))
        labels = (rng.random(40) > 0.5).astype(np.int64)
        classifier = LeapmeClassifier(
            LeapmeConfig(hidden_sizes=(4,), schedule=TrainingSchedule.constant(1, 1e-3))
        )
        with pytest.raises(NumericError):
            classifier.fit(features, labels)


class TestCorruptWithNan:
    def test_corrupts_at_least_one_entry(self):
        corrupted = corrupt_with_nan(np.zeros((2, 2)), fraction=0.0)
        assert np.isnan(corrupted).sum() == 1

    def test_original_untouched(self):
        array = np.zeros(8)
        corrupt_with_nan(array, fraction=0.5)
        assert np.isfinite(array).all()

    def test_deterministic_given_rng(self):
        array = np.zeros(20)
        first = corrupt_with_nan(array, 0.25, np.random.default_rng(5))
        second = corrupt_with_nan(array, 0.25, np.random.default_rng(5))
        np.testing.assert_array_equal(np.isnan(first), np.isnan(second))
