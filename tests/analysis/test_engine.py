"""Engine behaviour: discovery, parallel determinism, JSON, exit codes."""

import json

import pytest

from repro.analysis import analyze_paths, analyze_source, discover_files
from repro.analysis.baseline import Baseline
from repro.analysis.report import (
    EXIT_CLEAN,
    EXIT_ERROR,
    EXIT_VIOLATIONS,
    render_human,
    render_json,
)
from repro.cli import main as cli_main
from repro.errors import ReproError

from tests.analysis import fixtures

GOOD = "def add(a, b):\n    return a + b\n"


def make_tree(root):
    """A small mixed tree: bad files, good files, and noise to skip."""
    package = root / "pkg"
    package.mkdir()
    (package / "bad_write.py").write_text(fixtures.REP002_BAD_OPEN)
    (package / "bad_random.py").write_text(fixtures.REP001_BAD_NUMPY)
    for index in range(10):
        (package / f"good_{index}.py").write_text(GOOD)
    (package / "notes.txt").write_text("not python")
    cache = package / "__pycache__"
    cache.mkdir()
    (cache / "bad_write.py").write_text(fixtures.REP002_BAD_OPEN)
    return package


class TestDiscovery:
    def test_discovers_py_files_only_and_skips_cache_dirs(self, tmp_path):
        package = make_tree(tmp_path)
        files = discover_files([package])
        names = {path.name for path in files}
        assert "bad_write.py" in names and "good_0.py" in names
        assert "notes.txt" not in names
        assert all("__pycache__" not in path.parts for path in files)

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(ReproError):
            discover_files([tmp_path / "absent"])

    def test_single_file_path(self, tmp_path):
        target = tmp_path / "one.py"
        target.write_text(GOOD)
        assert discover_files([target]) == [target]


class TestParallelDeterminism:
    def test_parallel_equals_serial(self, tmp_path, monkeypatch):
        package = make_tree(tmp_path)
        monkeypatch.chdir(tmp_path)
        serial = analyze_paths([package], jobs=1)
        parallel = analyze_paths([package], jobs=4)
        # The engine's own invariant: jobs only changes wall-clock.
        assert serial.violations == parallel.violations
        assert [f.path for f in serial.files] == [f.path for f in parallel.files]
        assert serial.suppressed == parallel.suppressed

    def test_unknown_rule_code_raises(self, tmp_path):
        target = tmp_path / "one.py"
        target.write_text(GOOD)
        with pytest.raises(ReproError):
            analyze_paths([target], select=("REP999",))


class TestSyntaxErrors:
    def test_unparsable_file_reports_rep000(self):
        report = analyze_source("def broken(:\n", path="pkg/broken.py")
        assert report.error is not None
        assert [v.rule for v in report.violations] == ["REP000"]

    def test_syntax_error_does_not_hide_other_files(self, tmp_path):
        (tmp_path / "broken.py").write_text("def broken(:\n")
        (tmp_path / "bad.py").write_text(fixtures.REP002_BAD_OPEN)
        report = analyze_paths([tmp_path], jobs=1)
        rules = {v.rule for v in report.violations}
        assert {"REP000", "REP002"} <= rules


class TestJsonSchema:
    def payload(self, tmp_path, monkeypatch):
        package = make_tree(tmp_path)
        monkeypatch.chdir(tmp_path)
        report = analyze_paths([package], jobs=1)
        match = Baseline().apply(report.violations)
        return json.loads(render_json(report, match))

    def test_document_fields(self, tmp_path, monkeypatch):
        document = self.payload(tmp_path, monkeypatch)
        assert document["version"] == 1
        assert document["files_analyzed"] == 12
        assert document["exit_code"] == EXIT_VIOLATIONS
        assert set(document["counts"]) == {
            "fresh", "suppressed", "baselined", "stale_baseline"
        }
        assert document["by_rule"]["REP002"] >= 1
        codes = {rule["code"] for rule in document["rules"]}
        assert {"REP001", "REP008"} <= codes

    def test_violation_fields(self, tmp_path, monkeypatch):
        document = self.payload(tmp_path, monkeypatch)
        violation = document["violations"][0]
        assert set(violation) == {
            "path", "line", "col", "rule", "message", "snippet"
        }
        # Paths are cwd-relative and posix so CI output is stable.
        assert not violation["path"].startswith("/")


class TestCliExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "one.py"
        target.write_text(GOOD)
        assert cli_main(["lint", str(target), "--no-baseline"]) == EXIT_CLEAN
        assert "clean" in capsys.readouterr().out

    def test_violations_exit_one(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text(fixtures.REP002_BAD_OPEN)
        assert cli_main(["lint", str(target), "--no-baseline"]) == EXIT_VIOLATIONS
        out = capsys.readouterr().out
        assert "REP002" in out

    def test_usage_error_exits_two(self, tmp_path, capsys):
        target = tmp_path / "one.py"
        target.write_text(GOOD)
        code = cli_main(
            ["lint", str(target), "--select", "REP999", "--no-baseline"]
        )
        assert code == EXIT_ERROR

    def test_json_flag_emits_document(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text(fixtures.REP002_BAD_OPEN)
        code = cli_main(["lint", str(target), "--no-baseline", "--json"])
        assert code == EXIT_VIOLATIONS
        document = json.loads(capsys.readouterr().out)
        assert document["counts"]["fresh"] >= 1

    def test_write_baseline_then_clean(self, tmp_path, capsys, monkeypatch):
        # REP003 is baselineable; REP001/REP002/REP013 are not (below).
        monkeypatch.chdir(tmp_path)
        target = tmp_path / "bad.py"
        target.write_text(fixtures.REP003_BAD)
        baseline = tmp_path / "baseline.json"
        assert cli_main(
            ["lint", str(target), "--baseline", str(baseline), "--write-baseline"]
        ) == EXIT_CLEAN
        capsys.readouterr()
        assert cli_main(
            ["lint", str(target), "--baseline", str(baseline)]
        ) == EXIT_CLEAN
        assert "baselined" in capsys.readouterr().out

    def test_stale_baseline_entry_fails(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        target = tmp_path / "bad.py"
        target.write_text(fixtures.REP003_BAD)
        baseline = tmp_path / "baseline.json"
        cli_main(
            ["lint", str(target), "--baseline", str(baseline), "--write-baseline"]
        )
        target.write_text(GOOD)  # the grandfathered finding is fixed
        capsys.readouterr()
        code = cli_main(["lint", str(target), "--baseline", str(baseline)])
        assert code == EXIT_VIOLATIONS
        assert "stale" in capsys.readouterr().out

    def test_write_baseline_refuses_never_baselined_rules(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        target = tmp_path / "bad.py"
        target.write_text(fixtures.REP002_BAD_OPEN)
        baseline = tmp_path / "baseline.json"
        code = cli_main(
            ["lint", str(target), "--baseline", str(baseline), "--write-baseline"]
        )
        assert code == EXIT_VIOLATIONS
        out = capsys.readouterr().out
        assert "refused" in out and "REP002" in out
        assert json.loads(baseline.read_text())["entries"] == []

    def test_hand_edited_baseline_with_banned_rule_is_rejected(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        target = tmp_path / "bad.py"
        target.write_text(fixtures.REP002_BAD_OPEN)
        baseline = tmp_path / "baseline.json"
        entry = {
            "path": "bad.py", "rule": "REP002", "line": 2,
            "snippet": 'with open(path, "w") as handle:',
        }
        baseline.write_text(json.dumps({"version": 1, "entries": [entry]}))
        code = cli_main(["lint", str(target), "--baseline", str(baseline)])
        assert code == EXIT_ERROR

    def test_list_rules(self, capsys):
        assert cli_main(["lint", "--list-rules"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        assert "REP001" in out and "REP008" in out


class TestHumanRendering:
    def test_human_output_lists_finding_and_summary(self):
        report_file = analyze_source(
            fixtures.REP002_BAD_OPEN, path="pkg/bad.py"
        )
        from repro.analysis.engine import AnalysisReport

        report = AnalysisReport(files=[report_file])
        match = Baseline().apply(report.violations)
        text = render_human(report, match)
        assert "pkg/bad.py:2" in text
        assert "REP002" in text
        assert "1 violation(s)" in text
