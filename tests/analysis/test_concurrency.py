"""Project-level concurrency analysis: cross-module closure, the lock
graph in the report, thread-root discovery, and noqa merging.

Single-module behaviour (one rule, one snippet) lives in
test_rules.py; these tests exercise what only the whole-project pass
can see.
"""

from pathlib import Path

import pytest

from repro.analysis import analyze_paths

REPO_ROOT = Path(__file__).resolve().parents[2]

CONCURRENCY_CODES = ("REP012", "REP013", "REP014", "REP015")

STATS_MODULE = """\
import threading

class Stats:
    def __init__(self):
        self._lock = threading.Lock()
        self.total = 0

    def record(self):
        self.total += 1

    def reset(self):
        with self._lock:
            self.total = 0
"""

DRIVER_MODULE = """\
import threading

from repro.serve import stats

def start(tracker):
    for _ in range(4):
        worker = threading.Thread(target=tracker.record)
        worker.start()
"""


def write_tree(root, files):
    for relative, source in files.items():
        path = root / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    return root


class TestCrossModuleClosure:
    def test_write_fires_only_when_the_spawning_module_is_analysed(
        self, tmp_path
    ):
        # Alone, stats.py has no thread roots: nothing races, REP012
        # stays silent.  Adding driver.py (which spawns threads at
        # Stats.record through the import-aware call graph) makes the
        # same write a finding -- the defining cross-module case.
        write_tree(tmp_path, {"src/repro/serve/stats.py": STATS_MODULE})
        alone = analyze_paths(
            [tmp_path / "src"], jobs=1, select=CONCURRENCY_CODES
        )
        assert alone.violations == []

        write_tree(tmp_path, {"src/repro/serve/driver.py": DRIVER_MODULE})
        together = analyze_paths(
            [tmp_path / "src"], jobs=1, select=CONCURRENCY_CODES
        )
        assert [v.rule for v in together.violations] == ["REP012"]
        violation = together.violations[0]
        assert violation.path.endswith("stats.py")
        assert "total" in violation.message

    def test_thread_roots_cover_both_modules(self, tmp_path):
        write_tree(tmp_path, {
            "src/repro/serve/stats.py": STATS_MODULE,
            "src/repro/serve/driver.py": DRIVER_MODULE,
        })
        report = analyze_paths(
            [tmp_path / "src"], jobs=1, select=CONCURRENCY_CODES
        )
        roots = {
            entry["function"]: entry
            for entry in report.concurrency["thread_roots"]
        }
        assert "repro.serve.stats.Stats.record" in roots
        assert roots["repro.serve.stats.Stats.record"]["multi"] is True

    def test_noqa_on_the_write_line_merges_into_suppressed(self, tmp_path):
        patched = STATS_MODULE.replace(
            "        self.total += 1",
            "        self.total += 1  # repro: noqa[REP012] demo counter, exactness not needed",
        )
        write_tree(tmp_path, {
            "src/repro/serve/stats.py": patched,
            "src/repro/serve/driver.py": DRIVER_MODULE,
        })
        report = analyze_paths(
            [tmp_path / "src"], jobs=1, select=CONCURRENCY_CODES
        )
        assert report.violations == []
        assert report.suppressed == 1

    def test_lock_cycle_lands_in_the_report_graph(self, tmp_path):
        source = (
            "import threading\n"
            "class Transfer:\n"
            "    def __init__(self):\n"
            "        self._credit = threading.Lock()\n"
            "        self._debit = threading.Lock()\n"
            "    def deposit(self):\n"
            "        with self._credit:\n"
            "            with self._debit:\n"
            "                return 1\n"
            "    def withdraw(self):\n"
            "        with self._debit:\n"
            "            with self._credit:\n"
            "                return 2\n"
        )
        write_tree(tmp_path, {"src/repro/serve/ledger.py": source})
        report = analyze_paths(
            [tmp_path / "src"], jobs=1, select=CONCURRENCY_CODES
        )
        assert [v.rule for v in report.violations] == ["REP013"]
        graph = report.concurrency["lock_order"]
        assert graph["acyclic"] is False
        assert graph["cycles"], "cycle list must name the deadlock"
        assert {"Transfer._credit", "Transfer._debit"} <= set(graph["cycles"][0])

    def test_concurrency_key_absent_without_project_rules(self, tmp_path):
        write_tree(tmp_path, {"src/repro/serve/stats.py": STATS_MODULE})
        report = analyze_paths(
            [tmp_path / "src"], jobs=1, select=("REP003",)
        )
        assert report.concurrency is None


@pytest.fixture(scope="module")
def src_report():
    """One concurrency-only pass over the real package."""
    import os

    cwd = os.getcwd()
    os.chdir(REPO_ROOT)
    try:
        return analyze_paths(["src"], select=CONCURRENCY_CODES)
    finally:
        os.chdir(cwd)


class TestRealSourceTree:
    """The acceptance contract: the shipped tree is clean and its lock
    graph is acyclic with the documented canonical order."""

    def test_no_unsuppressed_findings(self, src_report):
        assert src_report.violations == [], "\n".join(
            v.describe() for v in src_report.violations
        )

    def test_lock_graph_is_acyclic(self, src_report):
        graph = src_report.concurrency["lock_order"]
        assert graph["acyclic"] is True
        assert graph["cycles"] == []

    def test_known_locks_are_discovered(self, src_report):
        locks = set(src_report.concurrency["locks"])
        assert {
            "TenantRegistry._lock",
            "TenantRegistry._reload_lock",
            "AdmissionQueue._cond",
        } <= locks

    def test_canonical_order_reload_before_tenant_lock(self, src_report):
        edges = {
            (edge["from"], edge["to"])
            for edge in src_report.concurrency["lock_order"]["edges"]
        }
        assert ("TenantRegistry._reload_lock", "TenantRegistry._lock") in edges
        assert ("TenantRegistry._lock", "TenantRegistry._reload_lock") not in edges

    def test_thread_roots_include_handlers_and_daemon(self, src_report):
        roots = {
            entry["function"]: entry
            for entry in src_report.concurrency["thread_roots"]
        }
        assert roots["repro.serve.server._Handler.do_POST"]["kind"] == "handler"
        assert roots["repro.serve.server._Handler.do_POST"]["multi"] is True
        assert roots["repro.ingest.daemon.FollowDaemon.run"]["kind"] == "daemon"
        signal_roots = [
            entry for entry in roots.values() if entry["kind"] == "signal"
        ]
        assert signal_roots, "signal handlers must be discovered as roots"
