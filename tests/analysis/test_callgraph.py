"""The cross-module call graph: resolution rules and closure correctness.

The property tests build random multi-module programs whose true call
graph is known by construction (globally unique function names, calls
either bare within a module or dotted through an import), then check
:meth:`CallGraph.closure` against an independent BFS over the drawn
edges.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.callgraph import GENERIC_METHOD_NAMES, CallGraph
from repro.analysis.visitor import ModuleContext


def build_graph(sources):
    """``{module index: source}`` -> CallGraph over ``repro.gen.mod{i}``."""
    contexts = [
        ModuleContext(f"src/repro/gen/mod{index}.py", source)
        for index, source in sorted(sources.items())
    ]
    return CallGraph.from_modules(contexts)


def qual(index, name):
    return f"repro.gen.mod{index}.{name}"


# ---------------------------------------------------------------- units


class TestResolution:
    def test_bare_name_resolves_to_module_level(self):
        graph = build_graph({0: "def helper():\n    pass\ndef caller():\n    helper()\n"})
        assert graph.callees(qual(0, "caller")) == {qual(0, "helper")}

    def test_dotted_call_resolves_through_import(self):
        graph = build_graph({
            0: "def target():\n    pass\n",
            1: "from repro.gen import mod0\ndef caller():\n    mod0.target()\n",
        })
        assert graph.callees(qual(1, "caller")) == {qual(0, "target")}

    def test_from_import_of_function(self):
        graph = build_graph({
            0: "def target():\n    pass\n",
            1: "from repro.gen.mod0 import target\ndef caller():\n    target()\n",
        })
        assert graph.callees(qual(1, "caller")) == {qual(0, "target")}

    def test_self_method_resolves_within_class(self):
        source = (
            "class Box:\n"
            "    def fill(self):\n"
            "        self.check()\n"
            "    def check(self):\n"
            "        pass\n"
        )
        graph = build_graph({0: source})
        assert graph.callees(qual(0, "Box.fill")) == {qual(0, "Box.check")}

    def test_class_call_resolves_to_init(self):
        source = (
            "class Box:\n"
            "    def __init__(self):\n"
            "        pass\n"
            "def make():\n"
            "    return Box()\n"
        )
        graph = build_graph({0: source})
        assert graph.callees(qual(0, "make")) == {qual(0, "Box.__init__")}

    def test_nested_def_resolves_before_module_level(self):
        source = (
            "def helper():\n"
            "    pass\n"
            "def outer():\n"
            "    def helper():\n"
            "        pass\n"
            "    helper()\n"
        )
        graph = build_graph({0: source})
        assert graph.callees(qual(0, "outer")) == {qual(0, "outer.helper")}

    def test_nested_def_body_belongs_to_the_nested_node(self):
        source = (
            "def leaf():\n"
            "    pass\n"
            "def outer():\n"
            "    def inner():\n"
            "        leaf()\n"
            "    return inner\n"
        )
        graph = build_graph({0: source})
        assert graph.callees(qual(0, "outer")) == set()
        assert graph.callees(qual(0, "outer.inner")) == {qual(0, "leaf")}

    def test_untyped_receiver_falls_back_to_name_match(self):
        graph = build_graph({
            0: "class Worker:\n    def process(self):\n        pass\n",
            1: "def drive(worker):\n    worker.process()\n",
        })
        assert graph.callees(qual(1, "drive")) == {qual(0, "Worker.process")}

    def test_generic_method_names_do_not_match_by_name(self):
        assert "get" in GENERIC_METHOD_NAMES
        graph = build_graph({
            0: "class Cache:\n    def get(self):\n        pass\n",
            1: "def drive(mapping):\n    mapping.get()\n",
        })
        assert graph.callees(qual(1, "drive")) == set()

    def test_dunder_calls_do_not_match_by_name(self):
        # ``super().__init__`` must not edge into every class in the
        # program; only explicit ``ClassName()`` calls reach __init__.
        graph = build_graph({
            0: "class Base:\n    def __init__(self):\n        pass\n",
            1: "class Sub:\n    def __init__(self):\n        super().__init__()\n",
        })
        assert graph.callees(qual(1, "Sub.__init__")) == set()

    def test_self_cycle_edges_are_dropped(self):
        graph = build_graph({0: "def loop():\n    loop()\n"})
        assert graph.callees(qual(0, "loop")) == set()
        assert graph.closure([qual(0, "loop")]) == {qual(0, "loop")}


# ----------------------------------------------------------- properties


@st.composite
def random_programs(draw):
    """A random module set with a known-by-construction call graph.

    Function names are globally unique (``m{i}_f{j}``), so every drawn
    edge is resolvable and no accidental name collision adds edges the
    reference graph does not know about.
    """
    n_modules = draw(st.integers(2, 4))
    sizes = [draw(st.integers(1, 3)) for _ in range(n_modules)]
    names = [
        [f"m{index}_f{offset}" for offset in range(size)]
        for index, size in enumerate(sizes)
    ]
    flat = [
        (index, name) for index, module in enumerate(names) for name in module
    ]
    n_edges = draw(st.integers(0, min(10, len(flat) * (len(flat) - 1))))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, len(flat) - 1), st.integers(0, len(flat) - 1)
            ),
            min_size=n_edges,
            max_size=n_edges,
        )
    )
    edges = {(a, b) for a, b in edges if a != b}
    roots = draw(st.sets(st.integers(0, len(flat) - 1), max_size=3))
    return names, flat, edges, roots


def render_sources(names, flat, edges):
    sources = {}
    for index, module_names in enumerate(names):
        lines = [
            f"from repro.gen import mod{other}"
            for other in range(len(names))
            if other != index
        ]
        for name in module_names:
            caller = flat.index((index, name))
            lines.append(f"def {name}():")
            body = []
            for a, b in sorted(edges):
                if a != caller:
                    continue
                callee_module, callee_name = flat[b]
                if callee_module == index:
                    body.append(f"    {callee_name}()")
                else:
                    body.append(f"    mod{callee_module}.{callee_name}()")
            lines.extend(body or ["    pass"])
        sources[index] = "\n".join(lines) + "\n"
    return sources


def reference_closure(flat, edges, roots):
    seen = set()
    stack = list(roots)
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        stack.extend(b for a, b in edges if a == current)
    return {qual(*flat[index]) for index in seen}


class TestClosureProperties:
    @given(random_programs())
    @settings(max_examples=60, deadline=None)
    def test_edges_match_the_drawn_program(self, program):
        names, flat, edges, _roots = program
        graph = build_graph(render_sources(names, flat, edges))
        expected = {}
        for a, b in edges:
            expected.setdefault(qual(*flat[a]), set()).add(qual(*flat[b]))
        for index, name in flat:
            assert graph.callees(qual(index, name)) == expected.get(
                qual(index, name), set()
            )

    @given(random_programs())
    @settings(max_examples=60, deadline=None)
    def test_closure_equals_reference_bfs(self, program):
        names, flat, edges, roots = program
        graph = build_graph(render_sources(names, flat, edges))
        got = graph.closure(qual(*flat[index]) for index in roots)
        assert got == reference_closure(flat, edges, roots)

    @given(random_programs())
    @settings(max_examples=30, deadline=None)
    def test_closure_is_monotone_in_roots(self, program):
        names, flat, edges, roots = program
        graph = build_graph(render_sources(names, flat, edges))
        all_roots = [qual(*flat[index]) for index in range(len(flat))]
        subset = graph.closure(qual(*flat[index]) for index in roots)
        assert subset <= graph.closure(all_roots)
