"""Paired good/bad snippets for every REP rule.

Each rule has at least one BAD snippet the rule must fire on (with the
expected line) and a GOOD twin encoding the sanctioned idiom the rule
must stay silent on.  Snippets live as strings (not importable files)
so ``repro lint tests`` never trips over its own fixtures.
"""

# ---------------------------------------------------------------- REP001

REP001_BAD_NUMPY = """\
import numpy as np

def shuffled_split(items):
    np.random.shuffle(items)
    return items
"""
REP001_BAD_NUMPY_LINE = 4

REP001_BAD_NUMPY_SEED = """\
import numpy

def reseed():
    numpy.random.seed(0)
"""

REP001_BAD_STDLIB = """\
import random

def jitter():
    return random.random() * 0.5
"""

REP001_BAD_FROM_IMPORT = """\
from random import shuffle

def mix(items):
    shuffle(items)
"""

REP001_GOOD = """\
import random

import numpy as np

def shuffled_split(items, seed, repetition):
    rng = np.random.default_rng((seed, repetition))
    rng.shuffle(items)
    local = random.Random(seed)
    return items, local.random()
"""

# ---------------------------------------------------------------- REP002

REP002_BAD_OPEN = """\
def dump(path, text):
    with open(path, "w") as handle:
        handle.write(text)
"""
REP002_BAD_OPEN_LINE = 2

REP002_BAD_PATH_OPEN = """\
from pathlib import Path

def dump(path, rows):
    with Path(path).open("w", newline="") as handle:
        handle.write(rows)
"""

REP002_BAD_WRITE_TEXT = """\
from pathlib import Path

def dump(path, text):
    Path(path).write_text(text)
"""

REP002_BAD_APPEND_MODE = """\
def log(path, line):
    with open(path, mode="a") as handle:
        handle.write(line)
"""

REP002_GOOD = """\
from repro.ioutils import atomic_open_text, atomic_write_text

def load(path):
    with open(path) as handle:
        return handle.read()

def dump(path, text):
    atomic_write_text(path, text)

def dump_rows(path, rows):
    with atomic_open_text(path, newline="") as handle:
        handle.write(rows)
"""

# ---------------------------------------------------------------- REP003

REP003_BAD = """\
import time

def expired(started, budget):
    return time.time() - started > budget
"""
REP003_BAD_LINE = 4

REP003_GOOD = """\
import time

def expired(started, budget):
    return time.monotonic() - started > budget
"""

# ---------------------------------------------------------------- REP004

REP004_BAD = """\
def at_threshold(score):
    return score == 0.5
"""
REP004_BAD_LINE = 2

REP004_BAD_NEGATIVE = """\
def is_sentinel(value):
    return value != -1.0
"""

REP004_GOOD = """\
import math

def safe_ratio(num, denom):
    if denom == 0.0:
        return 0.0
    return num / denom

def at_threshold(score):
    return math.isclose(score, 0.5)
"""

# ---------------------------------------------------------------- REP005

REP005_BAD_PASS = """\
def load(path):
    try:
        return open(path).read()
    except Exception:
        pass
"""
REP005_BAD_PASS_LINE = 4

REP005_BAD_BARE = """\
def load(path):
    try:
        return open(path).read()
    except:
        return None
"""

REP005_GOOD = """\
import logging

logger = logging.getLogger(__name__)

def load(path):
    try:
        return open(path).read()
    except Exception:
        logger.exception("load failed")
        raise

def load_or_none(path):
    try:
        return open(path).read()
    except Exception as error:
        logger.warning("load failed: %s", error)
        return None

def isolate(run):
    last_error = None
    try:
        return run()
    except Exception as error:
        last_error = error
    return last_error
"""

# ---------------------------------------------------------------- REP006

REP006_BAD = """\
def _execute(item, journal):
    outcome = item * 2
    journal.append(outcome)
    return outcome

def run(pool, items, journal):
    return [pool.submit(_execute, item, journal) for item in items]
"""
REP006_BAD_LINE = 3

REP006_BAD_HELPER = """\
from repro.ioutils import fsync_append_line

def _worker_record(path, line):
    fsync_append_line(path, line)
"""

REP006_GOOD = """\
def _execute(item):
    return item * 2

def run(pool, items, journal):
    futures = [pool.submit(_execute, item) for item in items]
    for future in futures:
        journal.append(future.result())
"""

# ---------------------------------------------------------------- REP007

REP007_BAD = """\
def collect(item, bucket=[]):
    bucket.append(item)
    return bucket
"""
REP007_BAD_LINE = 1

REP007_BAD_DICT_CALL = """\
def tally(item, counts=dict()):
    counts[item] = counts.get(item, 0) + 1
    return counts
"""

REP007_GOOD = """\
def collect(item, bucket=None):
    if bucket is None:
        bucket = []
    bucket.append(item)
    return bucket

def label(item, suffix=""):
    return item + suffix
"""

# ---------------------------------------------------------------- REP008

REP008_BAD = """\
_CACHE: dict = {}

def _execute(item):
    return _CACHE.get(item)

def run(pool, items):
    for item in items:
        _CACHE[item] = prepare(item)
        pool.submit(_execute, item)
"""
REP008_BAD_LINE = 8

REP008_GOOD = """\
_CACHE: dict = {}

def _init_worker(payload):
    _CACHE.clear()
    _CACHE.update(payload)

def _execute(item):
    return _CACHE.get(item)

def run(pool_factory, items, payload):
    pool = pool_factory(initializer=_init_worker, initargs=(payload,))
    return [pool.submit(_execute, item) for item in items]
"""

# A module with no worker entry points may manage module state freely.
REP008_GOOD_NOT_WORKER = """\
_REGISTRY: dict = {}

def register(name, value):
    _REGISTRY[name] = value
"""


# ---------------------------------------------------------------- REP009

REP009_BAD = """\
from pathlib import Path

from repro.core.pipeline import FeatureStage

class LoggingStage(FeatureStage):
    name = "logging"
    level = "property"

    def compute(self, ctx, ref, values):
        row = self._row(values)
        Path("stage.log").write_text(str(ref))
        return row
"""
REP009_BAD_LINE = 11

REP009_BAD_IMPORT = """\
from repro.core.pipeline import FeatureStage
from repro.evaluation.parallel import run_grid

class GridAwareStage(FeatureStage):
    name = "grid_aware"
    level = "pair"
"""
REP009_BAD_IMPORT_LINE = 2

REP009_BAD_FROM_REPRO = """\
from repro import evaluation
from repro.core.pipeline import FeatureStage

class PeekingStage(FeatureStage):
    name = "peeking"
    level = "pair"
"""

REP009_GOOD = """\
import numpy as np

from repro.core.pipeline import FeatureStage

class TokenCountStage(FeatureStage):
    name = "token_count"
    level = "property"

    def width(self, dimension):
        return 1

    def compute(self, ctx, ref, values):
        return np.array([float(sum(len(v.split()) for v in values))])
"""

# Evaluation code may freely use the pipeline -- the ban is one-way.
REP009_GOOD_NO_STAGE = """\
from repro.evaluation import evaluate_matcher
from repro.core.pipeline import FeaturePipeline

def run(matcher, dataset):
    return evaluate_matcher(matcher, dataset)
"""


# ---------------------------------------------------------------- REP010

REP010_BAD_SLEEP = """\
import time

def follow(watcher):
    while True:
        watcher.poll()
        time.sleep(0.5)
"""
REP010_BAD_SLEEP_LINE = 6

REP010_BAD_SPIN = """\
def follow(watcher):
    while True:
        watcher.poll()
"""
REP010_BAD_SPIN_LINE = 2

REP010_GOOD = """\
def follow(watcher, stop_event, poll_interval):
    while True:
        if stop_event.is_set():
            break
        watcher.poll()
        stop_event.wait(poll_interval)
"""

# A conditioned loop needs no body-level stop check: the condition IS
# the stop check.
REP010_GOOD_CONDITIONED = """\
def follow(watcher, stop_event, poll_interval):
    while not stop_event.is_set():
        watcher.poll()
        stop_event.wait(poll_interval)
"""


# ---------------------------------------------------------------- REP011

REP011_BAD_QUEUE = """\
import queue

def build_backlog():
    return queue.Queue()
"""
REP011_BAD_QUEUE_LINE = 4

REP011_BAD_SIMPLEQUEUE = """\
import queue

def build_backlog():
    return queue.SimpleQueue()
"""
REP011_BAD_SIMPLEQUEUE_LINE = 4

REP011_BAD_DEQUE = """\
import collections

def build_buffer():
    return collections.deque()
"""
REP011_BAD_DEQUE_LINE = 4

REP011_BAD_BLOCKING_GET = """\
def take(work_queue):
    return work_queue.get()
"""
REP011_BAD_BLOCKING_GET_LINE = 2

REP011_BAD_BLOCKING_ACCEPT = """\
def acceptor(listener):
    while True:
        connection, _ = listener.accept()
        connection.close()
"""
REP011_BAD_BLOCKING_ACCEPT_LINE = 3

REP011_BAD_SLEEP = """\
import time

def drain(pending):
    while pending:
        time.sleep(0.5)
"""
REP011_BAD_SLEEP_LINE = 5

REP011_GOOD = """\
import queue

def build_backlog(limit):
    return queue.Queue(maxsize=limit)

def take(work_queue, deadline):
    return work_queue.get(timeout=deadline)

def handle(stop_event, cond, remaining, interval):
    with cond:
        cond.wait(min(remaining, interval))
    while not stop_event.is_set():
        stop_event.wait(interval)
"""

# A deque with an explicit bound is a legitimate ring buffer.
REP011_GOOD_BOUNDED_DEQUE = """\
import collections

def recent_errors(limit):
    return collections.deque(maxlen=limit)
"""


# ---------------------------------------------------------------- REP012

REP012_BAD_RMW = """\
import threading

class Stats:
    def __init__(self):
        self._lock = threading.Lock()
        self.total = 0

    def record(self):
        self.total += 1

    def reset(self):
        with self._lock:
            self.total = 0

def start(stats):
    for _ in range(4):
        worker = threading.Thread(target=stats.record)
        worker.start()
"""
REP012_BAD_RMW_LINE = 9

REP012_BAD_INCONSISTENT = """\
import threading

class Gauge:
    def __init__(self):
        self._lock = threading.Lock()
        self.level = 0

    def set_level(self, value):
        self.level = value

    def clear(self):
        with self._lock:
            self.level = 0

def start(gauge):
    worker = threading.Thread(target=gauge.set_level, args=(1,))
    worker.start()
"""
REP012_BAD_INCONSISTENT_LINE = 9

REP012_GOOD = """\
import threading

class Stats:
    def __init__(self):
        self._lock = threading.Lock()
        self.total = 0

    def record(self):
        with self._lock:
            self.total += 1

    def reset(self):
        with self._lock:
            self.total = 0

def start(stats):
    for _ in range(4):
        worker = threading.Thread(target=stats.record)
        worker.start()
"""

# Without a thread root the writes never race: same class, no Thread().
REP012_GOOD_NO_ROOTS = """\
import threading

class Stats:
    def __init__(self):
        self._lock = threading.Lock()
        self.total = 0

    def record(self):
        self.total += 1

    def reset(self):
        with self._lock:
            self.total = 0
"""


# ---------------------------------------------------------------- REP013

REP013_BAD = """\
import threading

class Transfer:
    def __init__(self):
        self._credit = threading.Lock()
        self._debit = threading.Lock()

    def deposit(self):
        with self._credit:
            with self._debit:
                return 1

    def withdraw(self):
        with self._debit:
            with self._credit:
                return 2
"""
REP013_BAD_LINE = 10

# The reversed edge comes through a call made under the outer lock, not
# a lexical ``with`` nesting -- the cycle needs the call graph to see.
REP013_BAD_TRANSITIVE = """\
import threading

class Ledger:
    def __init__(self):
        self._summary = threading.Lock()
        self._detail = threading.Lock()

    def _flush(self):
        with self._detail:
            return 1

    def summarize(self):
        with self._summary:
            return self._flush()

    def detail_report(self):
        with self._detail:
            with self._summary:
                return 2
"""
REP013_BAD_TRANSITIVE_LINE = 14

REP013_GOOD = """\
import threading

class Transfer:
    def __init__(self):
        self._credit = threading.Lock()
        self._debit = threading.Lock()

    def deposit(self):
        with self._credit:
            with self._debit:
                return 1

    def withdraw(self):
        with self._credit:
            with self._debit:
                return 2
"""


# ---------------------------------------------------------------- REP014

REP014_BAD_FSYNC = """\
import os
import threading

class Journal:
    def __init__(self):
        self._lock = threading.Lock()

    def append(self, handle, line):
        with self._lock:
            handle.write(line)
            os.fsync(handle.fileno())
"""
REP014_BAD_FSYNC_LINE = 11

REP014_BAD_SLEEP = """\
import threading
import time

class Poller:
    def __init__(self):
        self._lock = threading.Lock()

    def tick(self):
        with self._lock:
            time.sleep(0.1)
"""
REP014_BAD_SLEEP_LINE = 10

REP014_BAD_JOIN = """\
import threading

class Pool:
    def __init__(self):
        self._lock = threading.Lock()

    def drain(self, worker):
        with self._lock:
            worker.join()
"""
REP014_BAD_JOIN_LINE = 9

# Snapshot under the lock, do the I/O outside it.
REP014_GOOD = """\
import os
import threading

class Journal:
    def __init__(self):
        self._lock = threading.Lock()
        self._pending = []

    def append(self, handle, line):
        with self._lock:
            self._pending.append(line)
            pending = list(self._pending)
            self._pending.clear()
        handle.writelines(pending)
        os.fsync(handle.fileno())
"""

# ``Condition.wait`` on the lock you hold is the predicate-loop idiom,
# not a foreign blocking call.
REP014_GOOD_COND_WAIT = """\
import threading

class Box:
    def __init__(self):
        self._cond = threading.Condition()
        self.item = None

    def take(self):
        with self._cond:
            while self.item is None:
                self._cond.wait(0.1)
            item, self.item = self.item, None
            return item
"""


# ---------------------------------------------------------------- REP015

REP015_BAD = """\
import signal

def install(events):
    def _on_signal(signum, frame):
        events.append(signum)

    signal.signal(signal.SIGTERM, _on_signal)
"""
REP015_BAD_LINE = 5

REP015_BAD_METHOD = """\
import signal

class Service:
    def __init__(self):
        self.history = []

    def _on_signal(self, signum, frame):
        self.history.append(signum)

    def install(self):
        signal.signal(signal.SIGINT, self._on_signal)
"""
REP015_BAD_METHOD_LINE = 8

REP015_GOOD = """\
import signal

def install(stop_event, slot):
    def _on_signal(signum, frame):
        slot.value = signum
        stop_event.set()

    signal.signal(signal.SIGTERM, _on_signal)
"""

REP015_GOOD_SIG_IGN = """\
import signal

def mute():
    signal.signal(signal.SIGINT, signal.SIG_IGN)
"""

# ``os.write`` is on the async-signal-safe list (self-pipe wakeups).
REP015_GOOD_OS_WRITE = """\
import os
import signal

def install(wakeup_fd):
    def _on_signal(signum, frame):
        os.write(wakeup_fd, b"x")

    signal.signal(signal.SIGTERM, _on_signal)
"""


# ---------------------------------------------------------------- REP016

REP016_BAD_NESTED = """\
def all_pairs(dataset):
    pairs = []
    for left in dataset.properties():
        for right in dataset.properties():
            if left.source != right.source:
                pairs.append((left, right))
    return pairs
"""
REP016_BAD_NESTED_LINE = 5

REP016_BAD_TRIANGLE = """\
def cross(dataset):
    refs = dataset.properties()
    found = []
    for i, left in enumerate(refs):
        for right in refs[i + 1:]:
            if left.source != right.source:
                found.append((left, right))
    return found
"""
REP016_BAD_TRIANGLE_LINE = 6

REP016_BAD_COMPREHENSION = """\
def cross(dataset):
    refs = dataset.properties()
    return [
        (a, b)
        for a in refs
        for b in refs
        if a.source != b.source
    ]
"""
REP016_BAD_COMPREHENSION_LINE = 7

REP016_GOOD = """\
from repro.data.pairs import build_pairs

def candidates(dataset):
    return build_pairs(dataset).pairs

def cluster_pairs(members):
    # Quadratic only in one cluster's size, not the property universe.
    pairs = []
    for i, left in enumerate(members):
        for right in members[i + 1:]:
            if left.source != right.source:
                pairs.append((left, right))
    return pairs
"""


#: ``rule -> (bad snippet, expected line, good snippet)`` for the
#: one-per-rule parametrised test; extra variants are exercised
#: individually in test_rules.py.
PAIRS = {
    "REP001": (REP001_BAD_NUMPY, REP001_BAD_NUMPY_LINE, REP001_GOOD),
    "REP002": (REP002_BAD_OPEN, REP002_BAD_OPEN_LINE, REP002_GOOD),
    "REP003": (REP003_BAD, REP003_BAD_LINE, REP003_GOOD),
    "REP004": (REP004_BAD, REP004_BAD_LINE, REP004_GOOD),
    "REP005": (REP005_BAD_PASS, REP005_BAD_PASS_LINE, REP005_GOOD),
    "REP006": (REP006_BAD, REP006_BAD_LINE, REP006_GOOD),
    "REP007": (REP007_BAD, REP007_BAD_LINE, REP007_GOOD),
    "REP008": (REP008_BAD, REP008_BAD_LINE, REP008_GOOD),
    "REP009": (REP009_BAD, REP009_BAD_LINE, REP009_GOOD),
    "REP010": (REP010_BAD_SLEEP, REP010_BAD_SLEEP_LINE, REP010_GOOD),
    "REP011": (REP011_BAD_QUEUE, REP011_BAD_QUEUE_LINE, REP011_GOOD),
    "REP012": (REP012_BAD_RMW, REP012_BAD_RMW_LINE, REP012_GOOD),
    "REP013": (REP013_BAD, REP013_BAD_LINE, REP013_GOOD),
    "REP014": (REP014_BAD_FSYNC, REP014_BAD_FSYNC_LINE, REP014_GOOD),
    "REP015": (REP015_BAD, REP015_BAD_LINE, REP015_GOOD),
    "REP016": (REP016_BAD_NESTED, REP016_BAD_NESTED_LINE, REP016_GOOD),
}
