"""Inline noqa suppressions and the checked-in baseline."""

import json

import pytest

from repro.analysis import Baseline, analyze_source
from repro.analysis.registry import Violation
from repro.errors import ReproError

from tests.analysis import fixtures

BAD_WITH_NOQA = """\
def dump(path, text):
    with open(path, "w") as handle:  # repro: noqa[REP002] torn output acceptable here
        handle.write(text)
"""

BAD_WITH_WRONG_CODE = """\
def dump(path, text):
    with open(path, "w") as handle:  # repro: noqa[REP003] wrong rule cited
        handle.write(text)
"""

BAD_WITH_BLANKET = """\
def dump(path, text):
    with open(path, "w") as handle:  # repro: noqa
        handle.write(text)
"""


class TestNoqa:
    def test_coded_noqa_suppresses_that_rule(self):
        report = analyze_source(BAD_WITH_NOQA, select=("REP002",))
        assert report.violations == []
        assert report.suppressed == 1

    def test_noqa_for_a_different_rule_does_not_suppress(self):
        report = analyze_source(BAD_WITH_WRONG_CODE, select=("REP002",))
        assert [v.rule for v in report.violations] == ["REP002"]
        assert report.suppressed == 0

    def test_blanket_noqa_suppresses_everything_on_the_line(self):
        report = analyze_source(BAD_WITH_BLANKET, select=("REP002",))
        assert report.violations == []
        assert report.suppressed == 1

    def test_no_noqa_mode_reports_suppressed_findings(self):
        report = analyze_source(
            BAD_WITH_NOQA, select=("REP002",), respect_noqa=False
        )
        assert [v.rule for v in report.violations] == ["REP002"]

    def test_comma_separated_codes(self):
        source = (
            "def f(path):\n"
            "    return open(path, 'w')  # repro: noqa[REP001, REP002] both cited\n"
        )
        report = analyze_source(source, select=("REP002",))
        assert report.violations == []


class TestBaseline:
    def violations(self):
        return analyze_source(fixtures.REP002_BAD_OPEN, path="pkg/mod.py").violations

    def test_baselined_finding_is_not_fresh(self):
        found = self.violations()
        baseline = Baseline.from_violations(found)
        match = baseline.apply(found)
        assert match.fresh == []
        assert len(match.baselined) == len(found)
        assert match.stale_entries == []

    def test_matching_survives_line_drift(self):
        found = self.violations()
        baseline = Baseline.from_violations(found)
        drifted = [
            Violation(
                path=v.path,
                line=v.line + 40,
                col=v.col,
                rule=v.rule,
                message=v.message,
                snippet=v.snippet,
            )
            for v in found
        ]
        match = baseline.apply(drifted)
        assert match.fresh == []
        assert len(match.baselined) == len(found)

    def test_stale_entries_are_surfaced(self):
        found = self.violations()
        baseline = Baseline.from_violations(found)
        match = baseline.apply([])
        assert match.fresh == []
        assert len(match.stale_entries) == len(found)

    def test_new_finding_is_fresh(self):
        found = self.violations()
        baseline = Baseline.from_violations(found)
        extra = Violation(
            path="pkg/other.py", line=3, col=1, rule="REP002",
            message="m", snippet="open(path, 'w')",
        )
        match = baseline.apply(found + [extra])
        assert match.fresh == [extra]

    def test_duplicate_lines_match_as_multiset(self):
        twin = Violation(
            path="pkg/mod.py", line=9, col=1, rule="REP002",
            message="m", snippet="open(path, 'w')",
        )
        baseline = Baseline.from_violations([twin])
        match = baseline.apply([twin, twin])
        assert len(match.baselined) == 1
        assert len(match.fresh) == 1

    def test_round_trip_via_disk(self, tmp_path):
        found = self.violations()
        path = tmp_path / "baseline.json"
        Baseline.from_violations(found).save(path)
        loaded = Baseline.load(path)
        assert loaded.apply(found).fresh == []
        payload = json.loads(path.read_text())
        assert payload["version"] == 1

    def test_missing_file_is_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "absent.json")
        assert len(baseline) == 0

    def test_corrupt_file_raises_repro_error(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{not json")
        with pytest.raises(ReproError):
            Baseline.load(path)

    def test_deselected_rules_entries_are_not_stale(self):
        # A --select run that skips REP002 never looked for its
        # grandfathered findings, so they must not read as stale.
        found = self.violations()
        baseline = Baseline.from_violations(found)
        match = baseline.apply([], ran_rules={"REP003"})
        assert match.stale_entries == []
        match = baseline.apply([], ran_rules={"REP002"})
        assert len(match.stale_entries) == len(found)
