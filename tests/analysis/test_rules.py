"""Every REP rule: the bad fixture fires, the good twin stays silent."""

import pytest

from repro.analysis import analyze_source, rule_codes
from repro.analysis.registry import ROLE_TESTS

from tests.analysis import fixtures


def violations_of(source, rule, **kwargs):
    report = analyze_source(source, select=(rule,), **kwargs)
    assert report.error is None
    return report.violations


class TestPairedFixtures:
    @pytest.mark.parametrize("rule", sorted(fixtures.PAIRS))
    def test_bad_fixture_fires_at_expected_line(self, rule):
        bad, line, _good = fixtures.PAIRS[rule]
        found = violations_of(bad, rule)
        assert found, f"{rule} did not fire on its bad fixture"
        assert all(violation.rule == rule for violation in found)
        assert line in {violation.line for violation in found}

    @pytest.mark.parametrize("rule", sorted(fixtures.PAIRS))
    def test_good_fixture_is_silent(self, rule):
        _bad, _line, good = fixtures.PAIRS[rule]
        assert violations_of(good, rule) == []

    def test_every_registered_rule_has_a_fixture_pair(self):
        assert set(fixtures.PAIRS) == set(rule_codes())


class TestRep001Variants:
    def test_numpy_module_seed(self):
        assert violations_of(fixtures.REP001_BAD_NUMPY_SEED, "REP001")

    def test_stdlib_module_function(self):
        assert violations_of(fixtures.REP001_BAD_STDLIB, "REP001")

    def test_from_import_of_global_function(self):
        assert violations_of(fixtures.REP001_BAD_FROM_IMPORT, "REP001")

    def test_local_generator_method_is_not_confused_with_module(self):
        source = (
            "def mix(rng, items):\n"
            "    rng.shuffle(items)\n"
            "    return rng.random()\n"
        )
        assert violations_of(source, "REP001") == []


class TestRep002Variants:
    def test_path_open_write(self):
        assert violations_of(fixtures.REP002_BAD_PATH_OPEN, "REP002")

    def test_write_text(self):
        assert violations_of(fixtures.REP002_BAD_WRITE_TEXT, "REP002")

    def test_append_mode_keyword(self):
        assert violations_of(fixtures.REP002_BAD_APPEND_MODE, "REP002")

    def test_ioutils_itself_is_exempt(self):
        report = analyze_source(
            fixtures.REP002_BAD_OPEN,
            path="src/repro/ioutils.py",
            select=("REP002",),
        )
        assert report.violations == []

    def test_tests_are_exempt(self):
        report = analyze_source(
            fixtures.REP002_BAD_OPEN, role=ROLE_TESTS, select=("REP002",)
        )
        assert report.violations == []


class TestRep004Variants:
    def test_negative_sentinel_comparison(self):
        assert violations_of(fixtures.REP004_BAD_NEGATIVE, "REP004")

    def test_zero_guard_idiom_allowed(self):
        source = "def guard(x):\n    return x == 0.0 or x != 0.0\n"
        assert violations_of(source, "REP004") == []

    def test_exact_assertions_allowed_in_tests(self):
        report = analyze_source(
            fixtures.REP004_BAD, role=ROLE_TESTS, select=("REP004",)
        )
        assert report.violations == []


class TestRep005Variants:
    def test_bare_except(self):
        assert violations_of(fixtures.REP005_BAD_BARE, "REP005")

    def test_narrow_handler_allowed(self):
        source = (
            "def load(path):\n"
            "    try:\n"
            "        return open(path).read()\n"
            "    except FileNotFoundError:\n"
            "        return None\n"
        )
        assert violations_of(source, "REP005") == []


class TestRep006Variants:
    def test_worker_named_helper_calling_journal_api(self):
        assert violations_of(fixtures.REP006_BAD_HELPER, "REP006")

    def test_plain_list_append_in_worker_is_fine(self):
        source = (
            "def _execute(item, results):\n"
            "    results.append(item)\n"
            "def run(pool, items, results):\n"
            "    return [pool.submit(_execute, i, results) for i in items]\n"
        )
        assert violations_of(source, "REP006") == []


class TestRep007Variants:
    def test_dict_call_default(self):
        assert violations_of(fixtures.REP007_BAD_DICT_CALL, "REP007")

    def test_fires_in_tests_too(self):
        found = analyze_source(
            fixtures.REP007_BAD, role=ROLE_TESTS, select=("REP007",)
        ).violations
        assert found


class TestRep009Variants:
    def test_evaluation_import_in_stage_module(self):
        found = violations_of(fixtures.REP009_BAD_IMPORT, "REP009")
        assert found
        assert fixtures.REP009_BAD_IMPORT_LINE in {v.line for v in found}

    def test_from_repro_import_evaluation(self):
        assert violations_of(fixtures.REP009_BAD_FROM_REPRO, "REP009")

    def test_module_without_stages_may_import_evaluation(self):
        assert violations_of(fixtures.REP009_GOOD_NO_STAGE, "REP009") == []

    def test_read_only_open_in_stage_is_fine(self):
        source = (
            "from repro.core.pipeline import FeatureStage\n"
            "class ReaderStage(FeatureStage):\n"
            "    name = 'reader'\n"
            "    level = 'property'\n"
            "    def compute(self, ctx, ref, values):\n"
            "        with open('lexicon.txt') as handle:\n"
            "            return handle.read()\n"
        )
        assert violations_of(source, "REP009") == []


class TestRep008Variants:
    def test_non_worker_module_registry_is_fine(self):
        assert violations_of(fixtures.REP008_GOOD_NOT_WORKER, "REP008") == []

    def test_import_time_initialisation_is_fine(self):
        source = (
            "_TABLE: dict = {}\n"
            "_TABLE.update(a=1)\n"
            "def _execute(item):\n"
            "    return _TABLE[item]\n"
            "def run(pool, item):\n"
            "    return pool.submit(_execute, item)\n"
        )
        assert violations_of(source, "REP008") == []


class TestRep010Variants:
    def test_spin_without_stop_check(self):
        found = violations_of(fixtures.REP010_BAD_SPIN, "REP010")
        assert found
        assert fixtures.REP010_BAD_SPIN_LINE in {v.line for v in found}

    def test_conditioned_loop_is_fine(self):
        assert violations_of(fixtures.REP010_GOOD_CONDITIONED, "REP010") == []

    def test_only_binds_watch_and_ingest_modules(self):
        report = analyze_source(
            fixtures.REP010_BAD_SLEEP,
            path="src/repro/evaluation/runner.py",
            select=("REP010",),
        )
        assert report.violations == []

    def test_binds_real_ingest_module_paths(self):
        found = analyze_source(
            fixtures.REP010_BAD_SLEEP,
            path="src/repro/ingest/daemon.py",
            select=("REP010",),
        ).violations
        assert found

    def test_tests_are_exempt(self):
        report = analyze_source(
            fixtures.REP010_BAD_SLEEP, role=ROLE_TESTS, select=("REP010",)
        )
        assert report.violations == []


class TestRep011Variants:
    def test_simplequeue_is_always_unbounded(self):
        found = violations_of(fixtures.REP011_BAD_SIMPLEQUEUE, "REP011")
        assert found
        assert fixtures.REP011_BAD_SIMPLEQUEUE_LINE in {v.line for v in found}

    def test_unbounded_deque(self):
        found = violations_of(fixtures.REP011_BAD_DEQUE, "REP011")
        assert found
        assert fixtures.REP011_BAD_DEQUE_LINE in {v.line for v in found}

    def test_bounded_deque_is_fine(self):
        assert (
            violations_of(fixtures.REP011_GOOD_BOUNDED_DEQUE, "REP011") == []
        )

    def test_zero_arg_blocking_get(self):
        found = violations_of(fixtures.REP011_BAD_BLOCKING_GET, "REP011")
        assert found
        assert fixtures.REP011_BAD_BLOCKING_GET_LINE in {
            v.line for v in found
        }

    def test_zero_arg_blocking_accept(self):
        found = violations_of(fixtures.REP011_BAD_BLOCKING_ACCEPT, "REP011")
        assert found
        assert fixtures.REP011_BAD_BLOCKING_ACCEPT_LINE in {
            v.line for v in found
        }

    def test_wall_clock_sleep(self):
        found = violations_of(fixtures.REP011_BAD_SLEEP, "REP011")
        assert found
        assert fixtures.REP011_BAD_SLEEP_LINE in {v.line for v in found}

    def test_queue_with_explicit_zero_maxsize_is_unbounded(self):
        source = (
            "import queue\n"
            "def build_backlog():\n"
            "    return queue.Queue(maxsize=0)\n"
        )
        assert violations_of(source, "REP011")

    def test_only_binds_serve_and_handler_modules(self):
        report = analyze_source(
            fixtures.REP011_BAD_QUEUE,
            path="src/repro/evaluation/runner.py",
            select=("REP011",),
        )
        assert report.violations == []

    def test_binds_real_serve_module_paths(self):
        found = analyze_source(
            fixtures.REP011_BAD_QUEUE,
            path="src/repro/serve/server.py",
            select=("REP011",),
        ).violations
        assert found

    def test_tests_are_exempt(self):
        report = analyze_source(
            fixtures.REP011_BAD_QUEUE, role=ROLE_TESTS, select=("REP011",)
        )
        assert report.violations == []


class TestRep012Variants:
    def test_inconsistently_guarded_plain_write(self):
        found = violations_of(fixtures.REP012_BAD_INCONSISTENT, "REP012")
        assert found
        assert fixtures.REP012_BAD_INCONSISTENT_LINE in {v.line for v in found}
        assert "inconsistently guarded" in found[0].message

    def test_module_without_thread_roots_is_silent(self):
        assert violations_of(fixtures.REP012_GOOD_NO_ROOTS, "REP012") == []

    def test_constructor_writes_are_exempt(self):
        # __init__ publishes the object before any thread can see it;
        # the unguarded self.total = 0 there must not fire.
        found = violations_of(fixtures.REP012_GOOD, "REP012")
        assert found == []

    def test_tests_are_exempt(self):
        report = analyze_source(
            fixtures.REP012_BAD_RMW, role=ROLE_TESTS, select=("REP012",)
        )
        assert report.violations == []


class TestRep013Variants:
    def test_cycle_through_call_graph_edge(self):
        found = violations_of(fixtures.REP013_BAD_TRANSITIVE, "REP013")
        assert found
        assert fixtures.REP013_BAD_TRANSITIVE_LINE in {v.line for v in found}
        message = found[0].message
        assert "Ledger._summary" in message and "Ledger._detail" in message

    def test_message_names_both_locks(self):
        found = violations_of(fixtures.REP013_BAD, "REP013")
        message = found[0].message
        assert "Transfer._credit" in message and "Transfer._debit" in message

    def test_consistent_order_is_silent(self):
        assert violations_of(fixtures.REP013_GOOD, "REP013") == []


class TestRep014Variants:
    def test_sleep_under_lock(self):
        found = violations_of(fixtures.REP014_BAD_SLEEP, "REP014")
        assert found
        assert fixtures.REP014_BAD_SLEEP_LINE in {v.line for v in found}

    def test_join_under_lock(self):
        found = violations_of(fixtures.REP014_BAD_JOIN, "REP014")
        assert found
        assert fixtures.REP014_BAD_JOIN_LINE in {v.line for v in found}

    def test_condition_wait_on_held_lock_is_the_idiom(self):
        assert violations_of(fixtures.REP014_GOOD_COND_WAIT, "REP014") == []


class TestRep015Variants:
    def test_bound_method_handler(self):
        found = violations_of(fixtures.REP015_BAD_METHOD, "REP015")
        assert found
        assert fixtures.REP015_BAD_METHOD_LINE in {v.line for v in found}

    def test_sig_ign_constant_is_silent(self):
        assert violations_of(fixtures.REP015_GOOD_SIG_IGN, "REP015") == []

    def test_os_write_is_signal_safe(self):
        assert violations_of(fixtures.REP015_GOOD_OS_WRITE, "REP015") == []


class TestRep016Variants:
    def test_triangle_over_bound_property_sweep(self):
        found = violations_of(fixtures.REP016_BAD_TRIANGLE, "REP016")
        assert found
        assert fixtures.REP016_BAD_TRIANGLE_LINE in {v.line for v in found}

    def test_double_generator_comprehension(self):
        found = violations_of(fixtures.REP016_BAD_COMPREHENSION, "REP016")
        assert found
        assert fixtures.REP016_BAD_COMPREHENSION_LINE in {
            v.line for v in found
        }

    def test_blocking_layer_owns_the_shape(self):
        report = analyze_source(
            fixtures.REP016_BAD_NESTED,
            path="src/repro/blocking/blockers.py",
            select=("REP016",),
        )
        assert report.violations == []

    def test_canonical_enumerator_is_exempt(self):
        report = analyze_source(
            fixtures.REP016_BAD_NESTED,
            path="src/repro/data/pairs.py",
            select=("REP016",),
        )
        assert report.violations == []

    def test_small_scope_pairing_is_silent(self):
        # The incremental clusterer's new-refs x existing-refs linkage
        # loop: neither iterable is a full property sweep.
        source = (
            "def link(new_refs, existing):\n"
            "    return [\n"
            "        (new, old)\n"
            "        for new in new_refs\n"
            "        for old in existing\n"
            "        if old.source != new.source\n"
            "    ]\n"
        )
        assert violations_of(source, "REP016") == []

    def test_tests_are_exempt(self):
        report = analyze_source(
            fixtures.REP016_BAD_NESTED, role=ROLE_TESTS, select=("REP016",)
        )
        assert report.violations == []


class TestSelectIgnoreFlags:
    """``repro lint --select`` / ``--ignore`` composition via the CLI."""

    BAD_BOTH = fixtures.REP002_BAD_OPEN + "\n" + (
        "import time\n"
        "def expired(started, budget):\n"
        "    return time.time() - started > budget\n"
    )

    def run(self, tmp_path, capsys, *flags):
        import json

        from repro.cli import main as cli_main

        target = tmp_path / "bad.py"
        target.write_text(self.BAD_BOTH)
        code = cli_main(
            ["lint", str(target), "--no-baseline", "--json", *flags]
        )
        captured = capsys.readouterr()
        document = json.loads(captured.out) if captured.out.startswith("{") else None
        return code, document, captured.err

    def test_select_narrows_to_named_rules(self, tmp_path, capsys):
        code, document, _ = self.run(tmp_path, capsys, "--select", "REP003")
        assert code == 1
        assert set(document["by_rule"]) == {"REP003"}

    def test_ignore_drops_named_rules(self, tmp_path, capsys):
        code, document, _ = self.run(tmp_path, capsys, "--ignore", "REP002")
        assert code == 1
        rules = set(document["by_rule"])
        assert "REP002" not in rules and "REP003" in rules

    def test_ignore_composes_with_select(self, tmp_path, capsys):
        code, document, _ = self.run(
            tmp_path, capsys,
            "--select", "REP002,REP003", "--ignore", "REP002",
        )
        assert code == 1
        assert set(document["by_rule"]) == {"REP003"}

    def test_emptying_the_selection_is_a_usage_error(self, tmp_path, capsys):
        code, _document, _ = self.run(
            tmp_path, capsys, "--select", "REP003", "--ignore", "REP003"
        )
        assert code == 2

    def test_unknown_code_in_ignore_names_the_flag(self, tmp_path, capsys):
        code, _document, err = self.run(tmp_path, capsys, "--ignore", "REP999")
        assert code == 2
        assert "--ignore" in err
