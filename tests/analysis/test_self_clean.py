"""The analyzer must pass on this repository itself.

This is the PR's acceptance contract: ``repro lint src`` exits 0, the
baseline holds no REP001/REP002 entries (unseeded RNG and torn writes
must be *fixed*, never grandfathered), and every suppression carries a
justification after the bracket.
"""

import re
from pathlib import Path

import pytest

from repro.analysis import Baseline, analyze_paths
from repro.analysis.report import EXIT_CLEAN, exit_code
from repro.cli import main as cli_main

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture()
def repo_cwd(monkeypatch):
    monkeypatch.chdir(REPO_ROOT)


class TestSelfClean:
    def test_repro_lint_src_exits_zero(self, repo_cwd, capsys):
        assert cli_main(["lint", "src"]) == EXIT_CLEAN
        assert "clean" in capsys.readouterr().out

    def test_full_lint_scope_is_clean(self, repo_cwd):
        report = analyze_paths(["src", "tests", "scripts"])
        baseline = Baseline.load(REPO_ROOT / ".repro-lint-baseline.json")
        match = baseline.apply(report.violations)
        assert match.fresh == [], "\n".join(
            violation.describe() for violation in match.fresh
        )
        assert match.stale_entries == []
        assert report.errors == []
        assert exit_code(match, report) == EXIT_CLEAN

    def test_baseline_never_grandfathers_banned_rules(self):
        from repro.analysis.baseline import NEVER_BASELINED

        assert {"REP001", "REP002", "REP013"} <= NEVER_BASELINED
        baseline = Baseline.load(REPO_ROOT / ".repro-lint-baseline.json")
        assert baseline.rules_present().isdisjoint(NEVER_BASELINED)

    def test_concurrency_rules_alone_are_clean(self, repo_cwd, capsys):
        # The CI job's exact invocation: the concurrency subset of the
        # analyzer finds nothing fresh in the shipped tree.
        code = cli_main(
            ["lint", "src", "--select", "REP012,REP013,REP014,REP015", "--json"]
        )
        assert code == EXIT_CLEAN
        import json

        document = json.loads(capsys.readouterr().out)
        assert document["violations"] == []
        assert document["concurrency"]["lock_order"]["acyclic"] is True

    def test_every_active_suppression_has_a_justification(self, repo_cwd):
        # Only lines whose noqa actually silences a finding are held to
        # the etiquette; prose that merely *mentions* the syntax is not.
        justified = re.compile(r"#\s*repro:\s*noqa(?:\[[^\]]*\])?\s+(\S.*)$")
        raw = analyze_paths(["src"], respect_noqa=False)
        filtered = analyze_paths(["src"])
        silenced = set()
        for before, after in zip(raw.files, filtered.files):
            kept = {(v.line, v.rule) for v in after.violations}
            silenced.update(
                (before.path, v.line)
                for v in before.violations
                if (v.line, v.rule) not in kept
            )
        offenders = []
        for path, line_number in sorted(silenced):
            line = (
                Path(path).read_text(encoding="utf-8").splitlines()[line_number - 1]
            )
            if justified.search(line) is None:
                offenders.append(f"{path}:{line_number}: {line.strip()}")
        assert offenders == [], "suppressions need a reason: " + "; ".join(offenders)
