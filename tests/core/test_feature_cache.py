"""The shared feature store must be invisible except for speed.

Every matrix the store serves must equal what the direct
``pair_feature_matrix`` path produces, for every config of the 3x3
grid; the pair universe must reproduce ``build_pairs`` for every
``(sources, within)`` request; and the zero-copy claim is checked with
``np.shares_memory``, not assumed.
"""

import numpy as np
import pytest

from repro.core import (
    FeatureConfig,
    LeapmeMatcher,
    PairFeatureStore,
    PairUniverse,
    PropertyFeatureTable,
    pair_feature_matrix,
)
from repro.core.config import FeatureKinds, FeatureScope
from repro.core.pipeline import FeatureSchema
from repro.data.pairs import build_pairs, sample_training_pairs
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def store_fixture(tiny_headphones, tiny_embeddings):
    table = PropertyFeatureTable(tiny_headphones, tiny_embeddings)
    universe = PairUniverse(tiny_headphones)
    return table, universe, PairFeatureStore(table, universe)


class TestPairUniverse:
    def test_universe_is_all_cross_source_pairs(self, tiny_headphones):
        universe = PairUniverse(tiny_headphones)
        reference = build_pairs(tiny_headphones)
        assert list(universe.pairs) == reference.pairs

    @pytest.mark.parametrize("within", [True, False])
    def test_subset_matches_build_pairs(self, tiny_headphones, within):
        universe = PairUniverse(tiny_headphones)
        sources = tiny_headphones.sources()
        for cut in range(1, len(sources)):
            selected = sources[:cut]
            expected = build_pairs(tiny_headphones, selected, within=within)
            actual = universe.subset(selected, within=within)
            assert actual.pairs == expected.pairs

    def test_subset_rejects_unknown_sources(self, tiny_headphones):
        universe = PairUniverse(tiny_headphones)
        with pytest.raises(ConfigurationError):
            universe.subset(["no-such-source"])

    def test_row_lookup_is_orientation_independent(self, tiny_headphones):
        universe = PairUniverse(tiny_headphones)
        pair = universe.pairs[3]
        assert universe.row_of((pair.left, pair.right)) == 3
        assert universe.row_of((pair.right, pair.left)) == 3

    def test_foreign_pair_is_rejected(self, tiny_headphones, tiny_cameras):
        universe = PairUniverse(tiny_headphones)
        foreign = PairUniverse(tiny_cameras).pairs[0]
        with pytest.raises(ConfigurationError):
            universe.row_of(foreign)


class TestPairFeatureStore:
    @pytest.mark.parametrize("config", FeatureConfig.grid(), ids=lambda c: c.label())
    def test_store_matches_direct_path_for_every_config(
        self, store_fixture, config
    ):
        table, universe, store = store_fixture
        pairs = universe.subset()
        direct = pair_feature_matrix(table, pairs.pairs, config)
        served = store.features(pairs, config)
        np.testing.assert_array_equal(served, direct)

    def test_training_sample_is_served_identically(self, store_fixture):
        table, universe, store = store_fixture
        candidates = universe.subset()
        training = sample_training_pairs(
            candidates, rng=np.random.default_rng(5)
        )
        config = FeatureConfig()
        direct = pair_feature_matrix(table, training.pairs, config)
        np.testing.assert_array_equal(store.features(training, config), direct)

    def test_contiguous_configs_are_zero_copy_views(self, store_fixture):
        _, universe, store = store_fixture
        pairs = universe.subset()
        gathered = store._gathered(universe.rows_of(pairs.pairs))
        for config in FeatureConfig.grid():
            served = store.features(pairs, config)
            contiguous = isinstance(
                store.schema.active_columns(config), slice
            )
            assert np.shares_memory(served, gathered) == contiguous

    def test_only_split_scope_non_embedding_needs_a_copy(self, store_fixture):
        _, _, store = store_fixture
        copying = [
            config.label()
            for config in FeatureConfig.grid()
            if not isinstance(store.schema.active_columns(config), slice)
        ]
        assert copying == ["both/non_embedding"]

    def test_served_matrices_are_read_only(self, store_fixture):
        _, universe, store = store_fixture
        served = store.features(universe.subset(), FeatureConfig())
        with pytest.raises(ValueError):
            served[0, 0] = 1.0

    def test_gather_is_cached_across_configs(self, store_fixture):
        _, universe, store = store_fixture
        pairs = universe.subset()
        store._gather_cache.clear()
        for config in FeatureConfig.grid():
            store.features(pairs, config)
        # All nine configs share one row gather of the full matrix.
        assert len(store._gather_cache) == 1
        (gathered,) = store._gather_cache.values()
        served = store.features(
            pairs, FeatureConfig(scope=FeatureScope.INSTANCES)
        )
        assert np.shares_memory(served, gathered)

    def test_store_refuses_mismatched_table_and_universe(
        self, tiny_headphones, tiny_cameras, tiny_embeddings
    ):
        table = PropertyFeatureTable(tiny_cameras, tiny_embeddings)
        universe = PairUniverse(tiny_headphones)
        with pytest.raises(ConfigurationError):
            PairFeatureStore(table, universe)

    def test_empty_pair_list(self, store_fixture):
        _, _, store = store_fixture
        config = FeatureConfig(kinds=FeatureKinds.NON_EMBEDDING)
        empty = store.features([], config)
        assert empty.shape == (0, store.schema.width(config))


class TestMatcherIntegration:
    def test_matcher_scores_identically_with_and_without_store(
        self, tiny_headphones, tiny_embeddings
    ):
        from repro.core import LeapmeConfig
        from repro.nn.schedule import TrainingSchedule

        config = LeapmeConfig(
            hidden_sizes=(8,), schedule=TrainingSchedule.constant(2, 1e-3)
        )
        candidates = build_pairs(tiny_headphones)
        training = sample_training_pairs(
            candidates, rng=np.random.default_rng(0)
        )

        plain = LeapmeMatcher(tiny_embeddings, config=config)
        plain.fit(tiny_headphones, training)
        baseline = plain.score_pairs(tiny_headphones, candidates.pairs)

        shared = LeapmeMatcher(tiny_embeddings, config=config)
        shared.attach_store(shared.build_feature_store(tiny_headphones))
        shared.fit(tiny_headphones, training)
        served = shared.score_pairs(tiny_headphones, candidates.pairs)
        np.testing.assert_array_equal(served, baseline)

    def test_store_for_other_dataset_falls_back(
        self, tiny_headphones, tiny_cameras, tiny_embeddings
    ):
        matcher = LeapmeMatcher(tiny_embeddings)
        matcher.attach_store(matcher.build_feature_store(tiny_cameras))
        pairs = build_pairs(tiny_headphones)
        training = sample_training_pairs(pairs, rng=np.random.default_rng(1))
        matcher.fit(tiny_headphones, training)  # must not raise
        scores = matcher.score_pairs(tiny_headphones, pairs.pairs)
        assert scores.shape == (len(pairs),)

    def test_schema_total_width_covers_all_blocks(self, store_fixture):
        table, _, store = store_fixture
        schema = FeatureSchema(table.embedding_dimension)
        assert store.matrix.shape[1] == schema.total_width
        assert schema.total_width == 29 + 2 * table.embedding_dimension + 8
