"""Tests for the LEAPME classifier and end-to-end matcher."""

import numpy as np
import pytest

from repro.core import (
    FeatureConfig,
    FeatureKinds,
    FeatureScope,
    LeapmeClassifier,
    LeapmeConfig,
    LeapmeMatcher,
)
from repro.data.pairs import build_pairs, sample_training_pairs
from repro.data.splits import split_sources
from repro.errors import ConfigurationError, NotFittedError
from repro.evaluation.metrics import evaluate_scores
from repro.nn.schedule import TrainingSchedule

FAST = LeapmeConfig(
    hidden_sizes=(32, 16),
    schedule=TrainingSchedule.from_pairs([(10, 1e-3), (3, 1e-4)]),
)


def _separable(rng, n=200):
    half = n // 2
    x0 = rng.standard_normal((half, 6)) + 1.5
    x1 = rng.standard_normal((half, 6)) - 1.5
    return np.vstack([x0, x1]), np.array([1] * half + [0] * half)


class TestLeapmeClassifier:
    def test_learns(self, rng):
        features, labels = _separable(rng)
        classifier = LeapmeClassifier(FAST).fit(features, labels)
        predictions = classifier.predict(features)
        assert (predictions == labels).mean() > 0.9

    def test_scores_in_unit_interval(self, rng):
        features, labels = _separable(rng)
        classifier = LeapmeClassifier(FAST).fit(features, labels)
        scores = classifier.match_scores(features)
        assert ((scores >= 0) & (scores <= 1)).all()

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            LeapmeClassifier().match_scores(np.zeros((1, 5)))

    def test_empty_scoring_batch(self, rng):
        features, labels = _separable(rng)
        classifier = LeapmeClassifier(FAST).fit(features, labels)
        assert classifier.match_scores(np.zeros((0, 6))).shape == (0,)

    def test_paper_defaults(self):
        config = LeapmeConfig()
        assert config.hidden_sizes == (128, 64)
        assert config.batch_size == 32
        assert config.schedule.total_epochs == 20
        assert config.negative_ratio == 2.0

    def test_history_recorded(self, rng):
        features, labels = _separable(rng)
        classifier = LeapmeClassifier(FAST).fit(features, labels)
        assert classifier.history is not None
        assert classifier.history.epochs == 13

    def test_scaling_can_be_disabled(self, rng):
        features, labels = _separable(rng)
        config = LeapmeConfig(
            hidden_sizes=(16,),
            schedule=TrainingSchedule.constant(12, 1e-2),
            scale_features=False,
        )
        classifier = LeapmeClassifier(config).fit(features, labels)
        assert classifier._scaler is None
        assert (classifier.predict(features) == labels).mean() > 0.85

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            LeapmeConfig(hidden_sizes=())
        with pytest.raises(ConfigurationError):
            LeapmeConfig(batch_size=0)
        with pytest.raises(ConfigurationError):
            LeapmeConfig(decision_threshold=1.5)


class TestLeapmeMatcher:
    def test_end_to_end_quality(self, tiny_headphones, tiny_embeddings, rng):
        dataset = tiny_headphones
        split = split_sources(dataset, 0.7, rng)
        training = sample_training_pairs(
            build_pairs(dataset, list(split.train_sources), within=True), rng=rng
        )
        test = build_pairs(dataset, list(split.train_sources), within=False)
        matcher = LeapmeMatcher(tiny_embeddings, config=FAST)
        matcher.prepare(dataset)
        matcher.fit(dataset, training)
        quality = evaluate_scores(
            matcher.score_pairs(dataset, test.pairs), test.labels()
        )
        assert quality.f1 > 0.5

    def test_score_before_fit_raises(self, tiny_headphones, tiny_embeddings):
        matcher = LeapmeMatcher(tiny_embeddings)
        pairs = build_pairs(tiny_headphones).pairs[:3]
        with pytest.raises(NotFittedError):
            matcher.score_pairs(tiny_headphones, pairs)

    def test_match_builds_similarity_graph(
        self, tiny_headphones, tiny_embeddings, rng
    ):
        dataset = tiny_headphones
        training = sample_training_pairs(build_pairs(dataset), rng=rng)
        matcher = LeapmeMatcher(tiny_embeddings, config=FAST)
        matcher.fit(dataset, training)
        pairs = build_pairs(dataset).pairs[:50]
        graph = matcher.match(dataset, pairs)
        assert len(graph) == 50
        for edge in graph:
            assert 0.0 <= edge.score <= 1.0

    def test_name_reflects_config(self, tiny_embeddings):
        matcher = LeapmeMatcher(
            tiny_embeddings,
            FeatureConfig(FeatureScope.NAMES, FeatureKinds.EMBEDDING),
        )
        assert "names/embedding" in matcher.name

    def test_prepare_is_idempotent(self, tiny_headphones, tiny_embeddings):
        matcher = LeapmeMatcher(tiny_embeddings)
        matcher.prepare(tiny_headphones)
        table = matcher._table
        matcher._ensure_table(tiny_headphones)
        assert matcher._table is table

    def test_classifier_property_guard(self, tiny_embeddings):
        with pytest.raises(NotFittedError):
            LeapmeMatcher(tiny_embeddings).classifier
