"""Tests for the classical pair-classifier adapter."""

import numpy as np
import pytest

from repro.core import LeapmeMatcher
from repro.core.classical import ClassicalPairClassifier
from repro.data.pairs import build_pairs, sample_training_pairs
from repro.errors import NotFittedError
from repro.ml import DecisionTreeClassifier, LogisticRegression


def _separable(rng, n=120):
    half = n // 2
    x0 = rng.standard_normal((half, 5)) + 2
    x1 = rng.standard_normal((half, 5)) - 2
    return np.vstack([x0, x1]), np.array([1] * half + [0] * half)


class TestClassicalPairClassifier:
    def test_fit_and_score(self, rng):
        features, labels = _separable(rng)
        classifier = ClassicalPairClassifier(DecisionTreeClassifier(max_depth=4))
        classifier.fit(features, labels)
        scores = classifier.match_scores(features)
        assert ((scores >= 0) & (scores <= 1)).all()
        assert ((scores >= 0.5).astype(int) == labels).mean() > 0.9

    def test_positive_column_resolution(self, rng):
        # Labels are {0, 1}; scores must be P(label == 1).
        features, labels = _separable(rng)
        classifier = ClassicalPairClassifier(LogisticRegression(max_iter=200))
        classifier.fit(features, labels)
        scores = classifier.match_scores(features)
        assert scores[labels == 1].mean() > scores[labels == 0].mean()

    def test_not_fitted(self):
        classifier = ClassicalPairClassifier(DecisionTreeClassifier())
        with pytest.raises(NotFittedError):
            classifier.match_scores(np.zeros((1, 5)))

    def test_empty_batch(self, rng):
        features, labels = _separable(rng)
        classifier = ClassicalPairClassifier(DecisionTreeClassifier(max_depth=3))
        classifier.fit(features, labels)
        assert classifier.match_scores(np.zeros((0, 5))).shape == (0,)

    def test_scaling_optional(self, rng):
        features, labels = _separable(rng)
        classifier = ClassicalPairClassifier(
            DecisionTreeClassifier(max_depth=3), scale_features=False
        )
        classifier.fit(features, labels)
        assert classifier._scaler is None


class TestMatcherWithClassicalClassifier:
    def test_end_to_end(self, tiny_headphones, tiny_embeddings, rng):
        matcher = LeapmeMatcher(
            tiny_embeddings,
            classifier_factory=lambda: ClassicalPairClassifier(
                DecisionTreeClassifier(max_depth=6)
            ),
        )
        training = sample_training_pairs(build_pairs(tiny_headphones), rng=rng)
        matcher.fit(tiny_headphones, training)
        scores = matcher.score_pairs(tiny_headphones, training.pairs)
        labels = training.labels()
        # Training-set separation sanity check.
        assert scores[labels == 1].mean() > scores[labels == 0].mean()
