"""Tests for the resilient classifier ladder, public fitted state and
the content-fingerprint table cache."""

import numpy as np
import pytest

from repro.core import (
    FittedState,
    LeapmeConfig,
    LeapmeMatcher,
    ResilientClassifier,
)
from repro.core.classifier import (
    DEGRADATION_CLASSICAL_FALLBACK,
    DEGRADATION_REDUCED_LR,
    LeapmeClassifier,
)
from repro.data.model import Dataset, PropertyInstance, PropertyRef
from repro.data.pairs import build_pairs, sample_training_pairs
from repro.errors import DataError, NotFittedError, TrainingDivergedError
from repro.nn.schedule import TrainingSchedule
from repro.testing import AlwaysDivergingClassifier

CONFIG = LeapmeConfig(hidden_sizes=(8,), schedule=TrainingSchedule.constant(3, 1e-2))


def _toy_problem(n=60, seed=0):
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(n, 4))
    labels = (features[:, 0] + 0.1 * rng.normal(size=n) > 0).astype(np.int64)
    return features, labels


class DivergeOnFastLR:
    """Primary that diverges unless the learning rate was backed off."""

    def __init__(self, config):
        self.config = config
        self._inner = LeapmeClassifier(config)

    def fit(self, features, labels):
        if self.config.schedule.phases[0].learning_rate > 1e-3:
            raise TrainingDivergedError("too fast")
        self._inner.fit(features, labels)
        return self

    def match_scores(self, features):
        return self._inner.match_scores(features)


class TestResilientLadder:
    def test_healthy_training_reports_no_degradation(self):
        features, labels = _toy_problem()
        classifier = ResilientClassifier(CONFIG).fit(features, labels)
        assert classifier.degradation is None
        scores = classifier.match_scores(features)
        assert scores.shape == (len(features),)
        assert np.isfinite(scores).all()

    def test_reduced_lr_rung(self):
        features, labels = _toy_problem()
        classifier = ResilientClassifier(CONFIG, primary_factory=DivergeOnFastLR)
        classifier.fit(features, labels)
        assert classifier.degradation == DEGRADATION_REDUCED_LR
        assert np.isfinite(classifier.match_scores(features)).all()

    def test_classical_fallback_rung(self):
        features, labels = _toy_problem()
        classifier = ResilientClassifier(
            CONFIG, primary_factory=AlwaysDivergingClassifier
        )
        classifier.fit(features, labels)
        assert classifier.degradation == DEGRADATION_CLASSICAL_FALLBACK
        scores = classifier.match_scores(features)
        assert np.isfinite(scores).all()
        # The logistic fallback still learns this separable problem.
        assert ((scores >= 0.5).astype(int) == labels).mean() > 0.8

    def test_unfitted_raises(self):
        classifier = ResilientClassifier(CONFIG)
        with pytest.raises(NotFittedError):
            classifier.match_scores(np.zeros((1, 4)))

    def test_predict_uses_threshold(self):
        features, labels = _toy_problem()
        classifier = ResilientClassifier(CONFIG).fit(features, labels)
        predictions = classifier.predict(features)
        assert set(np.unique(predictions)) <= {0, 1}

    def test_fallback_state_is_not_serialisable(self):
        features, labels = _toy_problem()
        classifier = ResilientClassifier(
            CONFIG, primary_factory=AlwaysDivergingClassifier
        )
        classifier.fit(features, labels)
        with pytest.raises(DataError):
            classifier.fitted_state()


class TestFittedState:
    def test_accessor_requires_fit(self):
        with pytest.raises(NotFittedError):
            LeapmeClassifier(CONFIG).fitted_state()

    def test_round_trip_through_public_state(self):
        features, labels = _toy_problem()
        trained = LeapmeClassifier(CONFIG).fit(features, labels)
        state = trained.fitted_state()
        assert isinstance(state, FittedState)
        clone = LeapmeClassifier(CONFIG).restore_fitted_state(state)
        np.testing.assert_array_equal(
            clone.match_scores(features), trained.match_scores(features)
        )

    def test_diverged_fit_leaves_classifier_unfitted(self):
        features, labels = _toy_problem()
        classifier = LeapmeClassifier(CONFIG)
        network = classifier._build_network(features.shape[1])
        network.layers[0].parameters()[0][0, 0] = np.inf
        classifier._build_network = lambda n_features: network
        with np.errstate(all="ignore"), pytest.raises(TrainingDivergedError):
            classifier.fit(features, labels)
        with pytest.raises(NotFittedError):
            classifier.fitted_state()


def _named_dataset(name, values):
    instances = [
        PropertyInstance(source=source, property_name=prop, entity_id="e1", value=value)
        for source, prop, value in values
    ]
    alignment = {PropertyRef(source, prop): prop for source, prop, _ in values}
    return Dataset(name=name, instances=instances, alignment=alignment)


class TestTableCacheFingerprint:
    def test_same_name_different_content_rebuilds_table(self, tiny_embeddings):
        first = _named_dataset(
            "shared-name",
            [("a", "color", "red"), ("b", "color", "blue")],
        )
        second = _named_dataset(
            "shared-name",
            [
                ("a", "color", "red"),
                ("b", "color", "blue"),
                ("c", "weight", "10 g"),
            ],
        )
        matcher = LeapmeMatcher(tiny_embeddings, config=CONFIG)
        matcher.prepare(first)
        table_first = matcher._ensure_table(first)
        table_second = matcher._ensure_table(second)
        assert table_second is not table_first
        # And the cache still caches: same dataset, same table object.
        assert matcher._ensure_table(second) is table_second

    def test_fingerprint_distinguishes_content(self):
        first = _named_dataset("x", [("a", "p", "1"), ("b", "p", "2")])
        second = _named_dataset(
            "x", [("a", "p", "1"), ("b", "p", "2"), ("c", "q", "3")]
        )
        assert first.fingerprint() != second.fingerprint()
        assert first.fingerprint() == first.fingerprint()

    def test_fingerprint_distinguishes_same_size_content(self):
        # Same name, same instance/alignment counts, same sources --
        # only a value differs.  Structural counts alone would collide.
        first = _named_dataset("x", [("a", "p", "1"), ("b", "p", "2")])
        edited = _named_dataset("x", [("a", "p", "1"), ("b", "p", "999")])
        assert first.fingerprint() != edited.fingerprint()

    def test_fingerprint_distinguishes_alignment_only_change(self):
        base = [("a", "p", "1"), ("b", "q", "2")]
        instances = [
            PropertyInstance(source=s, property_name=p, entity_id="e1", value=v)
            for s, p, v in base
        ]
        matched = Dataset(
            name="x",
            instances=list(instances),
            alignment={
                PropertyRef("a", "p"): "ref1",
                PropertyRef("b", "q"): "ref1",
            },
        )
        unmatched = Dataset(
            name="x",
            instances=list(instances),
            alignment={
                PropertyRef("a", "p"): "ref1",
                PropertyRef("b", "q"): "ref2",
            },
        )
        assert matched.fingerprint() != unmatched.fingerprint()

    def test_fingerprint_is_order_insensitive(self):
        forward = _named_dataset("x", [("a", "p", "1"), ("b", "q", "2")])
        backward = _named_dataset("x", [("b", "q", "2"), ("a", "p", "1")])
        assert forward.fingerprint() == backward.fingerprint()
