"""The pipeline's one non-negotiable: numerically the seed implementation.

The staged pipeline (PR 5) replaced the monolithic float64 featurizer
with columnar float32 stage stores.  These tests pin the compatibility
contract:

* for every one of the nine ``FeatureConfig`` grid cells, the pipeline
  matrix equals an inline re-implementation of the seed-era float64
  path, within float32 cast resolution;
* ``schema.resolve(config).dimension`` is the matrix width;
* the :meth:`PairFeatureStore.add_source` delta path is *bit-identical*
  to rebuilding the merged dataset from scratch, while provably
  computing only the new property rows and new cross-source pairs
  (asserted via the pipeline's stage-call counters).
"""

import numpy as np
import pytest

from repro.core import (
    FeatureConfig,
    PairFeatureStore,
    PairUniverse,
    PropertyFeatureTable,
    pair_feature_matrix,
)
from repro.core.instance_features import NUM_META_FEATURES, instance_meta_matrix
from repro.core.pipeline import FeaturePipeline, FeatureSchema, name_distance_block
from repro.datasets import build_domain_embeddings, load_dataset
from repro.text.similarity import name_distance_vector

#: Tolerance of the float32 policy: per-row math is float64 (identical
#: to the seed), cast once on entry to the column store, so pipeline and
#: legacy matrices agree to float32 resolution.
RTOL = 1e-5
ATOL = 1e-6

DOMAINS = ("headphones", "cameras")


def reference_property_features(dataset, embeddings):
    """The seed-era float64 property featurizer, inlined as the oracle."""
    refs = dataset.properties()
    dimension = embeddings.dimension
    meta = np.zeros((len(refs), NUM_META_FEATURES))
    value_emb = np.zeros((len(refs), dimension))
    name_emb = np.zeros((len(refs), dimension))
    for i, ref in enumerate(refs):
        values = dataset.values_of(ref)
        if values:
            meta[i] = instance_meta_matrix(values).mean(axis=0)
            total = np.zeros(dimension)
            for value in values:
                total += embeddings.embed_text(value)
            value_emb[i] = total / len(values)
        name_emb[i] = embeddings.embed_text(ref.name)
    return refs, meta, value_emb, name_emb


def reference_pair_matrix(schema, config, tables, pairs):
    """Seed-era pair assembly: per-block abs diffs + name distances."""
    refs, meta, value_emb, name_emb = tables
    row_of = {ref: i for i, ref in enumerate(refs)}
    left = np.array([row_of[pair.left] for pair in pairs])
    right = np.array([row_of[pair.right] for pair in pairs])
    blocks = []
    for block in schema.active_blocks(config):
        if block.key == "instance_meta":
            blocks.append(np.abs(meta[left] - meta[right]))
        elif block.key == "instance_embedding":
            blocks.append(np.abs(value_emb[left] - value_emb[right]))
        elif block.key == "name_embedding":
            blocks.append(np.abs(name_emb[left] - name_emb[right]))
        else:
            blocks.append(
                np.array(
                    [
                        name_distance_vector(pair.left.name, pair.right.name)
                        for pair in pairs
                    ]
                )
            )
    return np.hstack(blocks)


@pytest.fixture(scope="module", params=DOMAINS)
def domain_fixture(request):
    dataset = load_dataset(request.param, scale="tiny", seed=0)
    embeddings = build_domain_embeddings(request.param, scale="tiny")
    table = PropertyFeatureTable(dataset, embeddings)
    universe = PairUniverse(dataset)
    store = PairFeatureStore(table, universe)
    reference = reference_property_features(dataset, embeddings)
    return dataset, embeddings, table, universe, store, reference


@pytest.mark.parametrize(
    "config", FeatureConfig.grid(), ids=lambda config: config.label()
)
class TestNineConfigEquivalence:
    def test_pipeline_matches_seed_reference(self, domain_fixture, config):
        _, embeddings, table, universe, _, reference = domain_fixture
        pairs = list(universe.pairs)[:60]
        schema = FeatureSchema(embeddings.dimension)
        got = pair_feature_matrix(table, pairs, config)
        want = reference_pair_matrix(schema, config, reference, pairs)
        np.testing.assert_allclose(got, want, rtol=RTOL, atol=ATOL)

    def test_schema_dimension_is_matrix_width(self, domain_fixture, config):
        _, embeddings, table, universe, _, _ = domain_fixture
        pairs = list(universe.pairs)[:10]
        matrix = pair_feature_matrix(table, pairs, config)
        resolved = FeatureSchema(embeddings.dimension).resolve(config)
        assert resolved.dimension == matrix.shape[1]

    def test_store_gather_equals_direct_assembly(self, domain_fixture, config):
        _, _, table, universe, store, _ = domain_fixture
        pairs = list(universe.pairs)[:60]
        served = store.features(pairs, config)
        direct = pair_feature_matrix(table, pairs, config)
        np.testing.assert_array_equal(served, direct)

    def test_matrices_are_float32(self, domain_fixture, config):
        _, _, table, universe, store, _ = domain_fixture
        pairs = list(universe.pairs)[:10]
        assert pair_feature_matrix(table, pairs, config).dtype == np.float32
        assert store.features(pairs, config).dtype == np.float32


class TestAddSourceDelta:
    @pytest.fixture(scope="class")
    def delta(self):
        dataset = load_dataset("headphones", scale="tiny", seed=0)
        embeddings = build_domain_embeddings("headphones", scale="tiny")
        sources = sorted(dataset.sources())
        base = dataset.restrict_to_sources(sources[:-1])
        addition = dataset.restrict_to_sources(sources[-1:])
        pipeline = FeaturePipeline(embeddings)
        table = PropertyFeatureTable(base, embeddings, pipeline=pipeline)
        store = PairFeatureStore(table, PairUniverse(base))
        before = dict(pipeline.stage_calls)
        new_pairs = store.add_source(addition)
        calls = {
            stage: count - before.get(stage, 0)
            for stage, count in pipeline.stage_calls.items()
        }
        rebuilt = PairFeatureStore.build(base.merged_with(addition), embeddings)
        return base, addition, store, new_pairs, calls, rebuilt

    def test_gathers_equal_from_scratch_rebuild(self, delta):
        _, _, store, _, _, rebuilt = delta
        # Bit-identical, not merely close: merging keeps base instances
        # first, so every per-property float64 summation order -- and
        # hence every cast float32 row -- is preserved.
        assert np.array_equal(store.matrix, rebuilt.matrix)

    def test_pair_enumeration_matches_rebuild(self, delta):
        _, _, store, _, _, rebuilt = delta
        assert [p.key for p in store.universe.pairs] == [
            p.key for p in rebuilt.universe.pairs
        ]
        assert [p.label for p in store.universe.pairs] == [
            p.label for p in rebuilt.universe.pairs
        ]

    def test_only_new_property_rows_computed(self, delta):
        _, addition, _, _, calls, _ = delta
        assert calls["property_aggregate"] == len(addition.properties())

    def test_only_new_pairs_assembled(self, delta):
        base, _, store, new_pairs, calls, _ = delta
        assert calls["pair_diff"] == len(new_pairs.pairs)
        distance_rows = calls.get("name_distance.computed", 0) + calls.get(
            "name_distance.cache_hit", 0
        )
        assert distance_rows == len(new_pairs.pairs)
        # Work avoidance is directly assertable: every pair the delta
        # just touched is memoized, so re-requesting the same block
        # computes nothing.
        repeat: dict[str, int] = {}
        name_distance_block(
            [(p.left.name, p.right.name) for p in new_pairs.pairs],
            counters=repeat,
        )
        assert repeat["computed"] == 0
        assert repeat["cache_hit"] == len(new_pairs.pairs)
        # Every new pair crosses into the added source; none are
        # base-internal re-dos.
        base_sources = set(base.sources())
        assert all(
            pair.left.source not in base_sources
            or pair.right.source not in base_sources
            for pair in new_pairs.pairs
        )

    def test_served_config_views_match_rebuild(self, delta):
        _, _, store, _, _, rebuilt = delta
        pairs = list(store.universe.pairs)[:40]
        for config in FeatureConfig.grid():
            np.testing.assert_array_equal(
                store.features(pairs, config), rebuilt.features(pairs, config)
            )
