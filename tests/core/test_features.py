"""Tests for the Table I feature extractors."""

import numpy as np
import pytest

from repro.core.config import FeatureConfig, FeatureKinds, FeatureScope
from repro.core.instance_features import (
    NUM_META_FEATURES,
    instance_meta_features,
    instance_meta_matrix,
)
from repro.core.pair_features import (
    NUM_NAME_DISTANCES,
    feature_block_names,
    name_distances,
    pair_feature_matrix,
)
from repro.core.property_features import PropertyFeatureTable
from repro.data.model import Dataset, PropertyInstance, PropertyRef
from repro.data.pairs import LabeledPair
from repro.embeddings.hashing import hash_embeddings
from repro.errors import ConfigurationError, DataError


class TestInstanceMetaFeatures:
    def test_count_matches_paper(self):
        # 18 char-type + 10 token-type + 1 numeric = 29; with a 300-d
        # embedding this yields the paper's 329 instance features.
        assert NUM_META_FEATURES == 29
        assert instance_meta_features("20.1 MP").shape == (29,)

    def test_numeric_value_is_last(self):
        assert instance_meta_features("42")[-1] == 42.0
        assert instance_meta_features("n/a")[-1] == -1.0

    def test_matrix_shape(self):
        matrix = instance_meta_matrix(["a", "bb", "ccc"])
        assert matrix.shape == (3, 29)

    def test_empty_matrix(self):
        assert instance_meta_matrix([]).shape == (0, 29)

    def test_distinct_formats_distinct_features(self):
        a = instance_meta_features("20.1 MP")
        b = instance_meta_features("wireless")
        assert not np.allclose(a, b)


@pytest.fixture()
def dataset():
    instances = [
        PropertyInstance("s1", "resolution", "e1", "20 mp"),
        PropertyInstance("s1", "resolution", "e2", "24 mp"),
        PropertyInstance("s2", "megapixels", "e3", "18 mp"),
        PropertyInstance("s2", "weight", "e3", "500 grams"),
    ]
    alignment = {
        PropertyRef("s1", "resolution"): "resolution",
        PropertyRef("s2", "megapixels"): "resolution",
        PropertyRef("s2", "weight"): "weight",
    }
    return Dataset("t", instances, alignment)


@pytest.fixture()
def embeddings():
    return hash_embeddings(
        ["resolution", "megapixels", "weight", "mp", "grams"], dimension=8
    )


@pytest.fixture()
def table(dataset, embeddings):
    return PropertyFeatureTable(dataset, embeddings)


class TestPropertyFeatureTable:
    def test_shapes(self, table):
        assert len(table) == 3
        assert table.meta.shape == (3, 29)
        assert table.value_embedding.shape == (3, 8)
        assert table.name_embedding.shape == (3, 8)

    def test_meta_is_instance_average(self, table, dataset):
        ref = PropertyRef("s1", "resolution")
        expected = instance_meta_matrix(dataset.values_of(ref)).mean(axis=0)
        assert np.allclose(table.meta[table.row_of(ref)], expected)

    def test_name_embedding_matches_lookup(self, table, embeddings):
        ref = PropertyRef("s2", "megapixels")
        assert np.allclose(
            table.name_embedding[table.row_of(ref)],
            embeddings.embed_text("megapixels"),
        )

    def test_unknown_ref_raises(self, table):
        with pytest.raises(DataError):
            table.row_of(PropertyRef("nope", "nope"))

    def test_rows_of(self, table, dataset):
        rows = table.rows_of(dataset.properties())
        assert sorted(rows.tolist()) == [0, 1, 2]


class TestPairFeatureMatrix:
    def _pairs(self):
        return [
            LabeledPair(
                PropertyRef("s1", "resolution"), PropertyRef("s2", "megapixels"), True
            ),
            LabeledPair(
                PropertyRef("s1", "resolution"), PropertyRef("s2", "weight"), False
            ),
        ]

    def test_full_config_width(self, table):
        config = FeatureConfig()
        matrix = pair_feature_matrix(table, self._pairs(), config)
        # 29 meta + 8 inst-emb + 8 name-emb + 8 distances
        assert matrix.shape == (2, 29 + 8 + 8 + 8)

    @pytest.mark.parametrize(
        ("scope", "kinds", "width"),
        [
            (FeatureScope.INSTANCES, FeatureKinds.NON_EMBEDDING, 29),
            (FeatureScope.INSTANCES, FeatureKinds.EMBEDDING, 8),
            (FeatureScope.INSTANCES, FeatureKinds.BOTH, 37),
            (FeatureScope.NAMES, FeatureKinds.EMBEDDING, 8),
            (FeatureScope.NAMES, FeatureKinds.NON_EMBEDDING, 8),
            (FeatureScope.NAMES, FeatureKinds.BOTH, 16),
            (FeatureScope.BOTH, FeatureKinds.EMBEDDING, 16),
            (FeatureScope.BOTH, FeatureKinds.NON_EMBEDDING, 37),
            (FeatureScope.BOTH, FeatureKinds.BOTH, 53),
        ],
    )
    def test_nine_config_widths(self, table, scope, kinds, width):
        config = FeatureConfig(scope, kinds)
        matrix = pair_feature_matrix(table, self._pairs(), config)
        assert matrix.shape == (2, width)
        assert len(feature_block_names(config, 8)) == width

    def test_paper_dimensions_at_300(self):
        # With 300-d embeddings the paper's counts are reproduced:
        # property vector = 329 + 300 = 629; pair vector = 629 + 8 = 637.
        config = FeatureConfig()
        names = feature_block_names(config, 300)
        assert len(names) == 29 + 300 + 300 + 8 == 637

    def test_symmetric_in_pair_order(self, table):
        config = FeatureConfig()
        forward = pair_feature_matrix(table, self._pairs(), config)
        flipped = [
            LabeledPair(pair.right, pair.left, pair.label) for pair in self._pairs()
        ]
        backward = pair_feature_matrix(table, flipped, config)
        assert np.allclose(forward, backward)

    def test_accepts_plain_tuples(self, table):
        config = FeatureConfig(FeatureScope.NAMES, FeatureKinds.NON_EMBEDDING)
        pairs = [(PropertyRef("s1", "resolution"), PropertyRef("s2", "weight"))]
        assert pair_feature_matrix(table, pairs, config).shape == (1, 8)

    def test_empty_pairs(self, table):
        matrix = pair_feature_matrix(table, [], FeatureConfig())
        assert matrix.shape == (0, 53)

    def test_matching_pair_smaller_distance_block(self, table):
        config = FeatureConfig(FeatureScope.NAMES, FeatureKinds.NON_EMBEDDING)
        same = pair_feature_matrix(
            table,
            [(PropertyRef("s1", "resolution"), PropertyRef("s2", "megapixels"))],
            config,
        )
        identical = name_distances("resolution", "resolution")
        assert np.allclose(identical, 0.0)
        assert (same > 0).any()


class TestConfig:
    def test_grid_has_nine(self):
        assert len(FeatureConfig.grid()) == 9

    def test_labels_unique(self):
        labels = {config.label() for config in FeatureConfig.grid()}
        assert len(labels) == 9

    def test_scope_flags(self):
        assert FeatureScope.BOTH.uses_instances and FeatureScope.BOTH.uses_names
        assert not FeatureScope.NAMES.uses_instances
        assert not FeatureScope.INSTANCES.uses_names

    def test_name_distance_count(self):
        assert NUM_NAME_DISTANCES == 8
