"""Tests for permutation feature importance and matcher persistence."""

import numpy as np
import pytest

from repro.core import FeatureConfig, FeatureKinds, FeatureScope, LeapmeConfig, LeapmeMatcher
from repro.core.importance import (
    BlockImportance,
    permutation_importance,
    render_importance,
)
from repro.core.persistence import load_matcher, save_matcher
from repro.data.pairs import build_pairs, sample_training_pairs
from repro.errors import DataError, NotFittedError
from repro.nn.schedule import TrainingSchedule

FAST = LeapmeConfig(
    hidden_sizes=(32, 16),
    schedule=TrainingSchedule.from_pairs([(8, 1e-3), (2, 1e-4)]),
)


@pytest.fixture(scope="module")
def fitted(tiny_headphones_module, tiny_embeddings_module):
    dataset = tiny_headphones_module
    matcher = LeapmeMatcher(tiny_embeddings_module, config=FAST)
    rng = np.random.default_rng(0)
    training = sample_training_pairs(build_pairs(dataset), rng=rng)
    matcher.fit(dataset, training)
    return dataset, matcher, training


@pytest.fixture(scope="module")
def tiny_headphones_module():
    from repro.datasets import load_dataset

    return load_dataset("headphones", scale="tiny", seed=0)


@pytest.fixture(scope="module")
def tiny_embeddings_module():
    from repro.datasets import build_domain_embeddings

    return build_domain_embeddings("headphones", scale="tiny")


class TestPermutationImportance:
    def test_blocks_match_config(self, fitted, rng):
        dataset, matcher, pairs = fitted
        importances = permutation_importance(matcher, dataset, pairs, repeats=2, rng=rng)
        blocks = {item.block for item in importances}
        assert blocks == {
            "instance_meta",
            "instance_embedding",
            "name_embedding",
            "name_distances",
        }

    def test_sorted_by_importance(self, fitted, rng):
        dataset, matcher, pairs = fitted
        importances = permutation_importance(matcher, dataset, pairs, repeats=2, rng=rng)
        values = [item.importance for item in importances]
        assert values == sorted(values, reverse=True)

    def test_name_embedding_is_load_bearing(self, fitted, rng):
        # The paper: "The embedding features for property names are the
        # most effective features in LEAPME."
        dataset, matcher, pairs = fitted
        importances = permutation_importance(matcher, dataset, pairs, repeats=3, rng=rng)
        by_block = {item.block: item.importance for item in importances}
        assert by_block["name_embedding"] > 0.0

    def test_restricted_config_has_fewer_blocks(
        self, tiny_headphones_module, tiny_embeddings_module, rng
    ):
        dataset = tiny_headphones_module
        matcher = LeapmeMatcher(
            tiny_embeddings_module,
            FeatureConfig(FeatureScope.NAMES, FeatureKinds.EMBEDDING),
            config=FAST,
        )
        training = sample_training_pairs(build_pairs(dataset), rng=np.random.default_rng(1))
        matcher.fit(dataset, training)
        importances = permutation_importance(matcher, dataset, training, rng=rng)
        assert [item.block for item in importances] == ["name_embedding"]

    def test_unfitted_matcher_raises(self, tiny_embeddings_module, tiny_headphones_module):
        matcher = LeapmeMatcher(tiny_embeddings_module)
        pairs = sample_training_pairs(build_pairs(tiny_headphones_module))
        with pytest.raises(NotFittedError):
            permutation_importance(matcher, tiny_headphones_module, pairs)

    def test_render(self):
        items = [
            BlockImportance("name_embedding", 0.9, 0.4),
            BlockImportance("instance_meta", 0.9, 0.85),
        ]
        text = render_importance(items)
        assert "name_embedding" in text
        assert "+0.500" in text

    def test_render_empty(self):
        assert "no feature blocks" in render_importance([])


class TestPersistence:
    def test_roundtrip_scores_identical(self, fitted, tmp_path):
        dataset, matcher, pairs = fitted
        bundle = tmp_path / "bundle"
        save_matcher(matcher, bundle)
        loaded = load_matcher(bundle)
        original = matcher.score_pairs(dataset, pairs.pairs[:20])
        restored = loaded.score_pairs(dataset, pairs.pairs[:20])
        assert np.allclose(original, restored)

    def test_roundtrip_preserves_config(self, fitted, tmp_path):
        dataset, matcher, _ = fitted
        bundle = tmp_path / "bundle"
        save_matcher(matcher, bundle)
        loaded = load_matcher(bundle)
        assert loaded.feature_config == matcher.feature_config
        assert loaded.config.hidden_sizes == matcher.config.hidden_sizes
        assert loaded.config.schedule.total_epochs == matcher.config.schedule.total_epochs

    def test_bundle_files_present(self, fitted, tmp_path):
        _, matcher, _ = fitted
        bundle = tmp_path / "bundle"
        save_matcher(matcher, bundle)
        for filename in ("embeddings.npz", "network.npz", "scaler.npz", "config.json"):
            assert (bundle / filename).exists()

    def test_unfitted_matcher_rejected(self, tiny_embeddings_module, tmp_path):
        with pytest.raises(NotFittedError):
            save_matcher(LeapmeMatcher(tiny_embeddings_module), tmp_path / "x")

    def test_load_missing_bundle(self, tmp_path):
        with pytest.raises(DataError, match="missing config.json"):
            load_matcher(tmp_path / "nothing")

    def test_load_bad_version(self, fitted, tmp_path):
        import json

        _, matcher, _ = fitted
        bundle = tmp_path / "bundle"
        save_matcher(matcher, bundle)
        config = json.loads((bundle / "config.json").read_text())
        config["version"] = 42
        (bundle / "config.json").write_text(json.dumps(config))
        with pytest.raises(DataError, match="version"):
            load_matcher(bundle)

    def test_bundle_persists_resolved_schema(self, fitted, tmp_path):
        import json

        _, matcher, _ = fitted
        bundle = tmp_path / "bundle"
        save_matcher(matcher, bundle)
        payload = json.loads((bundle / "config.json").read_text())
        saved = payload["schema"]
        assert saved == matcher.schema.resolve(matcher.feature_config).to_dict()

    def test_load_rejects_mismatched_schema(self, fitted, tmp_path):
        import json

        _, matcher, _ = fitted
        bundle = tmp_path / "bundle"
        save_matcher(matcher, bundle)
        config = json.loads((bundle / "config.json").read_text())
        config["schema"]["dimension"] += 1
        (bundle / "config.json").write_text(json.dumps(config))
        with pytest.raises(DataError, match="schema"):
            load_matcher(bundle)

    def test_format_one_bundle_without_schema_still_loads(
        self, fitted, tmp_path
    ):
        import json

        dataset, matcher, pairs = fitted
        bundle = tmp_path / "bundle"
        save_matcher(matcher, bundle)
        config = json.loads((bundle / "config.json").read_text())
        config["version"] = 1
        del config["schema"]
        (bundle / "config.json").write_text(json.dumps(config))
        loaded = load_matcher(bundle)
        assert np.allclose(
            matcher.score_pairs(dataset, pairs.pairs[:10]),
            loaded.score_pairs(dataset, pairs.pairs[:10]),
        )


class TestCandidatePolicyPersistence:
    """Bundle format 3: the candidate policy travels with the matcher."""

    @pytest.fixture(scope="class")
    def blocked_fitted(self, tiny_headphones_module, tiny_embeddings_module):
        from repro.blocking import CandidatePolicy

        dataset = tiny_headphones_module
        matcher = LeapmeMatcher(
            tiny_embeddings_module,
            config=FAST,
            candidate_policy=CandidatePolicy.from_label("minhash:seed=7"),
        )
        store = matcher.build_feature_store(dataset)
        matcher.attach_store(store)
        training = store.universe.training_sample(
            store.universe.subset(), 2.0, (0,)
        )
        matcher.fit(dataset, training)
        return dataset, matcher

    def test_null_policy_persisted_by_default(self, fitted, tmp_path):
        import json

        _, matcher, _ = fitted
        bundle = tmp_path / "bundle"
        save_matcher(matcher, bundle)
        payload = json.loads((bundle / "config.json").read_text())
        assert payload["version"] == 3
        assert payload["candidate_policy"] == {"blocker": "null", "params": {}}

    def test_blocked_roundtrip_preserves_policy_and_scores(
        self, blocked_fitted, tmp_path
    ):
        dataset, matcher = blocked_fitted
        bundle = tmp_path / "bundle"
        save_matcher(matcher, bundle)
        loaded = load_matcher(bundle)
        assert loaded.candidate_policy == matcher.candidate_policy
        assert loaded.candidate_policy.label == "minhash:seed=7"
        pairs = list(matcher.store.universe.pairs)[:20]
        assert np.allclose(
            matcher.score_pairs(dataset, pairs),
            loaded.score_pairs(dataset, pairs),
        )

    def test_loaded_matcher_builds_blocked_stores(self, blocked_fitted, tmp_path):
        dataset, matcher = blocked_fitted
        bundle = tmp_path / "bundle"
        save_matcher(matcher, bundle)
        loaded = load_matcher(bundle)
        store = loaded.build_feature_store(dataset)
        assert store.universe.is_blocked
        assert [p.key for p in store.universe.pairs] == [
            p.key for p in matcher.store.universe.pairs
        ]

    def test_format_two_bundle_defaults_to_null(self, fitted, tmp_path):
        import json

        _, matcher, _ = fitted
        bundle = tmp_path / "bundle"
        save_matcher(matcher, bundle)
        config = json.loads((bundle / "config.json").read_text())
        config["version"] = 2
        del config["candidate_policy"]
        (bundle / "config.json").write_text(json.dumps(config))
        loaded = load_matcher(bundle)
        assert loaded.candidate_policy.is_null

    def test_corrupt_policy_rejected(self, fitted, tmp_path):
        import json

        _, matcher, _ = fitted
        bundle = tmp_path / "bundle"
        save_matcher(matcher, bundle)
        config = json.loads((bundle / "config.json").read_text())
        config["candidate_policy"] = {"blocker": "sorted-neighborhood"}
        (bundle / "config.json").write_text(json.dumps(config))
        with pytest.raises(DataError, match="corrupt"):
            load_matcher(bundle)

    def test_corrupt_policy_params_rejected(self, fitted, tmp_path):
        import json

        _, matcher, _ = fitted
        bundle = tmp_path / "bundle"
        save_matcher(matcher, bundle)
        config = json.loads((bundle / "config.json").read_text())
        config["candidate_policy"] = {"blocker": "minhash", "params": {"seed": "x"}}
        (bundle / "config.json").write_text(json.dumps(config))
        with pytest.raises(DataError, match="corrupt"):
            load_matcher(bundle)
