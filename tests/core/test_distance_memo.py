"""The in-process distance memo: bounded, clearable, persistently backed.

PR 6's follow daemon made the memo long-lived, so it must stop growing
without bound; the persistent cache must make restarts warm -- a pair
computed before a process death is never recomputed after it, which the
``computed`` / ``cache_hit`` counter split makes directly assertable.
"""

import numpy as np
import pytest

import repro.core.pipeline as pipeline_module
from repro.core.pipeline import (
    clear_distance_memo,
    disable_persistent_distances,
    enable_persistent_distances,
    flush_persistent_distances,
    name_distance_block,
    name_distances,
)
from repro.text.distance_cache import DistanceCache
from repro.text.similarity import name_distance_vector


@pytest.fixture(autouse=True)
def isolated_memo():
    """Each test starts from a cold memo and leaves no persistent hook."""
    clear_distance_memo()
    disable_persistent_distances()
    yield
    clear_distance_memo()
    disable_persistent_distances()


def _pairs(count, stem="name"):
    return [(f"{stem} {i}", f"{stem}_{i}") for i in range(count)]


class TestBoundedMemo:
    def test_memo_never_exceeds_cap(self, monkeypatch):
        monkeypatch.setattr(pipeline_module, "_DISTANCE_MEMO_CAP", 8)
        name_distance_block(_pairs(30))
        assert len(pipeline_module._DISTANCE_CACHE) <= 8

    def test_eviction_is_first_in_first_out(self, monkeypatch):
        monkeypatch.setattr(pipeline_module, "_DISTANCE_MEMO_CAP", 4)
        for a, b in _pairs(4):
            name_distances(a, b)
        oldest = next(iter(pipeline_module._DISTANCE_CACHE))
        name_distances("fresh", "entry")
        assert oldest not in pipeline_module._DISTANCE_CACHE
        assert len(pipeline_module._DISTANCE_CACHE) == 4

    def test_clear_empties_the_memo(self):
        name_distance_block(_pairs(5))
        assert pipeline_module._DISTANCE_CACHE
        clear_distance_memo()
        assert not pipeline_module._DISTANCE_CACHE

    def test_evicted_pairs_are_recomputed_identically(self, monkeypatch):
        monkeypatch.setattr(pipeline_module, "_DISTANCE_MEMO_CAP", 2)
        first = np.array(name_distances("height", "width"))
        name_distance_block(_pairs(10))  # evicts the first entry
        np.testing.assert_array_equal(
            name_distances("height", "width"), first
        )


class TestCounterSplit:
    def test_cold_block_is_all_computed(self):
        counters = {}
        name_distance_block(_pairs(6), counters=counters)
        assert counters == {"computed": 6, "cache_hit": 0}

    def test_warm_block_is_all_cache_hit(self):
        name_distance_block(_pairs(6))
        counters = {}
        name_distance_block(_pairs(6), counters=counters)
        assert counters == {"computed": 0, "cache_hit": 6}

    def test_duplicate_misses_count_once_per_row(self):
        # Three rows, one unique missing pair: the kernel runs once but
        # every requested row is accounted for.
        counters = {}
        block = name_distance_block(
            [("a b", "c d"), ("C D", "A B"), ("a b", "c d")],
            counters=counters,
        )
        assert counters["computed"] + counters["cache_hit"] == 3
        np.testing.assert_array_equal(block[0], block[1])
        np.testing.assert_array_equal(block[0], block[2])


class TestPersistentWiring:
    def test_restart_serves_every_seen_pair_without_recompute(self, tmp_path):
        path = tmp_path / "distances.npz"
        pairs = _pairs(12)

        enable_persistent_distances(path)
        cold = {}
        first = name_distance_block(pairs, counters=cold)
        assert cold["computed"] == 12
        assert flush_persistent_distances()
        disable_persistent_distances()

        # Simulated process restart: in-process memo gone, file remains.
        clear_distance_memo()
        cache = enable_persistent_distances(path)
        assert cache.loaded_entries == 12
        warm = {}
        second = name_distance_block(pairs, counters=warm)
        assert warm == {"computed": 0, "cache_hit": 12}
        np.testing.assert_array_equal(second, first)

    def test_rows_match_the_scalar_reference_after_reload(self, tmp_path):
        path = tmp_path / "distances.npz"
        enable_persistent_distances(path)
        name_distance_block([("Resolution", "resolution dpi")])
        flush_persistent_distances()
        disable_persistent_distances()
        clear_distance_memo()

        enable_persistent_distances(path)
        row = name_distance_block([("Resolution", "resolution dpi")])[0]
        np.testing.assert_array_equal(
            row, np.array(name_distance_vector("resolution", "resolution dpi"))
        )

    def test_scalar_path_records_to_the_persistent_cache(self, tmp_path):
        path = tmp_path / "distances.npz"
        enable_persistent_distances(path)
        name_distances("Gain", "gain db")
        assert flush_persistent_distances()
        assert ("gain", "gain db") in DistanceCache(path)

    def test_flush_without_cache_is_a_noop(self):
        assert not flush_persistent_distances()

    def test_clean_cache_does_not_rewrite(self, tmp_path):
        path = tmp_path / "distances.npz"
        enable_persistent_distances(path)
        name_distance_block(_pairs(3))
        assert flush_persistent_distances()
        assert not flush_persistent_distances()  # nothing new since

    def test_corrupt_file_recomputes_and_heals(self, tmp_path):
        path = tmp_path / "distances.npz"
        enable_persistent_distances(path)
        name_distance_block(_pairs(4))
        flush_persistent_distances()
        disable_persistent_distances()
        clear_distance_memo()

        path.write_bytes(b"garbage")
        cache = enable_persistent_distances(path)
        assert cache.loaded_entries == 0
        counters = {}
        name_distance_block(_pairs(4), counters=counters)
        assert counters["computed"] == 4
        assert flush_persistent_distances()
        assert DistanceCache(path).loaded_entries == 4
