"""Tests for k-NN, naive Bayes, logistic regression and the scaler."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, NotFittedError
from repro.ml.knn import KNeighborsClassifier
from repro.ml.logistic import LogisticRegression
from repro.ml.naive_bayes import GaussianNaiveBayes
from repro.ml.scaling import StandardScaler


def _blobs(rng, n=200, separation=3.0):
    half = n // 2
    x0 = rng.standard_normal((half, 3)) + separation
    x1 = rng.standard_normal((half, 3)) - separation
    return np.vstack([x0, x1]), np.array([0] * half + [1] * half)


@pytest.mark.parametrize(
    "model_factory",
    [
        lambda: KNeighborsClassifier(n_neighbors=3),
        lambda: KNeighborsClassifier(n_neighbors=3, weights="distance"),
        GaussianNaiveBayes,
        LogisticRegression,
    ],
)
class TestCommonBehaviour:
    def test_fits_separable_data(self, model_factory, rng):
        inputs, labels = _blobs(rng)
        model = model_factory().fit(inputs, labels)
        assert (model.predict(inputs) == labels).mean() > 0.95

    def test_probabilities_valid(self, model_factory, rng):
        inputs, labels = _blobs(rng)
        model = model_factory().fit(inputs, labels)
        probs = model.predict_proba(inputs)
        assert probs.shape == (len(inputs), 2)
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert (probs >= 0).all()

    def test_not_fitted_raises(self, model_factory):
        with pytest.raises(NotFittedError):
            model_factory().predict(np.zeros((1, 3)))

    def test_label_space_preserved(self, model_factory, rng):
        inputs, labels = _blobs(rng)
        renamed = np.where(labels == 0, -5, 5)
        model = model_factory().fit(inputs, renamed)
        assert set(np.unique(model.predict(inputs))) <= {-5, 5}

    def test_empty_training_rejected(self, model_factory):
        with pytest.raises(ConfigurationError):
            model_factory().fit(np.zeros((0, 3)), np.zeros(0))


class TestKnnSpecifics:
    def test_single_neighbor_memorises(self, rng):
        inputs, labels = _blobs(rng, n=20)
        model = KNeighborsClassifier(n_neighbors=1).fit(inputs, labels)
        assert (model.predict(inputs) == labels).all()

    def test_k_larger_than_train_set(self, rng):
        inputs, labels = _blobs(rng, n=6)
        model = KNeighborsClassifier(n_neighbors=50).fit(inputs, labels)
        # Falls back to all points; still predicts something sensible.
        assert model.predict(inputs).shape == (6,)

    def test_distance_weighting_prefers_closest(self):
        inputs = np.array([[0.0], [0.1], [10.0], [10.1], [10.2]])
        labels = np.array([0, 0, 1, 1, 1])
        model = KNeighborsClassifier(n_neighbors=5, weights="distance").fit(
            inputs, labels
        )
        assert model.predict(np.array([[0.05]]))[0] == 0

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            KNeighborsClassifier(n_neighbors=0)
        with pytest.raises(ConfigurationError):
            KNeighborsClassifier(weights="bogus")


class TestNaiveBayesSpecifics:
    def test_prior_influences_prediction(self, rng):
        # Overlapping classes with a 9:1 prior; ambiguous points go to the
        # majority class.
        inputs = np.vstack([rng.standard_normal((90, 1)), rng.standard_normal((10, 1))])
        labels = np.array([0] * 90 + [1] * 10)
        model = GaussianNaiveBayes().fit(inputs, labels)
        assert model.predict(np.array([[0.0]]))[0] == 0

    def test_variance_smoothing_handles_constant_feature(self, rng):
        inputs = np.hstack([np.ones((50, 1)), rng.standard_normal((50, 1))])
        labels = np.array([0, 1] * 25)
        model = GaussianNaiveBayes().fit(inputs, labels)
        probs = model.predict_proba(inputs)
        assert np.isfinite(probs).all()


class TestLogisticSpecifics:
    def test_converges_and_records_iterations(self, rng):
        inputs, labels = _blobs(rng)
        model = LogisticRegression(max_iter=500)
        model.fit(inputs, labels)
        assert 1 <= model.n_iter_ <= 500

    def test_multinomial(self, rng):
        inputs = np.vstack(
            [rng.standard_normal((50, 2)) + offset for offset in ([0, 5], [5, -5], [-5, -5])]
        )
        labels = np.repeat([0, 1, 2], 50)
        model = LogisticRegression(max_iter=400).fit(inputs, labels)
        assert (model.predict(inputs) == labels).mean() > 0.95

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            LogisticRegression(learning_rate=0.0)
        with pytest.raises(ConfigurationError):
            LogisticRegression(max_iter=0)


class TestStandardScaler:
    def test_zero_mean_unit_variance(self, rng):
        inputs = rng.standard_normal((100, 4)) * 5 + 3
        scaled = StandardScaler().fit_transform(inputs)
        assert np.allclose(scaled.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(scaled.std(axis=0), 1.0, atol=1e-9)

    def test_constant_column_not_divided_by_zero(self):
        inputs = np.hstack([np.ones((10, 1)), np.arange(10).reshape(-1, 1) * 1.0])
        scaled = StandardScaler().fit_transform(inputs)
        assert np.allclose(scaled[:, 0], 0.0)
        assert np.isfinite(scaled).all()

    def test_inverse_transform_roundtrip(self, rng):
        inputs = rng.standard_normal((20, 3)) * 2 + 1
        scaler = StandardScaler().fit(inputs)
        assert np.allclose(scaler.inverse_transform(scaler.transform(inputs)), inputs)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(np.zeros((1, 2)))

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            StandardScaler().fit(np.zeros((0, 2)))
