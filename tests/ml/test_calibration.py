"""Tests for probability calibration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, NotFittedError
from repro.ml.calibration import IsotonicCalibrator, PlattCalibrator, prior_correction


def _noisy_scores(rng, n=400, positive_rate=0.3):
    labels = (rng.random(n) < positive_rate).astype(int)
    scores = np.clip(labels * 0.6 + rng.normal(0.2, 0.15, n), 0, 1)
    return scores, labels


class TestPlatt:
    def test_monotone_in_score(self, rng):
        scores, labels = _noisy_scores(rng)
        calibrator = PlattCalibrator().fit(scores, labels)
        grid = np.linspace(0, 1, 20)
        out = calibrator.transform(grid)
        assert (np.diff(out) >= -1e-12).all()

    def test_outputs_are_probabilities(self, rng):
        scores, labels = _noisy_scores(rng)
        out = PlattCalibrator().fit_transform(scores, labels)
        assert ((out >= 0) & (out <= 1)).all()

    def test_improves_calibration_error(self, rng):
        # Raw scores deliberately over-confident: squash into [0.4, 0.6].
        scores, labels = _noisy_scores(rng, n=1000)
        raw = 0.4 + 0.2 * scores
        calibrated = PlattCalibrator().fit_transform(raw, labels)

        def ece(probabilities):
            bins = np.clip((probabilities * 10).astype(int), 0, 9)
            error = 0.0
            for b in range(10):
                members = bins == b
                if members.sum() < 5:
                    continue
                error += abs(labels[members].mean() - probabilities[members].mean()) * members.mean()
            return error

        assert ece(calibrated) < ece(raw)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            PlattCalibrator().transform(np.array([0.5]))

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            PlattCalibrator().fit(np.zeros(0), np.zeros(0))


class TestIsotonic:
    def test_perfectly_separable(self, rng):
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        labels = np.array([0, 0, 1, 1])
        calibrator = IsotonicCalibrator().fit(scores, labels)
        out = calibrator.transform(np.array([0.15, 0.85]))
        assert out[0] == pytest.approx(0.0)
        assert out[1] == pytest.approx(1.0)

    def test_monotone_output(self, rng):
        scores, labels = _noisy_scores(rng)
        calibrator = IsotonicCalibrator().fit(scores, labels)
        grid = np.linspace(0, 1, 50)
        out = calibrator.transform(grid)
        assert (np.diff(out) >= -1e-12).all()

    def test_pava_pools_violators(self):
        # Labels 1,0 at increasing scores must pool to the mean 0.5.
        scores = np.array([0.3, 0.7])
        labels = np.array([1, 0])
        calibrator = IsotonicCalibrator().fit(scores, labels)
        assert calibrator.transform(np.array([0.5]))[0] == pytest.approx(0.5)

    def test_below_first_block_clamped(self):
        calibrator = IsotonicCalibrator().fit(np.array([0.5, 0.9]), np.array([0, 1]))
        assert calibrator.transform(np.array([0.0]))[0] == pytest.approx(0.0)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            IsotonicCalibrator().transform(np.array([0.5]))

    @given(seed=st.integers(0, 50))
    @settings(max_examples=20, deadline=None)
    def test_mean_preserved(self, seed):
        rng = np.random.default_rng(seed)
        scores, labels = _noisy_scores(rng, n=100)
        out = IsotonicCalibrator().fit_transform(scores, labels)
        # Isotonic regression preserves the overall positive rate.
        assert out.mean() == pytest.approx(labels.mean(), abs=1e-9)


class TestPriorCorrection:
    def test_identity_when_priors_match(self):
        probabilities = np.array([0.2, 0.5, 0.9])
        out = prior_correction(probabilities, 0.3, 0.3)
        assert np.allclose(out, probabilities)

    def test_lower_deploy_prior_lowers_probabilities(self):
        probabilities = np.array([0.5])
        out = prior_correction(probabilities, train_positive_rate=1 / 3,
                               deploy_positive_rate=0.05)
        assert out[0] < 0.5

    def test_extremes_fixed_points(self):
        out = prior_correction(np.array([0.0, 1.0]), 0.3, 0.05)
        assert out[0] == pytest.approx(0.0)
        assert out[1] == pytest.approx(1.0)

    def test_correct_bayes_arithmetic(self):
        # r = 0.5/0.25 = 2, s = 0.5/0.75 = 2/3, p = 0.5:
        # 2*0.5 / (2*0.5 + (2/3)*0.5) = 1 / (4/3) = 0.75
        out = prior_correction(np.array([0.5]), 0.25, 0.5)
        assert out[0] == pytest.approx(0.75)

    def test_invalid_rates(self):
        with pytest.raises(ConfigurationError):
            prior_correction(np.array([0.5]), 0.0, 0.5)
        with pytest.raises(ConfigurationError):
            prior_correction(np.array([0.5]), 0.5, 1.0)
