"""Tests for the decision tree and AdaBoost."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, NotFittedError
from repro.ml.adaboost import AdaBoostClassifier
from repro.ml.tree import DecisionTreeClassifier


def _blobs(rng, n=200, separation=3.0):
    half = n // 2
    x0 = rng.standard_normal((half, 3)) + separation
    x1 = rng.standard_normal((half, 3)) - separation
    inputs = np.vstack([x0, x1])
    labels = np.array([0] * half + [1] * half)
    return inputs, labels


def _xor(rng, n=400):
    """XOR: not linearly separable, needs depth >= 2."""
    inputs = rng.uniform(-1, 1, size=(n, 2))
    labels = ((inputs[:, 0] > 0) ^ (inputs[:, 1] > 0)).astype(int)
    return inputs, labels


class TestDecisionTree:
    def test_fits_separable_data(self, rng):
        inputs, labels = _blobs(rng)
        tree = DecisionTreeClassifier(max_depth=3).fit(inputs, labels)
        assert (tree.predict(inputs) == labels).mean() > 0.98

    def test_solves_xor(self, rng):
        inputs, labels = _xor(rng)
        tree = DecisionTreeClassifier(max_depth=4).fit(inputs, labels)
        assert (tree.predict(inputs) == labels).mean() > 0.95

    def test_depth_limit_respected(self, rng):
        inputs, labels = _xor(rng)
        tree = DecisionTreeClassifier(max_depth=2).fit(inputs, labels)
        assert tree.depth() <= 2

    def test_pure_node_becomes_leaf(self):
        inputs = np.array([[0.0], [1.0], [2.0]])
        labels = np.array([1, 1, 1])
        tree = DecisionTreeClassifier().fit(inputs, labels)
        assert tree.depth() == 0
        assert tree.node_count() == 1

    def test_probabilities_sum_to_one(self, rng):
        inputs, labels = _blobs(rng)
        tree = DecisionTreeClassifier(max_depth=3).fit(inputs, labels)
        probs = tree.predict_proba(inputs)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_arbitrary_label_values(self, rng):
        inputs, labels = _blobs(rng)
        renamed = np.where(labels == 0, 7, 42)
        tree = DecisionTreeClassifier(max_depth=3).fit(inputs, renamed)
        assert set(np.unique(tree.predict(inputs))) <= {7, 42}

    def test_constant_features_yield_leaf(self):
        inputs = np.ones((10, 2))
        labels = np.array([0, 1] * 5)
        tree = DecisionTreeClassifier().fit(inputs, labels)
        assert tree.node_count() == 1

    def test_min_samples_split(self, rng):
        inputs, labels = _blobs(rng, n=6)
        tree = DecisionTreeClassifier(min_samples_split=100).fit(inputs, labels)
        assert tree.node_count() == 1

    def test_weighted_fit_respects_weights(self):
        # Two conflicting points; the heavier one wins the leaf.
        inputs = np.array([[0.0], [0.0]])
        labels = np.array([0, 1])
        tree = DecisionTreeClassifier().fit_weighted(
            inputs, labels, np.array([0.9, 0.1])
        )
        assert tree.predict(np.array([[0.0]]))[0] == 0

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            DecisionTreeClassifier().predict(np.zeros((1, 2)))

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            DecisionTreeClassifier(max_depth=0)
        with pytest.raises(ConfigurationError):
            DecisionTreeClassifier(min_samples_split=1)

    def test_three_classes(self, rng):
        inputs = np.vstack(
            [
                rng.standard_normal((50, 2)) + offset
                for offset in ([0, 0], [6, 6], [-6, 6])
            ]
        )
        labels = np.repeat([0, 1, 2], 50)
        tree = DecisionTreeClassifier(max_depth=4).fit(inputs, labels)
        assert (tree.predict(inputs) == labels).mean() > 0.95


class TestAdaBoost:
    def test_fits_separable_data(self, rng):
        inputs, labels = _blobs(rng)
        model = AdaBoostClassifier(n_estimators=10).fit(inputs, labels)
        assert (model.predict(inputs) == labels).mean() > 0.98

    def test_boosting_beats_single_stump_on_xor(self, rng):
        inputs, labels = _xor(rng)
        stump = DecisionTreeClassifier(max_depth=1).fit(inputs, labels)
        boosted = AdaBoostClassifier(n_estimators=50, max_depth=2).fit(inputs, labels)
        stump_acc = (stump.predict(inputs) == labels).mean()
        boosted_acc = (boosted.predict(inputs) == labels).mean()
        assert boosted_acc > stump_acc

    def test_perfect_learner_short_circuits(self, rng):
        inputs, labels = _blobs(rng, separation=10.0)
        model = AdaBoostClassifier(n_estimators=50, max_depth=3).fit(inputs, labels)
        assert model.n_fitted_estimators == 1

    def test_probabilities_valid(self, rng):
        inputs, labels = _blobs(rng)
        model = AdaBoostClassifier(n_estimators=5).fit(inputs, labels)
        probs = model.predict_proba(inputs)
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert (probs >= 0).all()

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            AdaBoostClassifier(n_estimators=0)
        with pytest.raises(ConfigurationError):
            AdaBoostClassifier(learning_rate=0.0)
