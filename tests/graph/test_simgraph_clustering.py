"""Tests for the similarity graph and property clustering."""

import pytest

from repro.data.model import Dataset, PropertyInstance, PropertyRef
from repro.errors import ConfigurationError
from repro.graph import (
    SimilarityGraph,
    cluster_connected_components,
    cluster_correlation,
    cluster_star,
    clustering_metrics,
)


def _ref(source, name):
    return PropertyRef(source, name)


@pytest.fixture()
def graph():
    g = SimilarityGraph()
    g.add(_ref("s1", "a"), _ref("s2", "a"), 0.9)
    g.add(_ref("s1", "a"), _ref("s3", "a"), 0.8)
    g.add(_ref("s2", "a"), _ref("s3", "a"), 0.7)
    g.add(_ref("s1", "b"), _ref("s2", "b"), 0.6)
    g.add(_ref("s1", "a"), _ref("s2", "b"), 0.1)
    return g


@pytest.fixture()
def dataset():
    instances = []
    alignment = {}
    for source in ("s1", "s2", "s3"):
        for name in ("a", "b"):
            instances.append(PropertyInstance(source, name, f"e{source}", "v"))
            alignment[PropertyRef(source, name)] = name
    return Dataset("g", instances, alignment)


class TestSimilarityGraph:
    def test_add_and_score(self, graph):
        assert graph.score(_ref("s1", "a"), _ref("s2", "a")) == 0.9
        # Order-independent lookup.
        assert graph.score(_ref("s2", "a"), _ref("s1", "a")) == 0.9
        assert graph.score(_ref("s1", "a"), _ref("s9", "z")) is None

    def test_matches_thresholded_and_sorted(self, graph):
        matches = graph.matches(0.5)
        assert len(matches) == 4
        scores = [edge.score for edge in matches]
        assert scores == sorted(scores, reverse=True)

    def test_match_keys(self, graph):
        keys = graph.match_keys(0.65)
        assert frozenset((_ref("s1", "a"), _ref("s2", "a"))) in keys
        assert len(keys) == 3

    def test_self_edge_rejected(self):
        graph = SimilarityGraph()
        with pytest.raises(ConfigurationError):
            graph.add(_ref("s1", "a"), _ref("s1", "a"), 0.5)

    def test_score_out_of_range(self):
        graph = SimilarityGraph()
        with pytest.raises(ConfigurationError):
            graph.add(_ref("s1", "a"), _ref("s2", "b"), 1.5)

    def test_overwrite(self, graph):
        graph.add(_ref("s1", "a"), _ref("s2", "a"), 0.2)
        assert graph.score(_ref("s1", "a"), _ref("s2", "a")) == 0.2
        assert len(graph) == 5

    def test_to_networkx(self, graph):
        nx_graph = graph.to_networkx(0.5)
        assert nx_graph.number_of_edges() == 4
        assert nx_graph.number_of_nodes() == len(graph.properties())

    def test_properties_sorted(self, graph):
        properties = graph.properties()
        assert properties == sorted(properties)


class TestClustering:
    def test_connected_components(self, graph):
        clusters = cluster_connected_components(graph, 0.5)
        sizes = sorted(len(cluster) for cluster in clusters)
        assert sizes == [2, 3]

    def test_star_clusters_disjoint(self, graph):
        clusters = cluster_star(graph, 0.5)
        seen = set()
        for cluster in clusters:
            assert not seen & cluster
            seen |= cluster

    def test_correlation_clusters_disjoint(self, graph):
        clusters = cluster_correlation(graph, 0.5)
        seen = set()
        for cluster in clusters:
            assert not seen & cluster
            seen |= cluster

    @pytest.mark.parametrize(
        "method", [cluster_connected_components, cluster_star, cluster_correlation]
    )
    def test_perfect_graph_recovers_truth(self, graph, dataset, method):
        clusters = method(graph, 0.5)
        quality = clustering_metrics(clusters, dataset)
        assert quality.precision == 1.0
        # The 'b' cluster lacks s3 (never scored) so recall is below 1.
        assert quality.recall > 0.5

    def test_chain_error_split_by_star(self):
        # a1 -- a2 -- b1 where a2-b1 is a false edge: components merge all
        # three, star keeps the heavier pair together.
        g = SimilarityGraph()
        g.add(_ref("s1", "a"), _ref("s2", "a"), 0.9)
        g.add(_ref("s2", "a"), _ref("s3", "b"), 0.55)
        components = cluster_connected_components(g, 0.5)
        stars = cluster_star(g, 0.5)
        assert max(len(c) for c in components) == 3
        assert max(len(c) for c in stars) <= 3

    def test_overlapping_clusters_rejected(self, dataset):
        overlapping = [{_ref("s1", "a")}, {_ref("s1", "a"), _ref("s2", "a")}]
        with pytest.raises(ConfigurationError, match="overlap"):
            clustering_metrics(overlapping, dataset)

    def test_restrict_to(self, graph, dataset):
        restricted = {_ref("s1", "a"), _ref("s2", "a")}
        clusters = cluster_connected_components(graph, 0.5)
        quality = clustering_metrics(clusters, dataset, restrict_to=restricted)
        assert quality.true_positives == 1
        assert quality.false_negatives == 0

    def test_empty_graph(self, dataset):
        clusters = cluster_connected_components(SimilarityGraph(), 0.5)
        assert clusters == []
