"""Property-based tests for value fusion invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.model import Dataset, PropertyInstance, PropertyRef
from repro.graph.fusion import canonical_name, fuse_cluster

value_text = st.text(
    alphabet="abcdefghij 0123456789.", min_size=1, max_size=12
).filter(str.strip)


@st.composite
def cluster_datasets(draw):
    """A dataset plus one cross-source cluster over its properties."""
    n_sources = draw(st.integers(2, 4))
    instances = []
    cluster = set()
    for s in range(n_sources):
        source = f"s{s}"
        name = draw(st.sampled_from(["size", "Size", "panel_size", "size spec"]))
        ref = PropertyRef(source, name)
        cluster.add(ref)
        for e in range(draw(st.integers(1, 3))):
            instances.append(
                PropertyInstance(source, name, f"e{s}_{e}", draw(value_text))
            )
    return Dataset("prop", instances, {}), cluster


class TestFusionProperties:
    @given(data=cluster_datasets())
    @settings(max_examples=25, deadline=None)
    def test_every_entity_gets_a_value(self, data):
        dataset, cluster = data
        fused = fuse_cluster(dataset, cluster)
        entities = {
            instance.entity_id
            for ref in cluster
            for instance in dataset.instances_of(ref)
        }
        assert set(fused.values) == entities

    @given(data=cluster_datasets())
    @settings(max_examples=25, deadline=None)
    def test_fused_value_is_an_observed_value_under_majority(self, data):
        dataset, cluster = data
        fused = fuse_cluster(dataset, cluster, strategy="majority")
        observed = {
            instance.entity_id: set()
            for ref in cluster
            for instance in dataset.instances_of(ref)
        }
        for ref in cluster:
            for instance in dataset.instances_of(ref):
                observed[instance.entity_id].add(instance.value)
        for entity, value in fused.values.items():
            assert value in observed[entity]

    @given(data=cluster_datasets())
    @settings(max_examples=25, deadline=None)
    def test_canonical_name_normalised_form_of_a_member(self, data):
        dataset, cluster = data
        from repro.text.normalize import name_tokens

        name = canonical_name(sorted(cluster))
        member_forms = {" ".join(name_tokens(ref.name)) for ref in cluster}
        assert name in member_forms

    @given(data=cluster_datasets())
    @settings(max_examples=25, deadline=None)
    def test_deterministic(self, data):
        dataset, cluster = data
        one = fuse_cluster(dataset, cluster)
        two = fuse_cluster(dataset, cluster)
        assert one.values == two.values
        assert one.canonical_name == two.canonical_name
