"""Tests for incremental source-by-source integration."""

import numpy as np
import pytest

from repro.core.api import Matcher
from repro.data.model import Dataset, PropertyInstance, PropertyRef
from repro.errors import ConfigurationError, DataError
from repro.graph.clustering import clustering_metrics
from repro.graph.incremental import IncrementalClusterer


class OracleMatcher(Matcher):
    """Scores pairs by ground truth."""

    name = "Oracle"
    is_supervised = False

    def score_pairs(self, dataset, pairs):
        return np.array(
            [1.0 if dataset.is_match(p.left, p.right) else 0.0 for p in pairs]
        )


@pytest.fixture()
def dataset():
    instances = []
    alignment = {}
    for source in ("s1", "s2", "s3"):
        for prop, reference in (("a", "ra"), ("b", "rb")):
            name = f"{prop}_{source}"
            instances.append(PropertyInstance(source, name, f"e{source}", "v"))
            alignment[PropertyRef(source, name)] = reference
    return Dataset("inc", instances, alignment)


class TestIncrementalClusterer:
    def test_first_source_founds_singletons(self, dataset):
        clusterer = IncrementalClusterer(OracleMatcher(), dataset)
        changes = clusterer.add_source("s1")
        assert changes == {"joined": 0, "founded": 2}
        assert all(len(c) == 1 for c in clusterer.clusters())

    def test_oracle_recovers_perfect_clusters(self, dataset):
        clusterer = IncrementalClusterer(OracleMatcher(), dataset)
        clusterer.add_all()
        clusters = clusterer.clusters()
        assert sorted(len(c) for c in clusters) == [3, 3]
        quality = clustering_metrics(clusters, dataset)
        assert quality.f1 == 1.0

    def test_second_source_joins(self, dataset):
        clusterer = IncrementalClusterer(OracleMatcher(), dataset)
        clusterer.add_source("s1")
        changes = clusterer.add_source("s2")
        assert changes == {"joined": 2, "founded": 0}

    def test_duplicate_source_rejected(self, dataset):
        clusterer = IncrementalClusterer(OracleMatcher(), dataset)
        clusterer.add_source("s1")
        with pytest.raises(DataError, match="already integrated"):
            clusterer.add_source("s1")

    def test_unknown_source_rejected(self, dataset):
        clusterer = IncrementalClusterer(OracleMatcher(), dataset)
        with pytest.raises(DataError, match="unknown source"):
            clusterer.add_source("ghost")

    def test_one_property_per_cluster_per_source(self, dataset):
        clusterer = IncrementalClusterer(OracleMatcher(), dataset)
        clusterer.add_all()
        for cluster in clusterer.clusters():
            sources = [ref.source for ref in cluster]
            assert len(sources) == len(set(sources))

    def test_average_linkage(self, dataset):
        clusterer = IncrementalClusterer(OracleMatcher(), dataset, linkage="average")
        clusterer.add_all()
        assert clustering_metrics(clusterer.clusters(), dataset).f1 == 1.0

    def test_invalid_linkage(self, dataset):
        with pytest.raises(ConfigurationError):
            IncrementalClusterer(OracleMatcher(), dataset, linkage="single")

    def test_integration_order_recorded(self, dataset):
        clusterer = IncrementalClusterer(OracleMatcher(), dataset)
        clusterer.add_all(order=["s3", "s1", "s2"])
        assert clusterer.integrated_sources == ["s3", "s1", "s2"]

    def test_with_real_matcher(self, tiny_headphones, tiny_embeddings, rng):
        from repro.core import LeapmeConfig, LeapmeMatcher
        from repro.data.pairs import build_pairs, sample_training_pairs
        from repro.nn.schedule import TrainingSchedule

        matcher = LeapmeMatcher(
            tiny_embeddings,
            config=LeapmeConfig(
                hidden_sizes=(32,), schedule=TrainingSchedule.constant(6, 1e-3)
            ),
        )
        training = sample_training_pairs(build_pairs(tiny_headphones), rng=rng)
        matcher.fit(tiny_headphones, training)
        clusterer = IncrementalClusterer(matcher, tiny_headphones)
        totals = clusterer.add_all()
        assert totals["joined"] > 0
        quality = clustering_metrics(clusterer.clusters(), tiny_headphones)
        assert quality.f1 > 0.3
