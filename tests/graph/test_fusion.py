"""Tests for cluster value fusion."""

import pytest

from repro.data.model import Dataset, PropertyInstance, PropertyRef
from repro.errors import ConfigurationError
from repro.graph.fusion import canonical_name, fuse_cluster, fuse_clusters


@pytest.fixture()
def dataset():
    instances = [
        PropertyInstance("s1", "Screen_Size", "e1", "6.1 inch"),
        PropertyInstance("s1", "Screen_Size", "e2", "6.7 inch"),
        PropertyInstance("s2", "screen size", "e3", "5.5 in"),
        PropertyInstance("s3", "panel inches", "e4", "6.4"),
        PropertyInstance("s2", "weight", "e3", "190 g"),
    ]
    alignment = {
        PropertyRef("s1", "Screen_Size"): "screen",
        PropertyRef("s2", "screen size"): "screen",
        PropertyRef("s3", "panel inches"): "screen",
        PropertyRef("s2", "weight"): "weight",
    }
    return Dataset("f", instances, alignment)


SCREEN_CLUSTER = {
    PropertyRef("s1", "Screen_Size"),
    PropertyRef("s2", "screen size"),
    PropertyRef("s3", "panel inches"),
}


class TestCanonicalName:
    def test_majority_normalised_name(self):
        assert canonical_name(sorted(SCREEN_CLUSTER)) == "screen size"

    def test_deterministic_tie_break(self):
        members = [PropertyRef("s1", "beta"), PropertyRef("s2", "alpha")]
        assert canonical_name(members) == "alpha"


class TestFuseCluster:
    def test_structure(self, dataset):
        fused = fuse_cluster(dataset, SCREEN_CLUSTER)
        assert fused.canonical_name == "screen size"
        assert fused.n_sources == 3
        assert len(fused.values) == 4  # four distinct entities

    def test_single_values_kept_verbatim(self, dataset):
        fused = fuse_cluster(dataset, SCREEN_CLUSTER)
        assert fused.values["e1"] == "6.1 inch"

    def test_majority_resolves_conflicts(self):
        instances = [
            PropertyInstance("s1", "color", "e1", "black"),
            PropertyInstance("s2", "colour", "e1", "black"),
            PropertyInstance("s3", "shade", "e1", "noir"),
        ]
        dataset = Dataset("c", instances, {})
        cluster = {ref for ref in dataset.properties()}
        fused = fuse_cluster(dataset, cluster, strategy="majority")
        assert fused.values["e1"] == "black"

    def test_numeric_median_parses_units(self):
        instances = [
            PropertyInstance("s1", "res", "e1", "20 mp"),
            PropertyInstance("s2", "mp", "e1", "24mp"),
            PropertyInstance("s3", "pixels", "e1", "22"),
        ]
        dataset = Dataset("n", instances, {})
        cluster = set(dataset.properties())
        fused = fuse_cluster(dataset, cluster, strategy="numeric_median")
        assert fused.values["e1"] == "22"

    def test_numeric_median_falls_back_to_majority(self):
        instances = [
            PropertyInstance("s1", "a", "e1", "yes"),
            PropertyInstance("s2", "b", "e1", "yes"),
            PropertyInstance("s3", "c", "e1", "no"),
        ]
        dataset = Dataset("m", instances, {})
        fused = fuse_cluster(dataset, set(dataset.properties()), "numeric_median")
        assert fused.values["e1"] == "yes"

    def test_unknown_strategy(self, dataset):
        with pytest.raises(ConfigurationError, match="unknown fusion strategy"):
            fuse_cluster(dataset, SCREEN_CLUSTER, strategy="quantum")

    def test_describe(self, dataset):
        assert "screen size" in fuse_cluster(dataset, SCREEN_CLUSTER).describe()


class TestFuseClusters:
    def test_min_sources_filter(self, dataset):
        clusters = [SCREEN_CLUSTER, {PropertyRef("s2", "weight")}]
        fused = fuse_clusters(dataset, clusters, min_sources=2)
        assert len(fused) == 1
        assert fused[0].canonical_name == "screen size"

    def test_ordering_by_coverage(self, dataset):
        clusters = [{PropertyRef("s2", "weight")}, SCREEN_CLUSTER]
        fused = fuse_clusters(dataset, clusters, min_sources=1)
        assert fused[0].n_sources >= fused[-1].n_sources

    def test_invalid_min_sources(self, dataset):
        with pytest.raises(ConfigurationError):
            fuse_clusters(dataset, [], min_sources=0)
