"""Tests for the corpus generator and co-occurrence counting."""

import pytest

from repro.embeddings.cooccurrence import build_cooccurrence
from repro.embeddings.corpus import CorpusGenerator
from repro.embeddings.lexicon import SynonymLexicon
from repro.embeddings.vocab import Vocabulary
from repro.errors import ConfigurationError


@pytest.fixture()
def lexicon():
    return SynonymLexicon([["mp", "megapixels"], ["g", "grams"]])


class TestCorpusGenerator:
    def test_deterministic_under_seed(self, lexicon):
        first = CorpusGenerator(lexicon, seed=7).corpus(5)
        second = CorpusGenerator(lexicon, seed=7).corpus(5)
        assert first == second

    def test_different_seeds_differ(self, lexicon):
        first = CorpusGenerator(lexicon, seed=1).corpus(5)
        second = CorpusGenerator(lexicon, seed=2).corpus(5)
        assert first != second

    def test_all_group_members_appear(self, lexicon):
        corpus = CorpusGenerator(lexicon, seed=0).corpus(50)
        seen = {word for sentence in corpus for word in sentence}
        assert {"mp", "megapixels", "g", "grams"} <= seen

    def test_soft_words_appear(self, lexicon):
        generator = CorpusGenerator(lexicon, soft_words={"res": [0]}, seed=0)
        corpus = generator.corpus(10)
        seen = {word for sentence in corpus for word in sentence}
        assert "res" in seen

    def test_singletons_appear(self, lexicon):
        generator = CorpusGenerator(lexicon, singletons=["zork"], seed=0)
        seen = {word for sentence in generator.corpus(10) for word in sentence}
        assert "zork" in seen

    def test_soft_word_unknown_group_rejected(self, lexicon):
        with pytest.raises(ConfigurationError, match="unknown groups"):
            CorpusGenerator(lexicon, soft_words={"res": [99]})

    def test_namespace_prefixes_context_pools(self, lexicon):
        corpus = CorpusGenerator(lexicon, namespace="cam", seed=0).corpus(5)
        context_words = {
            word for sentence in corpus for word in sentence if "ctx" in word
        }
        assert context_words
        assert all(word.startswith("cam_") for word in context_words)

    def test_sentence_length(self, lexicon):
        generator = CorpusGenerator(lexicon, words_per_sentence=6, seed=0)
        for sentence in generator.corpus(3):
            assert len(sentence) == 6

    def test_invalid_parameters(self, lexicon):
        with pytest.raises(ConfigurationError):
            CorpusGenerator(lexicon, context_pool_size=1)
        with pytest.raises(ConfigurationError):
            CorpusGenerator(lexicon, words_per_sentence=2)
        with pytest.raises(ConfigurationError):
            CorpusGenerator(lexicon, contamination=1.0)


class TestCooccurrence:
    def test_window_weighting(self):
        counts = build_cooccurrence([["a", "b", "c"]], window=2)
        # a-b adjacent: weight 1; a-c at distance 2: weight 0.5.
        assert counts.count("a", "b") == pytest.approx(1.0)
        assert counts.count("a", "c") == pytest.approx(0.5)

    def test_symmetry(self):
        counts = build_cooccurrence([["a", "b", "a"]], window=2)
        assert counts.count("a", "b") == counts.count("b", "a")

    def test_window_limit(self):
        counts = build_cooccurrence([["a", "x", "y", "z", "b"]], window=2)
        assert counts.count("a", "b") == 0.0

    def test_unknown_word_zero(self):
        counts = build_cooccurrence([["a", "b"]])
        assert counts.count("a", "ghost") == 0.0

    def test_explicit_vocabulary_skips_unknowns(self):
        vocab = Vocabulary(["a", "b"])
        counts = build_cooccurrence([["a", "skipme", "b"]], vocabulary=vocab, window=2)
        assert counts.count("a", "b") == pytest.approx(0.5)
        assert len(counts.vocabulary) == 2

    def test_lowercases_tokens(self):
        counts = build_cooccurrence([["A", "b"]])
        assert counts.count("a", "b") == pytest.approx(1.0)

    def test_empty_corpus(self):
        counts = build_cooccurrence([])
        assert counts.nnz == 0

    def test_invalid_window(self):
        with pytest.raises(ConfigurationError):
            build_cooccurrence([["a"]], window=0)
