"""Tests for the embedding vocabulary."""

import pytest

from repro.embeddings.vocab import Vocabulary
from repro.errors import VocabularyError


class TestVocabulary:
    def test_insertion_order_ids(self):
        vocab = Vocabulary(["b", "a", "c"])
        assert vocab.id_of("b") == 0
        assert vocab.id_of("a") == 1
        assert vocab.id_of("c") == 2

    def test_add_is_idempotent(self):
        vocab = Vocabulary()
        first = vocab.add("word")
        second = vocab.add("word")
        assert first == second
        assert len(vocab) == 1

    def test_id_of_unknown_raises(self):
        with pytest.raises(VocabularyError, match="not in vocabulary"):
            Vocabulary().id_of("ghost")

    def test_get_returns_default(self):
        assert Vocabulary().get("ghost") is None
        assert Vocabulary().get("ghost", -1) == -1

    def test_token_of_roundtrip(self):
        vocab = Vocabulary(["x", "y"])
        for token in vocab:
            assert vocab.token_of(vocab.id_of(token)) == token

    def test_token_of_out_of_range(self):
        with pytest.raises(VocabularyError, match="out of range"):
            Vocabulary(["a"]).token_of(5)

    def test_contains(self):
        vocab = Vocabulary(["a"])
        assert "a" in vocab
        assert "b" not in vocab

    def test_tokens_returns_copy(self):
        vocab = Vocabulary(["a"])
        tokens = vocab.tokens()
        tokens.append("b")
        assert len(vocab) == 1


class TestFromCorpus:
    def test_frequency_order(self):
        corpus = [["b", "a", "a"], ["a", "b", "c"]]
        vocab = Vocabulary.from_corpus(corpus)
        assert vocab.tokens() == ["a", "b", "c"]

    def test_min_count_filter(self):
        vocab = Vocabulary.from_corpus([["a", "a", "b"]], min_count=2)
        assert vocab.tokens() == ["a"]

    def test_max_size_truncates_to_most_frequent(self):
        vocab = Vocabulary.from_corpus([["a", "a", "b", "c"]], max_size=1)
        assert vocab.tokens() == ["a"]

    def test_tie_break_alphabetical(self):
        vocab = Vocabulary.from_corpus([["z", "a"]])
        assert vocab.tokens() == ["a", "z"]

    def test_empty_corpus(self):
        assert len(Vocabulary.from_corpus([])) == 0
