"""Tests for SIF-weighted text encoding."""

import numpy as np
import pytest

from repro.embeddings.base import WordEmbeddings
from repro.embeddings.sif import SifEncoder
from repro.embeddings.vocab import Vocabulary
from repro.errors import ConfigurationError


@pytest.fixture()
def embeddings():
    vocab = Vocabulary(["the", "megapixel", "resolution", "spec"])
    vectors = np.array(
        [
            [1.0, 0.0, 0.0],   # "the" -- a frequent filler
            [0.0, 1.0, 0.0],   # "megapixel"
            [0.0, 0.9, 0.1],   # "resolution"
            [0.0, 0.0, 1.0],   # "spec"
        ]
    )
    return WordEmbeddings(vocab, vectors)


@pytest.fixture()
def frequencies():
    return {"the": 0.5, "megapixel": 0.001, "resolution": 0.001, "spec": 0.05}


class TestSifEncoder:
    def test_frequent_words_downweighted(self, embeddings, frequencies):
        encoder = SifEncoder(embeddings, frequencies)
        plain = embeddings.embed_text("the megapixel")
        weighted = encoder.embed_text("the megapixel")
        # The "the" axis (dim 0) contributes much less under SIF.
        assert weighted[0] < plain[0]
        assert weighted[1] > plain[1]

    def test_unknown_word_gets_max_weight(self, embeddings, frequencies):
        encoder = SifEncoder(embeddings, frequencies)
        assert encoder._weight("neverseen") == encoder._weight("megapixel")

    def test_empty_text(self, embeddings, frequencies):
        encoder = SifEncoder(embeddings, frequencies)
        assert np.allclose(encoder.embed_text(""), 0.0)

    def test_common_direction_removed(self, embeddings, frequencies):
        encoder = SifEncoder(embeddings, frequencies)
        texts = ["megapixel spec", "resolution spec", "megapixel resolution"]
        encoder.fit_common_direction(texts)
        direction = encoder._common_direction
        assert direction is not None
        vector = encoder.embed_text("megapixel spec")
        assert abs(np.dot(vector, direction)) < 1e-9

    def test_fit_with_too_few_texts_is_noop(self, embeddings, frequencies):
        encoder = SifEncoder(embeddings, frequencies)
        encoder.fit_common_direction(["", "123"])
        assert encoder._common_direction is None

    def test_widens_synonym_vs_nonsynonym_margin(self, embeddings, frequencies):
        from repro.embeddings.base import cosine

        encoder = SifEncoder(embeddings, frequencies)

        def margin(embed):
            match = cosine(
                embed("the megapixel"), embed("the resolution")
            )
            non_match = cosine(embed("the megapixel"), embed("the spec"))
            return match - non_match

        # Down-weighting the shared filler "the" must widen the gap
        # between the synonym pair and the unrelated pair.
        assert margin(encoder.embed_text) > margin(embeddings.embed_text)

    def test_validation(self, embeddings):
        with pytest.raises(ConfigurationError):
            SifEncoder(embeddings, {}, a=1e-3)
        with pytest.raises(ConfigurationError):
            SifEncoder(embeddings, {"a": 0.1}, a=0.0)

    def test_frequency_builders(self):
        from_sentences = SifEncoder.frequencies_from_sentences([["a", "b"], ["a"]])
        assert from_sentences["a"] == pytest.approx(2 / 3)
        from_texts = SifEncoder.frequencies_from_texts(["mp rating", "MP"])
        assert from_texts["mp"] == pytest.approx(2 / 3)
        with pytest.raises(ConfigurationError):
            SifEncoder.frequencies_from_texts(["123"])

    def test_vector_passthrough(self, embeddings, frequencies):
        encoder = SifEncoder(embeddings, frequencies)
        assert np.allclose(encoder.vector("megapixel"), embeddings.vector("megapixel"))
        assert encoder.dimension == 3
