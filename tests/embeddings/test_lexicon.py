"""Tests for the synonym lexicon."""

import pytest

from repro.embeddings.lexicon import SynonymLexicon
from repro.errors import DataError


class TestSynonymLexicon:
    def test_are_synonyms_within_group(self):
        lexicon = SynonymLexicon([["mp", "megapixels", "resolution"]])
        assert lexicon.are_synonyms("mp", "megapixels")
        assert lexicon.are_synonyms("MP", "Resolution")

    def test_equal_words_are_synonyms_even_if_unknown(self):
        lexicon = SynonymLexicon()
        assert lexicon.are_synonyms("ghost", "Ghost")

    def test_different_groups_not_synonyms(self):
        lexicon = SynonymLexicon([["a", "b"], ["c", "d"]])
        assert not lexicon.are_synonyms("a", "c")

    def test_synonyms_of_unknown_is_singleton(self):
        lexicon = SynonymLexicon()
        assert lexicon.synonyms("Ghost") == frozenset({"ghost"})

    def test_synonyms_returns_whole_group(self):
        lexicon = SynonymLexicon([["a", "b", "c"]])
        assert lexicon.synonyms("b") == frozenset({"a", "b", "c"})

    def test_overlapping_group_rejected(self):
        lexicon = SynonymLexicon([["a", "b"]])
        with pytest.raises(DataError, match="already belongs"):
            lexicon.add_group(["b", "c"])

    def test_empty_group_rejected(self):
        with pytest.raises(DataError, match="empty"):
            SynonymLexicon([[]])

    def test_group_of(self):
        lexicon = SynonymLexicon([["a", "b"], ["c"]])
        assert lexicon.group_of("a") == lexicon.group_of("b") == 0
        assert lexicon.group_of("c") == 1
        assert lexicon.group_of("x") is None

    def test_vocabulary(self):
        lexicon = SynonymLexicon([["a", "b"], ["c"]])
        assert lexicon.vocabulary() == {"a", "b", "c"}

    def test_len_counts_groups(self):
        assert len(SynonymLexicon([["a", "b"], ["c"]])) == 2


class TestMerge:
    def test_disjoint_merge(self):
        left = SynonymLexicon([["a", "b"]])
        right = SynonymLexicon([["c", "d"]])
        merged = left.merged_with(right)
        assert len(merged) == 2
        assert merged.are_synonyms("a", "b")
        assert merged.are_synonyms("c", "d")

    def test_overlapping_merge_unions_transitively(self):
        left = SynonymLexicon([["a", "b"], ["c", "d"]])
        right = SynonymLexicon([["b", "c"]])
        merged = left.merged_with(right)
        # "b"~"c" bridges the two groups of `left` into one.
        assert merged.are_synonyms("a", "d")
        assert len(merged) == 1

    def test_merge_does_not_mutate_inputs(self):
        left = SynonymLexicon([["a", "b"]])
        right = SynonymLexicon([["b", "c"]])
        left.merged_with(right)
        assert not left.are_synonyms("a", "c")


class TestSerialization:
    def test_roundtrip(self, tmp_path):
        lexicon = SynonymLexicon([["mp", "megapixels"], ["g", "grams"]])
        path = tmp_path / "lexicon.json"
        lexicon.save(path)
        loaded = SynonymLexicon.load(path)
        assert loaded.to_dict() == lexicon.to_dict()

    def test_from_dict_requires_groups(self):
        with pytest.raises(DataError, match="groups"):
            SynonymLexicon.from_dict({})
