"""Tests for WordEmbeddings, hashing embeddings and persistence."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.embeddings.base import WordEmbeddings, cosine
from repro.embeddings.hashing import hash_embeddings, hash_vector
from repro.embeddings.store import load_embeddings, save_embeddings
from repro.embeddings.vocab import Vocabulary
from repro.errors import ConfigurationError, DataError, DimensionError


@pytest.fixture()
def embeddings():
    vocab = Vocabulary(["mp", "megapixels", "grams"])
    vectors = np.array(
        [[1.0, 0.0], [0.9, 0.1], [0.0, 1.0]]
    )
    return WordEmbeddings(vocab, vectors)


class TestWordEmbeddings:
    def test_vector_lookup_case_insensitive(self, embeddings):
        assert np.allclose(embeddings.vector("MP"), [1.0, 0.0])

    def test_oov_is_zero_vector(self, embeddings):
        # The paper: "Unknown words are mapped to a vector filled with zeroes."
        assert np.allclose(embeddings.vector("ghost"), 0.0)

    def test_embed_text_averages(self, embeddings):
        vector = embeddings.embed_text("mp grams")
        assert np.allclose(vector, [0.5, 0.5])

    def test_embed_text_counts_oov_in_average(self, embeddings):
        # An unknown word contributes a zero vector but still divides.
        vector = embeddings.embed_text("mp ghost")
        assert np.allclose(vector, [0.5, 0.0])

    def test_embed_empty_text(self, embeddings):
        assert np.allclose(embeddings.embed_text(""), 0.0)
        assert np.allclose(embeddings.embed_text("123 !!"), 0.0)

    def test_contains(self, embeddings):
        assert "mp" in embeddings
        assert "MP" in embeddings
        assert "ghost" not in embeddings

    def test_nearest_excludes_self(self, embeddings):
        names = [word for word, _ in embeddings.nearest("mp", k=2)]
        assert "mp" not in names
        assert names[0] == "megapixels"

    def test_nearest_of_unknown_word_empty(self, embeddings):
        assert embeddings.nearest("ghost") == []

    def test_shape_validation(self):
        with pytest.raises(DimensionError):
            WordEmbeddings(Vocabulary(["a"]), np.zeros((2, 3)))
        with pytest.raises(DimensionError):
            WordEmbeddings(Vocabulary(["a"]), np.zeros(3))


class TestCosine:
    def test_zero_vector_convention(self):
        assert cosine(np.zeros(3), np.zeros(3)) == 0.0
        assert cosine(np.zeros(3), np.ones(3)) == 0.0

    def test_parallel(self):
        assert cosine(np.array([1.0, 2.0]), np.array([2.0, 4.0])) == pytest.approx(1.0)

    def test_orthogonal(self):
        assert cosine(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == pytest.approx(0.0)


class TestHashing:
    def test_stable_across_calls(self):
        assert np.allclose(hash_vector("word", 8), hash_vector("word", 8))

    def test_case_insensitive(self):
        assert np.allclose(hash_vector("Word", 8), hash_vector("word", 8))

    def test_salt_changes_vector(self):
        assert not np.allclose(hash_vector("word", 8, salt=0), hash_vector("word", 8, salt=1))

    def test_unit_norm(self):
        assert np.linalg.norm(hash_vector("word", 16)) == pytest.approx(1.0)

    def test_build_embeddings(self):
        emb = hash_embeddings(["a", "b", "a"], dimension=8)
        assert len(emb) == 2
        assert emb.dimension == 8

    @given(st.text(alphabet="abcdef", min_size=1, max_size=8))
    def test_near_orthogonality(self, word):
        other = word + "x"
        emb = hash_embeddings([word, other], dimension=64)
        assert abs(emb.cosine_similarity(word, other)) < 0.6

    def test_invalid_dimension(self):
        with pytest.raises(ConfigurationError):
            hash_embeddings(["a"], dimension=0)


class TestStore:
    def test_roundtrip(self, embeddings, tmp_path):
        path = tmp_path / "emb.npz"
        save_embeddings(embeddings, path)
        loaded = load_embeddings(path)
        assert loaded.vocabulary.tokens() == embeddings.vocabulary.tokens()
        assert np.allclose(loaded.vectors, embeddings.vectors)

    def test_missing_file(self, tmp_path):
        with pytest.raises(DataError, match="not found"):
            load_embeddings(tmp_path / "nope.npz")

    def test_wrong_contents(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, something=np.zeros(3))
        with pytest.raises(DataError, match="missing arrays"):
            load_embeddings(path)
