"""Tests for PPMI + SVD embedding training."""

import numpy as np
import pytest
from scipy import sparse

from repro.embeddings.cooccurrence import CooccurrenceCounts, build_cooccurrence
from repro.embeddings.corpus import CorpusGenerator
from repro.embeddings.glove_like import ppmi_matrix, train_glove_like
from repro.embeddings.lexicon import SynonymLexicon
from repro.embeddings.vocab import Vocabulary
from repro.errors import ConfigurationError, DimensionError


def _train(dimension=16, anisotropy=0.0, seed=0):
    lexicon = SynonymLexicon(
        [["mp", "megapixels", "mpix"], ["g", "grams"], ["hz", "hertz"]]
    )
    generator = CorpusGenerator(lexicon, contamination=0.2, seed=seed)
    counts = build_cooccurrence(generator.sentences(40))
    return train_glove_like(counts, dimension=dimension, anisotropy=anisotropy, seed=seed)


class TestPpmi:
    def test_ppmi_non_negative(self):
        matrix = sparse.csr_matrix(np.array([[0.0, 4.0], [4.0, 1.0]]))
        ppmi = ppmi_matrix(matrix)
        assert (ppmi.toarray() >= 0).all()

    def test_empty_matrix(self):
        ppmi = ppmi_matrix(sparse.csr_matrix((3, 3)))
        assert ppmi.nnz == 0

    def test_non_square_rejected(self):
        with pytest.raises(DimensionError):
            ppmi_matrix(sparse.csr_matrix((2, 3)))

    def test_shift_reduces_mass(self):
        matrix = sparse.csr_matrix(np.array([[0.0, 4.0], [4.0, 1.0]]))
        plain = ppmi_matrix(matrix).sum()
        shifted = ppmi_matrix(matrix, shift=1.0).sum()
        assert shifted <= plain


class TestTraining:
    def test_synonyms_close_others_far(self):
        emb = _train()
        assert emb.cosine_similarity("mp", "megapixels") > 0.5
        assert emb.cosine_similarity("mp", "grams") < 0.4

    def test_deterministic(self):
        first = _train(seed=3)
        second = _train(seed=3)
        assert np.allclose(first.vectors, second.vectors)

    def test_requested_dimension_honoured(self):
        emb = _train(dimension=50)
        assert emb.dimension == 50

    def test_dimension_larger_than_vocab_is_padded(self):
        counts = build_cooccurrence([["a", "b"], ["b", "a"]])
        emb = train_glove_like(counts, dimension=10)
        assert emb.dimension == 10
        assert emb.vectors.shape == (2, 10)

    def test_empty_vocabulary_rejected(self):
        empty = CooccurrenceCounts(Vocabulary(), sparse.csr_matrix((0, 0)))
        with pytest.raises(ConfigurationError):
            train_glove_like(empty, dimension=4)

    def test_invalid_dimension(self):
        counts = build_cooccurrence([["a", "b"]])
        with pytest.raises(ConfigurationError):
            train_glove_like(counts, dimension=0)

    def test_no_cooccurrences_gives_zero_vectors(self):
        counts = build_cooccurrence([["a"], ["b"]])
        emb = train_glove_like(counts, dimension=4)
        assert np.allclose(emb.vectors, 0.0)


class TestAnisotropy:
    def test_raises_random_pair_cosine(self):
        plain = _train(anisotropy=0.0)
        skewed = _train(anisotropy=0.8)
        assert abs(plain.cosine_similarity("mp", "hz")) < 0.3
        assert skewed.cosine_similarity("mp", "hz") > 0.3

    def test_preserves_synonym_ordering(self):
        skewed = _train(anisotropy=0.8)
        assert (
            skewed.cosine_similarity("mp", "megapixels")
            > skewed.cosine_similarity("mp", "grams")
        )
