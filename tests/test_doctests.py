"""Run the executable examples embedded in module docstrings.

Keeps the ``>>>`` examples that document the public API honest -- a
doc example that drifts from the implementation fails the suite.

Modules are resolved through :mod:`importlib` because several package
``__init__`` re-exports shadow same-named submodules (``repro.text.tokenize``
the attribute is the *function*, not the module).
"""

import doctest
import importlib

import pytest

MODULE_NAMES = [
    "repro.text.chartypes",
    "repro.text.tokenize",
    "repro.text.levenshtein",
    "repro.text.lcs",
    "repro.text.ngrams",
    "repro.text.jaro",
    "repro.text.similarity",
    "repro.text.normalize",
    "repro.embeddings.hashing",
    "repro.datasets.naming",
]


@pytest.mark.parametrize("module_name", MODULE_NAMES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failure(s) in {module_name}"
    assert results.attempted > 0, f"{module_name} has no doctests to run"
