"""Equivalence contracts of policy-driven candidate generation.

Two invariants carry the whole refactor:

* the **null** policy is not "approximately" the seed behaviour -- a
  :class:`PairUniverse` built with it must reproduce
  :func:`repro.data.pairs.build_pairs` element for element, and a store
  over it must serve byte-identical feature matrices for every one of
  the nine grid configs;
* a **blocked** universe is a strict subset of the full cross product,
  deterministic under a fixed policy, and its incremental
  ``add_source`` path is bit-identical to a cold rebuild of the merged
  dataset under the same policy.
"""

import numpy as np
import pytest

from repro.blocking import CandidatePolicy
from repro.core import (
    FeatureConfig,
    PairFeatureStore,
    PairUniverse,
    pair_feature_matrix,
)
from repro.data.pairs import build_pairs

MINHASH = CandidatePolicy.from_label("minhash")


@pytest.fixture(scope="module")
def null_universe(tiny_headphones):
    return PairUniverse(tiny_headphones, CandidatePolicy.null())


@pytest.fixture(scope="module")
def blocked_universe(tiny_headphones):
    return PairUniverse(tiny_headphones, MINHASH)


class TestNullPolicyIsSeed:
    def test_pairs_equal_build_pairs(self, tiny_headphones, null_universe):
        seed = build_pairs(tiny_headphones)
        assert [p.key for p in null_universe.pairs] == [p.key for p in seed.pairs]
        assert [p.label for p in null_universe.pairs] == [
            p.label for p in seed.pairs
        ]

    def test_default_policy_is_null(self, tiny_headphones):
        universe = PairUniverse(tiny_headphones)
        assert universe.policy.is_null
        assert not universe.is_blocked

    @pytest.mark.parametrize("within", [True, False])
    def test_subsets_equal_build_pairs(self, tiny_headphones, null_universe, within):
        sources = sorted(tiny_headphones.sources())[:2]
        got = null_universe.subset(sources, within=within)
        want = build_pairs(tiny_headphones, sources, within=within)
        assert [p.key for p in got.pairs] == [p.key for p in want.pairs]

    @pytest.mark.parametrize(
        "config", FeatureConfig.grid(), ids=lambda config: config.label()
    )
    def test_store_features_byte_identical_per_config(
        self, tiny_headphones, tiny_embeddings, config
    ):
        store = PairFeatureStore.build(
            tiny_headphones, tiny_embeddings, policy=CandidatePolicy.null()
        )
        pairs = list(store.universe.pairs)[:60]
        direct = pair_feature_matrix(store.table, pairs, config)
        served = store.features(pairs, config)
        assert served.tobytes() == direct.tobytes()

    def test_null_stats(self, null_universe):
        stats = null_universe.blocking_stats()
        assert stats["pair_recall"] == 1.0
        assert stats["reduction_ratio"] == 0.0
        assert stats["candidates"] == stats["total_pairs"] == len(null_universe)

    def test_null_misses_nothing(self, tiny_headphones, null_universe):
        sources = sorted(tiny_headphones.sources())[:2]
        assert null_universe.missed_true_pairs(sources, within=False) == 0


class TestBlockedUniverse:
    def test_candidates_subset_of_cross_product(self, null_universe, blocked_universe):
        full = {p.key for p in null_universe.pairs}
        pruned = {p.key for p in blocked_universe.pairs}
        assert pruned <= full
        assert len(pruned) < len(full)

    def test_deterministic_under_fixed_policy(self, tiny_headphones, blocked_universe):
        again = PairUniverse(tiny_headphones, CandidatePolicy.from_label("minhash"))
        assert [p.key for p in again.pairs] == [p.key for p in blocked_universe.pairs]

    def test_labels_agree_with_ground_truth(self, tiny_headphones, blocked_universe):
        for pair in blocked_universe.pairs:
            assert pair.label == tiny_headphones.is_match(pair.left, pair.right)

    def test_stats_internally_consistent(self, blocked_universe):
        stats = blocked_universe.blocking_stats()
        universe = blocked_universe
        assert stats["policy"] == "minhash"
        assert stats["candidates"] == len(universe)
        assert stats["total_pairs"] == universe.total_cross_pairs()
        assert stats["reduction_ratio"] == pytest.approx(
            1.0 - stats["candidates"] / stats["total_pairs"]
        )
        kept_true = sum(1 for pair in universe.pairs if pair.label)
        true_total = len(universe.dataset.matching_pairs())
        assert stats["pair_recall"] == pytest.approx(kept_true / true_total)

    def test_missed_plus_kept_covers_slice_truth(
        self, tiny_headphones, blocked_universe
    ):
        sources = sorted(tiny_headphones.sources())[:2]
        for within in (True, False):
            kept_true = sum(
                1
                for pair in blocked_universe.subset(sources, within=within).pairs
                if pair.label
            )
            missed = blocked_universe.missed_true_pairs(sources, within=within)
            slice_true = sum(
                1
                for key in tiny_headphones.matching_pairs()
                if (
                    all(ref.source in sources for ref in key) == within
                )
            )
            assert missed >= 0
            assert kept_true + missed == slice_true

    def test_row_of_pruned_pair_names_policy(self, null_universe, blocked_universe):
        from repro.errors import ConfigurationError

        pruned_keys = {p.key for p in blocked_universe.pairs}
        dropped = next(
            pair for pair in null_universe.pairs if pair.key not in pruned_keys
        )
        with pytest.raises(ConfigurationError, match="minhash"):
            blocked_universe.row_of(dropped)

    def test_subsets_partition_universe(self, tiny_headphones, blocked_universe):
        sources = sorted(tiny_headphones.sources())[:2]
        inside = blocked_universe.subset(sources, within=True)
        outside = blocked_universe.subset(sources, within=False)
        assert len(inside) + len(outside) == len(blocked_universe)


class TestBlockedAddSourceEquivalence:
    @pytest.fixture(scope="class")
    def delta(self, tiny_headphones, tiny_embeddings):
        sources = sorted(tiny_headphones.sources())
        base = tiny_headphones.restrict_to_sources(sources[:-1])
        addition = tiny_headphones.restrict_to_sources(sources[-1:])
        store = PairFeatureStore.build(base, tiny_embeddings, policy=MINHASH)
        new_pairs = store.add_source(addition)
        rebuilt = PairFeatureStore.build(
            base.merged_with(addition), tiny_embeddings, policy=MINHASH
        )
        return store, new_pairs, rebuilt

    def test_matrix_bit_identical_to_cold_rebuild(self, delta):
        store, _, rebuilt = delta
        assert store.matrix.tobytes() == rebuilt.matrix.tobytes()

    def test_pair_enumeration_matches_rebuild(self, delta):
        store, _, rebuilt = delta
        assert [p.key for p in store.universe.pairs] == [
            p.key for p in rebuilt.universe.pairs
        ]

    def test_blocking_stats_match_rebuild(self, delta):
        store, _, rebuilt = delta
        assert store.universe.blocking_stats() == rebuilt.universe.blocking_stats()

    def test_new_pairs_are_exactly_the_universe_delta(
        self, tiny_headphones, tiny_embeddings, delta
    ):
        # Unlike the null policy, blocked new pairs are not necessarily
        # all new-vs-old: the sketch blocker's transitive expansion can
        # link two *base* properties through the added source's buckets.
        # The contract is purely set-theoretic -- the delta is whatever
        # the merged universe has that the base universe did not.
        store, new_pairs, _ = delta
        sources = sorted(tiny_headphones.sources())
        base = tiny_headphones.restrict_to_sources(sources[:-1])
        base_keys = {p.key for p in PairUniverse(base, MINHASH).pairs}
        merged_keys = {p.key for p in store.universe.pairs}
        assert new_pairs.pairs
        assert {p.key for p in new_pairs.pairs} == merged_keys - base_keys
        added = sources[-1]
        assert any(
            added in (pair.left.source, pair.right.source)
            for pair in new_pairs.pairs
        )

    def test_config_views_match_rebuild(self, delta):
        store, _, rebuilt = delta
        pairs = list(store.universe.pairs)[:40]
        for config in FeatureConfig.grid():
            np.testing.assert_array_equal(
                store.features(pairs, config), rebuilt.features(pairs, config)
            )
