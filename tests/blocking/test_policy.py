"""Tests for the serialisable candidate-generation policy record."""

import pytest

from repro.blocking import (
    CandidatePolicy,
    EmbeddingLSHBlocker,
    NullBlocker,
    SketchBlocker,
    TokenBlocker,
)
from repro.errors import ConfigurationError


class TestFromLabel:
    @pytest.mark.parametrize("label", [None, "", "none", "off", "null"])
    def test_null_spellings(self, label):
        policy = CandidatePolicy.from_label(label)
        assert policy.is_null
        assert policy == CandidatePolicy.null()

    def test_bare_blocker_name(self):
        policy = CandidatePolicy.from_label("minhash")
        assert policy.blocker == "minhash"
        assert policy.params == ()

    def test_parameters_parsed_and_coerced(self):
        policy = CandidatePolicy.from_label("minhash:seed=7,union_df=6")
        assert dict(policy.params) == {"seed": 7, "union_df": 6}

    def test_parameters_canonically_sorted(self):
        forward = CandidatePolicy.from_label("minhash:seed=7,union_df=6")
        backward = CandidatePolicy.from_label("minhash:union_df=6,seed=7")
        assert forward == backward
        assert forward.label == backward.label

    def test_whitespace_tolerated(self):
        policy = CandidatePolicy.from_label(" minhash : seed = 7 ")
        assert policy.blocker == "minhash"
        assert dict(policy.params) == {"seed": 7}

    @pytest.mark.parametrize("label", ["minhash:seed", "minhash:seed=", "minhash:=7"])
    def test_malformed_parameter_chunk(self, label):
        with pytest.raises(ConfigurationError, match="key=value"):
            CandidatePolicy.from_label(label)

    def test_unknown_blocker(self):
        with pytest.raises(ConfigurationError, match="unknown blocking policy"):
            CandidatePolicy.from_label("sorted-neighborhood")

    def test_unknown_parameter(self):
        with pytest.raises(ConfigurationError, match="unknown parameter"):
            CandidatePolicy.from_label("minhash:bands=4")

    def test_uncoercible_parameter_value(self):
        with pytest.raises(ConfigurationError, match="must be int"):
            CandidatePolicy.from_label("minhash:seed=many")

    def test_boolean_coercion(self):
        assert dict(CandidatePolicy.from_label("token:use_values=false").params) == {
            "use_values": False
        }
        assert dict(CandidatePolicy.from_label("token:use_values=1").params) == {
            "use_values": True
        }

    def test_non_boolean_string_rejected(self):
        with pytest.raises(ConfigurationError, match="boolean"):
            CandidatePolicy.from_label("token:use_values=maybe")


class TestRoundTrips:
    LABELS = [
        "null",
        "minhash",
        "minhash:seed=7,union_df=6",
        "token:use_values=False",
        "embedding:num_bits=4,num_tables=2",
    ]

    @pytest.mark.parametrize("label", LABELS)
    def test_label_round_trip(self, label):
        policy = CandidatePolicy.from_label(label)
        assert CandidatePolicy.from_label(policy.label) == policy

    @pytest.mark.parametrize("label", LABELS)
    def test_dict_round_trip(self, label):
        policy = CandidatePolicy.from_label(label)
        assert CandidatePolicy.from_dict(policy.to_dict()) == policy

    def test_from_dict_requires_blocker_key(self):
        with pytest.raises(ConfigurationError, match="blocker"):
            CandidatePolicy.from_dict({"params": {}})

    def test_from_dict_rejects_non_dict_params(self):
        with pytest.raises(ConfigurationError, match="params"):
            CandidatePolicy.from_dict({"blocker": "minhash", "params": [1, 2]})

    def test_policies_are_hashable_values(self):
        a = CandidatePolicy.from_label("minhash:seed=7")
        b = CandidatePolicy.from_label("minhash:seed=7")
        assert len({a, b}) == 1


class TestResolve:
    def test_null_resolves_to_null_blocker(self):
        assert isinstance(CandidatePolicy.null().resolve(), NullBlocker)

    def test_minhash_resolves_to_sketch_blocker(self):
        blocker = CandidatePolicy.from_label("minhash").resolve()
        assert isinstance(blocker, SketchBlocker)

    def test_token_resolves_with_overrides(self):
        blocker = CandidatePolicy.from_label("token:use_values=false").resolve()
        assert isinstance(blocker, TokenBlocker)
        assert blocker.use_values is False

    def test_embedding_requires_embeddings(self):
        policy = CandidatePolicy.from_label("embedding")
        assert policy.requires_embeddings
        with pytest.raises(ConfigurationError, match="embeddings"):
            policy.resolve()

    def test_embedding_resolves_with_embeddings(self, tiny_embeddings):
        blocker = CandidatePolicy.from_label("embedding:num_tables=2").resolve(
            tiny_embeddings
        )
        assert isinstance(blocker, EmbeddingLSHBlocker)

    def test_extra_embeddings_harmless_for_others(self, tiny_embeddings):
        assert isinstance(
            CandidatePolicy.from_label("minhash").resolve(tiny_embeddings),
            SketchBlocker,
        )

    def test_invalid_parameter_combination_surfaces(self):
        # band_size must divide num_hashes; the blocker's own validation
        # fires at resolve time, not policy-construction time.
        policy = CandidatePolicy.from_label("minhash:band_size=5")
        with pytest.raises(ConfigurationError):
            policy.resolve()
