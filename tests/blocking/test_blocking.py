"""Tests for candidate blocking."""

import pytest

from repro.blocking import (
    BlockingQuality,
    MinHashBlocker,
    NullBlocker,
    TokenBlocker,
    blocking_quality,
)
from repro.data.model import Dataset, PropertyInstance, PropertyRef
from repro.data.pairs import build_pairs
from repro.errors import ConfigurationError


@pytest.fixture()
def dataset():
    instances = [
        PropertyInstance("s1", "resolution", "e1", "20 mp"),
        PropertyInstance("s1", "weight", "e1", "500 grams"),
        PropertyInstance("s2", "resolution", "e2", "24 mp"),
        PropertyInstance("s2", "color", "e2", "black"),
        PropertyInstance("s3", "weight_spec", "e3", "600 grams"),
    ]
    alignment = {
        PropertyRef("s1", "resolution"): "resolution",
        PropertyRef("s2", "resolution"): "resolution",
        PropertyRef("s1", "weight"): "weight",
        PropertyRef("s3", "weight_spec"): "weight",
    }
    return Dataset("b", instances, alignment)


class TestNullBlocker:
    def test_keeps_everything(self, dataset):
        keys = NullBlocker().candidate_keys(dataset)
        assert len(keys) == len(build_pairs(dataset))

    def test_candidate_pairs_labelled(self, dataset):
        pairs = NullBlocker().candidate_pairs(dataset)
        assert len(pairs.positives()) == len(dataset.matching_pairs())


class TestTokenBlocker:
    def test_shared_name_token_kept(self, dataset):
        keys = TokenBlocker(use_values=False).candidate_keys(dataset)
        assert frozenset(
            (PropertyRef("s1", "resolution"), PropertyRef("s2", "resolution"))
        ) in keys

    def test_name_variants_with_shared_token(self, dataset):
        keys = TokenBlocker(use_values=False).candidate_keys(dataset)
        # "weight" vs "weight_spec" share the token "weight".
        assert frozenset(
            (PropertyRef("s1", "weight"), PropertyRef("s3", "weight_spec"))
        ) in keys

    def test_disjoint_names_pruned_without_values(self, dataset):
        keys = TokenBlocker(use_values=False).candidate_keys(dataset)
        assert frozenset(
            (PropertyRef("s1", "resolution"), PropertyRef("s2", "color"))
        ) not in keys

    def test_value_tokens_recover_synonym_pairs(self):
        instances = [
            PropertyInstance("s1", "weight", "e1", "500 grams"),
            PropertyInstance("s2", "heft", "e2", "600 grams"),
            PropertyInstance("s2", "other", "e2", "xyz"),
        ]
        dataset = Dataset("v", instances, {})
        keys = TokenBlocker(use_values=True).candidate_keys(dataset)
        # Disjoint names, but both values carry the selective token "grams".
        assert frozenset((PropertyRef("s1", "weight"), PropertyRef("s2", "heft"))) in keys

    def test_never_same_source(self, dataset):
        for key in TokenBlocker().candidate_keys(dataset):
            left, right = sorted(key)
            assert left.source != right.source

    def test_invalid_fraction(self):
        with pytest.raises(ConfigurationError):
            TokenBlocker(max_value_token_fraction=0.0)


class TestMinHashBlocker:
    def test_similar_token_sets_become_candidates(self, dataset):
        keys = MinHashBlocker(num_hashes=32, band_size=1).candidate_keys(dataset)
        assert frozenset(
            (PropertyRef("s1", "resolution"), PropertyRef("s2", "resolution"))
        ) in keys

    def test_band_size_controls_selectivity(self, tiny_headphones):
        loose = MinHashBlocker(num_hashes=32, band_size=1).candidate_keys(tiny_headphones)
        strict = MinHashBlocker(num_hashes=32, band_size=8).candidate_keys(tiny_headphones)
        assert len(strict) <= len(loose)

    def test_invalid_band(self):
        with pytest.raises(ConfigurationError):
            MinHashBlocker(num_hashes=32, band_size=5)


class TestBlockingQuality:
    def test_null_blocker_perfect_completeness(self, dataset):
        keys = NullBlocker().candidate_keys(dataset)
        quality = blocking_quality(dataset, keys)
        assert quality.pair_completeness == 1.0
        assert quality.reduction_ratio == 0.0

    def test_token_blocker_reduces_on_real_domain(self, tiny_cameras):
        keys = TokenBlocker().candidate_keys(tiny_cameras)
        quality = blocking_quality(tiny_cameras, keys)
        assert quality.reduction_ratio > 0.2
        assert quality.pair_completeness > 0.5

    def test_empty_candidates(self, dataset):
        quality = blocking_quality(dataset, set())
        assert quality.pair_completeness == 0.0
        assert quality.reduction_ratio == 1.0

    def test_describe(self, dataset):
        text = blocking_quality(dataset, NullBlocker().candidate_keys(dataset)).describe()
        assert "PC=" in text and "RR=" in text

    def test_no_true_pairs_is_complete(self):
        instances = [
            PropertyInstance("s1", "a", "e", "v"),
            PropertyInstance("s2", "b", "e2", "w"),
        ]
        dataset = Dataset("x", instances, {})
        quality = blocking_quality(dataset, set())
        assert quality.pair_completeness == 1.0
        assert BlockingQuality(0, 0, 0, 0).reduction_ratio == 0.0
