"""Tests for the five baseline matchers."""

import numpy as np
import pytest

from repro.baselines import (
    AmlMatcher,
    FcaMapMatcher,
    LshMatcher,
    NezhadiMatcher,
    SemPropMatcher,
)
from repro.baselines.lsh import MinHasher
from repro.data.model import Dataset, PropertyInstance, PropertyRef
from repro.data.pairs import LabeledPair, build_pairs, sample_training_pairs
from repro.errors import ConfigurationError, NotFittedError
from repro.evaluation.metrics import evaluate_scores


def _pair(s1, n1, s2, n2, label=False):
    return LabeledPair(PropertyRef(s1, n1), PropertyRef(s2, n2), label)


@pytest.fixture()
def dataset():
    instances = [
        PropertyInstance("s1", "resolution", "e1", "20 mp"),
        PropertyInstance("s1", "weight", "e1", "500 g"),
        PropertyInstance("s2", "Resolution", "e2", "24 mp"),
        PropertyInstance("s2", "heft", "e2", "600 g"),
    ]
    alignment = {
        PropertyRef("s1", "resolution"): "resolution",
        PropertyRef("s2", "Resolution"): "resolution",
        PropertyRef("s1", "weight"): "weight",
        PropertyRef("s2", "heft"): "weight",
    }
    return Dataset("t", instances, alignment)


class TestAml:
    def test_identical_normalised_names_match(self, dataset):
        matcher = AmlMatcher()
        scores = matcher.score_pairs(
            dataset, [_pair("s1", "resolution", "s2", "Resolution")]
        )
        assert scores[0] == 1.0

    def test_unrelated_names_do_not_match(self, dataset):
        matcher = AmlMatcher()
        scores = matcher.score_pairs(dataset, [_pair("s1", "weight", "s2", "Resolution")])
        assert scores[0] < matcher.threshold

    def test_separator_variants_match(self, dataset):
        matcher = AmlMatcher()
        scores = matcher.score_pairs(
            dataset, [_pair("s1", "screen_size", "s2", "Screen-Size")]
        )
        assert scores[0] >= matcher.threshold

    def test_synonyms_are_missed(self, dataset):
        # The paper's point: no background knowledge maps "heft" to "weight".
        matcher = AmlMatcher()
        scores = matcher.score_pairs(dataset, [_pair("s1", "weight", "s2", "heft")])
        assert scores[0] < matcher.threshold

    def test_is_unsupervised(self):
        assert not AmlMatcher().is_supervised


class TestFcaMap:
    def test_same_token_set_matches(self, dataset):
        matcher = FcaMapMatcher()
        matcher.prepare(dataset)
        scores = matcher.score_pairs(
            dataset, [_pair("s1", "resolution", "s2", "Resolution")]
        )
        assert scores[0] == 1.0

    def test_different_token_sets_never_match(self, dataset):
        matcher = FcaMapMatcher()
        matcher.prepare(dataset)
        scores = matcher.score_pairs(dataset, [_pair("s1", "weight", "s2", "heft")])
        assert scores[0] == 0.0

    def test_prepare_called_lazily(self, dataset):
        matcher = FcaMapMatcher()
        scores = matcher.score_pairs(
            dataset, [_pair("s1", "resolution", "s2", "Resolution")]
        )
        assert scores[0] == 1.0

    def test_concepts_partition_properties(self, dataset):
        matcher = FcaMapMatcher()
        matcher.prepare(dataset)
        concepts = matcher.concepts()
        members = [ref for refs in concepts.values() for ref in refs]
        assert sorted(members) == dataset.properties()


class TestNezhadi:
    def test_learns_string_similarity(self, tiny_headphones, rng):
        training = sample_training_pairs(build_pairs(tiny_headphones), rng=rng)
        matcher = NezhadiMatcher()
        matcher.fit(tiny_headphones, training)
        scores = matcher.score_pairs(tiny_headphones, training.pairs)
        quality = evaluate_scores(scores, training.labels(), matcher.threshold)
        assert quality.f1 > 0.4

    def test_all_classifier_kinds_run(self, tiny_headphones, rng):
        training = sample_training_pairs(build_pairs(tiny_headphones), rng=rng)
        for kind in ("adaboost", "tree", "knn", "naive_bayes"):
            matcher = NezhadiMatcher(kind)
            matcher.fit(tiny_headphones, training)
            scores = matcher.score_pairs(tiny_headphones, training.pairs[:5])
            assert scores.shape == (5,)
            assert ((scores >= 0) & (scores <= 1)).all()

    def test_unknown_classifier(self):
        with pytest.raises(ConfigurationError, match="unknown classifier"):
            NezhadiMatcher("svm")

    def test_unfitted_raises(self, dataset):
        with pytest.raises(NotFittedError):
            NezhadiMatcher().score_pairs(dataset, [_pair("s1", "a", "s2", "b")])

    def test_name_includes_variant(self):
        assert NezhadiMatcher("tree").name == "Nezhadi[tree]"
        assert NezhadiMatcher().name == "Nezhadi"


class TestSemProp:
    def test_semantic_link_via_embeddings(self, tiny_embeddings, dataset):
        matcher = SemPropMatcher(tiny_embeddings)
        # Words from the same synonym group should link.
        scores = matcher.score_pairs(
            dataset, [_pair("s1", "wireless", "s2", "bluetooth")]
        )
        assert scores[0] >= matcher.threshold

    def test_unrelated_rejected(self, tiny_embeddings, dataset):
        matcher = SemPropMatcher(tiny_embeddings)
        scores = matcher.score_pairs(
            dataset, [_pair("s1", "impedance", "s2", "playtime")]
        )
        assert scores[0] < matcher.threshold

    def test_syntactic_fallback(self, tiny_embeddings, dataset):
        # Unknown words -> zero vectors -> coherence 0 -> handled by gates;
        # near-identical spellings still link syntactically when coherence
        # is inside the undecided band.
        matcher = SemPropMatcher(tiny_embeddings, sema_negative=0.0)
        scores = matcher.score_pairs(
            dataset, [_pair("s1", "zzgadget", "s2", "zzgadgets")]
        )
        assert scores[0] >= matcher.threshold

    def test_reciprocal_best_demotes_second_best(self, tiny_embeddings, dataset):
        plain = SemPropMatcher(tiny_embeddings)
        strict = SemPropMatcher(tiny_embeddings, reciprocal_best=True)
        pairs = [
            _pair("s1", "wireless", "s2", "bluetooth"),
            _pair("s1", "wireless", "s2", "cordless link"),
        ]
        raw = plain.score_pairs(dataset, pairs)
        selected = strict.score_pairs(dataset, pairs)
        # The weaker of the two links is demoted below threshold.
        weaker = int(np.argmin(raw))
        if abs(raw[0] - raw[1]) > 0.02:
            assert selected[weaker] < strict.threshold

    def test_threshold_validation(self, tiny_embeddings):
        with pytest.raises(ConfigurationError):
            SemPropMatcher(tiny_embeddings, sema_negative=0.5, sema_positive=0.4)


class TestMinHasher:
    def test_identical_sets_agree(self):
        hasher = MinHasher(num_hashes=32)
        tokens = {"a", "b", "c"}
        assert MinHasher.estimate_jaccard(
            hasher.signature(tokens), hasher.signature(set(tokens))
        ) == 1.0

    def test_estimate_tracks_true_jaccard(self):
        hasher = MinHasher(num_hashes=256, seed=1)
        a = {f"t{i}" for i in range(100)}
        b = {f"t{i}" for i in range(50, 150)}
        estimate = MinHasher.estimate_jaccard(hasher.signature(a), hasher.signature(b))
        true_jaccard = 50 / 150
        assert estimate == pytest.approx(true_jaccard, abs=0.1)

    def test_empty_set_signature(self):
        hasher = MinHasher(num_hashes=8)
        signature = hasher.signature(set())
        assert (signature == np.iinfo(np.int64).max).all()

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            MinHasher(num_hashes=0)


class TestLsh:
    def test_shared_value_tokens_match(self, dataset):
        matcher = LshMatcher()
        matcher.prepare(dataset)
        scores = matcher.score_pairs(
            dataset, [_pair("s1", "resolution", "s2", "Resolution")]
        )
        # Both properties' values contain "mp" tokens.
        assert scores[0] > 0.0

    def test_name_blind(self):
        # Identical names, disjoint values -> no match.
        instances = [
            PropertyInstance("s1", "p", "e1", "alpha beta"),
            PropertyInstance("s2", "p", "e2", "gamma delta"),
        ]
        dataset = Dataset("x", instances, {})
        matcher = LshMatcher()
        matcher.prepare(dataset)
        scores = matcher.score_pairs(dataset, [_pair("s1", "p", "s2", "p")])
        assert scores[0] < matcher.threshold

    def test_band_size_must_divide(self):
        with pytest.raises(ConfigurationError):
            LshMatcher(num_hashes=64, band_size=3)

    def test_quality_on_real_domain(self, tiny_cameras):
        matcher = LshMatcher()
        matcher.prepare(tiny_cameras)
        pairs = build_pairs(tiny_cameras)
        quality = evaluate_scores(
            matcher.score_pairs(tiny_cameras, pairs.pairs),
            pairs.labels(),
            matcher.threshold,
        )
        # Instance-based matching is meaningfully better than chance on
        # the value-rich camera domain.
        assert quality.f1 > 0.3
