"""Integration tests: the full Algorithm 1 pipeline across subsystems."""

import numpy as np
import pytest

import repro
from repro import (
    FeatureConfig,
    FeatureKinds,
    LeapmeConfig,
    LeapmeMatcher,
    build_domain_embeddings,
    build_pairs,
    cluster_connected_components,
    clustering_metrics,
    evaluate_matcher,
    evaluate_scores,
    load_dataset,
    sample_training_pairs,
    split_sources,
)
from repro.evaluation import RunSettings
from repro.nn.schedule import TrainingSchedule

FAST = LeapmeConfig(
    hidden_sizes=(32, 16),
    schedule=TrainingSchedule.from_pairs([(8, 1e-3), (3, 1e-4)]),
)


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_version(self):
        assert repro.__version__


class TestAlgorithmOnePipeline:
    """Steps 1-5 of Algorithm 1 against a generated multi-source dataset."""

    @pytest.fixture(scope="class")
    def pipeline(self):
        dataset = load_dataset("headphones", scale="tiny", seed=1)
        embeddings = build_domain_embeddings("headphones", scale="tiny")
        rng = np.random.default_rng(0)
        split = split_sources(dataset, 0.7, rng)
        training = sample_training_pairs(
            build_pairs(dataset, list(split.train_sources), within=True), rng=rng
        )
        test = build_pairs(dataset, list(split.train_sources), within=False)
        matcher = LeapmeMatcher(embeddings, config=FAST)
        matcher.prepare(dataset)
        matcher.fit(dataset, training)
        return dataset, matcher, test

    def test_beats_majority_baseline(self, pipeline):
        dataset, matcher, test = pipeline
        scores = matcher.score_pairs(dataset, test.pairs)
        quality = evaluate_scores(scores, test.labels())
        assert quality.f1 > 0.5

    def test_similarity_graph_roundtrip(self, pipeline):
        dataset, matcher, test = pipeline
        graph = matcher.match(dataset, test.pairs)
        assert len(graph) == len(test)
        matches = graph.match_keys(0.5)
        truth = {pair.key for pair in test.positives()}
        overlap = len(matches & truth)
        assert overlap / max(1, len(truth)) > 0.4

    def test_clustering_downstream(self, pipeline):
        dataset, matcher, test = pipeline
        graph = matcher.match(dataset, test.pairs)
        clusters = cluster_connected_components(graph, 0.5)
        quality = clustering_metrics(
            clusters, dataset, restrict_to=set(graph.properties())
        )
        assert quality.f1 > 0.3

    def test_feature_config_changes_behaviour(self, pipeline):
        dataset, matcher, test = pipeline
        names_only = LeapmeMatcher(
            matcher.embeddings,
            FeatureConfig(kinds=FeatureKinds.EMBEDDING),
            config=FAST,
        )
        training = sample_training_pairs(
            build_pairs(dataset), rng=np.random.default_rng(0)
        )
        names_only.fit(dataset, training)
        full_scores = matcher.score_pairs(dataset, test.pairs[:20])
        emb_scores = names_only.score_pairs(dataset, test.pairs[:20])
        assert not np.allclose(full_scores, emb_scores)


class TestHarnessIntegration:
    def test_evaluate_matcher_full_protocol(self):
        dataset = load_dataset("tvs", scale="tiny", seed=2)
        embeddings = build_domain_embeddings("tvs", scale="tiny")
        matcher = LeapmeMatcher(embeddings, config=FAST)
        result = evaluate_matcher(
            matcher, dataset, RunSettings(train_fraction=0.6, repetitions=2, seed=1)
        )
        assert result.dataset_name == "tvs"
        assert len(result.qualities) + result.skipped_repetitions == 2
        assert 0.0 <= result.f1 <= 1.0

    def test_deterministic_across_runs(self):
        dataset = load_dataset("tvs", scale="tiny", seed=2)
        embeddings = build_domain_embeddings("tvs", scale="tiny")

        def run():
            matcher = LeapmeMatcher(embeddings, config=FAST)
            return evaluate_matcher(
                matcher, dataset, RunSettings(train_fraction=0.6, repetitions=1, seed=3)
            ).f1

        assert run() == pytest.approx(run())


class TestDatasetEmbeddingContract:
    """The matcher must tolerate vocabulary gaps like real GloVe users do."""

    def test_foreign_embeddings_still_work(self):
        # Embeddings trained on the *camera* domain applied to headphones:
        # most words are OOV (zero vectors) yet the pipeline must not fail.
        dataset = load_dataset("headphones", scale="tiny", seed=0)
        embeddings = build_domain_embeddings("cameras", scale="tiny")
        matcher = LeapmeMatcher(embeddings, config=FAST)
        training = sample_training_pairs(
            build_pairs(dataset), rng=np.random.default_rng(0)
        )
        matcher.fit(dataset, training)
        scores = matcher.score_pairs(dataset, training.pairs[:10])
        assert np.isfinite(scores).all()
