"""Cross-module property-based tests (hypothesis).

These verify structural invariants that must hold for *any* generated
domain, matcher output or blocking decision -- the contracts the
subsystems rely on when composed.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocking import CandidatePolicy, NullBlocker, TokenBlocker, blocking_quality
from repro.data.pairs import build_pairs, sample_training_pairs
from repro.data.splits import split_sources
from repro.datasets.generator import GenerationConfig, derive_semantics, generate_dataset
from repro.datasets.specs import (
    DomainSpec,
    EnumValueSpec,
    NumericValueSpec,
    ReferencePropertySpec,
)
from repro.graph.simgraph import SimilarityGraph
from repro.graph.clustering import cluster_star, clustering_metrics
from repro.metrics import evaluate_scores


def _spec(n_sources: int, n_props: int) -> DomainSpec:
    properties = tuple(
        ReferencePropertySpec(
            reference_name=f"prop{i}",
            name_variants=(f"alpha{i} main", f"beta{i} alt"),
            value_spec=(
                NumericValueSpec(1.0 + i, 100.0 + i, units=(f"u{i}", f"unit{i}"))
                if i % 2 == 0
                else EnumValueSpec(options=((f"on{i}", f"yes{i}"), (f"off{i}",)))
            ),
            exposure=0.9,
        )
        for i in range(n_props)
    )
    return DomainSpec(
        name="hyp",
        properties=properties,
        n_sources=n_sources,
        entities_per_source=4,
        junk_properties_per_source=1,
    )


domain_params = st.tuples(st.integers(2, 5), st.integers(2, 5), st.integers(0, 3))


class TestGeneratorInvariants:
    @given(params=domain_params)
    @settings(max_examples=15, deadline=None)
    def test_alignment_subset_of_properties(self, params):
        n_sources, n_props, seed = params
        dataset = generate_dataset(_spec(n_sources, n_props), GenerationConfig(seed=seed))
        properties = set(dataset.properties())
        assert set(dataset.alignment) <= properties

    @given(params=domain_params)
    @settings(max_examples=15, deadline=None)
    def test_matching_pairs_consistent_with_is_match(self, params):
        n_sources, n_props, seed = params
        dataset = generate_dataset(_spec(n_sources, n_props), GenerationConfig(seed=seed))
        for pair in dataset.matching_pairs():
            left, right = sorted(pair)
            assert dataset.is_match(left, right)

    @given(params=domain_params)
    @settings(max_examples=15, deadline=None)
    def test_semantics_partition(self, params):
        n_sources, n_props, _ = params
        semantics = derive_semantics(_spec(n_sources, n_props))
        grouped = semantics.lexicon.vocabulary()
        assert not grouped & set(semantics.soft_words)
        assert not grouped & set(semantics.singletons)

    @given(params=domain_params, fraction=st.floats(0.1, 0.9))
    @settings(max_examples=15, deadline=None)
    def test_split_then_pairs_partition(self, params, fraction):
        n_sources, n_props, seed = params
        dataset = generate_dataset(_spec(n_sources, n_props), GenerationConfig(seed=seed))
        split = split_sources(dataset, fraction, np.random.default_rng(seed))
        inside = build_pairs(dataset, list(split.train_sources), within=True)
        outside = build_pairs(dataset, list(split.train_sources), within=False)
        everything = build_pairs(dataset)
        assert len(inside) + len(outside) == len(everything)


class TestBlockingInvariants:
    @given(params=domain_params)
    @settings(max_examples=10, deadline=None)
    def test_token_blocker_subset_of_null(self, params):
        n_sources, n_props, seed = params
        dataset = generate_dataset(_spec(n_sources, n_props), GenerationConfig(seed=seed))
        null_keys = NullBlocker().candidate_keys(dataset)
        token_keys = TokenBlocker().candidate_keys(dataset)
        assert token_keys <= null_keys

    @given(params=domain_params)
    @settings(max_examples=10, deadline=None)
    def test_quality_bounds(self, params):
        n_sources, n_props, seed = params
        dataset = generate_dataset(_spec(n_sources, n_props), GenerationConfig(seed=seed))
        quality = blocking_quality(dataset, TokenBlocker().candidate_keys(dataset))
        assert 0.0 <= quality.pair_completeness <= 1.0
        assert 0.0 <= quality.reduction_ratio <= 1.0

    @given(params=domain_params, blocker_seed=st.integers(0, 9))
    @settings(max_examples=10, deadline=None)
    def test_minhash_policy_subset_of_cross_product(self, params, blocker_seed):
        n_sources, n_props, seed = params
        dataset = generate_dataset(_spec(n_sources, n_props), GenerationConfig(seed=seed))
        policy = CandidatePolicy.from_label(f"minhash:seed={blocker_seed}")
        null_keys = NullBlocker().candidate_keys(dataset)
        minhash_keys = policy.resolve().candidate_keys(dataset)
        assert minhash_keys <= null_keys

    @given(params=domain_params, blocker_seed=st.integers(0, 9))
    @settings(max_examples=10, deadline=None)
    def test_minhash_policy_deterministic_under_fixed_seed(self, params, blocker_seed):
        n_sources, n_props, seed = params
        dataset = generate_dataset(_spec(n_sources, n_props), GenerationConfig(seed=seed))
        policy = CandidatePolicy.from_label(f"minhash:seed={blocker_seed}")
        first = policy.resolve().candidate_keys(dataset)
        second = policy.resolve().candidate_keys(dataset)
        assert first == second


class TestScoreEvaluationInvariants:
    @given(
        scores=st.lists(st.floats(0, 1), min_size=1, max_size=50),
        threshold=st.floats(0.05, 0.95),
        seed=st.integers(0, 99),
    )
    @settings(max_examples=30, deadline=None)
    def test_confusion_counts_partition(self, scores, threshold, seed):
        scores = np.array(scores)
        labels = np.random.default_rng(seed).integers(0, 2, size=len(scores))
        quality = evaluate_scores(scores, labels, threshold)
        predicted = int((scores >= threshold).sum())
        assert quality.true_positives + quality.false_positives == predicted
        assert quality.true_positives + quality.false_negatives == int(labels.sum())


class TestClusteringInvariants:
    @given(
        n_nodes=st.integers(2, 8),
        seed=st.integers(0, 99),
        threshold=st.floats(0.1, 0.9),
    )
    @settings(max_examples=20, deadline=None)
    def test_star_covers_all_nodes_once(self, n_nodes, seed, threshold):
        from repro.data.model import PropertyRef

        rng = np.random.default_rng(seed)
        refs = [PropertyRef(f"s{i % 3}", f"p{i}") for i in range(n_nodes)]
        graph = SimilarityGraph()
        for i in range(n_nodes):
            for j in range(i + 1, n_nodes):
                if refs[i] != refs[j]:
                    graph.add(refs[i], refs[j], float(rng.random()))
        clusters = cluster_star(graph, threshold)
        flattened = [ref for cluster in clusters for ref in cluster]
        assert sorted(flattened) == sorted(set(refs))
        assert len(flattened) == len(set(flattened))
