"""Tests for the dataset registry, scale presets and domain specs."""

import pytest

from repro.data.stats import dataset_stats
from repro.datasets.domains import cameras_spec, headphones_spec, phones_spec, tvs_spec
from repro.datasets.registry import (
    DATASET_NAMES,
    build_domain_embeddings,
    domain_lexicon,
    domain_spec,
    embedding_dimension,
    load_dataset,
)
from repro.errors import ConfigurationError


class TestSpecs:
    def test_cameras_is_paper_sized(self):
        spec = cameras_spec()
        assert spec.n_sources == 24
        assert spec.entities_per_source == 100
        assert spec.is_balanced

    def test_low_quality_sets_are_imbalanced(self):
        for builder in (headphones_spec, phones_spec, tvs_spec):
            assert not builder().is_balanced

    def test_every_domain_has_traps(self):
        # At least one pair of reference properties must share a name word
        # (the disambiguation challenge).
        from repro.text.tokenize import words

        for builder in (cameras_spec, headphones_spec, phones_spec, tvs_spec):
            spec = builder()
            seen: dict[str, str] = {}
            shared = False
            for prop in spec.properties:
                for variant in prop.name_variants:
                    for word in words(variant):
                        owner = seen.setdefault(word, prop.reference_name)
                        if owner != prop.reference_name:
                            shared = True
            assert shared, f"{spec.name} has no ambiguous name words"


class TestRegistry:
    def test_dataset_names(self):
        assert DATASET_NAMES == ("cameras", "headphones", "phones", "tvs")

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_load_each_dataset_tiny(self, name):
        dataset = load_dataset(name, scale="tiny")
        stats = dataset_stats(dataset)
        assert stats.n_sources >= 2
        assert stats.n_matching_pairs > 0
        assert stats.n_instances > 0

    def test_unknown_dataset(self):
        with pytest.raises(ConfigurationError, match="unknown dataset"):
            load_dataset("toasters")

    def test_unknown_scale(self):
        with pytest.raises(ConfigurationError, match="unknown scale"):
            load_dataset("cameras", scale="galactic")

    def test_tiny_scale_caps_sources(self):
        assert len(load_dataset("cameras", scale="tiny").sources()) == 5

    def test_small_scale_keeps_sources(self):
        spec = domain_spec("cameras", "small")
        assert spec.n_sources == 24

    def test_paper_scale_dimension(self):
        assert embedding_dimension("paper") == 300
        assert embedding_dimension("tiny") == 32

    def test_seed_changes_dataset(self):
        one = load_dataset("tvs", scale="tiny", seed=0)
        two = load_dataset("tvs", scale="tiny", seed=1)
        assert one.instances != two.instances

    def test_deterministic(self):
        one = load_dataset("tvs", scale="tiny", seed=3)
        two = load_dataset("tvs", scale="tiny", seed=3)
        assert one.instances == two.instances


class TestDomainEmbeddings:
    def test_cached(self):
        first = build_domain_embeddings("headphones", scale="tiny")
        second = build_domain_embeddings("headphones", scale="tiny")
        assert first is second

    def test_covers_domain_synonyms(self):
        embeddings = build_domain_embeddings("headphones", scale="tiny")
        lexicon = domain_lexicon("headphones", scale="tiny")
        group = next(iter(lexicon.groups()))
        for word in group:
            assert word in embeddings

    def test_synonyms_closer_than_random(self):
        embeddings = build_domain_embeddings("headphones", scale="tiny")
        lexicon = domain_lexicon("headphones", scale="tiny")
        group = sorted(next(g for g in lexicon.groups() if len(g) >= 2))
        within = embeddings.cosine_similarity(group[0], group[1])
        other_group = sorted(lexicon.groups()[-1])
        across = embeddings.cosine_similarity(group[0], other_group[0])
        assert within > across

    def test_multi_domain_space(self):
        embeddings = build_domain_embeddings(["headphones", "tvs"], scale="tiny")
        # Words from both domains resolve to non-zero vectors.
        assert "impedance" in embeddings
        assert "tuner" in embeddings or "webos" in embeddings

    def test_empty_names_rejected(self):
        with pytest.raises(ConfigurationError):
            build_domain_embeddings([])
