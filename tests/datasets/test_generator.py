"""Tests for the synthetic dataset generator and semantics derivation."""

import numpy as np
import pytest

from repro.data.stats import dataset_stats
from repro.datasets.generator import (
    GenerationConfig,
    derive_lexicon,
    derive_semantics,
    generate_dataset,
)
from repro.datasets.specs import (
    DomainSpec,
    EnumValueSpec,
    NumericValueSpec,
    ReferencePropertySpec,
)
from repro.errors import ConfigurationError


@pytest.fixture()
def small_spec():
    properties = (
        ReferencePropertySpec(
            reference_name="resolution",
            name_variants=("resolution", "megapixel count", "mp rating"),
            value_spec=NumericValueSpec(8, 60, units=("mp", "megapixels")),
            exposure=0.9,
        ),
        ReferencePropertySpec(
            reference_name="weight",
            name_variants=("weight", "body heft"),
            value_spec=NumericValueSpec(100, 900, units=("g", "grams")),
            exposure=0.9,
        ),
        ReferencePropertySpec(
            reference_name="wifi",
            name_variants=("wifi", "wireless link"),
            value_spec=EnumValueSpec(options=(("yes", "y"), ("no", "n"))),
            exposure=0.8,
        ),
    )
    return DomainSpec(
        name="toy",
        properties=properties,
        n_sources=4,
        entities_per_source=6,
        junk_properties_per_source=1,
    )


class TestGenerateDataset:
    def test_deterministic(self, small_spec):
        one = generate_dataset(small_spec, GenerationConfig(seed=5))
        two = generate_dataset(small_spec, GenerationConfig(seed=5))
        assert one.instances == two.instances
        assert one.alignment == two.alignment

    def test_seed_changes_output(self, small_spec):
        one = generate_dataset(small_spec, GenerationConfig(seed=1))
        two = generate_dataset(small_spec, GenerationConfig(seed=2))
        assert one.instances != two.instances

    def test_source_count(self, small_spec):
        dataset = generate_dataset(small_spec)
        assert len(dataset.sources()) == 4

    def test_every_aligned_property_has_instances(self, small_spec):
        dataset = generate_dataset(small_spec)
        for ref in dataset.alignment:
            assert dataset.values_of(ref)

    def test_alignment_targets_are_reference_names(self, small_spec):
        dataset = generate_dataset(small_spec)
        reference_names = {p.reference_name for p in small_spec.properties}
        assert set(dataset.alignment.values()) <= reference_names

    def test_junk_properties_unaligned(self, small_spec):
        dataset = generate_dataset(small_spec)
        unaligned = [
            ref for ref in dataset.properties() if ref not in dataset.alignment
        ]
        # one junk property per source, when it received instances
        assert len(unaligned) <= small_spec.n_sources
        assert unaligned

    def test_matching_pairs_exist(self, small_spec):
        dataset = generate_dataset(small_spec)
        assert len(dataset.matching_pairs()) > 0

    def test_entity_scale(self, small_spec):
        small = generate_dataset(small_spec, GenerationConfig(entity_scale=0.5))
        large = generate_dataset(small_spec, GenerationConfig(entity_scale=2.0))
        assert dataset_stats(large).max_entities_per_source > (
            dataset_stats(small).max_entities_per_source
        )

    def test_balanced_spec_produces_balanced_dataset(self, small_spec):
        # Instance sparsity may drop the odd entity entirely (an entity is
        # only observed through its instances), so "balanced" means "near
        # 1.0", not exactly 1.0.
        stats = dataset_stats(generate_dataset(small_spec))
        assert stats.entity_balance >= 0.8
        assert stats.max_entities_per_source == small_spec.entities_per_source

    def test_names_unique_within_source(self, small_spec):
        dataset = generate_dataset(small_spec)
        for source in dataset.sources():
            names = [ref.name for ref in dataset.properties(source)]
            assert len(names) == len(set(names))

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            GenerationConfig(entity_scale=0.0)
        with pytest.raises(ConfigurationError):
            GenerationConfig(catalogue_factor=0.5)


class TestDeriveLexicon:
    def test_name_variant_words_grouped(self, small_spec):
        lexicon = derive_lexicon(small_spec)
        # "megapixel" and "rating" are distinctive to the resolution
        # property and merge with the "mp"/"megapixels" unit group.
        assert lexicon.are_synonyms("megapixel", "rating")
        assert lexicon.are_synonyms("megapixel", "megapixels")

    def test_ambiguous_words_not_grouped(self):
        spec = DomainSpec(
            name="ambig",
            properties=(
                ReferencePropertySpec(
                    "a",
                    ("screen size", "display diagonal"),
                    NumericValueSpec(1, 10),
                    exposure=0.9,
                ),
                ReferencePropertySpec(
                    "b",
                    ("screen resolution", "display dots"),
                    NumericValueSpec(100, 1000),
                    exposure=0.9,
                ),
            ),
            n_sources=2,
            entities_per_source=3,
        )
        lexicon = derive_lexicon(spec)
        # "screen" and "display" appear in both properties -> ungrouped.
        assert lexicon.group_of("screen") is None
        assert lexicon.group_of("display") is None
        # but "size"/"diagonal" and "resolution"/"dots" are grouped apart.
        assert lexicon.are_synonyms("size", "diagonal")
        assert lexicon.are_synonyms("resolution", "dots")
        assert not lexicon.are_synonyms("size", "resolution")

    def test_enum_options_grouped(self, small_spec):
        lexicon = derive_lexicon(small_spec)
        assert lexicon.are_synonyms("yes", "y")
        assert not lexicon.are_synonyms("yes", "no")


class TestDeriveSemantics:
    def test_ambiguous_words_become_soft(self):
        spec = DomainSpec(
            name="ambig",
            properties=(
                ReferencePropertySpec(
                    "a",
                    ("screen size", "display diagonal"),
                    NumericValueSpec(1, 10),
                    exposure=0.9,
                ),
                ReferencePropertySpec(
                    "b",
                    ("screen resolution", "display dots"),
                    NumericValueSpec(100, 1000),
                    exposure=0.9,
                ),
            ),
            n_sources=2,
            entities_per_source=3,
        )
        semantics = derive_semantics(spec)
        assert "screen" in semantics.soft_words
        # Related to both properties' groups.
        assert len(semantics.soft_words["screen"]) == 2

    def test_partition_is_disjoint(self, small_spec):
        semantics = derive_semantics(small_spec)
        grouped = semantics.lexicon.vocabulary()
        soft = set(semantics.soft_words)
        singles = set(semantics.singletons)
        assert not grouped & soft
        assert not grouped & singles
        assert not soft & singles

    def test_junk_words_are_singletons(self, small_spec):
        semantics = derive_semantics(small_spec)
        assert "aux" in semantics.singletons

    def test_soft_word_groups_valid(self, small_spec):
        semantics = derive_semantics(small_spec)
        n_groups = len(semantics.lexicon.groups())
        for groups in semantics.soft_words.values():
            assert all(0 <= g < n_groups for g in groups)
