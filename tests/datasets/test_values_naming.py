"""Tests for value rendering and naming conventions."""

import numpy as np
import pytest

from repro.datasets.naming import NamingStyle, choose_variant
from repro.datasets.specs import (
    CodeValueSpec,
    EnumValueSpec,
    FreeTextValueSpec,
    NumericValueSpec,
)
from repro.datasets.values import latent_value, render_value
from repro.errors import ConfigurationError


class TestLatentValues:
    def test_numeric_in_range(self, rng):
        spec = NumericValueSpec(10.0, 20.0)
        for _ in range(50):
            assert 10.0 <= latent_value(spec, rng) <= 20.0

    def test_enum_index_valid(self, rng):
        spec = EnumValueSpec(options=(("a",), ("b",), ("c",)))
        for _ in range(20):
            assert 0 <= latent_value(spec, rng) < 3

    def test_code_format(self, rng):
        spec = CodeValueSpec(prefixes=("wh",), digits=4)
        code = latent_value(spec, rng)
        prefix, _, digits = code.partition("-")
        assert prefix == "wh"
        assert len(digits) == 4 and digits.isdigit()

    def test_free_text_word_count(self, rng):
        spec = FreeTextValueSpec(vocabulary=("a", "b", "c"), min_words=2, max_words=4)
        for _ in range(20):
            assert 2 <= len(latent_value(spec, rng).split()) <= 4


class TestRenderValue:
    def test_numeric_contains_number(self, rng):
        spec = NumericValueSpec(10.0, 20.0, units=("mm",), unit_probability=1.0)
        text = render_value(spec, 15.0, rng)
        assert "15" in text
        assert "mm" in text

    def test_numeric_without_units(self, rng):
        spec = NumericValueSpec(10.0, 20.0)
        text = render_value(spec, 15.0, rng)
        assert "mm" not in text

    def test_enum_renders_group_member(self, rng):
        spec = EnumValueSpec(options=(("yes", "true"), ("no", "false")))
        for _ in range(10):
            assert render_value(spec, 0, rng) in ("yes", "true")

    def test_code_identical_across_sources(self, rng):
        spec = CodeValueSpec(prefixes=("wh",))
        latent = latent_value(spec, rng)
        assert render_value(spec, latent, rng) == render_value(spec, latent, rng)

    def test_noise_corrupts_sometimes(self):
        spec = EnumValueSpec(options=(("wireless",), ("wired",)))
        rng = np.random.default_rng(0)
        rendered = {render_value(spec, 0, rng, noise=1.0) for _ in range(30)}
        assert "wireless" not in rendered or len(rendered) > 1

    def test_zero_noise_is_clean(self, rng):
        spec = EnumValueSpec(options=(("wireless",), ("wired",)))
        for _ in range(20):
            assert render_value(spec, 0, rng, noise=0.0) == "wireless"


class TestNamingStyle:
    def test_render_cases(self):
        assert NamingStyle("upper", "_", "").render("camera resolution") == (
            "CAMERA_RESOLUTION"
        )
        assert NamingStyle("title", " ", "").render("camera resolution") == (
            "Camera Resolution"
        )
        assert NamingStyle("lower", "-", "").render("Camera Resolution") == (
            "camera-resolution"
        )

    def test_decoration_appended_only_on_request(self):
        style = NamingStyle("lower", " ", "spec")
        assert style.render("weight") == "weight"
        assert style.render("weight", decorate=True) == "weight spec"

    def test_random_styles_vary(self):
        rng = np.random.default_rng(0)
        styles = {NamingStyle.random(rng) for _ in range(30)}
        assert len(styles) > 3

    def test_no_empty_separator_generated(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            assert NamingStyle.random(rng).separator != ""


class TestChooseVariant:
    def test_skewed_towards_first(self):
        rng = np.random.default_rng(0)
        variants = ("first", "second", "third")
        picks = [choose_variant(variants, rng) for _ in range(500)]
        counts = {v: picks.count(v) for v in variants}
        assert counts["first"] > counts["second"] > counts["third"]

    def test_single_variant(self, rng):
        assert choose_variant(("only",), rng) == "only"

    def test_invalid_value_spec_type(self, rng):
        with pytest.raises(ConfigurationError):
            latent_value(object(), rng)
        with pytest.raises(ConfigurationError):
            render_value(object(), 0, rng)
