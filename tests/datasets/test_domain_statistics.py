"""Regression net over the generated domains' structural statistics.

The benchmark calibration (EXPERIMENTS.md) depends on these staying in
range; a silent spec edit that, say, halves the matching-pair count
would invalidate the recorded shapes without failing any functional
test.  Bounds are deliberately loose -- they catch order-of-magnitude
drift, not seed noise.
"""

import pytest

from repro.data.stats import dataset_stats
from repro.datasets import DATASET_NAMES, load_dataset

EXPECTED = {
    # name: (n_sources, min_properties, min_matching_pairs, balanced)
    "cameras": (24, 250, 1500, True),
    "headphones": (10, 100, 250, False),
    "phones": (10, 120, 300, False),
    "tvs": (10, 100, 250, False),
}


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_small_scale_statistics(name):
    stats = dataset_stats(load_dataset(name, scale="small"))
    n_sources, min_properties, min_pairs, balanced = EXPECTED[name]
    assert stats.n_sources == n_sources
    assert stats.n_properties >= min_properties
    assert stats.n_matching_pairs >= min_pairs
    if balanced:
        assert stats.entity_balance > 0.9
    else:
        assert stats.entity_balance < 0.7


def test_cameras_is_largest():
    all_stats = {
        name: dataset_stats(load_dataset(name, scale="small"))
        for name in DATASET_NAMES
    }
    cameras = all_stats["cameras"]
    for name, stats in all_stats.items():
        if name == "cameras":
            continue
        assert cameras.n_matching_pairs > stats.n_matching_pairs
        assert cameras.n_instances > stats.n_instances


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_positive_rate_is_skewed(name):
    """Cross-source candidate pairs are overwhelmingly negative."""
    from repro.data.pairs import build_pairs

    dataset = load_dataset(name, scale="tiny")
    pairs = build_pairs(dataset)
    rate = len(pairs.positives()) / len(pairs)
    assert 0.01 < rate < 0.30
