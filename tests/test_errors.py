"""Tests for the exception hierarchy contract."""

import pytest

from repro.errors import (
    ConfigurationError,
    DataError,
    DimensionError,
    JournalError,
    NotFittedError,
    NumericError,
    ReproError,
    TrainingDivergedError,
    VocabularyError,
)

ALL_ERRORS = [
    ConfigurationError,
    DataError,
    NotFittedError,
    VocabularyError,
    DimensionError,
    NumericError,
    TrainingDivergedError,
    JournalError,
]


@pytest.mark.parametrize("error_cls", ALL_ERRORS)
def test_all_errors_derive_from_repro_error(error_cls):
    assert issubclass(error_cls, ReproError)
    with pytest.raises(ReproError):
        raise error_cls("boom")


def test_diverged_is_a_numeric_error():
    # The degradation ladder catches divergence specifically; a generic
    # numeric guard handler must also see it.
    assert issubclass(TrainingDivergedError, NumericError)


def test_simulated_kill_escapes_exception_handlers():
    # The fault harness's kill must behave like SIGKILL: uncatchable by
    # the runner's `except Exception` isolation.
    from repro.testing import SimulatedKill

    assert not issubclass(SimulatedKill, Exception)


def test_single_except_catches_library_failures():
    # The documented usage pattern: one except clause for everything.
    from repro.datasets import load_dataset

    try:
        load_dataset("not-a-dataset")
    except ReproError as error:
        assert "unknown dataset" in str(error)
    else:  # pragma: no cover
        raise AssertionError("expected a ReproError")
