"""Shared fixtures: tiny datasets and embeddings, cached per session."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import build_domain_embeddings, load_dataset


@pytest.fixture(scope="session")
def tiny_headphones():
    """A small but realistic multi-source dataset."""
    return load_dataset("headphones", scale="tiny", seed=0)


@pytest.fixture(scope="session")
def tiny_cameras():
    """The camera domain at test scale."""
    return load_dataset("cameras", scale="tiny", seed=0)


@pytest.fixture(scope="session")
def tiny_embeddings():
    """Trained embeddings covering the tiny headphone domain."""
    return build_domain_embeddings("headphones", scale="tiny")


@pytest.fixture(scope="session")
def tiny_camera_embeddings():
    """Trained embeddings covering the tiny camera domain."""
    return build_domain_embeddings("cameras", scale="tiny")


@pytest.fixture()
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)
