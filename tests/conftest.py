"""Shared fixtures and a global per-test timeout.

Fixtures build tiny datasets and embeddings, cached per session.  The
timeout hook guards the whole suite against hangs: the chaos tests
deliberately wedge worker processes, and a supervision bug must fail
the test, not freeze CI.  Implemented with ``SIGALRM`` (no third-party
timeout plugin is available in this environment); override the budget
with ``REPRO_TEST_TIMEOUT`` seconds, ``0`` disables it.
"""

from __future__ import annotations

import os
import signal
import threading

import numpy as np
import pytest

from repro.datasets import build_domain_embeddings, load_dataset

TEST_TIMEOUT_SECONDS = float(os.environ.get("REPRO_TEST_TIMEOUT", "120"))


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item):
    no_alarm = (
        TEST_TIMEOUT_SECONDS <= 0
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    )
    if no_alarm:
        return (yield)

    def _on_timeout(signum, frame):
        raise TimeoutError(
            f"test exceeded the global {TEST_TIMEOUT_SECONDS:.0f}s timeout "
            f"(REPRO_TEST_TIMEOUT): {item.nodeid}"
        )

    previous = signal.signal(signal.SIGALRM, _on_timeout)
    signal.setitimer(signal.ITIMER_REAL, TEST_TIMEOUT_SECONDS)
    try:
        return (yield)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(scope="session")
def tiny_headphones():
    """A small but realistic multi-source dataset."""
    return load_dataset("headphones", scale="tiny", seed=0)


@pytest.fixture(scope="session")
def tiny_cameras():
    """The camera domain at test scale."""
    return load_dataset("cameras", scale="tiny", seed=0)


@pytest.fixture(scope="session")
def tiny_embeddings():
    """Trained embeddings covering the tiny headphone domain."""
    return build_domain_embeddings("headphones", scale="tiny")


@pytest.fixture(scope="session")
def tiny_camera_embeddings():
    """Trained embeddings covering the tiny camera domain."""
    return build_domain_embeddings("cameras", scale="tiny")


@pytest.fixture()
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)
