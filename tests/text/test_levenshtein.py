"""Tests for the three edit distances (Table I rows 8-10)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.levenshtein import (
    damerau_levenshtein_distance,
    levenshtein_distance,
    normalized_levenshtein,
    optimal_string_alignment_distance,
)

short_text = st.text(alphabet="abcdef", max_size=12)


class TestLevenshtein:
    @pytest.mark.parametrize(
        ("a", "b", "expected"),
        [
            ("", "", 0),
            ("abc", "abc", 0),
            ("", "abc", 3),
            ("abc", "", 3),
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
            ("a", "b", 1),
            ("megapixel", "megapixels", 1),
        ],
    )
    def test_known_values(self, a, b, expected):
        assert levenshtein_distance(a, b) == expected

    @given(short_text, short_text)
    def test_symmetry(self, a, b):
        assert levenshtein_distance(a, b) == levenshtein_distance(b, a)

    @given(short_text, short_text)
    def test_bounds(self, a, b):
        distance = levenshtein_distance(a, b)
        assert abs(len(a) - len(b)) <= distance <= max(len(a), len(b))

    @given(short_text, short_text, short_text)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein_distance(a, c) <= (
            levenshtein_distance(a, b) + levenshtein_distance(b, c)
        )

    @given(short_text)
    def test_identity(self, a):
        assert levenshtein_distance(a, a) == 0


class TestOptimalStringAlignment:
    def test_transposition_counts_once(self):
        assert optimal_string_alignment_distance("ab", "ba") == 1
        assert levenshtein_distance("ab", "ba") == 2

    def test_osa_restriction(self):
        # The classic example where OSA differs from full DL.
        assert optimal_string_alignment_distance("ca", "abc") == 3
        assert damerau_levenshtein_distance("ca", "abc") == 2

    @pytest.mark.parametrize(
        ("a", "b", "expected"),
        [("", "", 0), ("abc", "abc", 0), ("", "ab", 2), ("abcd", "acbd", 1)],
    )
    def test_known_values(self, a, b, expected):
        assert optimal_string_alignment_distance(a, b) == expected

    @given(short_text, short_text)
    def test_never_exceeds_levenshtein(self, a, b):
        assert optimal_string_alignment_distance(a, b) <= levenshtein_distance(a, b)

    @given(short_text, short_text)
    def test_symmetry(self, a, b):
        assert optimal_string_alignment_distance(
            a, b
        ) == optimal_string_alignment_distance(b, a)


class TestDamerauLevenshtein:
    @pytest.mark.parametrize(
        ("a", "b", "expected"),
        [
            ("", "", 0),
            ("abc", "abc", 0),
            ("ab", "ba", 1),
            ("ca", "abc", 2),
            # delete the 'a' of "cat", then transpose "ct" -> "tc"
            ("a cat", "a tc", 2),
            ("specter", "spectre", 1),
        ],
    )
    def test_known_values(self, a, b, expected):
        assert damerau_levenshtein_distance(a, b) == expected

    @given(short_text, short_text)
    def test_never_exceeds_osa(self, a, b):
        assert damerau_levenshtein_distance(
            a, b
        ) <= optimal_string_alignment_distance(a, b)

    @given(short_text, short_text, short_text)
    def test_triangle_inequality(self, a, b, c):
        # Unlike OSA, the full distance is a metric.
        assert damerau_levenshtein_distance(a, c) <= (
            damerau_levenshtein_distance(a, b) + damerau_levenshtein_distance(b, c)
        )

    @given(short_text, short_text)
    def test_symmetry(self, a, b):
        assert damerau_levenshtein_distance(a, b) == damerau_levenshtein_distance(b, a)

    @given(short_text, short_text)
    def test_zero_iff_equal(self, a, b):
        distance = damerau_levenshtein_distance(a, b)
        assert (distance == 0) == (a == b)


class TestNormalizedLevenshtein:
    def test_identical(self):
        assert normalized_levenshtein("abc", "abc") == 0.0

    def test_completely_different(self):
        assert normalized_levenshtein("", "abcd") == 1.0

    def test_both_empty(self):
        assert normalized_levenshtein("", "") == 0.0

    @given(short_text, short_text)
    def test_range(self, a, b):
        assert 0.0 <= normalized_levenshtein(a, b) <= 1.0
