"""Tests for name normalisation used by the lexical baselines."""

from repro.text.normalize import light_stem, name_tokens, token_set


class TestLightStem:
    def test_plural_s(self):
        assert light_stem("megapixels") == "megapixel"

    def test_es_endings(self):
        assert light_stem("inches") == "inch"

    def test_ies(self):
        assert light_stem("batteries") == "battery"

    def test_double_s_untouched(self):
        assert light_stem("glass") == "glass"

    def test_short_words_untouched(self):
        assert light_stem("gps") == "gps"
        assert light_stem("is") == "is"

    def test_lowercases(self):
        assert light_stem("Pixels") == "pixel"


class TestNameTokens:
    def test_separator_styles_converge(self):
        assert name_tokens("Effective_Pixels") == ["effective", "pixel"]
        assert name_tokens("effective-pixels") == ["effective", "pixel"]
        assert name_tokens("EFFECTIVE PIXELS") == ["effective", "pixel"]

    def test_without_stemming(self):
        assert name_tokens("Effective Pixels", stem=False) == ["effective", "pixels"]

    def test_token_set_deduplicates(self):
        assert token_set("pixel pixels") == frozenset({"pixel"})

    def test_empty(self):
        assert name_tokens("") == []
        assert token_set("123") == frozenset()
