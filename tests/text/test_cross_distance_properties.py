"""Cross-distance property tests: relations BETWEEN the Table I measures.

Each distance was tested individually; these verify the mathematical
relations that hold between them, which the matcher implicitly relies on
(e.g. the DL <= OSA <= Levenshtein chain that makes the three features
correlated but not redundant).
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.text.lcs import (
    longest_common_subsequence_length,
    longest_common_substring_length,
)
from repro.text.levenshtein import (
    damerau_levenshtein_distance,
    levenshtein_distance,
    optimal_string_alignment_distance,
)
from repro.text.ngrams import ngram_jaccard_distance, ngrams
from repro.text.tokenize import words

text = st.text(alphabet="abcde", max_size=10)


class TestEditDistanceChain:
    @given(a=text, b=text)
    def test_dl_osa_levenshtein_ordering(self, a, b):
        dl = damerau_levenshtein_distance(a, b)
        osa = optimal_string_alignment_distance(a, b)
        lev = levenshtein_distance(a, b)
        assert dl <= osa <= lev

    @given(a=text, b=text)
    def test_levenshtein_lcs_relation(self, a, b):
        # Levenshtein with unit costs is bounded below by the deletions/
        # insertions needed around the longest common subsequence.
        lcs = longest_common_subsequence_length(a, b)
        assert levenshtein_distance(a, b) >= max(len(a), len(b)) - lcs
        assert levenshtein_distance(a, b) <= len(a) + len(b) - 2 * lcs

    @given(a=text, b=text)
    def test_prefix_edit_bound(self, a, b):
        # Appending the same suffix never increases the distance.
        assert levenshtein_distance(a + "zz", b + "zz") <= levenshtein_distance(a, b) + 0


class TestGramAndSubstringRelations:
    @given(a=text, b=text)
    def test_shared_long_substring_implies_shared_grams(self, a, b):
        # Any common substring of length >= 3 yields a shared 3-gram,
        # hence a Jaccard distance strictly below 1.
        if longest_common_substring_length(a, b) >= 3:
            assert ngram_jaccard_distance(a, b, 3) < 1.0

    @given(a=text)
    def test_gram_count(self, a):
        expected = 0 if not a else max(1, len(a) - 2)
        assert len(ngrams(a, 3)) == expected


class TestWordsConsistency:
    @given(a=text, b=text)
    def test_concatenation_with_separator_unions_words(self, a, b):
        combined = words(a + " " + b)
        assert combined == words(a) + words(b)

    @given(a=st.text(alphabet="abc XYZ", max_size=12))
    def test_words_are_lowercase_alpha(self, a):
        for word in words(a):
            assert word.isalpha()
            assert word == word.lower()
