"""Persistent distance cache: round-trip fidelity, damage tolerance.

The cache is a pure accelerator: a warm load must serve rows
bit-identical to what was recorded, and *any* flavour of on-disk damage
-- truncation, garbage, a stale kernel fingerprint -- must load as an
empty cache (recompute) rather than raise or serve wrong rows.
"""

import numpy as np
import pytest

from repro.text.batch import COLUMNS, name_distance_rows
from repro.text.distance_cache import KERNEL_FINGERPRINT, DistanceCache


def _rows_for(keys):
    return name_distance_rows(list(keys))


@pytest.fixture
def keys():
    return [("height", "width"), ("impedance", "impedance ohms"), ("", "a")]


class TestRoundTrip:
    def test_records_persist_and_reload_bit_identically(self, tmp_path, keys):
        path = tmp_path / "cache.npz"
        rows = _rows_for(keys)
        cache = DistanceCache(path)
        assert len(cache) == 0
        assert cache.loaded_entries == 0
        assert cache.record(keys, rows) == len(keys)
        assert cache.dirty
        assert cache.save()
        assert not cache.dirty

        warm = DistanceCache(path)
        assert warm.loaded_entries == len(keys)
        for key, row in zip(keys, rows):
            assert key in warm
            np.testing.assert_array_equal(warm.get(key), row)

    def test_save_is_noop_when_clean(self, tmp_path, keys):
        path = tmp_path / "cache.npz"
        cache = DistanceCache(path)
        cache.record(keys, _rows_for(keys))
        assert cache.save()
        stamp = path.stat().st_mtime_ns
        assert not cache.save()  # nothing new recorded
        assert path.stat().st_mtime_ns == stamp

    def test_record_is_first_write_wins(self, tmp_path, keys):
        cache = DistanceCache(tmp_path / "cache.npz")
        rows = _rows_for(keys)
        assert cache.record(keys, rows) == len(keys)
        # Recording the same keys again adds nothing and keeps the
        # original rows (recomputation cannot disagree by contract).
        assert cache.record(keys, rows) == 0
        assert len(cache) == len(keys)

    def test_missing_key_returns_none(self, tmp_path):
        cache = DistanceCache(tmp_path / "cache.npz")
        assert cache.get(("nope", "nada")) is None
        assert ("nope", "nada") not in cache

    def test_unicode_keys_survive_the_round_trip(self, tmp_path):
        keys = [("größe", "größe mm"), ("日本語", "カメラ"), ("😀", "grin")]
        path = tmp_path / "cache.npz"
        cache = DistanceCache(path)
        rows = _rows_for(keys)
        cache.record(keys, rows)
        cache.save()
        warm = DistanceCache(path)
        for key, row in zip(keys, rows):
            np.testing.assert_array_equal(warm.get(key), row)


class TestDamageTolerance:
    def _saved(self, path, keys):
        cache = DistanceCache(path)
        cache.record(keys, _rows_for(keys))
        cache.save()
        return path

    def test_missing_file_loads_empty(self, tmp_path):
        cache = DistanceCache(tmp_path / "never_written.npz")
        assert len(cache) == 0
        assert cache.loaded_entries == 0

    def test_truncated_archive_loads_empty(self, tmp_path, keys):
        path = self._saved(tmp_path / "cache.npz", keys)
        payload = path.read_bytes()
        path.write_bytes(payload[: len(payload) // 2])
        assert len(DistanceCache(path)) == 0

    def test_garbage_bytes_load_empty(self, tmp_path):
        path = tmp_path / "cache.npz"
        path.write_bytes(b"this is not a zip archive at all")
        assert len(DistanceCache(path)) == 0

    def test_stale_fingerprint_loads_empty(self, tmp_path, keys):
        path = tmp_path / "cache.npz"
        rows = np.stack(_rows_for(keys))
        np.savez(
            path,
            fingerprint=np.array("0123456789abcdef"),
            first=np.array([k[0] for k in keys], dtype=str),
            second=np.array([k[1] for k in keys], dtype=str),
            matrix=rows,
        )
        assert KERNEL_FINGERPRINT != "0123456789abcdef"
        assert len(DistanceCache(path)) == 0

    def test_shape_mismatch_loads_empty(self, tmp_path, keys):
        path = tmp_path / "cache.npz"
        np.savez(
            path,
            fingerprint=np.array(KERNEL_FINGERPRINT),
            first=np.array([k[0] for k in keys], dtype=str),
            second=np.array([k[1] for k in keys], dtype=str),
            matrix=np.zeros((len(keys), len(COLUMNS) - 1)),
        )
        assert len(DistanceCache(path)) == 0

    def test_damaged_cache_recovers_by_resaving(self, tmp_path, keys):
        path = self._saved(tmp_path / "cache.npz", keys)
        path.write_bytes(b"corrupted")
        cache = DistanceCache(path)
        assert len(cache) == 0
        cache.record(keys, _rows_for(keys))
        assert cache.save()
        assert DistanceCache(path).loaded_entries == len(keys)
