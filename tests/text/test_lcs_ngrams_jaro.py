"""Tests for LCS, n-gram and Jaro-Winkler measures (Table I rows 11-15)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.jaro import (
    jaro_similarity,
    jaro_winkler_distance,
    jaro_winkler_similarity,
)
from repro.text.lcs import (
    longest_common_subsequence_length,
    longest_common_substring_distance,
    longest_common_substring_length,
)
from repro.text.ngrams import (
    jaccard_distance,
    ngram_cosine_distance,
    ngram_distance,
    ngram_jaccard_distance,
    ngram_profile,
    ngrams,
)

short_text = st.text(alphabet="abcdef", max_size=12)


class TestLongestCommonSubstring:
    @pytest.mark.parametrize(
        ("a", "b", "expected"),
        [
            ("", "", 0),
            ("abc", "", 0),
            ("abc", "abc", 3),
            ("megapixels", "pixel count", 5),
            ("xabcy", "zabcw", 3),
        ],
    )
    def test_length(self, a, b, expected):
        assert longest_common_substring_length(a, b) == expected

    def test_distance_identical(self):
        assert longest_common_substring_distance("abc", "abc") == 0.0

    def test_distance_disjoint(self):
        assert longest_common_substring_distance("abc", "xyz") == 1.0

    def test_distance_both_empty(self):
        assert longest_common_substring_distance("", "") == 0.0

    @given(short_text, short_text)
    def test_symmetry(self, a, b):
        assert longest_common_substring_length(a, b) == longest_common_substring_length(b, a)

    @given(short_text, short_text)
    def test_substring_bounded_by_subsequence(self, a, b):
        assert longest_common_substring_length(a, b) <= (
            longest_common_subsequence_length(a, b)
        )


class TestLongestCommonSubsequence:
    def test_classic(self):
        assert longest_common_subsequence_length("ABCBDAB", "BDCABA") == 4

    def test_empty(self):
        assert longest_common_subsequence_length("", "abc") == 0

    @given(short_text)
    def test_identity(self, a):
        assert longest_common_subsequence_length(a, a) == len(a)


class TestNgrams:
    def test_basic(self):
        assert ngrams("pixel", 3) == ["pix", "ixe", "xel"]

    def test_short_string_falls_back(self):
        assert ngrams("mp", 3) == ["mp"]

    def test_empty(self):
        assert ngrams("", 3) == []

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            ngrams("abc", 0)

    def test_profile_counts_duplicates(self):
        profile = ngram_profile("aaaa", 2)
        assert profile["aa"] == 3


class TestNgramDistances:
    @pytest.mark.parametrize(
        "distance",
        [ngram_distance, ngram_cosine_distance, ngram_jaccard_distance],
    )
    def test_identical_is_zero(self, distance):
        assert distance("resolution", "resolution") == 0.0

    @pytest.mark.parametrize(
        "distance",
        [ngram_distance, ngram_cosine_distance, ngram_jaccard_distance],
    )
    def test_disjoint_is_one(self, distance):
        assert distance("abc", "xyz") == pytest.approx(1.0)

    @pytest.mark.parametrize(
        "distance",
        [ngram_distance, ngram_cosine_distance, ngram_jaccard_distance],
    )
    @given(a=short_text, b=short_text)
    def test_range_and_symmetry(self, distance, a, b):
        value = distance(a, b)
        assert 0.0 <= value <= 1.0
        assert value == pytest.approx(distance(b, a))

    def test_both_empty(self):
        assert ngram_distance("", "") == 0.0
        assert ngram_cosine_distance("", "") == 0.0
        assert ngram_jaccard_distance("", "") == 0.0

    def test_one_empty(self):
        assert ngram_cosine_distance("abc", "") == 1.0

    def test_jaccard_tokens_helper(self):
        assert jaccard_distance(["a", "b"], ["b", "c"]) == pytest.approx(2 / 3)
        assert jaccard_distance([], []) == 0.0


class TestJaro:
    def test_classic_martha(self):
        assert jaro_similarity("martha", "marhta") == pytest.approx(0.9444, abs=1e-4)
        assert jaro_winkler_similarity("martha", "marhta") == pytest.approx(
            0.9611, abs=1e-4
        )

    def test_identical(self):
        assert jaro_similarity("abc", "abc") == 1.0
        assert jaro_winkler_distance("abc", "abc") == 0.0

    def test_empty(self):
        assert jaro_similarity("", "abc") == 0.0
        assert jaro_similarity("", "") == 1.0  # equal strings

    def test_no_matches(self):
        assert jaro_similarity("abc", "xyz") == 0.0

    def test_prefix_boost(self):
        plain = jaro_similarity("prefixed", "prefixxx")
        boosted = jaro_winkler_similarity("prefixed", "prefixxx")
        assert boosted > plain

    def test_invalid_prefix_scale(self):
        with pytest.raises(ValueError):
            jaro_winkler_similarity("a", "b", prefix_scale=0.5)

    @given(short_text, short_text)
    def test_range_and_symmetry(self, a, b):
        similarity = jaro_winkler_similarity(a, b)
        assert 0.0 <= similarity <= 1.0
        assert similarity == pytest.approx(jaro_winkler_similarity(b, a))
