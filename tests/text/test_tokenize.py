"""Tests for tokenisation and token typing (Table I rows 2-3)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.text.tokenize import (
    NUM_TOKEN_FEATURES,
    count_token_types,
    parse_numeric,
    tokenize,
    words,
)


class TestTokenize:
    def test_simple_words(self):
        assert tokenize("shutter speed") == ["shutter", "speed"]

    def test_punctuation_splits(self):
        assert tokenize("Shutter-speed: 1/4000s") == ["Shutter", "speed", "1", "4000s"]

    def test_underscores_split(self):
        assert tokenize("effective_pixels") == ["effective", "pixels"]

    def test_empty(self):
        assert tokenize("") == []

    def test_numbers_kept(self):
        assert tokenize("24 MP") == ["24", "MP"]


class TestWords:
    def test_lowercases(self):
        assert words("Effective Pixels") == ["effective", "pixels"]

    def test_drops_numbers(self):
        assert words("20.1 MP") == ["mp"]

    def test_camel_case_split(self):
        assert words("wearingStyle") == ["wearing", "style"]
        assert words("NoiseCancelling") == ["noise", "cancelling"]

    def test_unicode(self):
        # Greek capital omega is a letter; it lowercases like any other.
        assert words("ánodo Ω") == ["ánodo", "ω"]

    def test_empty(self):
        assert words("") == []


class TestCountTokenTypes:
    def test_word_classes(self):
        counts = count_token_types("Nikon camera UHD 20")
        assert counts.word == 3
        assert counts.capitalized == 2  # Nikon, UHD (upper first + non-sep second)
        assert counts.lower_start == 1  # camera
        assert counts.upper == 1  # UHD
        assert counts.numeric == 1  # 20
        assert counts.total == 4

    def test_empty(self):
        counts = count_token_types("")
        assert counts.total == 0
        assert counts.fractions() == [0.0] * 5

    def test_numeric_with_decimal(self):
        counts = count_token_types("20.1")
        # Tokenisation splits on '.', producing two numeric tokens.
        assert counts.numeric == 2

    def test_feature_vector_size(self):
        assert len(count_token_types("a b").as_features()) == NUM_TOKEN_FEATURES == 10

    @given(st.text(max_size=60))
    def test_class_counts_bounded_by_total(self, text):
        counts = count_token_types(text)
        for count in counts.counts():
            assert 0 <= count <= counts.total


class TestParseNumeric:
    def test_plain_integer(self):
        assert parse_numeric("42") == 42.0

    def test_decimal(self):
        assert parse_numeric("20.1") == 20.1

    def test_decimal_comma(self):
        assert parse_numeric("1,5") == 1.5

    def test_whitespace_tolerated(self):
        assert parse_numeric("  3.5  ") == 3.5

    def test_non_number(self):
        assert parse_numeric("f/2.8") == -1.0

    def test_empty(self):
        assert parse_numeric("") == -1.0

    def test_infinity_rejected(self):
        assert parse_numeric("inf") == -1.0
        assert parse_numeric("nan") == -1.0

    def test_negative_number(self):
        assert parse_numeric("-4") == -4.0
