"""Tests for Unicode character-type counting (Table I row 1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.chartypes import (
    CHARACTER_CLASSES,
    NUM_CHARACTER_FEATURES,
    CharacterTypeCounts,
    count_character_types,
)


class TestCountCharacterTypes:
    def test_empty_string(self):
        counts = count_character_types("")
        assert counts.total == 0
        assert counts.counts() == [0] * len(CHARACTER_CLASSES)
        assert counts.fractions() == [0.0] * len(CHARACTER_CLASSES)

    def test_letters_lower_and_upper(self):
        counts = count_character_types("aB")
        assert counts.letter == 2
        assert counts.lower == 1
        assert counts.upper == 1

    def test_titlecase_letter_counts_as_letter_only(self):
        # 'ǅ' is category Lt: a letter that is neither Lu nor Ll.
        counts = count_character_types("ǅ")
        assert counts.letter == 1
        assert counts.upper == 0
        assert counts.lower == 0

    def test_digits(self):
        counts = count_character_types("123")
        assert counts.number == 3
        assert counts.letter == 0

    def test_punctuation_and_symbols(self):
        counts = count_character_types("a,b$c")
        assert counts.punctuation == 1
        assert counts.symbol == 1

    def test_separators(self):
        counts = count_character_types("a b\tc\n")
        assert counts.separator == 3

    def test_combining_mark(self):
        # e + combining acute accent.
        counts = count_character_types("é")
        assert counts.mark == 1
        assert counts.letter == 1

    def test_control_characters_are_other(self):
        counts = count_character_types("\x00\x01")
        assert counts.other == 2

    def test_unicode_letters(self):
        counts = count_character_types("ñÑ")
        assert counts.letter == 2
        assert counts.lower == 1
        assert counts.upper == 1

    def test_realistic_value(self):
        counts = count_character_types("20.1 MP")
        assert counts.number == 3
        assert counts.punctuation == 1
        assert counts.upper == 2
        assert counts.separator == 1
        assert counts.total == 7


class TestFeatureVector:
    def test_feature_count_matches_constant(self):
        features = count_character_types("anything").as_features()
        assert len(features) == NUM_CHARACTER_FEATURES == 18

    def test_counts_precede_fractions(self):
        counts = count_character_types("ab")
        features = counts.as_features()
        assert features[:9] == [float(c) for c in counts.counts()]
        assert features[9:] == counts.fractions()

    @given(st.text(max_size=50))
    def test_fractions_sum_bounded(self, text):
        counts = count_character_types(text)
        fractions = counts.fractions()
        assert all(0.0 <= f <= 1.0 for f in fractions)
        # letter/upper/lower overlap, so the sum over the disjoint classes
        # (everything except upper/lower) must be exactly 1 for non-empty text.
        disjoint = (
            counts.letter + counts.mark + counts.number + counts.punctuation
            + counts.symbol + counts.separator + counts.other
        )
        assert disjoint == counts.total

    @given(st.text(max_size=50))
    def test_upper_lower_bounded_by_letters(self, text):
        counts = count_character_types(text)
        assert counts.upper + counts.lower <= 2 * counts.letter
        assert counts.upper <= counts.letter
        assert counts.lower <= counts.letter

    def test_counts_are_immutable(self):
        counts = count_character_types("abc")
        with pytest.raises(AttributeError):
            counts.letter = 5
