"""Property-based equivalence: batched kernel == scalar reference.

The batched kernel must be a pure optimisation: for any input, every
row of :func:`repro.text.batch.name_distance_matrix` must equal
:func:`repro.text.similarity.name_distance_vector` bit for bit.  The
generators below stress the regimes where the DP vectorisation could
diverge: empty strings, single characters, repeated characters (the
Damerau transposition bookkeeping), shared prefixes (Jaro-Winkler),
multi-byte unicode, and case folding that changes string length.
"""

import random

import numpy as np
import pytest

from repro.text.batch import (
    COLUMNS,
    name_distance_matrix,
    unique_lowered_pairs,
)
from repro.text.similarity import PAIR_DISTANCE_NAMES, name_distance_vector

ALPHABETS = [
    "ab",  # tiny alphabet: maximises repeats and transpositions
    "abcdefgh",
    "abcdefghijklmnopqrstuvwxyz0123456789 _-",
    "résolution mégapixels größe 日本語カメラ",
    "AaBbİıẞß😀",  # case folding changes lengths ('İ'.lower() has len 2)
]


def _random_pairs(seed: int, count: int) -> list[tuple[str, str]]:
    rng = random.Random(seed)
    pairs = []
    for _ in range(count):
        alphabet = rng.choice(ALPHABETS)
        a = "".join(rng.choice(alphabet) for _ in range(rng.randrange(0, 14)))
        if rng.random() < 0.3:
            # Mutate a copy: realistic near-duplicates with transpositions.
            chars = list(a)
            for _ in range(rng.randrange(0, 3)):
                if len(chars) >= 2:
                    i = rng.randrange(len(chars) - 1)
                    chars[i], chars[i + 1] = chars[i + 1], chars[i]
            b = "".join(chars)
        else:
            b = "".join(
                rng.choice(alphabet) for _ in range(rng.randrange(0, 14))
            )
        pairs.append((a, b))
    return pairs


class TestBatchedEquivalence:
    def test_columns_match_registry_order(self):
        assert COLUMNS == PAIR_DISTANCE_NAMES

    @pytest.mark.parametrize("seed", range(8))
    def test_random_unicode_pairs_match_reference_exactly(self, seed):
        pairs = _random_pairs(seed, 150)
        batched = name_distance_matrix(pairs)
        reference = np.array([name_distance_vector(a, b) for a, b in pairs])
        np.testing.assert_array_equal(batched, reference)

    def test_known_edge_cases(self):
        pairs = [
            ("", ""),
            ("", "abc"),
            ("abc", ""),
            ("a", "a"),
            ("ca", "abc"),  # OSA=3 vs full Damerau=2 territory
            ("ab", "ba"),
            ("martha", "marhta"),
            ("Resolution", "resolution"),
            ("megapixels", "pixel count"),
            ("aaaa", "aa"),
            ("abab", "baba"),
        ]
        batched = name_distance_matrix(pairs)
        reference = np.array([name_distance_vector(a, b) for a, b in pairs])
        np.testing.assert_array_equal(batched, reference)

    def test_symmetry_and_dedup(self):
        pairs = [("Width", "height"), ("height", "Width"), ("width", "HEIGHT")]
        uniq, inverse = unique_lowered_pairs(pairs)
        assert len(uniq) == 1
        assert inverse.tolist() == [0, 0, 0]
        matrix = name_distance_matrix(pairs)
        np.testing.assert_array_equal(matrix[0], matrix[1])
        np.testing.assert_array_equal(matrix[0], matrix[2])

    def test_empty_input(self):
        assert name_distance_matrix([]).shape == (0, 8)

    def test_identical_names_are_all_zero(self):
        matrix = name_distance_matrix([("focal length", "Focal Length")])
        np.testing.assert_array_equal(matrix, np.zeros((1, 8)))
