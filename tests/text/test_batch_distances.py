"""Property-based equivalence: batched kernel == scalar reference.

The batched kernel must be a pure optimisation: for any input, every
row of :func:`repro.text.batch.name_distance_matrix` must equal
:func:`repro.text.similarity.name_distance_vector` bit for bit.  The
generators below stress the regimes where the DP vectorisation could
diverge: empty strings, single characters, repeated characters (the
Damerau transposition bookkeeping), shared prefixes (Jaro-Winkler),
multi-byte unicode, and case folding that changes string length.
"""

import random

import numpy as np
import pytest

from repro.text.batch import (
    COLUMNS,
    name_distance_matrix,
    unique_lowered_pairs,
)
from repro.text.similarity import PAIR_DISTANCE_NAMES, name_distance_vector

ALPHABETS = [
    "ab",  # tiny alphabet: maximises repeats and transpositions
    "abcdefgh",
    "abcdefghijklmnopqrstuvwxyz0123456789 _-",
    "résolution mégapixels größe 日本語カメラ",
    "AaBbİıẞß😀",  # case folding changes lengths ('İ'.lower() has len 2)
]


def _random_pairs(seed: int, count: int) -> list[tuple[str, str]]:
    rng = random.Random(seed)
    pairs = []
    for _ in range(count):
        alphabet = rng.choice(ALPHABETS)
        a = "".join(rng.choice(alphabet) for _ in range(rng.randrange(0, 14)))
        if rng.random() < 0.3:
            # Mutate a copy: realistic near-duplicates with transpositions.
            chars = list(a)
            for _ in range(rng.randrange(0, 3)):
                if len(chars) >= 2:
                    i = rng.randrange(len(chars) - 1)
                    chars[i], chars[i + 1] = chars[i + 1], chars[i]
            b = "".join(chars)
        else:
            b = "".join(
                rng.choice(alphabet) for _ in range(rng.randrange(0, 14))
            )
        pairs.append((a, b))
    return pairs


class TestBatchedEquivalence:
    def test_columns_match_registry_order(self):
        assert COLUMNS == PAIR_DISTANCE_NAMES

    @pytest.mark.parametrize("seed", range(8))
    def test_random_unicode_pairs_match_reference_exactly(self, seed):
        pairs = _random_pairs(seed, 150)
        batched = name_distance_matrix(pairs)
        reference = np.array([name_distance_vector(a, b) for a, b in pairs])
        np.testing.assert_array_equal(batched, reference)

    def test_known_edge_cases(self):
        pairs = [
            ("", ""),
            ("", "abc"),
            ("abc", ""),
            ("a", "a"),
            ("ca", "abc"),  # OSA=3 vs full Damerau=2 territory
            ("ab", "ba"),
            ("martha", "marhta"),
            ("Resolution", "resolution"),
            ("megapixels", "pixel count"),
            ("aaaa", "aa"),
            ("abab", "baba"),
        ]
        batched = name_distance_matrix(pairs)
        reference = np.array([name_distance_vector(a, b) for a, b in pairs])
        np.testing.assert_array_equal(batched, reference)

    def test_symmetry_and_dedup(self):
        pairs = [("Width", "height"), ("height", "Width"), ("width", "HEIGHT")]
        uniq, inverse = unique_lowered_pairs(pairs)
        assert len(uniq) == 1
        assert inverse.tolist() == [0, 0, 0]
        matrix = name_distance_matrix(pairs)
        np.testing.assert_array_equal(matrix[0], matrix[1])
        np.testing.assert_array_equal(matrix[0], matrix[2])

    def test_empty_input(self):
        assert name_distance_matrix([]).shape == (0, 8)

    def test_identical_names_are_all_zero(self):
        matrix = name_distance_matrix([("focal length", "Focal Length")])
        np.testing.assert_array_equal(matrix, np.zeros((1, 8)))


class TestDegenerateBuckets:
    def test_single_character_pairs(self):
        pairs = [("a", "a"), ("a", "b"), ("x", ""), ("", "y"), ("ß", "s")]
        batched = name_distance_matrix(pairs)
        reference = np.array([name_distance_vector(a, b) for a, b in pairs])
        np.testing.assert_array_equal(batched, reference)

    def test_all_identical_pairs_batch(self):
        pairs = [("impedance", "impedance")] * 25
        matrix = name_distance_matrix(pairs)
        np.testing.assert_array_equal(matrix, np.zeros((25, 8)))

    def test_all_empty_pairs_batch(self):
        pairs = [("", "")] * 5
        reference = np.array([name_distance_vector("", "")] * 5)
        np.testing.assert_array_equal(name_distance_matrix(pairs), reference)


class TestBitParallelWordBoundary:
    """The 64-bit word guard: at and past it, results stay bit-exact.

    Short sides up to 64 characters ride the single-word bit-parallel
    Levenshtein/OSA kernels; anything longer falls back to the banded
    DP.  Both regimes -- and a mixed batch straddling the boundary --
    must equal the scalar reference exactly.
    """

    @staticmethod
    def _boundary_pairs():
        rng = random.Random(1234)
        alphabet = "abcdefghij "
        pairs = []
        for length in (1, 31, 32, 33, 63, 64, 65, 66, 80, 100):
            a = "".join(rng.choice(alphabet) for _ in range(length))
            chars = list(a)
            for _ in range(4):
                i = rng.randrange(len(chars))
                chars[i] = rng.choice(alphabet)
            pairs.append((a, "".join(chars)))
            pairs.append((a, a[: length // 2]))
        return pairs

    def test_lengths_around_word_size_match_reference(self):
        pairs = self._boundary_pairs()
        batched = name_distance_matrix(pairs)
        reference = np.array([name_distance_vector(a, b) for a, b in pairs])
        np.testing.assert_array_equal(batched, reference)

    def test_mixed_batch_with_long_outlier_uses_fallback_everywhere(self):
        # One >64 short side drops the whole batch onto the banded DP
        # path; the short pairs must still be exact there.
        long_name = "very long property name " * 5  # 120 chars
        pairs = [
            ("width", "height"),
            ("martha", "marhta"),
            (long_name, long_name[:70]),
            (long_name, "width"),
        ]
        batched = name_distance_matrix(pairs)
        reference = np.array([name_distance_vector(a, b) for a, b in pairs])
        np.testing.assert_array_equal(batched, reference)

    @pytest.mark.parametrize("seed", range(3))
    def test_random_long_pairs_match_reference_exactly(self, seed):
        rng = random.Random(9000 + seed)
        alphabet = "abcdefghijklmnopqrstuvwxyz 0123456789"
        pairs = []
        for _ in range(40):
            a = "".join(
                rng.choice(alphabet) for _ in range(rng.randrange(55, 90))
            )
            b = "".join(
                rng.choice(alphabet) for _ in range(rng.randrange(0, 90))
            )
            pairs.append((a, b))
        batched = name_distance_matrix(pairs)
        reference = np.array([name_distance_vector(a, b) for a, b in pairs])
        np.testing.assert_array_equal(batched, reference)
