"""Tests for the distance registry and the 8-feature name vector."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.text.similarity import (
    PAIR_DISTANCE_NAMES,
    name_distance_vector,
    normalized_distance,
)

short_text = st.text(alphabet="abcdef _-", max_size=15)


class TestRegistry:
    def test_eight_distances(self):
        assert len(PAIR_DISTANCE_NAMES) == 8

    def test_expected_names(self):
        assert set(PAIR_DISTANCE_NAMES) == {
            "osa",
            "levenshtein",
            "damerau_levenshtein",
            "lcs",
            "ngram",
            "ngram_cosine",
            "ngram_jaccard",
            "jaro_winkler",
        }

    def test_unknown_distance_raises(self):
        with pytest.raises(ConfigurationError, match="unknown distance"):
            normalized_distance("bogus", "a", "b")

    @pytest.mark.parametrize("name", PAIR_DISTANCE_NAMES)
    def test_each_distance_zero_on_identical(self, name):
        assert normalized_distance(name, "shutter speed", "shutter speed") == 0.0

    @pytest.mark.parametrize("name", PAIR_DISTANCE_NAMES)
    @given(a=short_text, b=short_text)
    def test_each_distance_in_unit_range(self, name, a, b):
        assert 0.0 <= normalized_distance(name, a, b) <= 1.0


class TestNameDistanceVector:
    def test_length(self):
        assert len(name_distance_vector("a", "b")) == 8

    def test_case_insensitive(self):
        assert name_distance_vector("Resolution", "resolution") == [0.0] * 8

    def test_order_matches_registry(self):
        vector = name_distance_vector("shutter speed", "exposure time")
        for name, value in zip(PAIR_DISTANCE_NAMES, vector):
            assert value == pytest.approx(
                normalized_distance(name, "shutter speed", "exposure time")
            )

    @given(a=short_text, b=short_text)
    def test_symmetric(self, a, b):
        left = name_distance_vector(a, b)
        right = name_distance_vector(b, a)
        assert left == pytest.approx(right)

    def test_dissimilar_names_have_large_distances(self):
        vector = name_distance_vector("megapixel", "wifi")
        assert all(value > 0.5 for value in vector)
