"""FollowDaemon: admit, retry, quarantine, drain, resume."""

import pytest

from repro.baselines import LshMatcher
from repro.errors import DataError, IngestInterrupted, TransientDataError
from repro.ingest import (
    REASON_DUPLICATE,
    REASON_POISON,
    REASON_RETRIES_EXHAUSTED,
    STATUS_ADMITTED,
    STATUS_FUSED,
    STATUS_RETRYING,
    IngestJournal,
    cold_rebuild,
)
from repro.testing import write_poison_csv

from tests.ingest.conftest import (
    PROPS_A,
    PROPS_B,
    make_daemon,
    source_csv_text,
    write_source,
)


def output_bytes(out_dir):
    return (
        (out_dir / "matches.csv").read_bytes(),
        (out_dir / "clusters.json").read_bytes(),
    )


class TestHappyPath:
    def test_two_sources_fuse_and_match_cold_rebuild(self, feed, tmp_path):
        a = write_source(feed, "a.csv", "srcA", PROPS_A)
        b = write_source(feed, "b.csv", "srcB", PROPS_B)
        out = tmp_path / "out"
        out.mkdir()
        daemon = make_daemon(feed, out)
        summary = daemon.run(max_batches=2)
        assert summary["fused"] == 2
        assert summary["quarantined"] == 0
        latest = daemon.journal.latest()
        assert {event.status for event in latest.values()} == {STATUS_FUSED}

        cold = tmp_path / "cold"
        cold.mkdir()
        cold_rebuild(LshMatcher(), [a, b], cold / "matches.csv", cold / "clusters.json")
        assert output_bytes(out) == output_bytes(cold)

    def test_idle_bound_exits_on_empty_feed(self, feed, tmp_path):
        daemon = make_daemon(feed, tmp_path)
        summary = daemon.run(max_idle_polls=3)
        assert summary["fused"] == 0
        assert summary["polls"] >= 3

    def test_outputs_inside_feed_are_not_reingested(self, feed, tmp_path):
        write_source(feed, "a.csv", "srcA", PROPS_A)
        daemon = make_daemon(feed, feed)  # outputs land in the feed itself
        summary = daemon.run(max_batches=1)
        assert summary["fused"] == 1
        # matches.csv now exists inside the followed directory; another
        # bounded run must not admit it (or the freshly fused source).
        assert daemon.run(max_idle_polls=3)["fused"] == 0


class TestRetryAndQuarantine:
    def test_transient_failure_retries_then_fuses(self, feed, tmp_path):
        write_source(feed, "a.csv", "srcA", PROPS_A)
        daemon = make_daemon(feed, tmp_path, max_retries=2)
        real_featurize = daemon.pipeline.featurize
        failures = []

        def flaky(path, alignment_path, fingerprint):
            if not failures:
                failures.append(1)
                raise TransientDataError("simulated read hiccup")
            return real_featurize(path, alignment_path, fingerprint)

        daemon.pipeline.featurize = flaky
        summary = daemon.run(max_batches=1)
        assert summary["fused"] == 1
        statuses = [event.status for event in daemon.journal.events()]
        assert STATUS_RETRYING in statuses  # the failure is history, on record
        assert statuses[-1] == STATUS_FUSED

    def test_exhausted_transient_budget_quarantines(self, feed, tmp_path):
        (feed / "empty.csv").write_text("")  # zero bytes: TransientDataError
        daemon = make_daemon(feed, tmp_path, max_retries=1)
        summary = daemon.run(max_idle_polls=3)
        assert summary == {
            "replayed": 0,
            "fused": 0,
            "quarantined": 1,
            "polls": summary["polls"],
        }
        [event] = daemon.journal.quarantined().values()
        assert event.reason == REASON_RETRIES_EXHAUSTED
        assert event.attempt == 2
        assert event.error_type == "TransientDataError"

    def test_quarantined_file_heals_under_new_fingerprint(self, feed, tmp_path):
        path = feed / "late.csv"
        path.write_text("")
        daemon = make_daemon(feed, tmp_path, max_retries=0)
        assert daemon.run(max_idle_polls=3)["quarantined"] == 1
        # The writer finally lands the real content: same file name, new
        # fingerprint, so it is a *new* source key -- the old quarantine
        # stands but no longer applies.
        path.write_text(source_csv_text("srcA", PROPS_A))
        assert daemon.run(max_batches=1)["fused"] == 1

    def test_poison_source_never_stalls_healthy_ones(self, feed, tmp_path):
        write_poison_csv(feed / "bad.csv")
        write_source(feed, "good.csv", "srcA", PROPS_A)
        daemon = make_daemon(feed, tmp_path, max_retries=1)
        summary = daemon.run(max_idle_polls=3)
        assert summary["fused"] == 1
        assert summary["quarantined"] == 1
        [event] = daemon.journal.quarantined().values()
        assert event.file == "bad.csv"
        assert event.reason == REASON_POISON
        assert event.attempt == 2  # poison burns the whole retry budget
        assert daemon.journal.latest()[
            ("good.csv", daemon.journal.fused_in_order()[0].fingerprint)
        ].status == STATUS_FUSED

    def test_duplicate_source_is_quarantined_without_retries(self, feed, tmp_path):
        write_source(feed, "a.csv", "srcA", PROPS_A)
        daemon = make_daemon(feed, tmp_path, max_retries=2)
        daemon.run(max_batches=1)
        write_source(feed, "again.csv", "srcA", PROPS_B)
        summary = daemon.run(max_idle_polls=3)
        assert summary["quarantined"] == 1
        [event] = daemon.journal.quarantined().values()
        assert event.file == "again.csv"
        assert event.reason == REASON_DUPLICATE
        assert event.attempt == 1  # no budget burned on an unhealable drop


class TestStop:
    def test_preset_stop_event_raises_before_any_work(self, feed, tmp_path):
        write_source(feed, "a.csv", "srcA", PROPS_A)
        daemon = make_daemon(feed, tmp_path)
        daemon.stop_event.set()
        with pytest.raises(IngestInterrupted) as excinfo:
            daemon.run()
        assert excinfo.value.signum is None
        assert daemon.journal.events() == []

    def test_stop_drains_the_in_flight_batch(self, feed, tmp_path):
        write_source(feed, "a.csv", "srcA", PROPS_A)
        write_source(feed, "b.csv", "srcB", PROPS_B)
        daemon = make_daemon(feed, tmp_path)
        real_record_fused = daemon.journal.record_fused

        def record_then_stop(*args, **kwargs):
            real_record_fused(*args, **kwargs)
            daemon.stop_event.set()

        daemon.journal.record_fused = record_then_stop
        with pytest.raises(IngestInterrupted):
            daemon.run()
        # The in-flight batch (a.csv) was finished and journaled; b.csv
        # was admitted but never attempted.
        statuses = {
            event.file: event.status for event in daemon.journal.latest().values()
        }
        assert statuses == {"a.csv": STATUS_FUSED, "b.csv": STATUS_ADMITTED}


class TestResume:
    def test_resume_replays_to_cold_rebuild_bytes(self, feed, tmp_path):
        a = write_source(feed, "a.csv", "srcA", PROPS_A)
        b = write_source(feed, "b.csv", "srcB", PROPS_B)
        out = tmp_path / "out"
        out.mkdir()
        first = make_daemon(feed, out)
        assert first.run(max_batches=1)["fused"] == 1
        # A brand-new process: fresh pipeline and daemon, same journal.
        second = make_daemon(feed, out)
        summary = second.run(resume=True, max_batches=1)
        assert summary["replayed"] == 1
        assert summary["fused"] == 1

        cold = tmp_path / "cold"
        cold.mkdir()
        cold_rebuild(LshMatcher(), [a, b], cold / "matches.csv", cold / "clusters.json")
        assert output_bytes(out) == output_bytes(cold)

    def test_resume_refuses_missing_fused_source(self, feed, tmp_path):
        path = write_source(feed, "a.csv", "srcA", PROPS_A)
        daemon = make_daemon(feed, tmp_path)
        daemon.run(max_batches=1)
        path.unlink()
        with pytest.raises(DataError, match="cannot resume"):
            make_daemon(feed, tmp_path).run(resume=True, max_idle_polls=1)

    def test_resume_refuses_changed_fused_source(self, feed, tmp_path):
        path = write_source(feed, "a.csv", "srcA", PROPS_A)
        daemon = make_daemon(feed, tmp_path)
        daemon.run(max_batches=1)
        path.write_text(source_csv_text("srcA", PROPS_B))
        with pytest.raises(DataError, match="changed since it was fused"):
            make_daemon(feed, tmp_path).run(resume=True, max_idle_polls=1)

    def test_resume_keeps_quarantined_sources_quarantined(self, feed, tmp_path):
        write_poison_csv(feed / "bad.csv")
        daemon = make_daemon(feed, tmp_path, max_retries=0)
        assert daemon.run(max_idle_polls=3)["quarantined"] == 1
        events_before = len(daemon.journal.events())
        summary = make_daemon(feed, tmp_path).run(resume=True, max_idle_polls=3)
        assert summary == {
            "replayed": 0,
            "fused": 0,
            "quarantined": 0,
            "polls": summary["polls"],
        }
        assert len(IngestJournal(tmp_path / "ingest.journal").events()) == events_before
