"""IngestPipeline: deterministic fusion, bootstrap modes, output formats."""

import json

import pytest

from repro.baselines import LshMatcher, NezhadiMatcher
from repro.core import LeapmeMatcher
from repro.core.classical import ClassicalPairClassifier
from repro.data.csvio import save_dataset_csv
from repro.errors import ConfigurationError, DataError
from repro.ingest import IngestPipeline, cold_rebuild, source_fingerprint
from repro.ingest.watcher import alignment_sidecar
from repro.ml import DecisionTreeClassifier

from tests.ingest.conftest import PROPS_A, PROPS_B, PROPS_C, write_source


def ingest_file(pipeline, path):
    batch = pipeline.featurize(
        path, alignment_sidecar(path), source_fingerprint(path)
    )
    return batch, pipeline.fuse(batch)


def fast_leapme(embeddings, blocking=None):
    """LEAPME with a deterministic classical classifier (test speed)."""
    from repro.blocking import CandidatePolicy

    return LeapmeMatcher(
        embeddings,
        classifier_factory=lambda: ClassicalPairClassifier(
            DecisionTreeClassifier(max_depth=4)
        ),
        candidate_policy=CandidatePolicy.from_label(blocking),
    )


class TestUnsupervisedStreaming:
    def test_two_batches_build_matches_and_clusters(self, feed, tmp_path):
        a = write_source(feed, "a.csv", "srcA", PROPS_A)
        b = write_source(feed, "b.csv", "srcB", PROPS_B)
        pipeline = IngestPipeline(
            LshMatcher(), tmp_path / "m.csv", tmp_path / "c.json"
        )
        pipeline.bootstrap(None)
        batch_a, counts_a = ingest_file(pipeline, a)
        assert counts_a == {"order": 1, "matches": 0, "joined": 0, "founded": 2}
        batch_b, counts_b = ingest_file(pipeline, b)
        assert counts_b["order"] == 2
        assert counts_b["joined"] == 2
        header, *rows = (tmp_path / "m.csv").read_text().splitlines()
        assert header == "left_source,left_property,right_source,right_property,score"
        assert len(rows) == counts_b["matches"]
        clusters = json.loads((tmp_path / "c.json").read_text())
        assert ["srcA|color", "srcB|colour"] in clusters["clusters"]
        assert clusters["sources"] == ["srcA", "srcB"]

    def test_streaming_equals_cold_rebuild_byte_for_byte(self, feed, tmp_path):
        files = [
            write_source(feed, "a.csv", "srcA", PROPS_A),
            write_source(feed, "b.csv", "srcB", PROPS_B),
            write_source(feed, "c.csv", "srcC", PROPS_C),
        ]
        pipeline = IngestPipeline(
            LshMatcher(), tmp_path / "m.csv", tmp_path / "c.json"
        )
        pipeline.bootstrap(None)
        for path in files:
            ingest_file(pipeline, path)
        cold_rebuild(LshMatcher(), files, tmp_path / "m2.csv", tmp_path / "c2.json")
        assert (tmp_path / "m.csv").read_bytes() == (tmp_path / "m2.csv").read_bytes()
        assert (tmp_path / "c.json").read_bytes() == (tmp_path / "c2.json").read_bytes()


class TestBootstrapModes:
    def test_supervised_without_bootstrap_is_rejected(self, tmp_path):
        pipeline = IngestPipeline(
            NezhadiMatcher(), tmp_path / "m.csv", tmp_path / "c.json"
        )
        with pytest.raises(ConfigurationError, match="supervised"):
            pipeline.bootstrap(None)

    def test_unfitted_supervised_matcher_cannot_featurize(self, feed, tmp_path):
        a = write_source(feed, "a.csv", "srcA", PROPS_A)
        b = write_source(feed, "b.csv", "srcB", PROPS_B)
        pipeline = IngestPipeline(
            NezhadiMatcher(), tmp_path / "m.csv", tmp_path / "c.json"
        )
        # Deliberately skip bootstrap: the first (pairless) batch is
        # fine, the first batch with pairs must fail loudly.
        batch, _ = ingest_file(pipeline, a)
        assert batch.pairs == ()
        with pytest.raises(ConfigurationError, match="not fitted"):
            pipeline.featurize(b, None, source_fingerprint(b))

    def test_leapme_streams_through_the_store_delta_path(
        self, tiny_headphones, tiny_embeddings, feed, tmp_path
    ):
        sources = tiny_headphones.sources()
        base = tiny_headphones.restrict_to_sources(sources[:-1])
        streamed = tiny_headphones.restrict_to_sources([sources[-1]])
        path = feed / "late.csv"
        save_dataset_csv(streamed, path, feed / "late.alignment.csv")
        matcher = fast_leapme(tiny_embeddings)
        pipeline = IngestPipeline(
            matcher, tmp_path / "m.csv", tmp_path / "c.json", seed=3
        )
        pipeline.bootstrap(base)
        assert matcher.is_fitted
        assert matcher.store is not None
        batch, counts = ingest_file(pipeline, path)
        # Only cross pairs (new source x base) are featurized/scored.
        base_properties = len(base.properties())
        assert len(batch.pairs) == base_properties * len(streamed.properties())
        assert counts["joined"] + counts["founded"] == len(streamed.properties())
        assert set(matcher.store.universe.dataset.sources()) == set(sources)

    def test_leapme_resume_replay_is_byte_identical(
        self, tiny_headphones, tiny_embeddings, feed, tmp_path
    ):
        sources = tiny_headphones.sources()
        base = tiny_headphones.restrict_to_sources(sources[:-1])
        streamed = tiny_headphones.restrict_to_sources([sources[-1]])
        path = feed / "late.csv"
        save_dataset_csv(streamed, path, feed / "late.alignment.csv")

        def run(out_dir):
            out_dir.mkdir()
            pipeline = IngestPipeline(
                fast_leapme(tiny_embeddings),
                out_dir / "m.csv",
                out_dir / "c.json",
                seed=3,
            )
            pipeline.bootstrap(base)
            ingest_file(pipeline, path)

        run(tmp_path / "one")
        run(tmp_path / "two")
        assert (tmp_path / "one/m.csv").read_bytes() == (
            tmp_path / "two/m.csv"
        ).read_bytes()
        assert (tmp_path / "one/c.json").read_bytes() == (
            tmp_path / "two/c.json"
        ).read_bytes()

    def test_blocked_leapme_streams_the_pruned_universe(
        self, tiny_headphones, tiny_embeddings, feed, tmp_path
    ):
        """Blocked streaming trains and scores the pruned candidate set.

        The streamed delta must enumerate the same candidates a cold
        blocked rebuild of the merged dataset would, and replaying the
        whole run must be byte-identical (the blocked analogue of the
        resume-replay contract above).
        """
        from repro.core import PairFeatureStore

        sources = tiny_headphones.sources()
        base = tiny_headphones.restrict_to_sources(sources[:-1])
        streamed = tiny_headphones.restrict_to_sources([sources[-1]])
        path = feed / "late.csv"
        save_dataset_csv(streamed, path, feed / "late.alignment.csv")

        def run(out_dir):
            out_dir.mkdir()
            matcher = fast_leapme(tiny_embeddings, blocking="minhash")
            pipeline = IngestPipeline(
                matcher, out_dir / "m.csv", out_dir / "c.json", seed=3
            )
            pipeline.bootstrap(base)
            ingest_file(pipeline, path)
            return matcher

        matcher = run(tmp_path / "one")
        universe = matcher.store.universe
        assert universe.is_blocked
        assert universe.policy.label == "minhash"
        cold = PairFeatureStore.build(
            tiny_headphones, tiny_embeddings, policy=universe.policy
        )
        assert [p.key for p in universe.pairs] == [
            p.key for p in cold.universe.pairs
        ]
        assert matcher.store.matrix.tobytes() == cold.matrix.tobytes()

        run(tmp_path / "two")
        assert (tmp_path / "one/m.csv").read_bytes() == (
            tmp_path / "two/m.csv"
        ).read_bytes()
        assert (tmp_path / "one/c.json").read_bytes() == (
            tmp_path / "two/c.json"
        ).read_bytes()


class TestFailureSurface:
    def test_duplicate_source_raises_before_any_state_change(
        self, feed, tmp_path
    ):
        a = write_source(feed, "a.csv", "srcA", PROPS_A)
        duplicate = write_source(feed, "dup.csv", "srcA", PROPS_B)
        pipeline = IngestPipeline(
            LshMatcher(), tmp_path / "m.csv", tmp_path / "c.json"
        )
        pipeline.bootstrap(None)
        ingest_file(pipeline, a)
        with pytest.raises(DataError, match="already present"):
            pipeline.featurize(duplicate, None, source_fingerprint(duplicate))
        assert pipeline.clusterer.integrated_sources == ["srcA"]

    def test_empty_source_file_raises(self, feed, tmp_path):
        empty = feed / "empty.csv"
        empty.write_text("")
        pipeline = IngestPipeline(
            LshMatcher(), tmp_path / "m.csv", tmp_path / "c.json"
        )
        pipeline.bootstrap(None)
        with pytest.raises(DataError):
            pipeline.featurize(empty, None, "f0")
