"""IngestJournal: crash-safe lifecycle records with latest-wins reads."""

import json

import pytest

from repro.errors import DataError, JournalError
from repro.evaluation.checkpoint import RunJournal, peek_journal_type
from repro.ingest import (
    REASON_POISON,
    STATUS_FUSED,
    STATUS_QUARANTINED,
    IngestJournal,
    SourceEvent,
)
from repro.ingest.journal import INGEST_JOURNAL_TYPE


@pytest.fixture()
def journal(tmp_path):
    return IngestJournal(tmp_path / "ingest.journal")


class TestLifecycleRecords:
    def test_header_written_once(self, journal):
        journal.record_discovered("a.csv", "f1")
        journal.record_admitted("a.csv", "f1")
        lines = journal.path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header == {"type": INGEST_JOURNAL_TYPE, "version": 1}
        assert len(lines) == 3

    def test_latest_record_wins(self, journal):
        journal.record_discovered("a.csv", "f1")
        journal.record_admitted("a.csv", "f1")
        journal.record_featurized("a.csv", "f1", properties=3, pairs=6)
        journal.record_fused(
            "a.csv", "f1", order=1, properties=3, pairs=6, matches=2
        )
        latest = journal.latest()
        assert latest[("a.csv", "f1")].status == STATUS_FUSED
        assert latest[("a.csv", "f1")].matches == 2

    def test_same_file_new_fingerprint_is_a_new_source(self, journal):
        journal.record_fused("a.csv", "f1", order=1, properties=1, pairs=0, matches=0)
        journal.record_discovered("a.csv", "f2")
        assert set(journal.latest()) == {("a.csv", "f1"), ("a.csv", "f2")}

    def test_fused_in_order_sorts_by_fusion_order(self, journal):
        journal.record_fused("b.csv", "f2", order=2, properties=1, pairs=1, matches=0)
        journal.record_fused("a.csv", "f1", order=1, properties=1, pairs=0, matches=0)
        assert [event.file for event in journal.fused_in_order()] == [
            "a.csv", "b.csv",
        ]

    def test_quarantine_carries_structured_reason(self, journal):
        journal.record_quarantined(
            "bad.csv", "f9", REASON_POISON, DataError("missing columns"), 3
        )
        event = journal.quarantined()[("bad.csv", "f9")]
        assert event.status == STATUS_QUARANTINED
        assert event.reason == REASON_POISON
        assert event.error_type == "DataError"
        assert event.attempt == 3


class TestCrashSafety:
    def test_torn_final_line_is_dropped(self, journal):
        journal.record_admitted("a.csv", "f1")
        journal.record_admitted("b.csv", "f2")
        with journal.path.open("a") as handle:
            handle.write('{"type": "source", "file": "c.csv", "finge')
        assert [event.file for event in journal.events()] == ["a.csv", "b.csv"]

    def test_torn_middle_line_raises(self, journal):
        journal.record_admitted("a.csv", "f1")
        with journal.path.open("a") as handle:
            handle.write('{"torn\n')
        journal.record_admitted("b.csv", "f2")
        with pytest.raises(JournalError, match="corrupt journal line"):
            journal.events()

    def test_missing_journal_reads_empty(self, journal):
        assert journal.events() == []
        assert journal.latest() == {}
        assert journal.fused_in_order() == []

    def test_run_journal_is_rejected_with_flavour_message(self, tmp_path):
        run = RunJournal(tmp_path / "run.jsonl")
        run.record_skip("cell", 0, "no positives")
        with pytest.raises(JournalError, match="not an ingestion journal"):
            IngestJournal(run.path).events()

    def test_malformed_record_raises(self, journal):
        journal._ensure_header()
        with journal.path.open("a") as handle:
            handle.write('{"type": "source", "file": "a.csv"}\n')
        with pytest.raises(JournalError, match="malformed ingestion-journal"):
            journal.events()


class TestPeekJournalType:
    def test_distinguishes_flavours(self, tmp_path, journal):
        journal.record_admitted("a.csv", "f1")
        run = RunJournal(tmp_path / "run.jsonl")
        run.record_skip("cell", 0, "nothing")
        assert peek_journal_type(journal.path) == INGEST_JOURNAL_TYPE
        assert peek_journal_type(run.path) == "journal"
        assert peek_journal_type(tmp_path / "absent") is None

    def test_garbage_header_is_none(self, tmp_path):
        path = tmp_path / "garbage"
        path.write_text("not json\n")
        assert peek_journal_type(path) is None


class TestDescribe:
    def test_summarises_status_failure_and_reasons(self, journal):
        journal.record_fused("a.csv", "f1", order=1, properties=2, pairs=0, matches=0)
        journal.record_retry("b.csv", "f2", 1, OSError("disk hiccup"))
        journal.record_quarantined(
            "c.csv", "f3", REASON_POISON, DataError("bad header"), 2
        )
        text = journal.describe()
        assert "a.csv (f1): status=fused, order=1" in text
        assert "1 retrying, 1 fused, 1 quarantined" in text  # lifecycle order
        assert "last failure: c.csv: DataError: bad header" in text
        assert "quarantined: c.csv: poison-source (DataError: bad header)" in text

    def test_recovered_failures_are_history(self, journal):
        journal.record_retry("a.csv", "f1", 1, OSError("flaky"))
        journal.record_fused("a.csv", "f1", order=1, properties=1, pairs=0, matches=0)
        assert "last failure" not in journal.describe()

    def test_empty_journal(self, journal):
        assert "(empty)" in journal.describe()


class TestSourceEventRoundtrip:
    def test_roundtrip(self):
        event = SourceEvent(
            "a.csv", "f1", STATUS_FUSED, order=3, properties=5, pairs=9, matches=2
        )
        assert SourceEvent.from_record(event.to_record()) == event

    def test_omits_absent_fields(self):
        record = SourceEvent("a.csv", "f1", "admitted").to_record()
        assert set(record) == {"type", "file", "fingerprint", "status"}
