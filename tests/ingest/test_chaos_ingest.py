"""Chaos tests: real process deaths against the follow-mode daemon.

A forked daemon is hard-killed (``os._exit``, no unwinding) immediately
after each journaled lifecycle stage, then a fresh process resumes from
the journal; the acceptance invariant is that the resumed outputs are
byte-identical to a cold rebuild over the same sources.  A second group
covers the artifacts crashed *producers* leave behind (torn CSVs) and
SIGTERM against the real ``repro serve`` CLI.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.baselines import LshMatcher
from repro.ingest import (
    REASON_POISON,
    STATUS_FUSED,
    IngestJournal,
    cold_rebuild,
)
from repro.testing import IngestFaultPlan, write_torn_csv
from repro.testing.faults import WORKER_EXIT_CODE

from tests.ingest.conftest import PROPS_A, PROPS_B, make_daemon, write_source

REPO_ROOT = Path(__file__).resolve().parents[2]


def run_forked(fn) -> int:
    """Run ``fn`` in a forked child; returns the child's exit code."""
    pid = os.fork()
    if pid == 0:  # pragma: no cover - child process
        try:
            fn()
        except BaseException:
            os._exit(70)
        os._exit(0)
    _, status = os.waitpid(pid, 0)
    return os.waitstatus_to_exitcode(status)


def output_bytes(out_dir):
    return (
        (out_dir / "matches.csv").read_bytes(),
        (out_dir / "clusters.json").read_bytes(),
    )


class TestStageKills:
    @pytest.mark.parametrize(
        ("stage", "expected_replayed"),
        [("admitted", 0), ("featurized", 0), ("fused", 1)],
    )
    def test_sigkill_after_stage_then_resume_is_byte_identical(
        self, feed, tmp_path, stage, expected_replayed
    ):
        a = write_source(feed, "a.csv", "srcA", PROPS_A)
        b = write_source(feed, "b.csv", "srcB", PROPS_B)
        out = tmp_path / "out"
        out.mkdir()
        plan = IngestFaultPlan(
            exit_after={stage: 1}, state_dir=str(tmp_path / "faults")
        )

        def doomed():
            make_daemon(feed, out, fault_plan=plan).run(max_batches=2)

        assert run_forked(doomed) == WORKER_EXIT_CODE

        fresh = make_daemon(feed, out)
        summary = fresh.run(resume=True, max_idle_polls=5)
        assert summary["replayed"] == expected_replayed
        assert summary["replayed"] + summary["fused"] == 2
        latest = IngestJournal(out / "ingest.journal").latest()
        assert sorted(
            event.file for event in latest.values()
            if event.status == STATUS_FUSED
        ) == ["a.csv", "b.csv"]

        cold = tmp_path / "cold"
        cold.mkdir()
        cold_rebuild(LshMatcher(), [a, b], cold / "matches.csv", cold / "clusters.json")
        assert output_bytes(out) == output_bytes(cold)

    def test_repeated_kills_at_every_stage_in_one_run(self, feed, tmp_path):
        """The daemon survives a kill after *each* stage, one per life."""
        a = write_source(feed, "a.csv", "srcA", PROPS_A)
        b = write_source(feed, "b.csv", "srcB", PROPS_B)
        out = tmp_path / "out"
        out.mkdir()
        plan = IngestFaultPlan(
            exit_after={"admitted": 1, "featurized": 1, "fused": 1},
            state_dir=str(tmp_path / "faults"),
        )

        def doomed():
            # Bounded by idleness, not batch count: after a resume the
            # number of *newly* fused batches is unknown, and a forked
            # child has no test-timeout alarm to save it from spinning.
            make_daemon(feed, out, fault_plan=plan).run(
                resume=(out / "ingest.journal").exists(), max_idle_polls=5
            )

        deaths = 0
        while deaths < 10:
            code = run_forked(doomed)
            if code == 0:
                break
            assert code == WORKER_EXIT_CODE
            deaths += 1
        assert 1 <= deaths <= 3  # one death per budgeted stage, then done

        cold = tmp_path / "cold"
        cold.mkdir()
        cold_rebuild(LshMatcher(), [a, b], cold / "matches.csv", cold / "clusters.json")
        assert output_bytes(out) == output_bytes(cold)


class TestCrashedProducers:
    def test_torn_header_is_quarantined_healthy_source_fuses(self, feed, tmp_path):
        # A producer that died inside its header row: the stable torn
        # file admits, the loader raises a permanent DataError, and the
        # source quarantines without stalling the healthy one.
        write_torn_csv(
            feed / "torn.csv",
            [["source", "property", "entity", "value"],
             ["srcT", "weight", "e0", "10 kg box"]],
            keep=0.1,
        )
        write_source(feed, "good.csv", "srcA", PROPS_A)
        daemon = make_daemon(feed, tmp_path, max_retries=0)
        summary = daemon.run(max_idle_polls=3)
        assert summary["fused"] == 1
        assert summary["quarantined"] == 1
        [event] = daemon.journal.quarantined().values()
        assert event.file == "torn.csv"
        assert event.reason == REASON_POISON

    def test_torn_data_row_fuses_surviving_rows(self, feed, tmp_path):
        # Died mid data row: the torn row is quarantined by the loader
        # (Dataset.validation), the surviving rows fuse normally.
        write_torn_csv(
            feed / "torn.csv",
            [["source", "property", "entity", "value"],
             ["srcT", "weight", "e0", "10 kg box"],
             ["srcT", "weight", "e1", "20 kg box"]],
            keep=0.8,
        )
        daemon = make_daemon(feed, tmp_path)
        assert daemon.run(max_batches=1)["fused"] == 1


class TestServeSignals:
    def test_sigterm_exits_128_plus_signum_with_resume_hint(self, feed, tmp_path):
        write_source(feed, "a.csv", "srcA", PROPS_A)
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--follow", str(feed),
                "--system", "lsh",
                "--threshold", "0.3",
                "--poll-interval", "0.01",
                "--out", str(tmp_path / "matches.csv"),
                "--clusters", str(tmp_path / "clusters.json"),
                "--journal", str(tmp_path / "ingest.journal"),
            ],
            env=env,
            cwd=REPO_ROOT,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            deadline = time.monotonic() + 60
            matches = tmp_path / "matches.csv"
            while not matches.exists():
                assert proc.poll() is None, proc.communicate()[1]
                assert time.monotonic() < deadline, "daemon never fused a.csv"
                time.sleep(0.05)
            proc.send_signal(signal.SIGTERM)
            _, stderr = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup on failure
                proc.kill()
                proc.communicate()
        assert proc.returncode == 128 + signal.SIGTERM
        assert "interrupted" in stderr
        assert f"--journal {tmp_path / 'ingest.journal'} --resume" in stderr
        # The fused batch survived the signal: a resumed serve replays it.
        journal = IngestJournal(tmp_path / "ingest.journal")
        assert [event.file for event in journal.fused_in_order()] == ["a.csv"]
