"""Shared helpers for the ingestion suite: feed directories and writers."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.baselines import LshMatcher
from repro.evaluation.runner import RetryPolicy
from repro.ingest import FollowDaemon, IngestJournal, IngestPipeline


def source_csv_text(source: str, props: dict[str, list[str]]) -> str:
    """Instances-CSV text for one source: ``{property: [values...]}``."""
    lines = ["source,property,entity,value"]
    for prop, values in props.items():
        for index, value in enumerate(values):
            lines.append(f"{source},{prop},e{index},{value}")
    return "\n".join(lines) + "\n"


def write_source(
    directory: Path, name: str, source: str, props: dict[str, list[str]]
) -> Path:
    """Drop a complete source CSV into a feed directory."""
    path = directory / name
    path.write_text(source_csv_text(source, props), encoding="utf-8")
    return path


#: Two disjoint sources describing the same two reference properties
#: with overlapping value sets, so even the unsupervised LSH matcher
#: links them confidently.
PROPS_A = {"weight": ["10 kg box", "20 kg box"], "color": ["deep red", "sky blue"]}
PROPS_B = {"wt": ["10 kg box", "20 kg box"], "colour": ["deep red", "sky blue"]}
PROPS_C = {"mass": ["10 kg box", "20 kg box"], "tint": ["deep red", "sky blue"]}


@pytest.fixture()
def feed(tmp_path) -> Path:
    """An empty followed directory."""
    directory = tmp_path / "feed"
    directory.mkdir()
    return directory


def make_daemon(
    feed: Path,
    out_dir: Path,
    *,
    matcher=None,
    max_retries: int = 1,
    settle_polls: int = 2,
    clock=None,
    fault_plan=None,
    stop_event=None,
) -> FollowDaemon:
    """A fast-polling LSH daemon over ``feed`` writing into ``out_dir``."""
    pipeline = IngestPipeline(
        matcher if matcher is not None else LshMatcher(),
        out_dir / "matches.csv",
        out_dir / "clusters.json",
    )
    pipeline.bootstrap(None)
    kwargs = {} if clock is None else {"clock": clock}
    return FollowDaemon(
        feed,
        pipeline,
        IngestJournal(out_dir / "ingest.journal"),
        poll_interval=0.005,
        settle_polls=settle_polls,
        retry_policy=RetryPolicy(max_retries=max_retries),
        fault_plan=fault_plan,
        stop_event=stop_event,
        **kwargs,
    )
