"""SourceWatcher: a partially-written CSV is never admitted."""

from repro.ingest import SourceWatcher, source_fingerprint
from repro.testing import SlowSourceWriter

from tests.ingest.conftest import PROPS_A, source_csv_text, write_source


def poll_until_admitted(watcher, limit=20):
    """Poll until something is admitted; returns (admitted, polls used)."""
    for polls in range(1, limit + 1):
        result = watcher.poll()
        if result.admitted:
            return result.admitted, polls
    raise AssertionError(f"nothing admitted within {limit} polls")


class TestStabilityGate:
    def test_stable_file_admitted_after_settle_polls(self, feed):
        write_source(feed, "a.csv", "srcA", PROPS_A)
        watcher = SourceWatcher(feed, settle_polls=2)
        first = watcher.poll()
        assert [name for name, _ in first.discovered] == ["a.csv"]
        assert first.admitted == ()
        assert watcher.poll().admitted == ()
        admitted, _ = poll_until_admitted(watcher)
        assert [name for name, _ in admitted] == ["a.csv"]
        # and only once for the same bytes
        assert watcher.poll().admitted == ()

    def test_growing_file_is_never_admitted(self, feed):
        writer = SlowSourceWriter(
            feed / "slow.csv", source_csv_text("srcS", PROPS_A), chunks=5
        )
        watcher = SourceWatcher(feed, settle_polls=2)
        while writer.step():
            # One poll between every chunk: the fingerprint changes each
            # time, so the settle counter keeps resetting.
            assert watcher.poll().admitted == ()
        admitted, _ = poll_until_admitted(watcher)
        assert [name for name, _ in admitted] == ["slow.csv"]
        assert admitted[0][1] == source_fingerprint(feed / "slow.csv")

    def test_writer_stalling_mid_write_is_not_admitted_early(self, feed):
        writer = SlowSourceWriter(
            feed / "stall.csv", source_csv_text("srcS", PROPS_A), chunks=3
        )
        writer.step()
        watcher = SourceWatcher(feed, settle_polls=2)
        # The writer stalls: the half-file IS stable, so it eventually
        # admits -- but under a *different* fingerprint than the full
        # file, so the half-read can never be mistaken for the whole.
        half_admitted, _ = poll_until_admitted(watcher)
        half_fingerprint = half_admitted[0][1]
        writer.finish()
        full_admitted, _ = poll_until_admitted(watcher)
        assert full_admitted[0][1] == source_fingerprint(feed / "stall.csv")
        assert full_admitted[0][1] != half_fingerprint

    def test_rewritten_file_is_rediscovered_and_readmitted(self, feed):
        write_source(feed, "a.csv", "srcA", PROPS_A)
        watcher = SourceWatcher(feed, settle_polls=2)
        first, _ = poll_until_admitted(watcher)
        write_source(feed, "a.csv", "srcA2", PROPS_A)
        result = watcher.poll()
        assert [name for name, _ in result.discovered] == ["a.csv"]
        second, _ = poll_until_admitted(watcher)
        assert second[0][1] != first[0][1]


class TestSidecarsAndFiltering:
    def test_alignment_sidecar_is_not_a_candidate(self, feed):
        (feed / "a.alignment.csv").write_text("source,property,reference\n")
        watcher = SourceWatcher(feed, settle_polls=1)
        assert watcher.poll() == watcher.poll()  # both empty
        assert watcher.poll().discovered == ()

    def test_sidecar_change_resets_stability(self, feed):
        write_source(feed, "a.csv", "srcA", PROPS_A)
        (feed / "a.alignment.csv").write_text("source,property,reference\n")
        watcher = SourceWatcher(feed, settle_polls=3)
        watcher.poll()
        watcher.poll()
        # Sidecar grows: the pair (instances, alignment) is not settled.
        (feed / "a.alignment.csv").write_text(
            "source,property,reference\nsrcA,weight,w\n"
        )
        assert watcher.poll().admitted == ()
        admitted, polls = poll_until_admitted(watcher)
        assert polls >= 3

    def test_ignored_names_are_invisible(self, feed):
        write_source(feed, "matches.csv", "srcA", PROPS_A)
        watcher = SourceWatcher(
            feed, settle_polls=1, ignore=frozenset({"matches.csv"})
        )
        assert watcher.poll().discovered == ()

    def test_non_csv_files_are_invisible(self, feed):
        (feed / "ingest.journal").write_text("{}\n")
        watcher = SourceWatcher(feed, settle_polls=1)
        assert watcher.poll().discovered == ()

    def test_vanished_file_is_forgotten(self, feed):
        path = write_source(feed, "a.csv", "srcA", PROPS_A)
        watcher = SourceWatcher(feed, settle_polls=2)
        watcher.poll()
        path.unlink()
        assert watcher.poll().admitted == ()
        # Reappearing starts a fresh settle cycle (discovered again).
        write_source(feed, "a.csv", "srcA", PROPS_A)
        assert [name for name, _ in watcher.poll().discovered] == ["a.csv"]

    def test_missing_directory_polls_empty(self, tmp_path):
        watcher = SourceWatcher(tmp_path / "nowhere")
        assert watcher.poll().discovered == ()
