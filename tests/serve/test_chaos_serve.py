"""Chaos tests: real process deaths against the tenant registry.

A forked registry is hard-killed (``os._exit``, no unwinding) at each
journaled lifecycle stage -- including the ``reload`` instant, after a
copy-on-swap successor state is built but before its ``source-added``
record lands -- then a fresh process warm-restarts from the journal.
The acceptance invariant is that the restarted ``/match`` body is
byte-identical to a cold rebuild over what the journal says survived.
"""

import os

import pytest

from repro.serve import RegistryJournal, TenantRegistry
from repro.testing import ServeFaultPlan
from repro.testing.faults import WORKER_EXIT_CODE

from tests.serve.conftest import (
    make_spec,
    match_body,
    write_extra_source,
)


def run_forked(fn) -> int:
    """Run ``fn`` in a forked child; returns the child's exit code."""
    pid = os.fork()
    if pid == 0:  # pragma: no cover - child process
        try:
            fn()
        except BaseException:
            os._exit(70)
        os._exit(0)
    _, status = os.waitpid(pid, 0)
    return os.waitstatus_to_exitcode(status)


def cold_body(spec, extra=None) -> bytes:
    """The ``/match`` bytes of an unjournaled from-scratch rebuild."""
    registry = TenantRegistry()
    registry.load()
    registry.create(spec)
    if extra is not None:
        registry.add_source(spec.tenant, extra)
    return match_body(registry, spec.tenant)


class TestStageKills:
    @pytest.mark.parametrize(
        ("stage", "source_survives"),
        [
            ("created", False),
            ("bootstrapped", False),
            ("reload", False),
            ("source-added", True),
        ],
    )
    def test_sigkill_at_stage_then_warm_restart_is_byte_identical(
        self, tmp_path, stage, source_survives
    ):
        spec = make_spec(tmp_path)
        extra = write_extra_source(tmp_path)
        journal_path = tmp_path / "registry.journal"
        plan = ServeFaultPlan(
            exit_after={stage: 1}, state_dir=str(tmp_path / "faults")
        )

        def doomed():
            registry = TenantRegistry(
                RegistryJournal(journal_path), fault_plan=plan
            )
            registry.load()
            registry.create(spec)
            registry.add_source(spec.tenant, extra)

        assert run_forked(doomed) == WORKER_EXIT_CODE

        restarted = TenantRegistry(RegistryJournal(journal_path))
        counts = restarted.load()
        assert counts["tenants"] == 1
        assert counts["sources"] == (1 if source_survives else 0)
        warm = match_body(restarted, spec.tenant)
        assert warm == cold_body(spec, extra if source_survives else None)

    def test_repeated_kills_at_every_stage_in_one_run(self, tmp_path):
        """One life per kill stage, then the lifecycle completes clean."""
        spec = make_spec(tmp_path)
        extra = write_extra_source(tmp_path)
        journal_path = tmp_path / "registry.journal"
        plan = ServeFaultPlan(
            exit_after={
                "created": 1,
                "bootstrapped": 1,
                "reload": 1,
                "source-added": 1,
            },
            state_dir=str(tmp_path / "faults"),
        )

        def doomed():
            registry = TenantRegistry(
                RegistryJournal(journal_path), fault_plan=plan
            )
            registry.load()
            if registry.get(spec.tenant) is None:
                registry.create(spec)
            tenant = registry.get(spec.tenant)
            if tenant.state is not None and not tenant.state.sources:
                registry.add_source(spec.tenant, extra)

        deaths = 0
        while deaths < 10:
            code = run_forked(doomed)
            if code == 0:
                break
            assert code == WORKER_EXIT_CODE
            deaths += 1
        # "bootstrapped" only fires on a life that runs create() itself;
        # after the "created" kill the restart replays the bootstrap
        # without journaling, so three deaths is the exact count.
        assert 1 <= deaths <= 4

        restarted = TenantRegistry(RegistryJournal(journal_path))
        restarted.load()
        assert match_body(restarted, spec.tenant) == cold_body(spec, extra)


class TestBlockedTenantKills:
    @pytest.mark.parametrize(
        ("stage", "source_survives"),
        [("reload", False), ("source-added", True)],
    )
    def test_blocked_tenant_warm_restart_is_byte_identical(
        self, tmp_path, stage, source_survives
    ):
        """The journaled blocking label survives a hard kill.

        A blocked LEAPME tenant is killed around the copy-on-swap reload;
        the warm restart must rebuild the same pruned universe (the
        policy label rides in the ``created`` record) and produce the
        exact ``/match`` bytes of a cold blocked rebuild.
        """
        spec = make_spec(tmp_path, system="leapme", blocking="minhash")
        extra = write_extra_source(tmp_path)
        journal_path = tmp_path / "registry.journal"
        plan = ServeFaultPlan(
            exit_after={stage: 1}, state_dir=str(tmp_path / "faults")
        )

        def doomed():
            registry = TenantRegistry(
                RegistryJournal(journal_path), fault_plan=plan
            )
            registry.load()
            registry.create(spec)
            registry.add_source(spec.tenant, extra)

        assert run_forked(doomed) == WORKER_EXIT_CODE

        restarted = TenantRegistry(RegistryJournal(journal_path))
        counts = restarted.load()
        assert counts["tenants"] == 1
        assert counts["sources"] == (1 if source_survives else 0)
        warm = match_body(restarted, spec.tenant)
        assert warm == cold_body(spec, extra if source_survives else None)
        assert restarted.match_payload(spec.tenant)["blocking"] == "minhash"


class TestTornJournalAppend:
    def test_kill_mid_append_leaves_a_recoverable_journal(self, tmp_path):
        spec = make_spec(tmp_path)
        extra = write_extra_source(tmp_path)
        journal = RegistryJournal(tmp_path / "registry.journal")
        registry = TenantRegistry(journal)
        registry.load()
        registry.create(spec)
        registry.add_source(spec.tenant, extra)
        before = match_body(registry, spec.tenant)

        # A kill partway through the *next* append leaves a torn final
        # line; the replay must drop it and land on the prior state.
        with journal.path.open("ab") as handle:
            handle.write(b'{"type": "tenant", "tenant": "t1", "stat')

        restarted = TenantRegistry(journal)
        counts = restarted.load()
        assert counts == {"tenants": 1, "sources": 1, "quarantined": 0}
        assert match_body(restarted, spec.tenant) == before
