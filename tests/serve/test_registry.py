"""Tenant registry: bootstrap, copy-on-swap reload, breaker, warm restart."""

import json

import pytest

from repro.errors import (
    ConfigurationError,
    DataError,
    ReproError,
    TenantQuarantinedError,
)
from repro.serve import TenantRegistry, TenantSpec
from repro.testing import write_poison_csv
from repro.serve.journal import REASON_CIRCUIT_OPEN, REASON_POISON_TENANT

from tests.serve.conftest import (
    make_registry,
    make_spec,
    match_body,
    write_extra_source,
)


class TestSpec:
    def test_needs_exactly_one_input(self):
        with pytest.raises(ConfigurationError):
            TenantSpec(tenant="t", dataset="d", instances="x.csv")
        with pytest.raises(ConfigurationError):
            TenantSpec(tenant="t")

    def test_tenant_id_must_be_slash_free(self):
        with pytest.raises(ConfigurationError):
            TenantSpec(tenant="a/b", dataset="d")

    def test_record_round_trip(self, tmp_path):
        spec = make_spec(tmp_path, system="leapme")
        assert TenantSpec.from_record("t1", spec.to_record()) == spec

    def test_fingerprint_tracks_content(self, tmp_path):
        spec = make_spec(tmp_path)
        before = spec.input_fingerprint()
        with open(spec.instances, "a", encoding="utf-8") as handle:
            handle.write("srcA,weight,e9,99 kg box\n")
        assert spec.input_fingerprint() != before


class TestBootstrap:
    def test_create_warms_and_matches(self, tmp_path):
        registry = make_registry(tmp_path)
        tenant = registry.create(make_spec(tmp_path))
        assert tenant.state is not None
        payload = registry.match_payload("t1")
        assert payload["pairs"] > 0
        assert payload["matches"]
        assert payload == registry.match_payload("t1")

    def test_duplicate_tenant_rejected(self, tmp_path):
        registry = make_registry(tmp_path)
        registry.create(make_spec(tmp_path))
        with pytest.raises(DataError):
            registry.create(make_spec(tmp_path))

    def test_unreadable_inputs_rejected_without_registering(self, tmp_path):
        registry = make_registry(tmp_path)
        spec = TenantSpec(tenant="gone", instances=str(tmp_path / "no.csv"))
        with pytest.raises(DataError, match="cannot read bootstrap inputs"):
            registry.create(spec)
        assert registry.get("gone") is None

    def test_poison_spec_is_quarantined_not_fatal(self, tmp_path):
        registry = make_registry(tmp_path)
        broken = tmp_path / "broken.csv"
        write_poison_csv(broken)
        spec = TenantSpec(tenant="bad", instances=str(broken))
        with pytest.raises(ReproError):
            registry.create(spec)
        tenant = registry.get("bad")
        assert tenant.quarantined
        assert tenant.quarantine.reason == REASON_POISON_TENANT
        assert set(registry.journal.quarantined()) == {"bad"}
        # The registry itself keeps accepting healthy tenants.
        registry.create(make_spec(tmp_path, tenant="good"))
        assert registry.match_payload("good")["matches"]

    def test_supervised_without_positives_is_poison(self, tmp_path):
        registry = make_registry(tmp_path)
        spec = make_spec(
            tmp_path, tenant="nolabels", system="leapme", with_alignment=False
        )
        with pytest.raises(ConfigurationError):
            registry.create(spec)
        assert registry.get("nolabels").quarantined


class TestCopyOnSwapReload:
    def test_add_source_swaps_a_new_snapshot(self, tmp_path):
        registry = make_registry(tmp_path)
        registry.create(make_spec(tmp_path))
        old_state = registry.get("t1").state
        extra = write_extra_source(tmp_path)
        delta = registry.add_source("t1", extra)
        new_state = registry.get("t1").state
        assert new_state is not old_state
        assert old_state.sources == ()
        assert new_state.sources[-1][0] == "extra.csv"
        assert delta["order"] == 1
        assert delta["properties"] == 2
        assert delta["pairs"] > 0
        assert "srcC" in registry.match_payload("t1")["sources"] or (
            registry.match_payload("t1")["sources"] == ["extra.csv"]
        )

    def test_overlapping_source_rejected(self, tmp_path):
        registry = make_registry(tmp_path)
        registry.create(make_spec(tmp_path))
        duplicate = tmp_path / "dupe.csv"
        duplicate.write_text(
            "source,property,entity,value\nsrcA,weight,e0,10 kg box\n"
        )
        with pytest.raises(DataError):
            registry.add_source("t1", duplicate)
        assert registry.get("t1").state.sources == ()

    def test_leapme_delta_reload_matches_cold_rebuild(self, tmp_path):
        registry = make_registry(tmp_path)
        registry.create(make_spec(tmp_path, system="leapme"))
        extra = write_extra_source(tmp_path)
        registry.add_source("t1", extra)
        warm = match_body(registry, "t1")

        cold_dir = tmp_path / "cold"
        cold_dir.mkdir()
        cold = TenantRegistry()
        cold.load()
        cold.create(make_spec(tmp_path, system="leapme"))
        cold.add_source("t1", extra)
        assert match_body(cold, "t1") == warm


class TestBlockedTenants:
    def test_spec_blocking_round_trip(self, tmp_path):
        spec = make_spec(tmp_path, system="leapme", blocking="minhash:seed=7")
        assert TenantSpec.from_record("t1", spec.to_record()) == spec
        assert spec.to_record()["blocking"] == "minhash:seed=7"
        assert spec.policy().label == "minhash:seed=7"

    def test_unblocked_spec_record_has_no_blocking_key(self, tmp_path):
        assert "blocking" not in make_spec(tmp_path).to_record()

    def test_invalid_blocking_label_fails_at_spec_time(self, tmp_path):
        with pytest.raises(ConfigurationError, match="blocking"):
            make_spec(tmp_path, blocking="sorted-neighborhood")

    def test_blocked_tenant_reports_blocking_everywhere(self, tmp_path):
        registry = make_registry(tmp_path)
        registry.create(make_spec(tmp_path, system="leapme", blocking="minhash"))
        payload = registry.match_payload("t1")
        assert payload["blocking"] == "minhash"
        assert payload["matches"]
        entry = registry.tenant_summaries()["t1"]
        assert entry["blocking"] == "minhash"
        assert entry["candidate_pairs"] == payload["pairs"]
        assert entry["candidate_pairs"] < entry["total_cross_pairs"]
        assert 0.0 < entry["reduction_ratio"] <= 1.0

    def test_null_tenant_payload_keeps_pre_blocking_shape(self, tmp_path):
        registry = make_registry(tmp_path)
        registry.create(make_spec(tmp_path, system="leapme"))
        payload = registry.match_payload("t1")
        assert "blocking" not in payload
        entry = registry.tenant_summaries()["t1"]
        assert entry["blocking"] == "null"
        assert "total_cross_pairs" not in entry

    def test_blocked_delta_reload_matches_cold_blocked_rebuild(self, tmp_path):
        registry = make_registry(tmp_path)
        registry.create(make_spec(tmp_path, system="leapme", blocking="minhash"))
        extra = write_extra_source(tmp_path)
        registry.add_source("t1", extra)
        warm = match_body(registry, "t1")

        cold = TenantRegistry()
        cold.load()
        cold.create(make_spec(tmp_path, system="leapme", blocking="minhash"))
        cold.add_source("t1", extra)
        assert match_body(cold, "t1") == warm

    def test_blocked_warm_restart_is_byte_identical(self, tmp_path):
        registry = make_registry(tmp_path)
        registry.create(make_spec(tmp_path, system="leapme", blocking="minhash"))
        extra = write_extra_source(tmp_path)
        registry.add_source("t1", extra)
        before = match_body(registry, "t1")
        restarted = TenantRegistry(registry.journal)
        counts = restarted.load()
        assert counts == {"tenants": 1, "sources": 1, "quarantined": 0}
        assert match_body(restarted, "t1") == before
        assert restarted.match_payload("t1")["blocking"] == "minhash"


class TestBreaker:
    def test_consecutive_failures_quarantine_the_tenant(self, tmp_path):
        registry = make_registry(tmp_path, breaker_threshold=3)
        registry.create(make_spec(tmp_path))
        error = RuntimeError("scorer exploded")
        assert registry.record_failure("t1", error) is False
        assert registry.record_failure("t1", error) is False
        assert registry.record_failure("t1", error) is True
        with pytest.raises(TenantQuarantinedError):
            registry.match_payload("t1")
        event = registry.journal.quarantined()["t1"]
        assert event.reason == REASON_CIRCUIT_OPEN
        assert event.failures == 3

    def test_success_resets_the_failure_count(self, tmp_path):
        registry = make_registry(tmp_path, breaker_threshold=2)
        registry.create(make_spec(tmp_path))
        registry.record_failure("t1", RuntimeError("one"))
        registry.record_success("t1")
        assert registry.record_failure("t1", RuntimeError("two")) is False
        assert not registry.get("t1").quarantined

    def test_quarantine_spares_other_tenants(self, tmp_path):
        registry = make_registry(tmp_path, breaker_threshold=1)
        registry.create(make_spec(tmp_path, tenant="sick"))
        registry.create(make_spec(tmp_path, tenant="healthy"))
        registry.record_failure("sick", RuntimeError("boom"))
        with pytest.raises(TenantQuarantinedError):
            registry.match_payload("sick")
        assert registry.match_payload("healthy")["matches"]


class TestPredict:
    def test_predict_scores_explicit_pairs(self, tmp_path):
        registry = make_registry(tmp_path)
        registry.create(make_spec(tmp_path))
        payload = registry.predict_payload(
            "t1", [["srcA", "weight", "srcB", "wt"]]
        )
        assert len(payload["scores"]) == 1
        assert payload["decisions"] == [True]

    def test_unknown_property_is_a_client_error(self, tmp_path):
        registry = make_registry(tmp_path)
        registry.create(make_spec(tmp_path))
        with pytest.raises(DataError):
            registry.predict_payload("t1", [["srcA", "nope", "srcB", "wt"]])
        with pytest.raises(DataError):
            registry.predict_payload("t1", [["srcA", "weight"]])


class TestWarmRestart:
    @pytest.mark.parametrize("system", ["lsh", "leapme"])
    def test_restart_is_byte_identical_to_cold_rebuild(self, tmp_path, system):
        registry = make_registry(tmp_path)
        spec = make_spec(tmp_path, system=system)
        registry.create(spec)
        extra = write_extra_source(tmp_path)
        registry.add_source("t1", extra)
        before = match_body(registry, "t1")

        restarted = TenantRegistry(registry.journal)
        counts = restarted.load()
        assert counts == {"tenants": 1, "sources": 1, "quarantined": 0}
        assert match_body(restarted, "t1") == before

        cold = TenantRegistry()
        cold.load()
        cold.create(spec)
        cold.add_source("t1", extra)
        assert match_body(cold, "t1") == before

    def test_restart_refuses_changed_bootstrap_inputs(self, tmp_path):
        registry = make_registry(tmp_path)
        spec = make_spec(tmp_path)
        registry.create(spec)
        with open(spec.instances, "a", encoding="utf-8") as handle:
            handle.write("srcA,weight,e9,99 kg box\n")
        with pytest.raises(DataError, match="changed since creation"):
            TenantRegistry(registry.journal).load()

    def test_restart_quarantines_tenant_with_missing_reload_source(
        self, tmp_path
    ):
        registry = make_registry(tmp_path)
        registry.create(make_spec(tmp_path))
        extra = write_extra_source(tmp_path)
        registry.add_source("t1", extra)
        extra.unlink()
        restarted = TenantRegistry(registry.journal)
        counts = restarted.load()
        assert counts["quarantined"] == 1
        assert restarted.get("t1").quarantined

    def test_restart_pins_quarantined_tenants_without_rebuild(self, tmp_path):
        registry = make_registry(tmp_path, breaker_threshold=1)
        registry.create(make_spec(tmp_path))
        registry.record_failure("t1", RuntimeError("boom"))
        restarted = TenantRegistry(registry.journal)
        counts = restarted.load()
        assert counts == {"tenants": 0, "sources": 0, "quarantined": 1}
        tenant = restarted.get("t1")
        assert tenant.quarantined
        assert tenant.state is None
        assert tenant.quarantine.reason == REASON_CIRCUIT_OPEN

    def test_restart_skips_removed_tenants(self, tmp_path):
        registry = make_registry(tmp_path)
        registry.create(make_spec(tmp_path))
        registry.remove("t1")
        restarted = TenantRegistry(registry.journal)
        assert restarted.load()["tenants"] == 0
        assert restarted.get("t1") is None
        assert restarted.ready()


class TestSummaries:
    def test_statuses_and_stage_calls(self, tmp_path):
        registry = make_registry(tmp_path, breaker_threshold=1)
        registry.create(make_spec(tmp_path, tenant="ready", system="leapme"))
        registry.create(make_spec(tmp_path, tenant="sick"))
        registry.record_failure("sick", RuntimeError("boom"))
        summaries = registry.tenant_summaries()
        assert summaries["ready"]["status"] == "ready"
        assert summaries["ready"]["stage_calls"]
        assert summaries["sick"]["status"] == "quarantined"
        assert summaries["sick"]["reason"] == REASON_CIRCUIT_OPEN
