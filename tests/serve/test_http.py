"""The HTTP skin: probes, tenant lifecycle, overload, determinism."""

import json
import threading

from repro.serve import (
    AdmissionQueue,
    MatchingService,
    RegistryJournal,
    TenantRegistry,
)

from tests.serve.conftest import (
    make_registry,
    make_spec,
    match_body,
    request,
    write_extra_source,
)


def create_tenant(service, tmp_path, tenant="t1", **spec_kwargs):
    spec = make_spec(tmp_path, tenant=tenant, **spec_kwargs)
    record = spec.to_record()
    return request(service, "POST", f"/tenants/{tenant}", record)


class TestProbes:
    def test_healthz_and_readyz_on_a_loaded_registry(self, service):
        status, _, body = request(service, "GET", "/healthz")
        assert (status, json.loads(body)) == (200, {"status": "ok"})
        status, _, body = request(service, "GET", "/readyz")
        assert status == 200
        assert json.loads(body)["status"] == "ready"

    def test_readyz_gates_on_journal_replay(self, tmp_path):
        registry = TenantRegistry(RegistryJournal(tmp_path / "r.journal"))
        service = MatchingService(registry)
        service.start()
        try:
            status, _, body = request(service, "GET", "/readyz")
            assert status == 503
            assert json.loads(body)["status"] == "loading"
            registry.load()
            status, _, _ = request(service, "GET", "/readyz")
            assert status == 200
        finally:
            service.stop()

    def test_draining_flips_liveness(self, service):
        service.stop_event.set()
        status, _, body = request(service, "GET", "/healthz")
        assert status == 503
        assert json.loads(body)["status"] == "draining"

    def test_statz_reports_admission_and_tenants(self, service, tmp_path):
        create_tenant(service, tmp_path)
        request(service, "POST", "/tenants/t1/match")
        status, _, body = request(service, "GET", "/statz")
        stats = json.loads(body)
        assert status == 200
        assert stats["admission"]["admitted"] == 1
        assert stats["admission"]["completed"] == 1
        assert stats["tenants"]["t1"]["status"] == "ready"

    def test_unknown_endpoint_is_404(self, service):
        assert request(service, "GET", "/nope")[0] == 404
        assert request(service, "POST", "/tenants/a/b/c")[0] == 404


class TestTenantLifecycle:
    def test_create_match_predict_delete(self, service, tmp_path):
        status, _, body = create_tenant(service, tmp_path)
        assert status == 201
        created = json.loads(body)
        assert created["properties"] == 4
        assert sorted(created["sources"]) == ["srcA", "srcB"]

        status, _, body = request(service, "POST", "/tenants/t1/match")
        assert status == 200
        assert body == match_body(service.registry, "t1")

        status, _, body = request(
            service,
            "POST",
            "/tenants/t1/predict",
            {"pairs": [["srcA", "weight", "srcB", "wt"]]},
        )
        assert status == 200
        assert json.loads(body)["decisions"] == [True]

        assert request(service, "DELETE", "/tenants/t1")[0] == 200
        assert request(service, "POST", "/tenants/t1/match")[0] == 404

    def test_bad_spec_is_400(self, service):
        status, _, body = request(service, "POST", "/tenants/t1", {})
        assert status == 400
        assert "exactly one of" in json.loads(body)["error"]

    def test_unknown_pair_is_400_and_not_a_breaker_strike(
        self, service, tmp_path
    ):
        create_tenant(service, tmp_path)
        status, _, _ = request(
            service,
            "POST",
            "/tenants/t1/predict",
            {"pairs": [["srcA", "nope", "srcB", "wt"]]},
        )
        assert status == 400
        assert service.registry.get("t1").failures == 0

    def test_add_source_reloads_and_serves_new_pairs(self, service, tmp_path):
        create_tenant(service, tmp_path)
        before = json.loads(request(service, "POST", "/tenants/t1/match")[2])
        extra = write_extra_source(tmp_path)
        status, _, body = request(
            service, "POST", "/tenants/t1/add-source", {"path": str(extra)}
        )
        assert status == 200
        assert json.loads(body)["order"] == 1
        after = json.loads(request(service, "POST", "/tenants/t1/match")[2])
        assert after["pairs"] > before["pairs"]
        assert after["sources"] == ["extra.csv"]

    def test_add_source_to_unknown_tenant_is_404(self, service, tmp_path):
        extra = write_extra_source(tmp_path)
        status, _, _ = request(
            service, "POST", "/tenants/ghost/add-source", {"path": str(extra)}
        )
        assert status == 404


class TestOverload:
    def test_full_queue_answers_429_with_deterministic_retry_after(
        self, tmp_path
    ):
        registry = make_registry(tmp_path)
        registry.create(make_spec(tmp_path))
        admission = AdmissionQueue(
            max_active=1, max_waiting=0, request_deadline=10.0
        )
        service = MatchingService(registry, admission)
        service.start()
        try:
            with admission.slot("t1"):
                status, headers, body = request(
                    service, "POST", "/tenants/t1/match"
                )
            assert status == 429
            expected = admission.retry_after("t1")
            assert headers["Retry-After"] == str(expected)
            assert json.loads(body)["retry_after"] == expected
            # Capacity freed: the same request now succeeds.
            assert request(service, "POST", "/tenants/t1/match")[0] == 200
        finally:
            service.stop()


class TestBulkheadOverHttp:
    def test_poison_tenant_gets_503_while_healthy_tenants_serve(
        self, tmp_path
    ):
        registry = make_registry(tmp_path, breaker_threshold=1)
        service = MatchingService(registry, AdmissionQueue())
        service.start()
        try:
            create_tenant(service, tmp_path, tenant="healthy")
            # A supervised spec with no labels quarantines on create.
            status, _, _ = create_tenant(
                service,
                tmp_path,
                tenant="poison",
                system="leapme",
                with_alignment=False,
            )
            assert status == 400
            assert registry.get("poison").quarantined
            status, _, body = request(
                service, "POST", "/tenants/poison/match"
            )
            assert status == 503
            assert json.loads(body)["reason"] == "poison-tenant"
            assert (
                request(service, "POST", "/tenants/healthy/match")[0] == 200
            )
            # The quarantined tenant never consumed an admission slot.
            assert service.admission.stats()["admitted"] == 1
        finally:
            service.stop()


class TestConcurrentDeterminism:
    def test_parallel_clients_read_identical_bytes(self, service, tmp_path):
        create_tenant(service, tmp_path)
        serial = request(service, "POST", "/tenants/t1/match")
        assert serial[0] == 200
        results: list[tuple[int, bytes]] = [None] * 8

        def client(index: int) -> None:
            status, _, body = request(service, "POST", "/tenants/t1/match")
            results[index] = (status, body)

        threads = [
            threading.Thread(target=client, args=(index,))
            for index in range(len(results))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30)
        assert all(result == (200, serial[2]) for result in results)
        stats = service.admission.stats()
        assert stats["admitted"] == len(results) + 1
        assert stats["completed"] == len(results) + 1
