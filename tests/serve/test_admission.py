"""Bounded admission: shedding, deadlines, bulkheads, drain."""

import threading

import pytest

from repro.errors import ConfigurationError
from repro.serve import (
    AdmissionQueue,
    AdmissionShed,
    DeadlineExceeded,
    ServiceStopping,
)


def fast_queue(**kwargs) -> AdmissionQueue:
    kwargs.setdefault("request_deadline", 0.05)
    return AdmissionQueue(**kwargs)


class TestSlots:
    def test_admit_and_release_counts(self):
        queue = fast_queue()
        with queue.slot("a"):
            assert queue.depth()["active"] == 1
        stats = queue.stats()
        assert stats["admitted"] == 1
        assert stats["completed"] == 1
        assert queue.drained()

    def test_slot_released_when_work_raises(self):
        queue = fast_queue()
        with pytest.raises(ValueError):
            with queue.slot("a"):
                raise ValueError("work failed")
        assert queue.drained()
        assert queue.stats()["completed"] == 1

    def test_free_slot_is_taken_even_with_zero_waiting_room(self):
        queue = fast_queue(max_active=1, max_waiting=0)
        with queue.slot("a"):
            pass
        assert queue.stats()["admitted"] == 1

    def test_invalid_limits_rejected(self):
        with pytest.raises(ConfigurationError):
            AdmissionQueue(max_active=0)
        with pytest.raises(ConfigurationError):
            AdmissionQueue(request_deadline=0)


class TestShedding:
    def test_full_queue_sheds_immediately(self):
        queue = fast_queue(max_active=1, max_waiting=0)
        with queue.slot("a"):
            with pytest.raises(AdmissionShed) as caught:
                with queue.slot("b"):
                    pass
        assert 1 <= caught.value.retry_after <= 2
        assert queue.stats()["shed"] == 1

    def test_retry_after_is_deterministic_per_tenant(self):
        first = AdmissionQueue(seed=7)
        second = AdmissionQueue(seed=7)
        for tenant in ("alpha", "beta", "gamma"):
            assert first.retry_after(tenant) == second.retry_after(tenant)
            assert 1 <= first.retry_after(tenant) <= 2
        assert (
            AdmissionQueue(seed=8).retry_after("alpha")
            == AdmissionQueue(seed=8).retry_after("alpha")
        )


class TestDeadlines:
    def test_waiter_expires_at_deadline(self):
        queue = fast_queue(max_active=1, max_waiting=4)
        with queue.slot("a"):
            with pytest.raises(DeadlineExceeded):
                with queue.slot("b"):
                    pass
        assert queue.stats()["expired"] == 1
        assert queue.drained()


class TestBulkheads:
    def test_per_tenant_cap_leaves_room_for_other_tenants(self):
        queue = fast_queue(max_active=4, max_waiting=4, max_per_tenant=1)
        with queue.slot("a"):
            with queue.slot("b"):
                with pytest.raises(DeadlineExceeded):
                    with queue.slot("a"):
                        pass
        assert queue.stats()["admitted"] == 2


class TestStopAndDrain:
    def test_stop_event_refuses_admission(self):
        queue = fast_queue()
        queue.stop_event.set()
        with pytest.raises(ServiceStopping):
            with queue.slot("a"):
                pass

    def test_await_drain_on_empty_queue(self):
        assert fast_queue().await_drain(0.01)


class TestSpuriousWakeups:
    """The predicate loop, not the notification, is the admission gate.

    ``Condition.wait`` may return without a matching notify (and extra
    ``notify_all`` calls are indistinguishable from that).  A waiter
    that trusted the wakeup instead of re-checking ``_must_wait`` would
    over-admit past ``max_active``.
    """

    def test_double_notify_does_not_overadmit(self):
        queue = AdmissionQueue(
            max_active=1, max_waiting=4, request_deadline=10.0
        )
        entered = threading.Event()
        release = threading.Event()
        active_seen = []
        seen_lock = threading.Lock()

        def hold():
            with queue.slot("holder"):
                entered.set()
                release.wait(10.0)

        def waiter(name):
            with queue.slot(name):
                with seen_lock:
                    active_seen.append(queue.depth()["active"])

        holder = threading.Thread(target=hold)
        holder.start()
        assert entered.wait(10.0)
        waiters = [
            threading.Thread(target=waiter, args=(f"w{index}",))
            for index in range(2)
        ]
        for thread in waiters:
            thread.start()
        # Hammer the condition while the slot is still held: every
        # wakeup is spurious, and none may admit a waiter.
        for _ in range(25):
            with queue._cond:
                queue._cond.notify_all()
            assert queue.depth()["active"] == 1
        release.set()
        holder.join(10.0)
        for thread in waiters:
            thread.join(10.0)
        assert not holder.is_alive()
        assert not any(thread.is_alive() for thread in waiters)
        stats = queue.stats()
        assert stats["admitted"] == 3
        assert stats["completed"] == 3
        assert stats["expired"] == 0 and stats["shed"] == 0
        assert active_seen == [1, 1]
        assert queue.drained()

    def test_stop_event_wakes_blocked_waiter(self):
        queue = AdmissionQueue(
            max_active=1, max_waiting=4, request_deadline=30.0
        )
        entered = threading.Event()
        release = threading.Event()
        outcome = []

        def hold():
            with queue.slot("holder"):
                entered.set()
                release.wait(10.0)

        def waiter():
            try:
                with queue.slot("blocked"):
                    outcome.append("admitted")
            except ServiceStopping:
                outcome.append("stopping")

        holder = threading.Thread(target=hold)
        holder.start()
        assert entered.wait(10.0)
        blocked = threading.Thread(target=waiter)
        blocked.start()
        # The waiter is parked inside the predicate loop; stopping must
        # reject it promptly even though no slot was ever released.
        queue.stop_event.set()
        blocked.join(10.0)
        assert not blocked.is_alive()
        assert outcome == ["stopping"]
        release.set()
        holder.join(10.0)
        assert queue.await_drain(10.0)
