"""Registry journal: round trips, replay plans, torn tails."""

import pytest

from repro.errors import JournalError
from repro.serve import RegistryJournal
from repro.serve.journal import (
    REASON_CIRCUIT_OPEN,
    TENANT_QUARANTINED,
    TENANT_SOURCE_ADDED,
)


def populated(tmp_path) -> RegistryJournal:
    journal = RegistryJournal(tmp_path / "registry.journal")
    journal.record_created("t1", {"system": "lsh"}, "aaaa")
    journal.record_bootstrapped("t1", 4, 4)
    journal.record_created("t2", {"system": "lsh"}, "bbbb")
    journal.record_bootstrapped("t2", 4, 4)
    journal.record_source_added("t1", "extra.csv", "cccc", 1, 2, 8)
    journal.record_quarantined(
        "t2", REASON_CIRCUIT_OPEN, ValueError("boom"), 3
    )
    journal.record_created("t3", {"system": "lsh"}, None)
    journal.record_removed("t3")
    return journal


class TestRoundTrip:
    def test_events_in_append_order(self, tmp_path):
        events = populated(tmp_path).events()
        assert [event.status for event in events] == [
            "created", "bootstrapped", "created", "bootstrapped",
            "source-added", "quarantined", "created", "removed",
        ]

    def test_latest_wins_per_tenant(self, tmp_path):
        latest = populated(tmp_path).latest()
        assert latest["t1"].status == TENANT_SOURCE_ADDED
        assert latest["t2"].status == TENANT_QUARANTINED
        assert latest["t2"].reason == REASON_CIRCUIT_OPEN
        assert latest["t2"].failures == 3
        assert latest["t3"].status == "removed"

    def test_replay_plan_orders_additions_and_drops_removed(self, tmp_path):
        plan = populated(tmp_path).replay_plan()
        assert [genesis.tenant for genesis, _ in plan] == ["t1", "t2"]
        [(_, additions), (_, none)] = plan
        assert [event.file for event in additions] == ["extra.csv"]
        assert additions[0].order == 1
        assert none == []

    def test_quarantined_view(self, tmp_path):
        quarantined = populated(tmp_path).quarantined()
        assert set(quarantined) == {"t2"}
        assert quarantined["t2"].error_type == "ValueError"

    def test_missing_journal_reads_empty(self, tmp_path):
        journal = RegistryJournal(tmp_path / "absent.journal")
        assert journal.events() == []
        assert journal.replay_plan() == []
        assert "(empty)" in journal.describe()

    def test_describe_summarises_lifecycle(self, tmp_path):
        text = populated(tmp_path).describe()
        assert "t1: status=source-added, sources_added=1" in text
        assert "last reload: t1 += extra.csv (order 1" in text
        assert "quarantined: t2: circuit-open (ValueError: boom)" in text


class TestTornTail:
    def test_torn_final_line_is_dropped(self, tmp_path):
        journal = populated(tmp_path)
        with journal.path.open("ab") as handle:
            handle.write(b'{"type": "tenant", "tenant": "t9", "sta')
        events = journal.events()
        assert [event.tenant for event in events][-1] == "t3"
        assert all(event.tenant != "t9" for event in events)

    def test_wrong_header_type_is_rejected(self, tmp_path):
        path = tmp_path / "bogus.journal"
        path.write_text('{"type": "run-journal", "version": 1}\n')
        with pytest.raises(JournalError):
            RegistryJournal(path).events()
