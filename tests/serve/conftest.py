"""Shared helpers for the serve suite: tenant CSVs, registries, HTTP.

The instance data reuses the ingestion suite's property vocabulary
(``PROPS_A``/``PROPS_B``/``PROPS_C``): three disjoint sources whose
values overlap enough that even the unsupervised LSH matcher links
them, and whose alignment sidecars give supervised systems positive
training pairs.
"""

from __future__ import annotations

import http.client
import json
from pathlib import Path

import pytest

from repro.serve import (
    AdmissionQueue,
    MatchingService,
    RegistryJournal,
    TenantRegistry,
    TenantSpec,
)

from tests.ingest.conftest import PROPS_A, PROPS_B, PROPS_C  # noqa: F401

#: ``source -> reference`` property alignment across the three sources.
ALIGNMENT = {
    ("srcA", "weight"): "ref_weight",
    ("srcA", "color"): "ref_color",
    ("srcB", "wt"): "ref_weight",
    ("srcB", "colour"): "ref_color",
    ("srcC", "mass"): "ref_weight",
    ("srcC", "tint"): "ref_color",
}


def write_instances(path: Path, sources: dict[str, dict[str, list[str]]]) -> Path:
    """One instances CSV holding every ``{source: {property: values}}``."""
    lines = ["source,property,entity,value"]
    for source, props in sources.items():
        for prop, values in props.items():
            for index, value in enumerate(values):
                lines.append(f"{source},{prop},e{index},{value}")
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


def write_alignment(path: Path, sources: dict[str, dict[str, list[str]]]) -> Path:
    """The matching alignment CSV for ``sources`` (from :data:`ALIGNMENT`)."""
    lines = ["source,property,reference"]
    for source, props in sources.items():
        for prop in props:
            lines.append(f"{source},{prop},{ALIGNMENT[(source, prop)]}")
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


def make_spec(
    directory: Path,
    tenant: str = "t1",
    system: str = "lsh",
    *,
    threshold: float | None = 0.3,
    with_alignment: bool = True,
    blocking: str | None = None,
) -> TenantSpec:
    """A CSV-backed tenant spec over sources A+B in ``directory``."""
    sources = {"srcA": PROPS_A, "srcB": PROPS_B}
    instances = write_instances(directory / f"{tenant}.csv", sources)
    alignment = None
    if with_alignment:
        alignment = write_alignment(directory / f"{tenant}.alignment.csv", sources)
    return TenantSpec(
        tenant=tenant,
        system=system,
        instances=str(instances),
        alignment=None if alignment is None else str(alignment),
        threshold=threshold,
        blocking=blocking,
    )


def write_extra_source(
    directory: Path, name: str = "extra.csv", *, with_alignment: bool = True
) -> Path:
    """A reloadable source C CSV (plus its alignment sidecar)."""
    path = write_instances(directory / name, {"srcC": PROPS_C})
    if with_alignment:
        write_alignment(
            directory / (Path(name).stem + ".alignment.csv"), {"srcC": PROPS_C}
        )
    return path


def make_registry(tmp_path: Path, **kwargs) -> TenantRegistry:
    """A loaded registry journaling into ``tmp_path/registry.journal``."""
    registry = TenantRegistry(
        RegistryJournal(tmp_path / "registry.journal"), **kwargs
    )
    registry.load()
    return registry


def match_body(registry: TenantRegistry, tenant_id: str) -> bytes:
    """The canonical byte-level ``/match`` body for comparisons."""
    return json.dumps(
        registry.match_payload(tenant_id), sort_keys=True
    ).encode("utf-8")


def request(
    service: MatchingService,
    method: str,
    path: str,
    body: dict | None = None,
) -> tuple[int, dict, bytes]:
    """One HTTP request against ``service``: ``(status, headers, raw body)``."""
    connection = http.client.HTTPConnection(
        service.host, service.port, timeout=30
    )
    try:
        payload = None if body is None else json.dumps(body).encode("utf-8")
        headers = {} if payload is None else {"Content-Type": "application/json"}
        connection.request(method, path, body=payload, headers=headers)
        response = connection.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        connection.close()


@pytest.fixture()
def service(tmp_path):
    """A started ephemeral-port service over a loaded registry."""
    registry = make_registry(tmp_path)
    instance = MatchingService(
        registry,
        AdmissionQueue(max_active=4, max_waiting=8, request_deadline=10.0),
    )
    instance.start()
    yield instance
    instance.stop()
