"""Exactness of shared counters under real thread contention.

These are the behavioural twins of the analyzer's REP012 findings: the
breaker counter and the admission totals are incremented from handler
threads, so their values must be *exact* -- a lost update here is the
race the lock regions exist to prevent.
"""

import json
import threading

from tests.serve.conftest import make_registry, make_spec, request
from tests.serve.test_http import create_tenant


def hammer(n_threads, work):
    """Run ``work(index)`` on N threads through a start barrier."""
    barrier = threading.Barrier(n_threads)
    errors = []

    def runner(index):
        barrier.wait(timeout=10.0)
        try:
            work(index)
        except BaseException as error:  # pragma: no cover - surfaced below
            errors.append(error)

    threads = [
        threading.Thread(target=runner, args=(index,))
        for index in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30.0)
    assert errors == []
    assert not any(thread.is_alive() for thread in threads)


class TestBreakerCounterExactness:
    def test_concurrent_failures_count_exactly(self, tmp_path):
        # Threshold far above the traffic: every increment must land.
        registry = make_registry(tmp_path, breaker_threshold=10_000)
        registry.create(make_spec(tmp_path))
        n_threads, per_thread = 8, 25

        def work(_index):
            for _ in range(per_thread):
                registry.record_failure("t1", ValueError("boom"))

        hammer(n_threads, work)
        summary = registry.tenant_summaries()["t1"]
        assert summary["failures"] == n_threads * per_thread
        assert summary["status"] == "ready"

    def test_breaker_opens_exactly_once_at_threshold(self, tmp_path):
        registry = make_registry(tmp_path, breaker_threshold=8)
        registry.create(make_spec(tmp_path))
        opened = []

        def work(_index):
            if registry.record_failure("t1", ValueError("boom")):
                opened.append(True)

        hammer(16, work)
        assert len(opened) == 1
        summary = registry.tenant_summaries()["t1"]
        assert summary["status"] == "quarantined"
        # The journal saw exactly one quarantine record for the tenant.
        events = [
            event
            for event in registry.journal.events()
            if event.status == "quarantined"
        ]
        assert len(events) == 1

    def test_success_resets_between_contending_failures(self, tmp_path):
        registry = make_registry(tmp_path, breaker_threshold=10_000)
        registry.create(make_spec(tmp_path))

        def work(index):
            for _ in range(10):
                registry.record_failure("t1", ValueError("boom"))
        hammer(4, work)
        registry.record_success("t1")
        assert registry.tenant_summaries()["t1"]["failures"] == 0


class TestStatzExactTotals:
    def test_concurrent_clients_yield_exact_admission_totals(
        self, service, tmp_path
    ):
        create_tenant(service, tmp_path)
        baseline = json.loads(request(service, "GET", "/statz")[2])
        before = baseline["admission"]
        n_threads, per_thread = 6, 4
        statuses = []
        record = statuses.append
        lock = threading.Lock()

        def work(_index):
            for _ in range(per_thread):
                status, _, _ = request(service, "POST", "/tenants/t1/match")
                with lock:
                    record(status)

        hammer(n_threads, work)
        assert statuses == [200] * (n_threads * per_thread)
        after = json.loads(request(service, "GET", "/statz")[2])["admission"]
        total = n_threads * per_thread
        assert after["admitted"] == before["admitted"] + total
        assert after["completed"] == before["completed"] + total
        assert after["active"] == 0 and after["waiting"] == 0

    def test_failure_free_traffic_leaves_counter_at_zero(
        self, service, tmp_path
    ):
        create_tenant(service, tmp_path)

        def work(_index):
            status, _, _ = request(service, "POST", "/tenants/t1/match")
            assert status == 200

        hammer(6, work)
        tenants = json.loads(request(service, "GET", "/statz")[2])["tenants"]
        assert tenants["t1"]["failures"] == 0
