"""Tests for the command-line interface."""

import csv

import pytest

from repro.cli import main


class TestGenerate:
    def test_writes_all_files(self, tmp_path, capsys):
        code = main(
            ["generate", "--dataset", "tvs", "--scale", "tiny", "--out", str(tmp_path)]
        )
        assert code == 0
        for filename in ("instances.csv", "alignment.csv", "dataset.json"):
            assert (tmp_path / filename).exists()
        assert "tvs" in capsys.readouterr().out


class TestStats:
    def test_builtin_dataset(self, capsys):
        code = main(["stats", "--dataset", "headphones", "--scale", "tiny"])
        assert code == 0
        out = capsys.readouterr().out
        assert "headphones" in out
        assert "sources" in out

    def test_user_csv(self, tmp_path, capsys):
        instances = tmp_path / "instances.csv"
        instances.write_text(
            "source,property,entity,value\n"
            "A,resolution,e1,20 mp\n"
            "B,megapixels,e2,24 mp\n"
        )
        code = main(["stats", "--instances", str(instances)])
        assert code == 0
        assert "2 sources" in capsys.readouterr().out

    def test_no_dataset_or_instances_fails(self, capsys):
        code = main(["stats"])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestEvaluate:
    @pytest.mark.parametrize("system", ["leapme", "aml", "lsh"])
    def test_systems_run(self, system, capsys):
        code = main(
            [
                "evaluate",
                "--dataset", "headphones",
                "--scale", "tiny",
                "--system", system,
                "--train-fraction", "0.6",
                "--repetitions", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "P=" in out and "F1=" in out


class TestMatch:
    def test_supervised_match_to_csv(self, tmp_path, capsys):
        out_csv = tmp_path / "matches.csv"
        code = main(
            [
                "match",
                "--dataset", "headphones",
                "--scale", "tiny",
                "--out", str(out_csv),
            ]
        )
        assert code == 0
        with out_csv.open() as handle:
            rows = list(csv.DictReader(handle))
        assert rows, "no matches emitted"
        for row in rows:
            assert float(row["score"]) >= 0.5
            assert row["left_source"] != row["right_source"]

    def test_unsupervised_match_on_user_data(self, tmp_path, capsys):
        instances = tmp_path / "instances.csv"
        instances.write_text(
            "source,property,entity,value\n"
            "A,resolution,e1,20 mp\n"
            "B,resolution,e2,24 mp\n"
            "B,weight,e2,300 g\n"
        )
        out_csv = tmp_path / "matches.csv"
        code = main(
            ["match", "--instances", str(instances), "--system", "aml",
             "--out", str(out_csv)]
        )
        assert code == 0
        with out_csv.open() as handle:
            rows = list(csv.DictReader(handle))
        assert any(
            row["left_property"] == "resolution" and row["right_property"] == "resolution"
            for row in rows
        )

    def test_match_without_alignment_fails_for_supervised(self, tmp_path, capsys):
        instances = tmp_path / "instances.csv"
        instances.write_text(
            "source,property,entity,value\nA,p,e,v\nB,q,e2,w\n"
        )
        code = main(
            ["match", "--instances", str(instances), "--out", str(tmp_path / "m.csv")]
        )
        assert code == 2
        assert "no positive training pairs" in capsys.readouterr().err
