"""Tests for the command-line interface."""

import csv

import pytest

from repro.cli import main


class TestGenerate:
    def test_writes_all_files(self, tmp_path, capsys):
        code = main(
            ["generate", "--dataset", "tvs", "--scale", "tiny", "--out", str(tmp_path)]
        )
        assert code == 0
        for filename in ("instances.csv", "alignment.csv", "dataset.json"):
            assert (tmp_path / filename).exists()
        assert "tvs" in capsys.readouterr().out


class TestStats:
    def test_builtin_dataset(self, capsys):
        code = main(["stats", "--dataset", "headphones", "--scale", "tiny"])
        assert code == 0
        out = capsys.readouterr().out
        assert "headphones" in out
        assert "sources" in out

    def test_user_csv(self, tmp_path, capsys):
        instances = tmp_path / "instances.csv"
        instances.write_text(
            "source,property,entity,value\n"
            "A,resolution,e1,20 mp\n"
            "B,megapixels,e2,24 mp\n"
        )
        code = main(["stats", "--instances", str(instances)])
        assert code == 0
        assert "2 sources" in capsys.readouterr().out

    def test_no_dataset_or_instances_fails(self, capsys):
        code = main(["stats"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_quarantined_rows_surfaced(self, tmp_path, capsys):
        instances = tmp_path / "instances.csv"
        instances.write_text(
            "source,property,entity,value\n"
            "A,resolution,e1,20 mp\n"
            "A,,e1,oops\n"
            "B,megapixels,e2,24 mp\n"
        )
        code = main(["stats", "--instances", str(instances)])
        assert code == 0
        out = capsys.readouterr().out
        assert "rows quarantined on load: 1 (A=1)" in out
        assert ":3" in out  # the offending line is pointed at


class TestEvaluate:
    @pytest.mark.parametrize("system", ["leapme", "aml", "lsh"])
    def test_systems_run(self, system, capsys):
        code = main(
            [
                "evaluate",
                "--dataset", "headphones",
                "--scale", "tiny",
                "--system", system,
                "--train-fraction", "0.6",
                "--repetitions", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "P=" in out and "F1=" in out

    def test_journal_written_and_resumed(self, tmp_path, capsys):
        journal = tmp_path / "run.jsonl"
        argv = [
            "evaluate",
            "--dataset", "headphones",
            "--scale", "tiny",
            "--system", "lsh",
            "--train-fraction", "0.6",
            "--repetitions", "2",
            "--journal", str(journal),
        ]
        assert main(argv) == 0
        first_out = capsys.readouterr().out
        assert str(journal) in first_out
        assert journal.exists()
        lines = journal.read_text().strip().split("\n")
        assert len(lines) == 3  # header + 2 repetitions

        assert main(argv + ["--resume"]) == 0
        resumed_out = capsys.readouterr().out
        assert "(resumed)" in resumed_out
        assert "2 resumed" in resumed_out
        # Resuming re-ran nothing, so no new repetition lines appeared.
        assert len(journal.read_text().strip().split("\n")) == 3

    def test_resume_without_journal_rejected(self, capsys):
        code = main(
            ["evaluate", "--dataset", "headphones", "--scale", "tiny",
             "--system", "lsh", "--repetitions", "1", "--resume"]
        )
        assert code == 2
        assert "--resume requires --journal" in capsys.readouterr().err

    def test_parallel_evaluate_with_failure_model_flags(self, capsys):
        code = main(
            [
                "evaluate",
                "--dataset", "headphones",
                "--scale", "tiny",
                "--system", "lsh",
                "--train-fraction", "0.6",
                "--repetitions", "2",
                "--workers", "2",
                "--cell-timeout", "120",
                "--max-pool-respawns", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "P=" in out and "F1=" in out


class TestDescribe:
    def test_summarises_journal(self, tmp_path, capsys):
        journal = tmp_path / "run.jsonl"
        argv = [
            "evaluate",
            "--dataset", "headphones",
            "--scale", "tiny",
            "--system", "lsh",
            "--train-fraction", "0.6",
            "--repetitions", "2",
            "--journal", str(journal),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(["describe", "--journal", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "2 ok" in out

    def test_missing_journal_is_an_error(self, tmp_path, capsys):
        code = main(["describe", "--journal", str(tmp_path / "absent.jsonl")])
        assert code == 2
        assert "journal not found" in capsys.readouterr().err


class TestMatch:
    def test_supervised_match_to_csv(self, tmp_path, capsys):
        out_csv = tmp_path / "matches.csv"
        code = main(
            [
                "match",
                "--dataset", "headphones",
                "--scale", "tiny",
                "--out", str(out_csv),
            ]
        )
        assert code == 0
        with out_csv.open() as handle:
            rows = list(csv.DictReader(handle))
        assert rows, "no matches emitted"
        for row in rows:
            assert float(row["score"]) >= 0.5
            assert row["left_source"] != row["right_source"]

    def test_unsupervised_match_on_user_data(self, tmp_path, capsys):
        instances = tmp_path / "instances.csv"
        instances.write_text(
            "source,property,entity,value\n"
            "A,resolution,e1,20 mp\n"
            "B,resolution,e2,24 mp\n"
            "B,weight,e2,300 g\n"
        )
        out_csv = tmp_path / "matches.csv"
        code = main(
            ["match", "--instances", str(instances), "--system", "aml",
             "--out", str(out_csv)]
        )
        assert code == 0
        with out_csv.open() as handle:
            rows = list(csv.DictReader(handle))
        assert any(
            row["left_property"] == "resolution" and row["right_property"] == "resolution"
            for row in rows
        )

    def test_match_without_alignment_fails_for_supervised(self, tmp_path, capsys):
        instances = tmp_path / "instances.csv"
        instances.write_text(
            "source,property,entity,value\nA,p,e,v\nB,q,e2,w\n"
        )
        code = main(
            ["match", "--instances", str(instances), "--out", str(tmp_path / "m.csv")]
        )
        assert code == 2
        assert "no positive training pairs" in capsys.readouterr().err
