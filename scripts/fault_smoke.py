"""Fast fault-injection smoke test for `make check`.

Runs the evaluation protocol with an injected mid-grid failure and a
simulated kill + resume, and asserts that the fault-tolerance layer
holds: the failing repetition is isolated and reported, the resumed run
reproduces the uninterrupted aggregates exactly.  Exits non-zero on any
violation; wall clock is a few seconds (tiny dataset, cheap matcher).
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.api import Matcher  # noqa: E402
from repro.datasets import load_dataset  # noqa: E402
from repro.evaluation import (  # noqa: E402
    RetryPolicy,
    RunJournal,
    RunSettings,
    evaluate_matcher,
    render_robustness_report,
)
from repro.testing import FaultPlan, FaultyMatcher, SimulatedKill  # noqa: E402
from repro.text.normalize import token_set  # noqa: E402


class NameEqMatcher(Matcher):
    name = "NameEq"
    is_supervised = True

    def fit(self, dataset, training_pairs):
        pass

    def score_pairs(self, dataset, pairs):
        return np.array(
            [
                1.0 if token_set(p.left.name) == token_set(p.right.name) else 0.0
                for p in pairs
            ]
        )


def main() -> int:
    dataset = load_dataset("headphones", scale="tiny", seed=0)
    settings = RunSettings(train_fraction=0.5, repetitions=4, seed=7)

    # 1. An injected failure is isolated and reported, not fatal.
    faulty = FaultyMatcher(NameEqMatcher(), FaultPlan.failing(1))
    result = evaluate_matcher(
        faulty, dataset, settings, retry_policy=RetryPolicy(max_retries=0)
    )
    assert result.skipped_repetitions == 1, result
    assert len(result.qualities) == settings.repetitions - 1, result
    report = render_robustness_report([result])
    assert "1 skipped" in report, report
    print(report)

    # 2. Kill after repetition 1, resume, match the uninterrupted run.
    baseline = evaluate_matcher(NameEqMatcher(), dataset, settings)
    with tempfile.TemporaryDirectory() as scratch:
        journal = RunJournal(Path(scratch) / "run.jsonl")
        try:
            evaluate_matcher(
                FaultyMatcher(NameEqMatcher(), FaultPlan.kill_at(2)),
                dataset,
                settings,
                journal=journal,
            )
            raise AssertionError("simulated kill did not propagate")
        except SimulatedKill:
            pass
        resumed = evaluate_matcher(NameEqMatcher(), dataset, settings, journal=journal)
        assert resumed.resumed_repetitions == 2, resumed
        assert resumed.qualities == baseline.qualities, (resumed, baseline)
    print("fault-injection smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
