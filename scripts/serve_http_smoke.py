"""HTTP matching-service smoke test for `make serve-http-smoke` and CI.

Exercises the long-lived service story of `repro serve --http` end to
end in a few seconds, as a real subprocess on a real socket:

1. start the server on an ephemeral port and wait for /healthz, then
   /readyz, to answer 200;
2. create a CSV-backed tenant over HTTP and round-trip /match twice,
   asserting the two bodies are byte-identical;
3. SIGTERM the server and assert a clean drain: exit code 128+SIGTERM;
4. start a fresh server over the same registry journal and assert the
   warm-restarted /match body is byte-identical to the pre-kill one
   without re-creating the tenant.

Exits non-zero on any violation.
"""

from __future__ import annotations

import http.client
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.ioutils import atomic_write_text  # noqa: E402

SOURCES = {
    "srcA": {"weight": ["10 kg box", "20 kg box"],
             "color": ["deep red", "sky blue"]},
    "srcB": {"wt": ["10 kg box", "20 kg box"],
             "colour": ["deep red", "sky blue"]},
}

STARTUP_DEADLINE = 60.0


def write_instances(path: Path) -> Path:
    lines = ["source,property,entity,value"]
    for source, props in SOURCES.items():
        for prop, values in props.items():
            for index, value in enumerate(values):
                lines.append(f"{source},{prop},e{index},{value}")
    atomic_write_text(path, "\n".join(lines) + "\n")
    return path


def start_server(root: Path) -> tuple[subprocess.Popen, str, int]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", "--http",
            "--port", "0",
            "--registry-journal", str(root / "registry.journal"),
            "--drain-grace", "10",
        ],
        env=env,
        cwd=REPO_ROOT,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    deadline = time.monotonic() + STARTUP_DEADLINE
    address = None
    while address is None:
        if proc.poll() is not None:
            raise SystemExit(
                f"server died at startup:\n{proc.communicate()[1]}"
            )
        if time.monotonic() > deadline:
            proc.kill()
            raise SystemExit("server never announced its address")
        line = proc.stderr.readline()
        address = re.search(r"serving on http://([^:]+):(\d+)", line)
    return proc, address.group(1), int(address.group(2))


def request(host, port, method, path, body=None):
    connection = http.client.HTTPConnection(host, port, timeout=30)
    try:
        payload = None if body is None else json.dumps(body).encode("utf-8")
        headers = {} if payload is None else {"Content-Type": "application/json"}
        connection.request(method, path, body=payload, headers=headers)
        response = connection.getresponse()
        return response.status, response.read()
    finally:
        connection.close()


def await_probe(host, port, path) -> None:
    deadline = time.monotonic() + STARTUP_DEADLINE
    while True:
        try:
            status, _ = request(host, port, "GET", path)
            if status == 200:
                return
        except OSError:
            pass
        if time.monotonic() > deadline:
            raise SystemExit(f"{path} never answered 200")
        time.sleep(0.05)


def terminate(proc: subprocess.Popen) -> str:
    proc.send_signal(signal.SIGTERM)
    try:
        _, stderr = proc.communicate(timeout=30)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.communicate()
        raise SystemExit("server did not drain within 30s of SIGTERM")
    expected = 128 + signal.SIGTERM
    if proc.returncode != expected:
        raise SystemExit(
            f"expected exit {expected} after SIGTERM, got {proc.returncode}:"
            f"\n{stderr}"
        )
    return stderr


def main() -> int:
    with tempfile.TemporaryDirectory() as scratch:
        root = Path(scratch)
        instances = write_instances(root / "tenant.csv")

        proc, host, port = start_server(root)
        try:
            await_probe(host, port, "/healthz")
            await_probe(host, port, "/readyz")
            status, body = request(
                host, port, "POST", "/tenants/smoke",
                {"system": "lsh", "instances": str(instances),
                 "threshold": 0.3},
            )
            assert status == 201, (status, body)
            status, first = request(host, port, "POST", "/tenants/smoke/match")
            assert status == 200, (status, first)
            assert json.loads(first)["matches"], "no matches over threshold"
            status, second = request(host, port, "POST", "/tenants/smoke/match")
            assert (status, second) == (200, first), "match is not stable"
        except BaseException:
            proc.kill()
            proc.communicate()
            raise
        print("create + match round-trip OK")
        terminate(proc)
        print(f"drained clean on SIGTERM (exit {128 + signal.SIGTERM})")

        proc, host, port = start_server(root)
        try:
            await_probe(host, port, "/readyz")
            status, body = request(host, port, "GET", "/tenants")
            assert status == 200 and "smoke" in json.loads(body)["tenants"], (
                "warm restart lost the tenant"
            )
            status, restarted = request(
                host, port, "POST", "/tenants/smoke/match"
            )
            assert (status, restarted) == (200, first), (
                "warm-restarted match is not byte-identical"
            )
        except BaseException:
            proc.kill()
            proc.communicate()
            raise
        print("warm restart byte-identical OK")
        terminate(proc)
    print("serve http smoke: all invariants held")
    return 0


if __name__ == "__main__":
    sys.exit(main())
