"""Fast follow-mode smoke test for `make serve-smoke` and CI.

Exercises the crash-safety story of `repro serve --follow` end to end
in a few seconds: a forked daemon is hard-killed immediately after its
first `fused` journal append, a fresh daemon resumes from the journal,
and the resulting matches/clusters must be byte-identical to a cold
rebuild over the same sources; a poison source (wrong header columns)
must quarantine with a structured reason without stalling the healthy
ones.  Exits non-zero on any violation.
"""

from __future__ import annotations

import os
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.baselines import LshMatcher  # noqa: E402
from repro.evaluation.runner import RetryPolicy  # noqa: E402
from repro.ioutils import atomic_write_text  # noqa: E402
from repro.ingest import (  # noqa: E402
    REASON_POISON,
    FollowDaemon,
    IngestJournal,
    IngestPipeline,
    cold_rebuild,
)
from repro.testing import IngestFaultPlan, write_poison_csv  # noqa: E402
from repro.testing.faults import WORKER_EXIT_CODE  # noqa: E402

SOURCES = {
    "a.csv": ("srcA", {"weight": ["10 kg box", "20 kg box"],
                       "color": ["deep red", "sky blue"]}),
    "b.csv": ("srcB", {"wt": ["10 kg box", "20 kg box"],
                       "colour": ["deep red", "sky blue"]}),
}


def write_source(directory: Path, name: str) -> Path:
    source, props = SOURCES[name]
    lines = ["source,property,entity,value"]
    for prop, values in props.items():
        for index, value in enumerate(values):
            lines.append(f"{source},{prop},e{index},{value}")
    path = directory / name
    atomic_write_text(path, "\n".join(lines) + "\n")
    return path


def make_daemon(feed: Path, out: Path, fault_plan=None) -> FollowDaemon:
    pipeline = IngestPipeline(LshMatcher(), out / "matches.csv", out / "clusters.json")
    pipeline.bootstrap(None)
    return FollowDaemon(
        feed,
        pipeline,
        IngestJournal(out / "ingest.journal"),
        poll_interval=0.005,
        retry_policy=RetryPolicy(max_retries=1),
        fault_plan=fault_plan,
    )


def run_forked(fn) -> int:
    pid = os.fork()
    if pid == 0:
        try:
            fn()
        except BaseException:  # repro: noqa[REP005] forked child cannot re-raise across the fork; the exit code is the report
            os._exit(70)
        os._exit(0)
    _, status = os.waitpid(pid, 0)
    return os.waitstatus_to_exitcode(status)


def main() -> int:
    with tempfile.TemporaryDirectory() as scratch:
        root = Path(scratch)
        feed = root / "feed"
        out = root / "out"
        feed.mkdir()
        out.mkdir()
        files = [write_source(feed, name) for name in sorted(SOURCES)]

        # 1. Hard-kill right after the first fused record lands.
        plan = IngestFaultPlan(
            exit_after={"fused": 1}, state_dir=str(root / "faults")
        )
        code = run_forked(
            lambda: make_daemon(feed, out, fault_plan=plan).run(max_batches=2)
        )
        assert code == WORKER_EXIT_CODE, f"daemon exited {code}, not killed"

        # 2. Resume replays the journal; outputs match a cold rebuild
        #    byte for byte.
        summary = make_daemon(feed, out).run(resume=True, max_idle_polls=5)
        assert summary["replayed"] == 1, summary
        assert summary["replayed"] + summary["fused"] == 2, summary
        cold = root / "cold"
        cold.mkdir()
        cold_rebuild(LshMatcher(), files, cold / "matches.csv", cold / "clusters.json")
        for name in ("matches.csv", "clusters.json"):
            ours, reference = (out / name).read_bytes(), (cold / name).read_bytes()
            assert ours == reference, f"{name} diverged from cold rebuild"

        # 3. A poison source quarantines; the journal names the reason.
        write_poison_csv(feed / "poison.csv")
        summary = make_daemon(feed, out).run(resume=True, max_idle_polls=5)
        assert summary["quarantined"] == 1, summary
        journal = IngestJournal(out / "ingest.journal")
        [event] = journal.quarantined().values()
        assert event.reason == REASON_POISON, event
        print(journal.describe())
    print("follow-mode smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
