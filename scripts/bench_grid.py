"""Benchmark the evaluation engine: legacy serial grid vs cache-aware engine.

Runs the paper's 9-config feature grid twice over a bundled synthetic
dataset:

* **serial** -- the legacy path: ``workers=1``, ``share_features=False``
  (every cell re-derives pair sets and feature matrices);
* **engine** -- the cache-aware engine: shared pair-feature store plus
  the process-pool executor (``workers=N``, ``share_features=True``).

Both runs produce the exact same aggregates (asserted, and recorded in
the output), so the wall-clock ratio is a pure like-for-like speedup.

Methodology notes:

* An untimed warm-up primes the name-distance cache for all universe
  pairs.  Both modes share that module-level cache (the seed used an
  equally persistent ``lru_cache``), so timing from a warm start
  measures the steady state of a long grid instead of a one-time cost
  both modes pay identically.
* The network defaults to a small benchmark configuration
  (``--network light``) so the measurement isolates the evaluation
  engine -- pair enumeration and feature assembly -- rather than NN
  training, which is identical work in both modes.  Pass
  ``--network paper`` for the paper's full network; on a single-CPU
  host training then dominates and the ratio shrinks accordingly.
* The default train fractions are the sparse-supervision grid
  (``0.1 0.2``) the paper emphasises: small training sides keep NN
  fitting cheap while the full candidate test side -- the part the
  engine caches -- dominates each cell.  Larger fractions shift cell
  time into training, which both modes pay identically.

Writes ``BENCH_grid.json``::

    {"dataset": ..., "grid": {...},
     "serial":  {"wall_clock": ..., "phases": {...}},
     "engine":  {"wall_clock": ..., "phases": {...}, "workers": N},
     "speedup": ..., "aggregates_identical": true}

Usage::

    PYTHONPATH=src python scripts/bench_grid.py [--scale small]
        [--repetitions 10] [--workers 2] [--out BENCH_grid.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
from pathlib import Path
from time import perf_counter

from repro.core import FeatureConfig, LeapmeConfig, LeapmeMatcher
from repro.core.feature_cache import PairUniverse
from repro.core.pair_features import name_distance_block
from repro.datasets import build_domain_embeddings, load_dataset
from repro.evaluation import ExperimentRunner, PhaseTimings
from repro.ioutils import atomic_write_text
from repro.nn.schedule import TrainingSchedule


def _network(kind: str) -> LeapmeConfig | None:
    if kind == "paper":
        return None  # LeapmeMatcher default: the paper's network
    return LeapmeConfig(
        hidden_sizes=(8,), schedule=TrainingSchedule.constant(1, 1e-3)
    )


def _factories(embeddings, network: LeapmeConfig | None) -> dict:
    return {
        config.label(): (
            lambda config=config: LeapmeMatcher(
                embeddings, config, config=network
            )
        )
        for config in FeatureConfig.grid()
    }


def _phase_sum(results) -> PhaseTimings:
    total = PhaseTimings()
    for result in results:
        total.merge(result.timings)
    return total


def _aggregates(results) -> list:
    return [
        (
            r.matcher_name,
            r.dataset_name,
            r.settings.train_fraction,
            [
                (q.true_positives, q.false_positives, q.false_negatives)
                for q in r.qualities
            ],
            r.skipped_repetitions,
        )
        for r in results
    ]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="headphones")
    parser.add_argument("--scale", default="small")
    parser.add_argument("--repetitions", type=int, default=15)
    parser.add_argument(
        "--fractions", type=float, nargs="+", default=[0.1, 0.2],
        help="train fractions; the default sparse-supervision grid is "
             "the regime the paper emphasises and the one where pair "
             "enumeration and feature assembly dominate the cell cost",
    )
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--network", choices=("light", "paper"), default="light",
        help="'light' (default) isolates the engine from NN training; "
             "'paper' uses the full Section IV-D network",
    )
    parser.add_argument("--out", default="BENCH_grid.json")
    args = parser.parse_args(argv)

    dataset = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    embeddings = build_domain_embeddings(args.dataset, scale=args.scale)
    runner = ExperimentRunner(_factories(embeddings, _network(args.network)))
    kwargs = dict(
        train_fractions=args.fractions,
        repetitions=args.repetitions,
        seed=args.seed,
    )
    cells = 9 * len(args.fractions)
    print(
        f"grid: {args.dataset}/{args.scale}, {cells} cells x "
        f"{args.repetitions} repetitions, network={args.network}"
    )

    # Untimed warm-up: prime the shared name-distance cache for every
    # cross-source pair.  Both timed runs start from the same state.
    started = perf_counter()
    universe = PairUniverse(dataset)
    name_distance_block(
        [(pair.left.name, pair.right.name) for pair in universe.pairs]
    )
    print(f"warm-up ({len(universe)} pairs): {perf_counter() - started:.2f}s")

    # Engine first: the process pool forks before the serial run has
    # grown the parent heap, keeping copy-on-write traffic low.
    started = perf_counter()
    engine_results = runner.run(
        [dataset], workers=args.workers, share_features=True, **kwargs
    )
    engine_seconds = perf_counter() - started
    print(f"engine (store + {args.workers} workers): {engine_seconds:8.2f}s")

    started = perf_counter()
    serial_results = runner.run(
        [dataset], workers=1, share_features=False, **kwargs
    )
    serial_seconds = perf_counter() - started
    print(f"serial (legacy path):       {serial_seconds:8.2f}s")

    identical = _aggregates(engine_results) == _aggregates(serial_results)
    speedup = serial_seconds / engine_seconds if engine_seconds > 0 else 0.0
    print(f"speedup: {speedup:.2f}x  aggregates identical: {identical}")
    if not identical:
        raise SystemExit("aggregates differ between serial and engine runs")

    payload = {
        "benchmark": "grid_engine",
        "dataset": args.dataset,
        "scale": args.scale,
        "seed": args.seed,
        "network": args.network,
        "grid": {
            "configs": 9,
            "train_fractions": args.fractions,
            "repetitions": args.repetitions,
            "cells": cells,
        },
        "host": {
            "cpus": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "serial": {
            "wall_clock": round(serial_seconds, 4),
            "phases": {
                k: round(v, 4)
                for k, v in _phase_sum(serial_results).as_dict().items()
            },
        },
        "engine": {
            "wall_clock": round(engine_seconds, 4),
            "workers": args.workers,
            "share_features": True,
            "phases": {
                k: round(v, 4)
                for k, v in _phase_sum(engine_results).as_dict().items()
            },
        },
        "speedup": round(speedup, 3),
        "aggregates_identical": identical,
    }
    out = Path(args.out)
    atomic_write_text(out, json.dumps(payload, indent=2) + "\n")
    print(f"written: {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
