"""Benchmark the evaluation engine: legacy serial grid vs cache-aware engine.

Runs the paper's 9-config feature grid twice over a bundled synthetic
dataset:

* **serial** -- the legacy path: ``workers=1``, ``share_features=False``
  (every cell re-derives pair sets and feature matrices);
* **engine** -- the cache-aware engine: shared pair-feature store plus
  the process-pool executor (``workers=N``, ``share_features=True``).

Both runs produce the exact same aggregates (asserted, and recorded in
the output), so the wall-clock ratio is a pure like-for-like speedup.

Methodology notes:

* An untimed warm-up primes the name-distance cache for all universe
  pairs.  Both modes share that module-level cache (the seed used an
  equally persistent ``lru_cache``), so timing from a warm start
  measures the steady state of a long grid instead of a one-time cost
  both modes pay identically.
* The network defaults to a small benchmark configuration
  (``--network light``) so the measurement isolates the evaluation
  engine -- pair enumeration and feature assembly -- rather than NN
  training, which is identical work in both modes.  Pass
  ``--network paper`` for the paper's full network; on a single-CPU
  host training then dominates and the ratio shrinks accordingly.
* The default train fractions are the sparse-supervision grid
  (``0.1 0.2``) the paper emphasises: small training sides keep NN
  fitting cheap while the full candidate test side -- the part the
  engine caches -- dominates each cell.  Larger fractions shift cell
  time into training, which both modes pay identically.

Writes ``BENCH_grid.json``::

    {"dataset": ..., "grid": {...},
     "serial":  {"wall_clock": ..., "phases": {...}},
     "engine":  {"wall_clock": ..., "phases": {...}, "workers": N},
     "speedup": ..., "aggregates_identical": true}

``--features`` switches to the featurization micro-benchmark instead:
the staged float32 pipeline (PR 5) vs an inline re-creation of the
legacy monolithic float64 featurizer, each measured in its own forked
child so wall-clock, stage-level timings and peak RSS are isolated per
variant.  Results merge into the same ``BENCH_grid.json`` under a
``"features"`` key.

``--blocking [POLICY]`` runs the candidate-generation benchmark
(PR 10): the 9-config grid over the full cross product vs the same
grid under a blocking policy (default ``minhash``), reporting the
candidate reduction, the policy's pair recall and the per-cell F1
deltas the pruning costs.  Results merge into ``BENCH_grid.json``
under a ``"blocking"`` key.

``--kernel`` runs the name-distance kernel micro-benchmark (PR 7):
the scalar per-pair reference vs the batched kernel vs the warm
in-process memo vs a persistent-cache reload, over the dataset's real
unique cross-source pairs.  Batched rows are asserted bit-identical to
the scalar reference before any ratio is reported.  Results merge into
``BENCH_grid.json`` under a ``"kernel"`` key.

Usage::

    PYTHONPATH=src python scripts/bench_grid.py [--scale small]
        [--repetitions 10] [--workers 2] [--out BENCH_grid.json]
    PYTHONPATH=src python scripts/bench_grid.py --features [--scale small]
    PYTHONPATH=src python scripts/bench_grid.py --kernel [--scale small]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import resource
from pathlib import Path
from time import perf_counter

import numpy as np

from repro.core import FeatureConfig, LeapmeConfig, LeapmeMatcher
from repro.core.feature_cache import PairFeatureStore, PairUniverse
from repro.core.pair_features import name_distance_block
from repro.datasets import build_domain_embeddings, load_dataset
from repro.evaluation import ExperimentRunner, PhaseTimings
from repro.ioutils import atomic_write_text
from repro.nn.schedule import TrainingSchedule


def _network(kind: str) -> LeapmeConfig | None:
    if kind == "paper":
        return None  # LeapmeMatcher default: the paper's network
    return LeapmeConfig(
        hidden_sizes=(8,), schedule=TrainingSchedule.constant(1, 1e-3)
    )


def _factories(embeddings, network: LeapmeConfig | None) -> dict:
    return {
        config.label(): (
            lambda config=config: LeapmeMatcher(
                embeddings, config, config=network
            )
        )
        for config in FeatureConfig.grid()
    }


def _phase_sum(results) -> PhaseTimings:
    total = PhaseTimings()
    for result in results:
        total.merge(result.timings)
    return total


def _aggregates(results) -> list:
    return [
        (
            r.matcher_name,
            r.dataset_name,
            r.settings.train_fraction,
            [
                (q.true_positives, q.false_positives, q.false_negatives)
                for q in r.qualities
            ],
            r.skipped_repetitions,
        )
        for r in results
    ]


# ---------------------------------------------------------------------------
# Featurization micro-benchmark (--features)
# ---------------------------------------------------------------------------


def _legacy_featurize(dataset, embeddings) -> dict:
    """The seed-era monolithic float64 featurizer, inlined for comparison.

    Recreates exactly what ``PropertyFeatureTable`` + the old
    ``pair_feature_matrix`` did before PR 5: dense float64 property
    tables, then one float64 full-width pair matrix.
    """
    from repro.core.instance_features import NUM_META_FEATURES, instance_meta_matrix

    started = perf_counter()
    refs = dataset.properties()
    dimension = embeddings.dimension
    meta = np.zeros((len(refs), NUM_META_FEATURES))
    value_emb = np.zeros((len(refs), dimension))
    name_emb = np.zeros((len(refs), dimension))
    for i, ref in enumerate(refs):
        values = dataset.values_of(ref)
        if values:
            meta[i] = instance_meta_matrix(values).mean(axis=0)
            total = np.zeros(dimension)
            for value in values:
                total += embeddings.embed_text(value)
            value_emb[i] = total / len(values)
        name_emb[i] = embeddings.embed_text(ref.name)
    property_seconds = perf_counter() - started

    started = perf_counter()
    universe = PairUniverse(dataset)
    pairs = list(universe.pairs)
    row_of = {ref: i for i, ref in enumerate(refs)}
    left = np.array([row_of[pair.left] for pair in pairs])
    right = np.array([row_of[pair.right] for pair in pairs])
    matrix = np.hstack(
        [
            np.abs(meta[left] - meta[right]),
            np.abs(value_emb[left] - value_emb[right]),
            np.abs(name_emb[left] - name_emb[right]),
            name_distance_block(
                [(pair.left.name, pair.right.name) for pair in pairs]
            ),
        ]
    )
    pair_seconds = perf_counter() - started
    return {
        "seconds": round(property_seconds + pair_seconds, 4),
        "stage_seconds": {
            "property_tables": round(property_seconds, 4),
            "pair_assembly": round(pair_seconds, 4),
        },
        "matrix_mb": round(matrix.nbytes / 2**20, 2),
        "dtype": str(matrix.dtype),
        "pairs": len(pairs),
        "properties": len(refs),
    }


def _pipeline_featurize(dataset, embeddings) -> dict:
    """The staged float32 pipeline: build the full-universe store."""
    started = perf_counter()
    store = PairFeatureStore.build(dataset, embeddings)
    seconds = perf_counter() - started
    pipeline = store.pipeline
    return {
        "seconds": round(seconds, 4),
        "stage_seconds": {
            name: round(value, 4)
            for name, value in sorted(pipeline.stage_seconds.items())
        },
        "stage_calls": dict(pipeline.stage_calls),
        "matrix_mb": round(store.matrix.nbytes / 2**20, 2),
        "dtype": str(store.matrix.dtype),
        "pairs": store.matrix.shape[0],
        "properties": len(store.table),
    }


def _measure_in_child(work, dataset, embeddings) -> dict:
    """Run ``work(dataset, embeddings)`` in a forked child.

    Fork isolation gives each variant its own peak-RSS accounting and an
    identical starting heap (the parent's, via copy-on-write), so the
    reported ``peak_rss_kb`` deltas are attributable to featurization
    allocations alone.
    """
    read_fd, write_fd = os.pipe()
    pid = os.fork()
    if pid == 0:  # child
        status = 1
        try:
            os.close(read_fd)
            result = work(dataset, embeddings)
            result["peak_rss_kb"] = resource.getrusage(
                resource.RUSAGE_SELF
            ).ru_maxrss
            with os.fdopen(write_fd, "w") as sink:
                sink.write(json.dumps(result))
            status = 0
        finally:
            os._exit(status)
    os.close(write_fd)
    with os.fdopen(read_fd) as source:
        payload = source.read()
    _, status = os.waitpid(pid, 0)
    if status != 0 or not payload:
        raise SystemExit(f"featurization child failed (status {status})")
    return json.loads(payload)


def _merge_section(out: Path, key: str, section: dict) -> None:
    """Merge ``section`` under ``key`` into the JSON file at ``out``."""
    payload = {}
    if out.exists():
        try:
            payload = json.loads(out.read_text())
        except (OSError, ValueError):
            payload = {}
    payload[key] = section
    atomic_write_text(out, json.dumps(payload, indent=2) + "\n")


def run_features_benchmark(args) -> int:
    dataset = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    embeddings = build_domain_embeddings(args.dataset, scale=args.scale)
    print(
        f"featurization: {args.dataset}/{args.scale}, "
        f"{len(dataset.properties())} properties"
    )

    legacy = _measure_in_child(_legacy_featurize, dataset, embeddings)
    pipeline = _measure_in_child(_pipeline_featurize, dataset, embeddings)
    assert legacy["pairs"] == pipeline["pairs"]

    speedup = (
        legacy["seconds"] / pipeline["seconds"] if pipeline["seconds"] else 0.0
    )
    memory_ratio = (
        legacy["peak_rss_kb"] / pipeline["peak_rss_kb"]
        if pipeline["peak_rss_kb"]
        else 0.0
    )
    print(
        f"legacy float64:   {legacy['seconds']:8.2f}s  "
        f"peak {legacy['peak_rss_kb'] / 1024:7.1f} MiB  "
        f"matrix {legacy['matrix_mb']:7.2f} MiB"
    )
    print(
        f"pipeline float32: {pipeline['seconds']:8.2f}s  "
        f"peak {pipeline['peak_rss_kb'] / 1024:7.1f} MiB  "
        f"matrix {pipeline['matrix_mb']:7.2f} MiB"
    )
    print(f"speedup: {speedup:.2f}x  peak-memory ratio: {memory_ratio:.2f}x")

    section = {
        "dataset": args.dataset,
        "scale": args.scale,
        "seed": args.seed,
        "pairs": pipeline["pairs"],
        "properties": pipeline["properties"],
        "legacy": legacy,
        "pipeline": pipeline,
        "speedup": round(speedup, 3),
        "peak_memory_ratio": round(memory_ratio, 3),
    }
    out = Path(args.out)
    _merge_section(out, "features", section)
    print(f"written: {out} (features section)")
    return 0


# ---------------------------------------------------------------------------
# Candidate-generation benchmark (--blocking)
# ---------------------------------------------------------------------------


def run_blocking_benchmark(args) -> int:
    """Blocked grid vs full-cross-product grid: cost and fidelity.

    Runs the 9-config grid twice with the cache-aware engine -- once
    over the full pair universe, once under ``--blocking`` -- and
    reports the candidate reduction, the pair recall of the policy and
    the per-cell F1 deltas the pruning costs.  Pruned true matches are
    scored as misses (the runner's honesty contract), so the deltas are
    against the full ground truth, not the surviving candidates.
    """
    from repro.blocking import CandidatePolicy

    policy = CandidatePolicy.from_label(args.blocking)
    if policy.is_null:
        raise SystemExit("--blocking needs a non-null policy label")
    dataset = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    embeddings = build_domain_embeddings(args.dataset, scale=args.scale)

    universe = PairUniverse(dataset, policy, embeddings=embeddings)
    stats = universe.blocking_stats()
    reduction_factor = (
        stats["total_pairs"] / stats["candidates"] if stats["candidates"] else 0.0
    )
    print(
        f"blocking {policy.label}: {stats['candidates']} of "
        f"{stats['total_pairs']} cross-source pairs "
        f"(reduction {stats['reduction_ratio']:.2%} = "
        f"{reduction_factor:.2f}x, pair recall {stats['pair_recall']:.2%})"
    )

    runner = ExperimentRunner(_factories(embeddings, _network(args.network)))
    kwargs = dict(
        train_fractions=args.fractions,
        repetitions=args.repetitions,
        seed=args.seed,
        workers=args.workers,
        share_features=True,
    )

    started = perf_counter()
    full_results = runner.run([dataset], **kwargs)
    full_seconds = perf_counter() - started
    print(f"full cross product: {full_seconds:8.2f}s")

    started = perf_counter()
    blocked_results = runner.run([dataset], policy=policy, **kwargs)
    blocked_seconds = perf_counter() - started
    print(f"blocked ({policy.label}): {blocked_seconds:8.2f}s")

    full_f1 = {
        (r.matcher_name, r.settings.train_fraction): r.f1 for r in full_results
    }
    deltas = {
        f"{r.matcher_name}@{r.settings.train_fraction:.0%}": round(
            r.f1 - full_f1[(r.matcher_name, r.settings.train_fraction)], 4
        )
        for r in blocked_results
    }
    # Signed per-cell deltas (blocked minus full).  Pruned true matches
    # count as misses, so a negative delta is a real quality loss; a
    # positive one means the policy pruned pairs the classifier would
    # have false-positived.  The acceptance gate is on the degradation
    # side: no cell may lose more than a hundredth of F1.
    min_delta = min(deltas.values())
    max_delta = max(deltas.values())
    degradation = round(max(0.0, -min_delta), 4)
    speedup = full_seconds / blocked_seconds if blocked_seconds else 0.0
    print(
        f"F1 delta (blocked - full): [{min_delta:+.4f}, {max_delta:+.4f}] "
        f"over {len(deltas)} cells; worst degradation {degradation:.4f}  "
        f"speedup {speedup:.2f}x"
    )

    section = {
        "dataset": args.dataset,
        "scale": args.scale,
        "seed": args.seed,
        "network": args.network,
        "policy": policy.label,
        "candidates": stats["candidates"],
        "total_pairs": stats["total_pairs"],
        "reduction_ratio": round(stats["reduction_ratio"], 4),
        "reduction_factor": round(reduction_factor, 3),
        "pair_recall": round(stats["pair_recall"], 4),
        "grid": {
            "configs": 9,
            "train_fractions": args.fractions,
            "repetitions": args.repetitions,
        },
        "full": {
            "wall_clock": round(full_seconds, 4),
            "mean_f1": round(
                sum(r.f1 for r in full_results) / len(full_results), 4
            ),
        },
        "blocked": {
            "wall_clock": round(blocked_seconds, 4),
            "mean_f1": round(
                sum(r.f1 for r in blocked_results) / len(blocked_results), 4
            ),
        },
        "f1_delta_by_cell": deltas,
        "f1_delta_min": round(min_delta, 4),
        "f1_delta_max": round(max_delta, 4),
        "f1_degradation_max": degradation,
        "speedup": round(speedup, 3),
    }
    out = Path(args.out)
    _merge_section(out, "blocking", section)
    print(f"written: {out} (blocking section)")
    return 0


# ---------------------------------------------------------------------------
# Name-distance kernel micro-benchmark (--kernel)
# ---------------------------------------------------------------------------


def run_kernel_benchmark(args) -> int:
    """Scalar reference vs batched kernel vs memo vs persistent reload."""
    import tempfile

    from repro.core.pipeline import (
        clear_distance_memo,
        disable_persistent_distances,
        enable_persistent_distances,
        flush_persistent_distances,
    )
    from repro.text.batch import name_distance_matrix, unique_lowered_pairs
    from repro.text.distance_cache import KERNEL_FINGERPRINT
    from repro.text.similarity import name_distance_vector

    dataset = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    universe = PairUniverse(dataset)
    raw = [(pair.left.name, pair.right.name) for pair in universe.pairs]
    uniq, _ = unique_lowered_pairs(raw)
    print(
        f"kernel: {args.dataset}/{args.scale}, {len(raw)} pair rows, "
        f"{len(uniq)} unique canonical pairs"
    )

    repeats = max(1, args.kernel_repeats)

    def best_of(work) -> float:
        return min(_timed(work) for _ in range(repeats))

    def _timed(work) -> float:
        started = perf_counter()
        work()
        return perf_counter() - started

    scalar_seconds = best_of(
        lambda: [name_distance_vector(a, b) for a, b in uniq]
    )
    batched_seconds = best_of(lambda: name_distance_matrix(raw))
    batched = name_distance_matrix(raw)
    reference = np.array([name_distance_vector(a, b) for a, b in raw])
    np.testing.assert_array_equal(batched, reference)

    # Warm in-process memo: every requested row is a dict hit + gather.
    clear_distance_memo()
    name_distance_block(raw)
    counters: dict[str, int] = {}
    memo_seconds = best_of(lambda: name_distance_block(raw, counters=counters))
    assert counters.get("computed", 0) == 0

    # Persistent reload: a fresh process (memo cleared) serving every
    # row from the on-disk cache instead of recomputing.
    with tempfile.TemporaryDirectory() as scratch:
        cache_path = Path(scratch) / "distance_cache.npz"
        enable_persistent_distances(cache_path)
        clear_distance_memo()
        name_distance_block(raw)
        flush_persistent_distances()
        disable_persistent_distances()
        clear_distance_memo()

        started = perf_counter()
        cache = enable_persistent_distances(cache_path)
        reload_counters: dict[str, int] = {}
        name_distance_block(raw, counters=reload_counters)
        persistent_seconds = perf_counter() - started
        disable_persistent_distances()
        clear_distance_memo()
    assert cache.loaded_entries == len(uniq)
    assert reload_counters.get("computed", 0) == 0

    batched_speedup = scalar_seconds / batched_seconds if batched_seconds else 0.0
    print(f"scalar reference:   {scalar_seconds * 1000:9.2f} ms")
    print(f"batched kernel:     {batched_seconds * 1000:9.2f} ms  ({batched_speedup:.2f}x)")
    print(f"warm memo:          {memo_seconds * 1000:9.2f} ms")
    print(f"persistent reload:  {persistent_seconds * 1000:9.2f} ms  (load + serve)")

    section = {
        "dataset": args.dataset,
        "scale": args.scale,
        "seed": args.seed,
        "pair_rows": len(raw),
        "unique_pairs": len(uniq),
        "repeats": repeats,
        "fingerprint": KERNEL_FINGERPRINT,
        "scalar_seconds": round(scalar_seconds, 4),
        "batched_seconds": round(batched_seconds, 4),
        "memo_seconds": round(memo_seconds, 4),
        "persistent_reload_seconds": round(persistent_seconds, 4),
        "batched_speedup": round(batched_speedup, 3),
        "bit_identical": True,
    }
    out = Path(args.out)
    _merge_section(out, "kernel", section)
    print(f"written: {out} (kernel section)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="headphones")
    parser.add_argument("--scale", default="small")
    parser.add_argument("--repetitions", type=int, default=15)
    parser.add_argument(
        "--fractions", type=float, nargs="+", default=[0.1, 0.2],
        help="train fractions; the default sparse-supervision grid is "
             "the regime the paper emphasises and the one where pair "
             "enumeration and feature assembly dominate the cell cost",
    )
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--network", choices=("light", "paper"), default="light",
        help="'light' (default) isolates the engine from NN training; "
             "'paper' uses the full Section IV-D network",
    )
    parser.add_argument("--out", default="BENCH_grid.json")
    parser.add_argument(
        "--features", action="store_true",
        help="run the featurization micro-benchmark (staged float32 "
             "pipeline vs legacy float64 path) instead of the grid",
    )
    parser.add_argument(
        "--kernel", action="store_true",
        help="run the name-distance kernel micro-benchmark (scalar "
             "reference vs batched kernel vs memo vs persistent "
             "reload) instead of the grid",
    )
    parser.add_argument(
        "--kernel-repeats", type=int, default=3,
        help="best-of-N repeats for each --kernel measurement",
    )
    parser.add_argument(
        "--blocking", nargs="?", const="minhash", default=None,
        metavar="POLICY",
        help="run the candidate-generation benchmark (blocked grid vs "
             "full cross product) under the given policy label "
             "(default: minhash) instead of the engine comparison",
    )
    args = parser.parse_args(argv)
    if sum(map(bool, (args.features, args.kernel, args.blocking))) > 1:
        parser.error("--features, --kernel and --blocking are mutually exclusive")
    if args.features:
        return run_features_benchmark(args)
    if args.kernel:
        return run_kernel_benchmark(args)
    if args.blocking:
        return run_blocking_benchmark(args)

    dataset = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    embeddings = build_domain_embeddings(args.dataset, scale=args.scale)
    runner = ExperimentRunner(_factories(embeddings, _network(args.network)))
    kwargs = dict(
        train_fractions=args.fractions,
        repetitions=args.repetitions,
        seed=args.seed,
    )
    cells = 9 * len(args.fractions)
    print(
        f"grid: {args.dataset}/{args.scale}, {cells} cells x "
        f"{args.repetitions} repetitions, network={args.network}"
    )

    # Untimed warm-up: prime the shared name-distance cache for every
    # cross-source pair.  Both timed runs start from the same state.
    started = perf_counter()
    universe = PairUniverse(dataset)
    name_distance_block(
        [(pair.left.name, pair.right.name) for pair in universe.pairs]
    )
    print(f"warm-up ({len(universe)} pairs): {perf_counter() - started:.2f}s")

    # Engine first: the process pool forks before the serial run has
    # grown the parent heap, keeping copy-on-write traffic low.
    started = perf_counter()
    engine_results = runner.run(
        [dataset], workers=args.workers, share_features=True, **kwargs
    )
    engine_seconds = perf_counter() - started
    print(f"engine (store + {args.workers} workers): {engine_seconds:8.2f}s")

    started = perf_counter()
    serial_results = runner.run(
        [dataset], workers=1, share_features=False, **kwargs
    )
    serial_seconds = perf_counter() - started
    print(f"serial (legacy path):       {serial_seconds:8.2f}s")

    identical = _aggregates(engine_results) == _aggregates(serial_results)
    speedup = serial_seconds / engine_seconds if engine_seconds > 0 else 0.0
    print(f"speedup: {speedup:.2f}x  aggregates identical: {identical}")
    if not identical:
        raise SystemExit("aggregates differ between serial and engine runs")

    payload = {
        "benchmark": "grid_engine",
        "dataset": args.dataset,
        "scale": args.scale,
        "seed": args.seed,
        "network": args.network,
        "grid": {
            "configs": 9,
            "train_fractions": args.fractions,
            "repetitions": args.repetitions,
            "cells": cells,
        },
        "host": {
            "cpus": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "serial": {
            "wall_clock": round(serial_seconds, 4),
            "phases": {
                k: round(v, 4)
                for k, v in _phase_sum(serial_results).as_dict().items()
            },
        },
        "engine": {
            "wall_clock": round(engine_seconds, 4),
            "workers": args.workers,
            "share_features": True,
            "phases": {
                k: round(v, 4)
                for k, v in _phase_sum(engine_results).as_dict().items()
            },
        },
        "speedup": round(speedup, 3),
        "aggregates_identical": identical,
    }
    out = Path(args.out)
    atomic_write_text(out, json.dumps(payload, indent=2) + "\n")
    print(f"written: {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
