"""Blocking strategies: prune candidate pairs before classification.

Every blocker produces its candidates as sorted ``(i, j)`` *index pairs*
into the dataset's sorted property list (:meth:`candidate_index_pairs`).
Index pairs are the native currency of the candidate-generation stage:
:class:`~repro.core.feature_cache.PairUniverse` consumes them directly,
no per-pair ``frozenset`` keys are materialised, and the lexicographic
``(i, j)`` order equals the historical full-enumeration order, which is
what keeps the :class:`NullBlocker` path byte-identical to the seed
pipeline.  The frozenset-based :meth:`candidate_keys` view remains for
the evaluation metrics in :mod:`repro.blocking.metrics`.

Bucket blockers (:class:`SketchBlocker`, :class:`EmbeddingLSHBlocker`)
derive per-property bucket keys that depend only on the property's own
name/values/embedding.  That locality is what makes delta ingestion
cheap and exact: after ``merged_with`` the keys of pre-existing
properties are unchanged (and memoised), so re-blocking a grown dataset
is a bucket lookup for the old rows plus fresh sketches for the new
source only — never a new×all cross product.
"""

from __future__ import annotations

import re
from abc import ABC, abstractmethod
from collections import Counter, defaultdict
from collections.abc import Hashable, Iterable, Sequence

import numpy as np

from repro.data.model import Dataset, PropertyRef
from repro.data.pairs import LabeledPair, PairSet, cross_source_index_pairs
from repro.errors import ConfigurationError
from repro.text.minhash import MinHasher
from repro.text.normalize import token_set
from repro.text.tokenize import tokenize


class Blocker(ABC):
    """Produces the candidate pair set the matcher will classify.

    A blocker trades *pair completeness* (true matches kept) against
    *reduction ratio* (pairs pruned); see :mod:`repro.blocking.metrics`.
    """

    #: Stable policy label; see :class:`repro.blocking.policy.CandidatePolicy`.
    name: str = "blocker"

    @abstractmethod
    def candidate_index_pairs(
        self,
        dataset: Dataset,
        properties: Sequence[PropertyRef] | None = None,
    ) -> list[tuple[int, int]]:
        """Sorted ``(i, j)`` cross-source index pairs into ``properties``.

        ``properties`` defaults to ``dataset.properties()`` and must be
        that sorted sequence when given (callers pass it to avoid a
        second sort).  Pairs satisfy ``i < j`` and span two sources.
        """

    def candidate_keys(self, dataset: Dataset) -> set[frozenset[PropertyRef]]:
        """The unordered cross-source pairs to keep (metrics view)."""
        properties = dataset.properties()
        return {
            frozenset((properties[i], properties[j]))
            for i, j in self.candidate_index_pairs(dataset, properties)
        }

    def candidate_pairs(self, dataset: Dataset) -> PairSet:
        """Labelled candidate pairs (ground truth from the dataset)."""
        properties = dataset.properties()
        return PairSet(
            [
                LabeledPair(
                    properties[i],
                    properties[j],
                    dataset.is_match(properties[i], properties[j]),
                )
                for i, j in self.candidate_index_pairs(dataset, properties)
            ]
        )


class NullBlocker(Blocker):
    """No pruning: every cross-source pair is a candidate (Algorithm 1)."""

    name = "null"

    def candidate_index_pairs(
        self,
        dataset: Dataset,
        properties: Sequence[PropertyRef] | None = None,
    ) -> list[tuple[int, int]]:
        if properties is None:
            properties = dataset.properties()
        return list(cross_source_index_pairs(properties))


def _emit_bucket(
    pairs: set[tuple[int, int]],
    members: Sequence[int],
    sources: Sequence[str],
) -> None:
    """Add all cross-source member pairs of one bucket (members ascending)."""
    for position, i in enumerate(members):
        for j in members[position + 1 :]:
            if sources[i] != sources[j]:
                pairs.add((i, j))


class BucketBlocker(Blocker):
    """Inverted-index blocking: share a bucket key, become a candidate.

    Subclasses implement :meth:`property_keys`; the pair enumeration
    cost is bucket-output-sized, never quadratic in the property count.
    """

    @abstractmethod
    def property_keys(
        self, dataset: Dataset, ref: PropertyRef
    ) -> Iterable[Hashable]:
        """Bucket keys of one property, derived from the property alone."""

    def bucket_index(
        self,
        dataset: Dataset,
        properties: Sequence[PropertyRef] | None = None,
    ) -> dict[Hashable, list[int]]:
        """Inverted index ``bucket key -> ascending property indices``."""
        if properties is None:
            properties = dataset.properties()
        buckets: dict[Hashable, list[int]] = defaultdict(list)
        for index, ref in enumerate(properties):
            for key in self.property_keys(dataset, ref):
                buckets[key].append(index)
        return buckets

    def candidate_index_pairs(
        self,
        dataset: Dataset,
        properties: Sequence[PropertyRef] | None = None,
    ) -> list[tuple[int, int]]:
        if properties is None:
            properties = dataset.properties()
        sources = [ref.source for ref in properties]
        pairs: set[tuple[int, int]] = set()
        for members in self.bucket_index(dataset, properties).values():
            if len(members) > 1:
                _emit_bucket(pairs, members, sources)
        return sorted(pairs)


class TokenBlocker(Blocker):
    """Shared-token blocking over names and (optionally) values.

    Two properties become candidates when they share a normalised name
    token, or share a sufficiently *selective* value token (one carried
    by at most ``max_value_token_fraction`` of all properties -- ubiquitous
    tokens like unit-free digits would otherwise void the pruning).

    The value-token selectivity cut-off depends on the *global* property
    count, so this blocker is not incrementally stable: growing a dataset
    can re-block pre-existing pairs.  Delta ingestion stays exact (the
    universe is re-derived from the merged dataset) but may featurize a
    few old-source pairs; prefer :class:`SketchBlocker` for serving.
    """

    name = "token"

    def __init__(
        self,
        use_values: bool = True,
        max_value_token_fraction: float = 0.25,
    ) -> None:
        if not 0.0 < max_value_token_fraction <= 1.0:
            raise ConfigurationError("max_value_token_fraction must be in (0, 1]")
        self.use_values = use_values
        self.max_value_token_fraction = max_value_token_fraction

    def _value_tokens(self, dataset: Dataset, ref: PropertyRef) -> set[str]:
        tokens: set[str] = set()
        for value in dataset.values_of(ref):
            tokens.update(token.lower() for token in tokenize(value) if not token.isdigit())
        return tokens

    def candidate_index_pairs(
        self,
        dataset: Dataset,
        properties: Sequence[PropertyRef] | None = None,
    ) -> list[tuple[int, int]]:
        if properties is None:
            properties = dataset.properties()
        sources = [ref.source for ref in properties]
        buckets: dict[str, list[int]] = defaultdict(list)
        for index, ref in enumerate(properties):
            for token in token_set(ref.name):
                buckets[f"n:{token}"].append(index)
        if self.use_values:
            token_owners: Counter[str] = Counter()
            per_index_tokens: list[set[str]] = []
            for ref in properties:
                tokens = self._value_tokens(dataset, ref)
                per_index_tokens.append(tokens)
                token_owners.update(tokens)
            limit = max(2, int(self.max_value_token_fraction * len(properties)))
            for index, tokens in enumerate(per_index_tokens):
                for token in tokens:
                    if token_owners[token] <= limit:
                        buckets[f"v:{token}"].append(index)
        pairs: set[tuple[int, int]] = set()
        for members in buckets.values():
            if len(members) > 1:
                _emit_bucket(pairs, members, sources)
        return sorted(pairs)


class MinHashBlocker(Blocker):
    """LSH banding over the combined name+value token set of a property.

    Properties whose signatures agree on any full band become candidates;
    band size controls the similarity threshold of the implicit filter.
    This is the paper's plain Duan-et-al. construction kept for baseline
    evaluation; the production ``minhash`` candidate policy is the
    higher-recall :class:`SketchBlocker`.
    """

    def __init__(
        self,
        num_hashes: int = 32,
        band_size: int = 4,
        seed: int = 0,
    ) -> None:
        if band_size < 1 or num_hashes % band_size != 0:
            raise ConfigurationError("band_size must divide num_hashes")
        self.num_hashes = num_hashes
        self.band_size = band_size
        self._hasher = MinHasher(num_hashes=num_hashes, seed=seed)

    def _tokens(self, dataset: Dataset, ref: PropertyRef) -> set[str]:
        tokens = set(token_set(ref.name))
        for value in dataset.values_of(ref):
            tokens.update(token.lower() for token in tokenize(value))
        return tokens

    def candidate_index_pairs(
        self,
        dataset: Dataset,
        properties: Sequence[PropertyRef] | None = None,
    ) -> list[tuple[int, int]]:
        if properties is None:
            properties = dataset.properties()
        sources = [ref.source for ref in properties]
        bands = self.num_hashes // self.band_size
        buckets: dict[tuple, list[int]] = defaultdict(list)
        for index, ref in enumerate(properties):
            signature = self._hasher.signature(self._tokens(dataset, ref))
            for band in range(bands):
                start = band * self.band_size
                band_key = (band, tuple(signature[start : start + self.band_size]))
                buckets[band_key].append(index)
        pairs: set[tuple[int, int]] = set()
        for members in buckets.values():
            if len(members) > 1:
                _emit_bucket(pairs, members, sources)
        return sorted(pairs)


#: Value tokens treated as the boolean shape class: yes/no-style columns
#: carry no vocabulary overlap across sources, so they share one bucket.
_BOOLEAN_TOKENS = frozenset(
    {"yes", "no", "y", "n", "true", "false", "yy", "nn", "on", "off"}
)


def _padded_trigrams(token: str) -> Iterable[str]:
    padded = f"^{token}$"
    return (padded[k : k + 3] for k in range(len(padded) - 2))


class SketchBlocker(BucketBlocker):
    """The ``minhash`` candidate policy: banded sketches + bounded expansion.

    Per property it emits inverted-index keys from several channels --
    normalised name tokens (``n``) and their padded character trigrams
    (``ng``), one-row minhash bands over the full value token set (``v``),
    digit runs (``d``), alphabetic runs (``a``) and their trigrams (``vg``)
    from raw values, and a boolean shape class (``bool``).  Trigram and
    run channels make the sketch robust to the typo/unit noise property
    values carry ("lightning"/"lighning", "hz"/"khz", "141 grams"/"g 176").

    Direct candidates are cross-source pairs sharing a key whose bucket
    is below its channel's frequency cap (oversized buckets carry no
    signal and would re-quadratize the output).  A second, *bounded
    transitive* channel then union-finds properties over rare name/alpha
    keys (document frequency <= ``union_df``) with a hard component-size
    cap and adds each component's cross-source pairs: synonym columns
    with disjoint vocabularies ("heft"/"weight"/"mass") are usually
    bridged by a third source even when they share no key directly.

    Every key is a pure function of one property's name and values, so
    signatures are memoised per property: re-blocking after
    ``merged_with`` recomputes sketches for the new source only.
    """

    name = "minhash"

    #: Per-channel bucket-size caps for the direct channel.
    _CAPS = {
        "n": 25,
        "ng": 10,
        "v": 25,
        "d": 15,
        "a": 20,
        "vg": 10,
        "bool": 30,
    }
    #: Channels whose rare keys feed the bounded union-find expansion.
    _UNION_KINDS = ("a", "n")

    def __init__(
        self,
        num_hashes: int = 32,
        band_size: int = 1,
        seed: int = 0,
        union_df: int = 8,
        component_cap: int = 16,
    ) -> None:
        if band_size < 1 or num_hashes % band_size != 0:
            raise ConfigurationError("band_size must divide num_hashes")
        if union_df < 2:
            raise ConfigurationError("union_df must be >= 2")
        if component_cap < 2:
            raise ConfigurationError("component_cap must be >= 2")
        self.num_hashes = num_hashes
        self.band_size = band_size
        self.seed = seed
        self.union_df = union_df
        self.component_cap = component_cap
        self._hasher = MinHasher(num_hashes=num_hashes, seed=seed)
        # Sketch memo: keys are a pure function of (name, values), so a
        # property re-seen after merged_with() is a dict hit, which is
        # what makes delta re-blocking a bucket lookup for old rows.
        self._memo: dict[tuple[PropertyRef, int, int], tuple[Hashable, ...]] = {}

    def property_keys(
        self, dataset: Dataset, ref: PropertyRef
    ) -> Iterable[Hashable]:
        values = dataset.values_of(ref)
        memo_key = (ref, len(values), hash(tuple(values)))
        cached = self._memo.get(memo_key)
        if cached is not None:
            return cached
        keys: set[Hashable] = set()
        for token in token_set(ref.name):
            keys.add(("n", token))
            keys.update(("ng", gram) for gram in _padded_trigrams(token))
        value_tokens: set[str] = set()
        alpha_runs: set[str] = set()
        digit_runs: set[str] = set()
        for value in values:
            lowered = value.lower()
            value_tokens.update(token.lower() for token in tokenize(value))
            alpha_runs.update(re.findall(r"[a-z]+", lowered))
            digit_runs.update(re.findall(r"\d{2,}", lowered))
        if value_tokens:
            signature = self._hasher.signature(value_tokens)
            bands = self.num_hashes // self.band_size
            for band in range(bands):
                start = band * self.band_size
                keys.add(
                    ("v", band, tuple(signature[start : start + self.band_size]))
                )
        for run in digit_runs:
            keys.add(("d", run))
        for run in alpha_runs:
            keys.add(("a", run))
            keys.update(("vg", gram) for gram in _padded_trigrams(run))
        if value_tokens & _BOOLEAN_TOKENS:
            keys.add(("bool",))
        frozen = tuple(sorted(keys, key=repr))
        self._memo[memo_key] = frozen
        return frozen

    def candidate_index_pairs(
        self,
        dataset: Dataset,
        properties: Sequence[PropertyRef] | None = None,
    ) -> list[tuple[int, int]]:
        if properties is None:
            properties = dataset.properties()
        sources = [ref.source for ref in properties]
        buckets = self.bucket_index(dataset, properties)
        pairs: set[tuple[int, int]] = set()
        for key, members in buckets.items():
            if 2 <= len(members) <= self._CAPS[key[0]]:
                _emit_bucket(pairs, members, sources)
        self._expand_components(buckets, sources, pairs)
        return sorted(pairs)

    def _expand_components(
        self,
        buckets: dict[Hashable, list[int]],
        sources: Sequence[str],
        pairs: set[tuple[int, int]],
    ) -> None:
        """Union-find over rare keys, capped; add component cross pairs."""
        parent = list(range(len(sources)))
        size = [1] * len(sources)

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        strong = sorted(
            key for key in buckets if key[0] in self._UNION_KINDS
        )
        for key in strong:
            members = buckets[key]
            if not 2 <= len(members) <= self.union_df:
                continue
            anchor = members[0]
            for member in members[1:]:
                root_a, root_b = find(anchor), find(member)
                if root_a == root_b:
                    continue
                if size[root_a] + size[root_b] > self.component_cap:
                    continue
                if size[root_a] < size[root_b]:
                    root_a, root_b = root_b, root_a
                parent[root_b] = root_a
                size[root_a] += size[root_b]
        components: dict[int, list[int]] = defaultdict(list)
        for index in range(len(sources)):
            components[find(index)].append(index)
        for members in components.values():
            if len(members) > 1:
                _emit_bucket(pairs, members, sources)


class EmbeddingLSHBlocker(BucketBlocker):
    """The ``embedding`` candidate policy: random-hyperplane LSH buckets.

    Each property is embedded as the mean of its name embedding and its
    per-value text embeddings; ``num_tables`` independent sign-pattern
    hashes of ``num_bits`` hyperplanes each bucket the vectors (Charikar
    SimHash).  Properties with an all-zero embedding (fully
    out-of-vocabulary) share the all-positive sign pattern per table and
    therefore still meet each other.  Hash keys are a pure function of
    one property's embedding, so the blocker is incrementally stable
    under ``merged_with`` like :class:`SketchBlocker`.
    """

    name = "embedding"

    def __init__(
        self,
        embeddings,
        num_tables: int = 8,
        num_bits: int = 8,
        seed: int = 0,
    ) -> None:
        if num_tables < 1:
            raise ConfigurationError("num_tables must be >= 1")
        if num_bits < 1:
            raise ConfigurationError("num_bits must be >= 1")
        if embeddings is None:
            raise ConfigurationError(
                "EmbeddingLSHBlocker needs word embeddings to bucket properties"
            )
        self.embeddings = embeddings
        self.num_tables = num_tables
        self.num_bits = num_bits
        self.seed = seed
        rng = np.random.default_rng([seed, embeddings.dimension])
        self._planes = rng.standard_normal(
            (num_tables, num_bits, embeddings.dimension)
        )
        self._memo: dict[tuple[PropertyRef, int, int], tuple[Hashable, ...]] = {}

    def _vector(self, dataset: Dataset, ref: PropertyRef) -> np.ndarray:
        parts = [self.embeddings.embed_text(ref.name)]
        parts.extend(
            self.embeddings.embed_text(value) for value in dataset.values_of(ref)
        )
        return np.mean(parts, axis=0)

    def property_keys(
        self, dataset: Dataset, ref: PropertyRef
    ) -> Iterable[Hashable]:
        values = dataset.values_of(ref)
        memo_key = (ref, len(values), hash(tuple(values)))
        cached = self._memo.get(memo_key)
        if cached is not None:
            return cached
        vector = self._vector(dataset, ref)
        keys = []
        for table in range(self.num_tables):
            bits = (self._planes[table] @ vector) >= 0.0
            keys.append(("t", table, tuple(bool(bit) for bit in bits)))
        frozen = tuple(keys)
        self._memo[memo_key] = frozen
        return frozen
