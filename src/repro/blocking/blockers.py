"""Blocking strategies: prune candidate pairs before classification."""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import Counter, defaultdict

from repro.baselines.lsh import MinHasher
from repro.data.model import Dataset, PropertyRef
from repro.data.pairs import LabeledPair, PairSet
from repro.errors import ConfigurationError
from repro.text.normalize import token_set
from repro.text.tokenize import tokenize


class Blocker(ABC):
    """Produces the candidate pair set the matcher will classify.

    A blocker trades *pair completeness* (true matches kept) against
    *reduction ratio* (pairs pruned); see :mod:`repro.blocking.metrics`.
    """

    @abstractmethod
    def candidate_keys(self, dataset: Dataset) -> set[frozenset[PropertyRef]]:
        """The unordered cross-source pairs to keep."""

    def candidate_pairs(self, dataset: Dataset) -> PairSet:
        """Labelled candidate pairs (ground truth from the dataset)."""
        pairs = []
        for key in sorted(self.candidate_keys(dataset), key=sorted):
            left, right = sorted(key)
            pairs.append(LabeledPair(left, right, dataset.is_match(left, right)))
        return PairSet(pairs)


def _all_cross_source_keys(dataset: Dataset) -> set[frozenset[PropertyRef]]:
    properties = dataset.properties()
    keys = set()
    for i, left in enumerate(properties):
        for right in properties[i + 1 :]:
            if left.source != right.source:
                keys.add(frozenset((left, right)))
    return keys


class NullBlocker(Blocker):
    """No pruning: every cross-source pair is a candidate (Algorithm 1)."""

    def candidate_keys(self, dataset: Dataset) -> set[frozenset[PropertyRef]]:
        return _all_cross_source_keys(dataset)


class TokenBlocker(Blocker):
    """Shared-token blocking over names and (optionally) values.

    Two properties become candidates when they share a normalised name
    token, or share a sufficiently *selective* value token (one carried
    by at most ``max_value_token_fraction`` of all properties -- ubiquitous
    tokens like unit-free digits would otherwise void the pruning).
    """

    def __init__(
        self,
        use_values: bool = True,
        max_value_token_fraction: float = 0.25,
    ) -> None:
        if not 0.0 < max_value_token_fraction <= 1.0:
            raise ConfigurationError("max_value_token_fraction must be in (0, 1]")
        self.use_values = use_values
        self.max_value_token_fraction = max_value_token_fraction

    def _value_tokens(self, dataset: Dataset, ref: PropertyRef) -> set[str]:
        tokens: set[str] = set()
        for value in dataset.values_of(ref):
            tokens.update(token.lower() for token in tokenize(value) if not token.isdigit())
        return tokens

    def candidate_keys(self, dataset: Dataset) -> set[frozenset[PropertyRef]]:
        properties = dataset.properties()
        buckets: dict[str, list[PropertyRef]] = defaultdict(list)
        for ref in properties:
            for token in token_set(ref.name):
                buckets[f"n:{token}"].append(ref)
        if self.use_values:
            token_owners: Counter[str] = Counter()
            per_ref_tokens: dict[PropertyRef, set[str]] = {}
            for ref in properties:
                tokens = self._value_tokens(dataset, ref)
                per_ref_tokens[ref] = tokens
                token_owners.update(tokens)
            limit = max(2, int(self.max_value_token_fraction * len(properties)))
            for ref, tokens in per_ref_tokens.items():
                for token in tokens:
                    if token_owners[token] <= limit:
                        buckets[f"v:{token}"].append(ref)
        keys: set[frozenset[PropertyRef]] = set()
        for members in buckets.values():
            for i, left in enumerate(members):
                for right in members[i + 1 :]:
                    if left.source != right.source:
                        keys.add(frozenset((left, right)))
        return keys


class MinHashBlocker(Blocker):
    """LSH banding over the combined name+value token set of a property.

    Properties whose signatures agree on any full band become candidates;
    band size controls the similarity threshold of the implicit filter.
    """

    def __init__(
        self,
        num_hashes: int = 32,
        band_size: int = 4,
        seed: int = 0,
    ) -> None:
        if band_size < 1 or num_hashes % band_size != 0:
            raise ConfigurationError("band_size must divide num_hashes")
        self.num_hashes = num_hashes
        self.band_size = band_size
        self._hasher = MinHasher(num_hashes=num_hashes, seed=seed)

    def _tokens(self, dataset: Dataset, ref: PropertyRef) -> set[str]:
        tokens = set(token_set(ref.name))
        for value in dataset.values_of(ref):
            tokens.update(token.lower() for token in tokenize(value))
        return tokens

    def candidate_keys(self, dataset: Dataset) -> set[frozenset[PropertyRef]]:
        properties = dataset.properties()
        signatures = {
            ref: self._hasher.signature(self._tokens(dataset, ref))
            for ref in properties
        }
        bands = self.num_hashes // self.band_size
        buckets: dict[tuple, list[PropertyRef]] = defaultdict(list)
        for ref, signature in signatures.items():
            for band in range(bands):
                start = band * self.band_size
                band_key = (band, tuple(signature[start : start + self.band_size]))
                buckets[band_key].append(ref)
        keys: set[frozenset[PropertyRef]] = set()
        for members in buckets.values():
            if len(members) < 2:
                continue
            for i, left in enumerate(members):
                for right in members[i + 1 :]:
                    if left.source != right.source:
                        keys.add(frozenset((left, right)))
        return keys
