"""Blocking quality: pair completeness and reduction ratio."""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.model import Dataset, PropertyRef


@dataclass(frozen=True)
class BlockingQuality:
    """Standard blocking measures.

    * ``pair_completeness`` -- fraction of true matching pairs that
      survive blocking (blocking recall; lost pairs are unrecoverable).
    * ``reduction_ratio`` -- fraction of all candidate pairs pruned.
    """

    n_candidates: int
    n_total_pairs: int
    n_true_pairs: int
    n_true_pairs_kept: int

    @property
    def pair_completeness(self) -> float:
        if self.n_true_pairs == 0:
            return 1.0
        return self.n_true_pairs_kept / self.n_true_pairs

    @property
    def reduction_ratio(self) -> float:
        if self.n_total_pairs == 0:
            return 0.0
        return 1.0 - self.n_candidates / self.n_total_pairs

    def describe(self) -> str:
        """One-line summary."""
        return (
            f"{self.n_candidates}/{self.n_total_pairs} candidates "
            f"(RR={self.reduction_ratio:.2f}), "
            f"PC={self.pair_completeness:.2f} "
            f"({self.n_true_pairs_kept}/{self.n_true_pairs} true pairs kept)"
        )


def blocking_quality(
    dataset: Dataset, candidates: set[frozenset[PropertyRef]]
) -> BlockingQuality:
    """Score a candidate set against the dataset's ground truth."""
    properties = dataset.properties()
    per_source: dict[str, int] = {}
    for ref in properties:
        per_source[ref.source] = per_source.get(ref.source, 0) + 1
    total = len(properties) * (len(properties) - 1) // 2
    within = sum(count * (count - 1) // 2 for count in per_source.values())
    true_pairs = dataset.matching_pairs()
    kept = len(true_pairs & candidates)
    return BlockingQuality(
        n_candidates=len(candidates),
        n_total_pairs=total - within,
        n_true_pairs=len(true_pairs),
        n_true_pairs_kept=kept,
    )
