"""The candidate-generation policy: a named, serialisable blocker choice.

A :class:`CandidatePolicy` is the value that travels through the stack —
CLI flags (``repro match --blocking minhash:seed=7``), matcher bundles
(persisted in ``config.json`` and re-verified on load), serve tenant
specs and their journal records, and the ingest bootstrap — while the
heavyweight :class:`~repro.blocking.blockers.Blocker` instance it
resolves to stays process-local.  The default (``null``) policy keeps
the exact full cross-product semantics of the seed pipeline.

Labels are ``<blocker>`` or ``<blocker>:key=value,key=value``::

    null                      every cross-source pair (the default)
    minhash                   SketchBlocker sketch channels + expansion
    minhash:seed=7,union_df=6 parameter overrides
    token                     shared-token blocking (evaluation-oriented)
    embedding                 random-hyperplane LSH over embeddings
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.blocking.blockers import (
    Blocker,
    EmbeddingLSHBlocker,
    NullBlocker,
    SketchBlocker,
    TokenBlocker,
)
from repro.errors import ConfigurationError

#: Parameter schema per blocker label: name -> (type, default).
_PARAM_SCHEMAS: dict[str, dict[str, tuple[type, object]]] = {
    "null": {},
    "minhash": {
        "num_hashes": (int, 32),
        "band_size": (int, 1),
        "seed": (int, 0),
        "union_df": (int, 8),
        "component_cap": (int, 16),
    },
    "token": {
        "use_values": (bool, True),
        "max_value_token_fraction": (float, 0.25),
    },
    "embedding": {
        "num_tables": (int, 8),
        "num_bits": (int, 8),
        "seed": (int, 0),
    },
}


def _coerce(blocker: str, key: str, value: object) -> object:
    schema = _PARAM_SCHEMAS[blocker]
    if key not in schema:
        raise ConfigurationError(
            f"unknown parameter {key!r} for blocking policy {blocker!r}; "
            f"expected one of {sorted(schema)}"
        )
    kind, _ = schema[key]
    if kind is bool:
        if isinstance(value, bool):
            return value
        if isinstance(value, int):
            return bool(value)
        if isinstance(value, str) and value.lower() in {"true", "false", "0", "1"}:
            return value.lower() in {"true", "1"}
        raise ConfigurationError(f"parameter {key!r} must be a boolean, got {value!r}")
    try:
        return kind(value)
    except (TypeError, ValueError):
        raise ConfigurationError(
            f"parameter {key!r} must be {kind.__name__}, got {value!r}"
        ) from None


@dataclass(frozen=True)
class CandidatePolicy:
    """A blocker name plus its parameters, in canonical sorted form."""

    blocker: str = "null"
    params: tuple[tuple[str, object], ...] = field(default=())

    def __post_init__(self) -> None:
        if self.blocker not in _PARAM_SCHEMAS:
            raise ConfigurationError(
                f"unknown blocking policy {self.blocker!r}; "
                f"expected one of {sorted(_PARAM_SCHEMAS)}"
            )
        coerced = tuple(
            sorted((key, _coerce(self.blocker, key, value)) for key, value in self.params)
        )
        object.__setattr__(self, "params", coerced)

    # -- constructors --------------------------------------------------------
    @classmethod
    def null(cls) -> "CandidatePolicy":
        return cls("null")

    @classmethod
    def from_label(cls, label: str | None) -> "CandidatePolicy":
        """Parse ``<blocker>`` or ``<blocker>:k=v,k=v`` (CLI syntax)."""
        if label is None or label in {"", "none", "off"}:
            return cls.null()
        name, _, raw_params = label.partition(":")
        params = []
        if raw_params:
            for chunk in raw_params.split(","):
                key, sep, value = chunk.partition("=")
                if not sep or not key or not value:
                    raise ConfigurationError(
                        f"malformed blocking parameter {chunk!r} in {label!r}; "
                        "expected key=value"
                    )
                params.append((key.strip(), value.strip()))
        return cls(name.strip(), tuple(params))

    @classmethod
    def from_dict(cls, payload: dict) -> "CandidatePolicy":
        if not isinstance(payload, dict) or "blocker" not in payload:
            raise ConfigurationError(
                "candidate policy payload must be a dict with a 'blocker' key"
            )
        params = payload.get("params", {})
        if not isinstance(params, dict):
            raise ConfigurationError("candidate policy 'params' must be a dict")
        return cls(payload["blocker"], tuple(params.items()))

    # -- views ---------------------------------------------------------------
    @property
    def is_null(self) -> bool:
        return self.blocker == "null"

    @property
    def requires_embeddings(self) -> bool:
        return self.blocker == "embedding"

    @property
    def label(self) -> str:
        """Canonical label, round-trippable through :meth:`from_label`."""
        if not self.params:
            return self.blocker
        rendered = ",".join(f"{key}={value}" for key, value in self.params)
        return f"{self.blocker}:{rendered}"

    def to_dict(self) -> dict:
        return {"blocker": self.blocker, "params": dict(self.params)}

    # -- resolution ----------------------------------------------------------
    def resolve(self, embeddings=None) -> Blocker:
        """Build the blocker instance this policy names.

        ``embeddings`` is only consulted by policies whose
        :attr:`requires_embeddings` is true; passing it for others is
        harmless.
        """
        merged = {
            key: default for key, (_, default) in _PARAM_SCHEMAS[self.blocker].items()
        }
        merged.update(dict(self.params))
        if self.blocker == "null":
            return NullBlocker()
        if self.blocker == "minhash":
            return SketchBlocker(**merged)
        if self.blocker == "token":
            return TokenBlocker(**merged)
        if self.blocker == "embedding":
            if embeddings is None:
                raise ConfigurationError(
                    "the 'embedding' blocking policy needs word embeddings; "
                    "resolve it where the matcher's embeddings are available"
                )
            return EmbeddingLSHBlocker(embeddings, **merged)
        raise ConfigurationError(f"unknown blocking policy {self.blocker!r}")
