"""Candidate blocking for scalable multi-source property matching.

Algorithm 1 classifies *every* cross-source property pair -- O(P^2) in
the total property count, which the paper's camera dataset (3 200+
properties, ~5M pairs) already strains.  Blocking prunes the candidate
set before feature extraction, the standard scalability lever in the
schema/entity-matching literature (cf. Rahm, "Towards large-scale schema
and ontology matching").

* :mod:`repro.blocking.blockers` -- the :class:`Blocker` interface and
  three implementations: :class:`NullBlocker` (all pairs),
  :class:`TokenBlocker` (shared normalised name token or shared frequent
  value token) and :class:`MinHashBlocker` (LSH banding over combined
  name+value token sets).
* :mod:`repro.blocking.metrics` -- pair completeness / reduction ratio,
  the standard blocking quality measures.
"""

from repro.blocking.blockers import Blocker, MinHashBlocker, NullBlocker, TokenBlocker
from repro.blocking.metrics import BlockingQuality, blocking_quality

__all__ = [
    "Blocker",
    "NullBlocker",
    "TokenBlocker",
    "MinHashBlocker",
    "BlockingQuality",
    "blocking_quality",
]
