"""Candidate generation for scalable multi-source property matching.

Algorithm 1 classifies *every* cross-source property pair -- O(P^2) in
the total property count, which the paper's camera dataset (3 200+
properties, ~5M pairs) already strains.  Blocking prunes the candidate
set before feature extraction, the standard scalability lever in the
schema/entity-matching literature (cf. Rahm, "Towards large-scale schema
and ontology matching").

Since PR 10 blocking is a first-class pipeline stage, not an
evaluation-only report: a :class:`CandidatePolicy` names a blocker and
its parameters, travels through CLI flags, matcher bundles, serve tenant
specs and ingest bootstrap, and every
:class:`~repro.core.feature_cache.PairUniverse` enumerates only the
candidates its policy produces.  The ``null`` policy keeps the exact
full cross-product semantics.

* :mod:`repro.blocking.blockers` -- the :class:`Blocker` interface
  (index-pair native) and implementations: :class:`NullBlocker` (all
  pairs), :class:`TokenBlocker` (shared tokens),
  :class:`MinHashBlocker` (plain Duan-et-al. banding, baseline),
  :class:`SketchBlocker` (the production ``minhash`` policy: banded
  value sketches + name/digit/alpha channels + bounded transitive
  expansion) and :class:`EmbeddingLSHBlocker` (random-hyperplane
  buckets over property embeddings).
* :mod:`repro.blocking.policy` -- the serialisable policy record.
* :mod:`repro.blocking.metrics` -- pair completeness / reduction ratio,
  the standard blocking quality measures.
"""

from repro.blocking.blockers import (
    Blocker,
    BucketBlocker,
    EmbeddingLSHBlocker,
    MinHashBlocker,
    NullBlocker,
    SketchBlocker,
    TokenBlocker,
)
from repro.blocking.metrics import BlockingQuality, blocking_quality
from repro.blocking.policy import CandidatePolicy

__all__ = [
    "Blocker",
    "BucketBlocker",
    "NullBlocker",
    "TokenBlocker",
    "MinHashBlocker",
    "SketchBlocker",
    "EmbeddingLSHBlocker",
    "CandidatePolicy",
    "BlockingQuality",
    "blocking_quality",
]
