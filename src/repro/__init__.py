"""LEAPME reproduction: learning-based property matching with embeddings.

A from-scratch implementation of the system described in "Towards the
smart use of embedding and instance features for property matching"
(Ayala, Hernandez, Ruiz, Rahm -- ICDE 2021), including every substrate it
depends on: string distances, trained word embeddings, a numpy neural
network, classical ML baselines, synthetic multi-source product datasets
and the full evaluation harness.

Quickstart::

    from repro import (
        LeapmeMatcher, build_domain_embeddings, build_pairs,
        evaluate_matcher, load_dataset,
    )

    dataset = load_dataset("cameras", scale="tiny")
    embeddings = build_domain_embeddings("cameras", scale="tiny")
    matcher = LeapmeMatcher(embeddings)
    result = evaluate_matcher(matcher, dataset)
    print(result.describe())

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.blocking import (
    Blocker,
    MinHashBlocker,
    NullBlocker,
    TokenBlocker,
    blocking_quality,
)
from repro.baselines import (
    AmlMatcher,
    FcaMapMatcher,
    LshMatcher,
    NezhadiMatcher,
    SemPropMatcher,
)
from repro.core import (
    BlockImportance,
    FeatureConfig,
    FeatureKinds,
    FeatureScope,
    LeapmeClassifier,
    LeapmeConfig,
    LeapmeMatcher,
    Matcher,
    load_matcher,
    permutation_importance,
    render_importance,
    save_matcher,
)
from repro.data import (
    Dataset,
    load_dataset_csv,
    PropertyInstance,
    PropertyRef,
    build_pairs,
    dataset_stats,
    sample_training_pairs,
    split_sources,
)
from repro.datasets import (
    DATASET_NAMES,
    build_domain_embeddings,
    domain_lexicon,
    load_dataset,
)
from repro.embeddings import WordEmbeddings
from repro.errors import ReproError
from repro.evaluation import (
    ExperimentRunner,
    PrecisionRecallCurve,
    precision_recall_curve,
    RunSettings,
    evaluate_matcher,
    format_table2,
    run_transfer_experiment,
)
from repro.graph import (
    FusedAttribute,
    IncrementalClusterer,
    fuse_clusters,
    SimilarityGraph,
    cluster_connected_components,
    cluster_correlation,
    cluster_star,
    clustering_metrics,
)
from repro.metrics import MatchQuality, evaluate_scores

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    # data model
    "Dataset",
    "PropertyInstance",
    "PropertyRef",
    "build_pairs",
    "sample_training_pairs",
    "split_sources",
    "dataset_stats",
    # datasets
    "DATASET_NAMES",
    "load_dataset",
    "domain_lexicon",
    "build_domain_embeddings",
    "WordEmbeddings",
    # core
    "Matcher",
    "LeapmeMatcher",
    "LeapmeClassifier",
    "LeapmeConfig",
    "FeatureConfig",
    "FeatureScope",
    "FeatureKinds",
    "BlockImportance",
    "permutation_importance",
    "render_importance",
    "save_matcher",
    "load_matcher",
    "load_dataset_csv",
    "PrecisionRecallCurve",
    "precision_recall_curve",
    # baselines
    "AmlMatcher",
    "FcaMapMatcher",
    "NezhadiMatcher",
    "SemPropMatcher",
    "LshMatcher",
    # evaluation
    "MatchQuality",
    "evaluate_scores",
    "evaluate_matcher",
    "ExperimentRunner",
    "RunSettings",
    "format_table2",
    "run_transfer_experiment",
    # blocking
    "Blocker",
    "NullBlocker",
    "TokenBlocker",
    "MinHashBlocker",
    "blocking_quality",
    # graph
    "IncrementalClusterer",
    "FusedAttribute",
    "fuse_clusters",
    "SimilarityGraph",
    "cluster_connected_components",
    "cluster_star",
    "cluster_correlation",
    "clustering_metrics",
]
