"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``generate``   write one of the built-in datasets to CSV/JSON files.
``stats``      print structural statistics of a dataset.
``evaluate``   run the paper's evaluation protocol for one system.
``match``      train on chosen sources and emit scored matches as CSV;
               ``--add-source`` ingests an extra source incrementally
               through the feature store's delta path.
``features``   ``features describe`` prints the stage graph and the
               resolved column schema per feature configuration.
``describe``   post-mortem summary of a journal (run, ingestion or
               registry; the flavour is sniffed from the header line).
``serve``      ``--follow DIR`` fuses new source CSVs into matches and
               clusters as they arrive, crash-safely (see repro.ingest);
               ``--http`` runs the long-lived multi-tenant matching
               service (see repro.serve); both together share one
               process and one drain signal.
``lint``       invariant-enforcing static analysis (see repro.analysis).

The CLI works on the built-in domains (``--dataset cameras`` ...) or on
user data (``--instances file.csv [--alignment file.csv]``).
"""

from __future__ import annotations

import argparse
import csv
import sys
import threading
from pathlib import Path

import numpy as np

from repro.analysis.cli import add_lint_arguments, run_lint
from repro.blocking import CandidatePolicy
from repro.core import FeatureConfig, LeapmeMatcher
from repro.core.api import Matcher
from repro.core.pipeline import (
    disable_persistent_distances,
    enable_persistent_distances,
    flush_persistent_distances,
)
from repro.data.csvio import load_dataset_csv, save_dataset_csv
from repro.data.io import save_dataset_json
from repro.data.model import Dataset
from repro.data.pairs import build_pairs, sample_training_pairs
from repro.data.stats import dataset_stats
from repro.datasets import DATASET_NAMES, build_domain_embeddings, load_dataset
from repro.embeddings.hashing import hash_embeddings
from repro.errors import GridInterrupted, ReproError
from repro.evaluation import (
    ExperimentRunner,
    RetryPolicy,
    RunJournal,
    RunSettings,
    SupervisorPolicy,
    evaluate_matcher,
    render_robustness_report,
)
from repro.evaluation.checkpoint import peek_journal_type
from repro.ingest import FollowDaemon, IngestJournal, IngestPipeline
from repro.ingest.journal import INGEST_JOURNAL_TYPE
from repro.ioutils import atomic_open_text
from repro.serve import (
    REGISTRY_JOURNAL_TYPE,
    AdmissionQueue,
    MatchingService,
    RegistryJournal,
    TenantRegistry,
)
from repro.systems import (
    HASH_DIMENSION,
    SYSTEMS,
    build_system_matcher,
    fallback_embeddings,
)


def _load_cli_dataset(args: argparse.Namespace) -> Dataset:
    """Resolve the dataset from either --dataset or --instances."""
    if args.dataset is not None:
        return load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    if args.instances is None:
        raise ReproError("pass either --dataset <name> or --instances <csv>")
    return load_dataset_csv(args.instances, args.alignment)


def _embeddings_for(dataset: Dataset, args: argparse.Namespace):
    """Built-in domains get trained embeddings; user data gets hashing.

    Hash embeddings carry no synonym semantics -- users with real data
    should train or load real embeddings through the library API; the CLI
    fallback keeps the pipeline runnable out of the box.
    """
    if args.dataset is not None:
        return build_domain_embeddings(args.dataset, scale=args.scale)
    print(
        "note: using semantics-free hash embeddings for user data; "
        "see repro.embeddings to train real ones",
        file=sys.stderr,
    )
    return fallback_embeddings(dataset)


def _cli_policy(args: argparse.Namespace) -> CandidatePolicy:
    """Resolve ``--blocking`` into a candidate policy (null when unset)."""
    return CandidatePolicy.from_label(getattr(args, "blocking", None))


def _build_matcher(
    system: str, embeddings, policy: CandidatePolicy | None = None
) -> Matcher:
    """Construct the matcher for ``system`` (shared with repro.serve)."""
    return build_system_matcher(system, embeddings, policy)


def _cmd_generate(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    save_dataset_csv(
        dataset, out / "instances.csv", out / "alignment.csv"
    )
    save_dataset_json(dataset, out / "dataset.json")
    print(dataset_stats(dataset).describe())
    print(f"written to {out}/instances.csv, alignment.csv, dataset.json")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    dataset = _load_cli_dataset(args)
    stats = dataset_stats(dataset)
    print(stats.describe())
    print(f"  reference properties: {stats.n_reference_properties}")
    print(f"  entities/source: {stats.min_entities_per_source}"
          f"..{stats.max_entities_per_source} (balance {stats.entity_balance:.2f})")
    for source in dataset.sources():
        print(f"  {source}: {len(dataset.schema_of(source))} properties, "
              f"{len(dataset.entities(source))} entities")
    if dataset.validation:
        dropped = dataset.rows_dropped()
        per_source = ", ".join(f"{k}={v}" for k, v in sorted(dropped.items()))
        print(f"  rows quarantined on load: {len(dataset.validation)} ({per_source})")
        for record in dataset.validation[:5]:
            print(f"    {record.describe()}")
        if len(dataset.validation) > 5:
            print(f"    ... and {len(dataset.validation) - 5} more")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    if args.resume and args.journal is None:
        raise ReproError("--resume requires --journal <path>")
    dataset = _load_cli_dataset(args)
    embeddings = _embeddings_for(dataset, args)
    policy = _cli_policy(args)
    matcher = _build_matcher(args.system, embeddings, policy)
    settings = RunSettings(
        train_fraction=args.train_fraction,
        repetitions=args.repetitions,
        seed=args.seed,
    )
    journal = RunJournal(args.journal) if args.journal is not None else None
    retry_policy = RetryPolicy(max_retries=args.max_retries)
    if args.workers > 1:
        # The supervised process-pool engine: same journal, same
        # aggregates, repetitions fanned out across worker processes
        # under the supervisor's failure model.  The factory key is the
        # matcher's own name so the result label and the journal cell
        # key match the serial path exactly.
        supervisor = SupervisorPolicy(
            cell_timeout=args.cell_timeout,
            max_pool_respawns=args.max_pool_respawns,
        )
        runner = ExperimentRunner(
            {matcher.name: lambda: _build_matcher(args.system, embeddings, policy)}
        )
        result = runner.run(
            [dataset],
            train_fractions=[args.train_fraction],
            repetitions=args.repetitions,
            seed=args.seed,
            journal=journal,
            resume=args.resume,
            retry_policy=retry_policy,
            workers=args.workers,
            supervisor=supervisor,
            policy=policy,
        )[0]
    else:
        universe = None
        prepare = None
        if not policy.is_null:
            # Blocked evaluation shares one pruned universe across all
            # repetitions; the store attaches lazily so fully resumed
            # runs build nothing.
            store = matcher.build_feature_store(dataset)
            universe = store.universe
            prepare = lambda: matcher.attach_store(store)  # noqa: E731
        result = evaluate_matcher(
            matcher,
            dataset,
            settings,
            journal=journal,
            resume=args.resume,
            retry_policy=retry_policy,
            universe=universe,
            prepare=prepare,
        )
    print(result.describe())
    report = render_robustness_report([result])
    if report:
        print(report)
    if journal is not None:
        print(f"journal: {journal.path}"
              + (" (resumed)" if result.resumed_repetitions else ""))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    return run_lint(args)


def _cmd_describe(args: argparse.Namespace) -> int:
    path = Path(args.journal)
    if not path.exists():
        raise ReproError(f"journal not found: {path}")
    # The header line names the journal flavour; dispatch on it so one
    # describe command serves run, ingestion and registry journals alike.
    journal_type = peek_journal_type(path)
    if journal_type == INGEST_JOURNAL_TYPE:
        print(IngestJournal(path).describe())
    elif journal_type == REGISTRY_JOURNAL_TYPE:
        print(RegistryJournal(path).describe())
    else:
        print(RunJournal(path).describe())
    return 0


def _distance_cache_path(args: argparse.Namespace, default: Path) -> Path | None:
    """Resolve --distance-cache: ``off`` disables, unset means ``default``."""
    raw = getattr(args, "distance_cache", None)
    if raw is None:
        return default
    if raw == "off":
        return None
    return Path(raw)


def _build_follow_daemon(
    args: argparse.Namespace, stop_event: threading.Event | None = None
) -> tuple[FollowDaemon, Path, Path]:
    """The follow-mode pipeline + daemon; shared by both serve modes."""
    follow = Path(args.follow)
    follow.mkdir(parents=True, exist_ok=True)
    base = None
    if args.dataset is not None or args.instances is not None:
        base = _load_cli_dataset(args)
    if base is not None:
        embeddings = _embeddings_for(base, args)
    else:
        # No bootstrap data yet: hashing embeddings need no corpus, and
        # unknown streamed tokens embed as zero vectors either way.
        embeddings = hash_embeddings([], dimension=HASH_DIMENSION)
    matcher = _build_matcher(args.system, embeddings, _cli_policy(args))
    out = Path(args.out) if args.out else follow / "matches.csv"
    clusters = Path(args.clusters) if args.clusters else follow / "clusters.json"
    journal_path = Path(args.journal) if args.journal else follow / "ingest.journal"
    args.journal = str(journal_path)  # the interrupt handler's resume hint
    pipeline = IngestPipeline(
        matcher,
        matches_path=out,
        clusters_path=clusters,
        threshold=args.threshold,
        seed=args.seed,
    )
    pipeline.bootstrap(base)
    daemon = FollowDaemon(
        follow,
        pipeline,
        IngestJournal(journal_path),
        poll_interval=args.poll_interval,
        settle_polls=args.settle_polls,
        retry_policy=RetryPolicy(
            max_retries=args.max_retries, backoff_base=args.backoff, jitter=0.5
        ),
        seed=args.seed,
        stop_event=stop_event,
    )
    return daemon, out, clusters


def _enable_distance_cache(args: argparse.Namespace, default: Path) -> None:
    cache_path = _distance_cache_path(args, default)
    if cache_path is None:
        return
    cache = enable_persistent_distances(cache_path)
    if cache.loaded_entries:
        print(
            f"distance cache: {cache.loaded_entries} pair(s) "
            f"loaded from {cache_path}",
            file=sys.stderr,
        )


def _serve_follow(args: argparse.Namespace) -> int:
    _enable_distance_cache(args, Path(args.follow) / "distance_cache.npz")
    try:
        daemon, out, clusters = _build_follow_daemon(args)
        print(
            f"following {args.follow} (journal {args.journal})", file=sys.stderr
        )
        summary = daemon.run(
            resume=args.resume,
            max_batches=args.max_batches,
            max_idle_polls=args.max_idle_polls,
        )
    finally:
        # Whatever got the daemon out of its loop -- clean exit, signal,
        # error -- rows computed so far are worth keeping for the next
        # process.  A no-op when nothing is dirty or no cache is wired.
        flush_persistent_distances()
        disable_persistent_distances()
    print(
        f"served {summary['fused']} batch(es) "
        f"({summary['replayed']} replayed on resume, "
        f"{summary['quarantined']} quarantined) over {summary['polls']} polls"
    )
    print(f"matches: {out}")
    print(f"clusters: {clusters}")
    return 0


def _serve_http(args: argparse.Namespace) -> int:
    """The long-lived matching service, optionally composing --follow.

    The registry always replays its journal first, so the same command
    line warm-restarts a SIGKILLed server into its previous tenant set.
    With ``--follow`` the ingestion daemon runs on a background thread
    sharing the service's stop event: one SIGTERM drains both loops.
    """
    registry_journal = (
        Path(args.registry_journal) if args.registry_journal
        else Path("registry.journal")
    )
    _enable_distance_cache(
        args, registry_journal.with_name("distance_cache.npz")
    )
    try:
        registry = TenantRegistry(
            RegistryJournal(registry_journal),
            breaker_threshold=args.breaker_threshold,
        )
        replay = registry.load()
        if replay["tenants"]:
            print(
                f"warm restart: {replay['tenants']} tenant(s) rebuilt, "
                f"{replay['sources']} reload(s) replayed, "
                f"{replay['quarantined']} quarantined",
                file=sys.stderr,
            )
        admission = AdmissionQueue(
            max_active=args.max_active,
            max_waiting=args.max_waiting,
            request_deadline=args.request_deadline,
            seed=args.seed,
        )
        service = MatchingService(
            registry,
            admission,
            host=args.host,
            port=args.port,
            drain_grace=args.drain_grace,
        )
        follow_thread = None
        if args.follow:
            daemon, _, _ = _build_follow_daemon(
                args, stop_event=service.stop_event
            )

            def _run_follow() -> None:
                try:
                    daemon.run(
                        resume=args.resume,
                        max_batches=args.max_batches,
                        max_idle_polls=args.max_idle_polls,
                    )
                except GridInterrupted:
                    pass  # the shared stop event drained it; normal exit
                except ReproError as error:
                    print(f"follow loop error: {error}", file=sys.stderr)

            follow_thread = threading.Thread(
                target=_run_follow, name="repro-serve-follow", daemon=True
            )
            follow_thread.start()
            print(f"following {args.follow} alongside HTTP", file=sys.stderr)
        print(
            f"serving on {service.address} "
            f"(registry journal {registry_journal})",
            file=sys.stderr,
        )
        try:
            service.serve_until_signalled()
        finally:
            if follow_thread is not None:
                follow_thread.join(args.drain_grace)
    finally:
        flush_persistent_distances()
        disable_persistent_distances()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.http:
        return _serve_http(args)
    if not args.follow:
        raise ReproError("pass --follow <dir>, --http, or both")
    return _serve_follow(args)


def _cmd_features_describe(args: argparse.Namespace) -> int:
    from repro.core.pipeline import FeatureSchema, describe_stages

    if args.config == "all":
        configs = FeatureConfig.grid()
    else:
        configs = [FeatureConfig.from_label(args.config)]
    print(describe_stages(args.dimension))
    schema = FeatureSchema(args.dimension)
    print(f"\nfull matrix: {schema.total_width} columns at d={args.dimension}")
    for config in configs:
        print()
        print(schema.describe(config))
    return 0


def _cmd_match(args: argparse.Namespace) -> int:
    dataset = _load_cli_dataset(args)
    embeddings = _embeddings_for(dataset, args)
    policy = _cli_policy(args)
    matcher = _build_matcher(args.system, embeddings, policy)
    if args.add_source is not None:
        return _match_with_added_source(args, dataset, matcher)
    rng = np.random.default_rng(args.seed)
    store = None
    if not policy.is_null:
        # Under a blocking policy every pair set -- training slices and
        # test slices alike -- comes from the pruned candidate universe,
        # which is built exactly once here.  The null path below keeps
        # the seed's direct build_pairs enumeration byte for byte.
        store = matcher.build_feature_store(dataset)
        matcher.attach_store(store)
    matcher.prepare(dataset)
    if matcher.is_supervised:
        train_sources = (
            args.train_sources.split(",") if args.train_sources else dataset.sources()
        )
        if store is not None:
            candidates = store.universe.subset(train_sources, within=True)
        else:
            candidates = build_pairs(dataset, train_sources, within=True)
        training = sample_training_pairs(candidates, rng=rng)
        if not training.positives():
            raise ReproError(
                "no positive training pairs in the chosen sources; "
                "provide an alignment file or pick other --train-sources"
            )
        matcher.fit(dataset, training)
        if set(train_sources) == set(dataset.sources()):
            # Integration mode: trained on everything, score everything.
            test = (
                store.universe.subset() if store is not None
                else build_pairs(dataset)
            )
        elif store is not None:
            test = store.universe.subset(train_sources, within=False)
        else:
            test = build_pairs(dataset, train_sources, within=False)
    else:
        test = build_pairs(dataset)
    scores = matcher.score_pairs(dataset, test.pairs)
    kept = _write_matches(args.out, test.pairs, scores, args.threshold)
    if store is not None:
        stats = store.universe.blocking_stats()
        print(
            f"blocking {stats['policy']}: {stats['candidates']} of "
            f"{stats['total_pairs']} cross-source pairs kept "
            f"(reduction {stats['reduction_ratio']:.2%}, "
            f"pair recall {stats['pair_recall']:.2%})",
            file=sys.stderr,
        )
    print(f"{kept} matches (of {len(test.pairs)} candidate pairs) written to {args.out}")
    return 0


def _write_matches(out: str, pairs, scores, threshold: float) -> int:
    """Write scored pairs above ``threshold`` as a matches CSV; count kept."""
    kept = 0
    # Atomic: a crash mid-write must not leave a truncated matches file
    # that looks complete (REP002).
    with atomic_open_text(out, newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["left_source", "left_property", "right_source", "right_property", "score"]
        )
        for pair, score in zip(pairs, scores):
            if score >= threshold:
                writer.writerow(
                    [pair.left.source, pair.left.name,
                     pair.right.source, pair.right.name, f"{score:.4f}"]
                )
                kept += 1
    return kept


def _match_with_added_source(
    args: argparse.Namespace, dataset: Dataset, matcher: Matcher
) -> int:
    """Incremental ingestion: train on the base dataset, delta-featurize
    one new source, and emit matches for the *new* cross-source pairs only.

    The attached feature store's ``add_source`` path recomputes only the
    new source's property rows and the new pairs; everything already
    featurized is served from the pipeline's fingerprint-keyed cache.
    """
    if not isinstance(matcher, LeapmeMatcher):
        raise ReproError(
            "--add-source needs an incremental feature store, which only "
            "the LEAPME systems provide"
        )
    addition = load_dataset_csv(args.add_source, args.add_alignment)
    cache_path = _distance_cache_path(
        args, Path(args.out).with_name("distance_cache.npz")
    )
    if cache_path is not None:
        cache = enable_persistent_distances(cache_path)
        if cache.loaded_entries:
            print(
                f"distance cache: {cache.loaded_entries} pair(s) "
                f"loaded from {cache_path}",
                file=sys.stderr,
            )
    try:
        rng = np.random.default_rng(args.seed)
        store = matcher.build_feature_store(dataset)
        matcher.attach_store(store)
        matcher.prepare(dataset)
        # Blocked stores train on the pruned candidate universe (the
        # same pairs the increment will enumerate); the null policy
        # keeps the direct full-cross-product path.
        candidates = (
            store.universe.subset()
            if store.universe.is_blocked
            else build_pairs(dataset)
        )
        training = sample_training_pairs(candidates, rng=rng)
        if not training.positives():
            raise ReproError(
                "no positive training pairs in the base dataset; "
                "provide an alignment file"
            )
        matcher.fit(dataset, training)
        calls_before = dict(matcher.pipeline.stage_calls)
        new_pairs = matcher.add_source(addition)
        combined = store.universe.dataset
        delta = {
            stage: count - calls_before.get(stage, 0)
            for stage, count in matcher.pipeline.stage_calls.items()
            if count - calls_before.get(stage, 0)
        }
        scores = matcher.score_pairs(combined, new_pairs.pairs)
    finally:
        flush_persistent_distances()
        disable_persistent_distances()
    kept = _write_matches(args.out, new_pairs.pairs, scores, args.threshold)
    if store.universe.is_blocked:
        stats = store.universe.blocking_stats()
        print(
            f"blocking {stats['policy']}: {stats['candidates']} of "
            f"{stats['total_pairs']} cross-source pairs kept "
            f"(reduction {stats['reduction_ratio']:.2%}, "
            f"pair recall {stats['pair_recall']:.2%})",
            file=sys.stderr,
        )
    print(
        f"added {len(addition.sources())} source(s): "
        f"{len(addition.properties())} new properties, "
        f"{len(new_pairs.pairs)} new candidate pairs"
    )
    print("stage calls for the increment: "
          + ", ".join(f"{stage}={count}" for stage, count in sorted(delta.items())))
    print(f"{kept} matches (of {len(new_pairs.pairs)} new pairs) written to {args.out}")
    return 0


def _add_dataset_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", choices=DATASET_NAMES, default=None,
                        help="built-in dataset name")
    parser.add_argument("--instances", default=None, help="instances CSV for user data")
    parser.add_argument("--alignment", default=None, help="alignment CSV (ground truth)")
    parser.add_argument("--scale", default="small", help="built-in dataset scale preset")
    parser.add_argument("--seed", type=int, default=0)


def _add_blocking_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--blocking", default=None, metavar="POLICY",
        help="candidate-generation policy for LEAPME systems: 'null' "
             "(default; every cross-source pair), 'minhash' (name/value "
             "sketch buckets), 'token', or 'embedding' (LSH over "
             "embedding vectors); parameters attach as "
             "'minhash:num_hashes=32,band_size=1'")


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="LEAPME property matching (ICDE 2021 reproduction)"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="write a built-in dataset to files")
    generate.add_argument("--dataset", choices=DATASET_NAMES, required=True)
    generate.add_argument("--scale", default="small")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", required=True, help="output directory")
    generate.set_defaults(handler=_cmd_generate)

    stats = commands.add_parser("stats", help="print dataset statistics")
    _add_dataset_arguments(stats)
    stats.set_defaults(handler=_cmd_stats)

    evaluate = commands.add_parser("evaluate", help="run the paper's protocol")
    _add_dataset_arguments(evaluate)
    _add_blocking_argument(evaluate)
    evaluate.add_argument("--system", choices=SYSTEMS, default="leapme")
    evaluate.add_argument("--train-fraction", type=float, default=0.8)
    evaluate.add_argument("--repetitions", type=int, default=3)
    evaluate.add_argument("--journal", default=None, metavar="PATH",
                          help="append per-repetition outcomes to this JSONL run "
                               "journal as they complete")
    evaluate.add_argument("--resume", action="store_true",
                          help="reuse completed repetitions from --journal instead "
                               "of re-running them")
    evaluate.add_argument("--max-retries", type=int, default=1,
                          help="retries per failing repetition before it is "
                               "recorded as failed (default 1)")
    evaluate.add_argument("--workers", type=int, default=1,
                          help="worker processes for the repetition grid; "
                               "results are byte-identical to --workers 1 "
                               "(default 1)")
    evaluate.add_argument("--cell-timeout", type=float, default=None,
                          metavar="SECONDS",
                          help="wall-clock deadline per repetition under "
                               "--workers: a hung repetition is killed, "
                               "re-dispatched, and quarantined if it keeps "
                               "timing out (default: no deadline)")
    evaluate.add_argument("--max-pool-respawns", type=int, default=5,
                          help="worker-pool deaths tolerated before the grid "
                               "degrades to serial in-process execution "
                               "(default 5)")
    evaluate.set_defaults(handler=_cmd_evaluate)

    describe = commands.add_parser(
        "describe", help="summarise a run or ingestion journal (post-mortem)"
    )
    describe.add_argument("--journal", required=True, metavar="PATH",
                          help="JSONL journal to summarise (run journals and "
                               "ingestion journals are both understood)")
    describe.set_defaults(handler=_cmd_describe)

    serve = commands.add_parser(
        "serve",
        help="follow a directory (--follow), run the long-lived HTTP "
             "matching service (--http), or both in one process",
    )
    _add_dataset_arguments(serve)
    _add_blocking_argument(serve)
    serve.add_argument("--follow", default=None, metavar="DIR",
                       help="directory to watch; drop source CSVs (and "
                            "optional X.alignment.csv sidecars) here")
    serve.add_argument("--http", action="store_true",
                       help="run the multi-tenant HTTP matching service; "
                            "warm-restarts from --registry-journal into "
                            "the previous tenant set")
    serve.add_argument("--host", default="127.0.0.1",
                       help="HTTP bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8571,
                       help="HTTP port; 0 binds an ephemeral port "
                            "(default 8571)")
    serve.add_argument("--registry-journal", default=None, metavar="PATH",
                       help="crash-safe tenant lifecycle journal "
                            "(default: ./registry.journal); reuse the same "
                            "path across restarts to warm-restart")
    serve.add_argument("--max-active", type=int, default=4,
                       help="concurrent requests executing (default 4)")
    serve.add_argument("--max-waiting", type=int, default=8,
                       help="requests queued beyond --max-active before "
                            "load shedding with 429 + Retry-After "
                            "(default 8; memory use is bounded by this)")
    serve.add_argument("--request-deadline", type=float, default=30.0,
                       metavar="SECONDS",
                       help="admission deadline per request; a request "
                            "that cannot start in time gets 503 "
                            "(default 30)")
    serve.add_argument("--drain-grace", type=float, default=10.0,
                       metavar="SECONDS",
                       help="seconds in-flight requests get to finish "
                            "after SIGINT/SIGTERM (default 10)")
    serve.add_argument("--breaker-threshold", type=int, default=3,
                       help="consecutive request failures before a tenant "
                            "is quarantined (default 3)")
    serve.add_argument("--system", choices=SYSTEMS, default="leapme",
                       help="matching system; supervised systems need a "
                            "bootstrap dataset (--dataset/--instances) to "
                            "train on")
    serve.add_argument("--threshold", type=float, default=0.5)
    serve.add_argument("--out", default=None, metavar="CSV",
                       help="matches CSV, atomically rewritten after every "
                            "fused batch (default: <follow>/matches.csv)")
    serve.add_argument("--clusters", default=None, metavar="JSON",
                       help="property-cluster JSON, atomically rewritten "
                            "after every fused batch "
                            "(default: <follow>/clusters.json)")
    serve.add_argument("--journal", default=None, metavar="PATH",
                       help="ingestion journal recording every source "
                            "lifecycle transition "
                            "(default: <follow>/ingest.journal)")
    serve.add_argument("--resume", action="store_true",
                       help="replay the journal's fused sources before "
                            "following again; outputs are bit-identical to "
                            "a cold rebuild over the same sources")
    serve.add_argument("--poll-interval", type=float, default=0.5,
                       metavar="SECONDS",
                       help="directory poll cadence (default 0.5); SIGTERM "
                            "cuts the wait short")
    serve.add_argument("--settle-polls", type=int, default=2,
                       help="polls a file's size+fingerprint must hold "
                            "still before it is admitted (default 2); "
                            "partially-written CSVs are never read")
    serve.add_argument("--max-retries", type=int, default=2,
                       help="retries per failing source before it is "
                            "quarantined (default 2)")
    serve.add_argument("--backoff", type=float, default=0.1,
                       metavar="SECONDS",
                       help="base backoff between retries, doubling per "
                            "attempt with deterministic jitter (default 0.1)")
    serve.add_argument("--max-batches", type=int, default=None, metavar="N",
                       help="exit after fusing N new batches (default: run "
                            "until signalled)")
    serve.add_argument("--max-idle-polls", type=int, default=None, metavar="N",
                       help="exit after N consecutive polls with nothing to "
                            "do (default: run until signalled)")
    serve.add_argument("--distance-cache", default=None, metavar="NPZ",
                       help="persistent name-distance kernel cache, flushed "
                            "atomically after every fused batch so warm "
                            "restarts never recompute a seen pair "
                            "(default: <follow>/distance_cache.npz; "
                            "'off' disables)")
    serve.set_defaults(handler=_cmd_serve)

    lint = commands.add_parser(
        "lint",
        help="static analysis enforcing the repo's determinism/atomicity/"
             "fork-safety invariants",
    )
    add_lint_arguments(lint)
    lint.set_defaults(handler=_cmd_lint)

    match = commands.add_parser("match", help="score pairs and emit matches as CSV")
    _add_dataset_arguments(match)
    _add_blocking_argument(match)
    match.add_argument("--system", choices=SYSTEMS, default="leapme")
    match.add_argument("--train-sources", default=None,
                       help="comma-separated sources to train on (default: all)")
    match.add_argument("--threshold", type=float, default=0.5)
    match.add_argument("--out", required=True, help="output matches CSV")
    match.add_argument("--add-source", default=None, metavar="CSV",
                       help="instances CSV of one or more NEW sources to "
                            "ingest incrementally: train on the base "
                            "dataset, delta-featurize only the new "
                            "properties/pairs, and emit matches for the "
                            "new pairs")
    match.add_argument("--add-alignment", default=None, metavar="CSV",
                       help="alignment CSV for --add-source (optional)")
    match.add_argument("--distance-cache", default=None, metavar="NPZ",
                       help="persistent name-distance kernel cache for "
                            "--add-source: repeated ingestions against the "
                            "same base skip every already-seen pair "
                            "(default: distance_cache.npz next to --out; "
                            "'off' disables)")
    match.set_defaults(handler=_cmd_match)

    features = commands.add_parser(
        "features", help="inspect the staged feature pipeline"
    )
    features_commands = features.add_subparsers(
        dest="features_command", required=True
    )
    features_describe = features_commands.add_parser(
        "describe",
        help="print the stage graph and the resolved column schema",
    )
    features_describe.add_argument(
        "--config", default="all",
        help="a scope/kinds label (e.g. both/embedding) or 'all' (default)")
    features_describe.add_argument(
        "--dimension", type=int, default=300,
        help="embedding dimensionality the schema is resolved at "
             "(default 300, the paper's GloVe)")
    features_describe.set_defaults(handler=_cmd_features_describe)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except GridInterrupted as interrupted:
        # Clean signal shutdown: the journal already holds the completed
        # prefix, so the natural next step is a --resume rerun.
        print(
            f"interrupted: {interrupted}",
            file=sys.stderr,
        )
        if getattr(args, "journal", None):
            print(
                f"resume with: --journal {args.journal} --resume",
                file=sys.stderr,
            )
        return 128 + (interrupted.signum or 15)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
