"""Crash-safe streaming source ingestion (``repro serve --follow``).

New source CSVs dropped into a followed directory are admitted once
their content settles, fused incrementally into matches and property
clusters, and journaled at every lifecycle transition so a killed
daemon resumes bit-identically.  See :mod:`repro.ingest.daemon` for the
failure model.
"""

from repro.ingest.daemon import FollowDaemon, cold_rebuild
from repro.ingest.journal import (
    QUARANTINE_REASONS,
    REASON_DUPLICATE,
    REASON_POISON,
    REASON_RETRIES_EXHAUSTED,
    STATUS_ADMITTED,
    STATUS_DISCOVERED,
    STATUS_FEATURIZED,
    STATUS_FUSED,
    STATUS_QUARANTINED,
    STATUS_RETRYING,
    IngestJournal,
    SourceEvent,
)
from repro.ingest.pipeline import IngestPipeline, PreparedBatch
from repro.ingest.watcher import PollResult, SourceWatcher, source_fingerprint

__all__ = [
    "QUARANTINE_REASONS",
    "REASON_DUPLICATE",
    "REASON_POISON",
    "REASON_RETRIES_EXHAUSTED",
    "STATUS_ADMITTED",
    "STATUS_DISCOVERED",
    "STATUS_FEATURIZED",
    "STATUS_FUSED",
    "STATUS_QUARANTINED",
    "STATUS_RETRYING",
    "FollowDaemon",
    "IngestJournal",
    "IngestPipeline",
    "PollResult",
    "PreparedBatch",
    "SourceEvent",
    "SourceWatcher",
    "cold_rebuild",
    "source_fingerprint",
]
