"""The follow-mode daemon: watch, admit, retry, fuse -- crash-safely.

:class:`FollowDaemon` ties the ingestion pieces together into one
supervised loop:

* the :class:`~repro.ingest.watcher.SourceWatcher` admits source files
  only after their content settles (a partially-written CSV is never
  read);
* every lifecycle transition is durably journaled
  (:class:`~repro.ingest.journal.IngestJournal`) *before* the daemon
  moves on, so SIGKILL at any point leaves a replayable record;
* transient read failures get deterministic bounded-backoff retries
  (:class:`~repro.evaluation.runner.RetryPolicy` -- the same sha256
  jitter as the experiment grid); sources that keep failing are
  quarantined with a structured reason and *never stall the loop*:
  retry readiness is a per-file deadline on the monotonic clock
  (REP003), checked each poll, not a sleep;
* SIGINT/SIGTERM set a stop event; the in-flight batch is drained and
  journaled, then :class:`~repro.errors.IngestInterrupted` propagates
  so the CLI exits ``128 + signum`` with a ``--resume`` hint;
* ``resume=True`` replays the journal's fused records -- in fusion
  order, through the same deterministic pipeline -- before following
  the directory again, so a resumed run's matches and clusters are
  bit-identical to a cold rebuild over the same sources.

The loop itself obeys the invariants the REP010 lint rule enforces on
watch/ingest modules: no ``time.sleep`` (the pause is
``stop_event.wait(poll_interval)``, interruptible by signals) and no
unconditional spin (every iteration checks the stop event and the
optional batch/idle bounds).
"""

from __future__ import annotations

import hashlib
import signal
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from repro.core.pipeline import flush_persistent_distances
from repro.data.model import Dataset
from repro.errors import (
    DataError,
    IngestInterrupted,
    ReproError,
    TransientDataError,
)
from repro.evaluation.runner import RetryPolicy
from repro.ingest.journal import (
    REASON_DUPLICATE,
    REASON_POISON,
    REASON_RETRIES_EXHAUSTED,
    STATUS_QUARANTINED,
    IngestJournal,
)
from repro.ingest.pipeline import IngestPipeline
from repro.ingest.watcher import (
    SourceWatcher,
    alignment_sidecar,
    source_fingerprint,
)


@dataclass
class _PendingSource:
    """An admitted file waiting to be (re)ingested."""

    fingerprint: str
    attempts: int = 0
    #: Monotonic-clock instant from which the next attempt may run.
    ready_at: float = 0.0


def _file_repetition(file: str) -> int:
    """Stable per-file index for the retry policy's deterministic jitter."""
    return int.from_bytes(hashlib.sha256(file.encode("utf-8")).digest()[:4], "big")


class FollowDaemon:
    """Follow a directory, fusing admitted sources as they arrive.

    Parameters
    ----------
    directory:
        The followed directory; source CSVs (plus optional
        ``X.alignment.csv`` sidecars) are dropped here.
    pipeline:
        A bootstrapped :class:`IngestPipeline` (call
        :meth:`IngestPipeline.bootstrap` first).
    journal:
        The ingestion journal; shared between runs for ``--resume``.
    poll_interval:
        Seconds between directory polls (the stop event cuts the wait
        short, so shutdown latency is not bounded by it).
    settle_polls:
        Stability requirement forwarded to the watcher.
    retry_policy:
        Bounded retry/backoff for failing sources; defaults to the
        grid's default policy (one retry, no backoff).
    seed:
        Seeds the retry jitter (with the per-file repetition index).
    fault_plan:
        Optional :class:`repro.testing.faults.IngestFaultPlan`; its
        ``maybe_exit`` hook fires after each journal append so chaos
        tests can kill the process at exact journaled stages.
    stop_event:
        External stop control (a fresh event is created if omitted).
    clock:
        Monotonic time source; injectable so tests can drive retry
        deadlines without real waiting.
    """

    def __init__(
        self,
        directory: str | Path,
        pipeline: IngestPipeline,
        journal: IngestJournal,
        *,
        poll_interval: float = 0.5,
        settle_polls: int = 2,
        retry_policy: RetryPolicy | None = None,
        seed: int = 0,
        fault_plan=None,
        stop_event: threading.Event | None = None,
        clock=time.monotonic,
    ) -> None:
        self.directory = Path(directory)
        self.pipeline = pipeline
        self.journal = journal
        self.poll_interval = poll_interval
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy()
        )
        self.seed = seed
        self.fault_plan = fault_plan
        self.stop_event = stop_event if stop_event is not None else threading.Event()
        self.clock = clock
        ignore = {
            path.name
            for path in (pipeline.matches_path, pipeline.clusters_path, journal.path)
            if path.parent == self.directory
        }
        self.watcher = SourceWatcher(
            self.directory, settle_polls=settle_polls, ignore=frozenset(ignore)
        )
        #: (file, fingerprint) keys fully handled (fused or quarantined).
        self._done: set[tuple[str, str]] = set()
        #: Keys ever journaled, to keep re-discoveries from re-appending.
        self._seen: set[tuple[str, str]] = set()
        self._pending: dict[str, _PendingSource] = {}
        self._received_signal: int | None = None

    # -- resume --------------------------------------------------------------
    def resume(self) -> int:
        """Replay the journal's fused sources; returns how many.

        Each fused record's file must still be present with the journaled
        fingerprint -- resume re-reads the *same bytes* through the same
        pipeline, which is what makes the outputs bit-identical to a
        cold rebuild.  Quarantined sources stay quarantined (their keys
        are marked done); everything that died earlier in the lifecycle
        is simply re-discovered by the watcher.
        """
        replayed = 0
        latest = self.journal.latest()
        for key, event in latest.items():
            self._seen.add(key)
            if event.status == STATUS_QUARANTINED:
                self._done.add(key)
        for event in self.journal.fused_in_order():
            path = self.directory / event.file
            if not path.exists():
                raise DataError(
                    f"cannot resume: fused source {event.file} is missing "
                    f"from {self.directory}"
                )
            current = source_fingerprint(path)
            if current != event.fingerprint:
                raise DataError(
                    f"cannot resume: {event.file} changed since it was fused "
                    f"(journal {event.fingerprint}, directory {current})"
                )
            batch = self.pipeline.featurize(
                path, alignment_sidecar(path), event.fingerprint
            )
            self.pipeline.fuse(batch)
            self._done.add(event.key)
            replayed += 1
        return replayed

    # -- the loop ------------------------------------------------------------
    def run(
        self,
        *,
        resume: bool = False,
        max_batches: int | None = None,
        max_idle_polls: int | None = None,
        install_signal_handlers: bool = True,
    ) -> dict[str, int]:
        """Follow the directory until stopped or bounded out.

        ``max_batches`` stops after that many *newly* fused batches;
        ``max_idle_polls`` stops after that many consecutive polls with
        no discovery, admission, or due retry (both ``None`` means run
        until a signal).  Returns
        ``{"replayed": r, "fused": n, "quarantined": q, "polls": p}``.
        """
        replayed = self.resume() if resume else 0
        installed: dict[int, object] = {}

        def _on_signal(signum: int, frame) -> None:
            # Async-signal-safe: last signal wins (the interrupt report
            # names the most recent one), written as a plain slot
            # assignment -- no container mutation inside a handler.
            self._received_signal = signum
            self.stop_event.set()

        if (
            install_signal_handlers
            and threading.current_thread() is threading.main_thread()
        ):
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    installed[signum] = signal.signal(signum, _on_signal)
                except (ValueError, OSError):  # pragma: no cover - exotic host
                    pass
        fused = quarantined = polls = idle = 0
        try:
            while True:
                self._check_stop()
                result = self.watcher.poll()
                polls += 1
                progressed = False
                for file, fingerprint in result.discovered:
                    key = (file, fingerprint)
                    progressed = True
                    if key in self._seen:
                        continue
                    self._seen.add(key)
                    self.journal.record_discovered(file, fingerprint)
                for file, fingerprint in result.admitted:
                    key = (file, fingerprint)
                    if key in self._done:
                        continue
                    progressed = True
                    self._seen.add(key)
                    self.journal.record_admitted(file, fingerprint)
                    self._maybe_fault("admitted")
                    self._pending[file] = _PendingSource(
                        fingerprint=fingerprint, ready_at=self.clock()
                    )
                for file in sorted(self._pending):
                    if self.stop_event.is_set():
                        break
                    entry = self._pending.get(file)
                    if entry is None or entry.ready_at > self.clock():
                        continue
                    progressed = True
                    outcome = self._attempt(file, entry)
                    fused += outcome == "fused"
                    quarantined += outcome == "quarantined"
                    if (
                        max_batches is not None
                        and fused >= max_batches
                    ):
                        break
                if max_batches is not None and fused >= max_batches:
                    break
                self._check_stop()
                idle = 0 if progressed else idle + 1
                if (
                    max_idle_polls is not None
                    and idle >= max_idle_polls
                    and not self._pending
                ):
                    break
                self.stop_event.wait(self.poll_interval)
        finally:
            # Drain durability: whatever ended the loop -- SIGTERM,
            # bounds, an error, IngestInterrupted from _check_stop --
            # persist distance rows computed since the last batch
            # boundary so a warm restart recomputes nothing.  (The
            # ingest journal needs no counterpart: every append is
            # already individually fsynced.)  No-op when no persistent
            # cache is wired.
            flush_persistent_distances()
            for signum, previous in installed.items():
                signal.signal(signum, previous)
        return {
            "replayed": replayed,
            "fused": fused,
            "quarantined": quarantined,
            "polls": polls,
        }

    def _check_stop(self) -> None:
        if not self.stop_event.is_set():
            return
        signum = self._received_signal
        raise IngestInterrupted(
            "follow loop stopped; every fused batch is journaled",
            signum=signum,
        )

    def _maybe_fault(self, stage: str) -> None:
        if self.fault_plan is not None:
            self.fault_plan.maybe_exit(stage)

    # -- one ingestion attempt ----------------------------------------------
    def _attempt(self, file: str, entry: _PendingSource) -> str:
        """Try to ingest one admitted file; returns the outcome.

        Outcomes: ``"fused"``, ``"quarantined"``, ``"retrying"`` (a
        later poll re-attempts), or ``"reset"`` (the file changed or
        vanished after admission and goes back to the watcher, no
        attempt charged).
        """
        path = self.directory / file
        try:
            current = source_fingerprint(path)
        except OSError:
            del self._pending[file]
            return "reset"
        if current != entry.fingerprint:
            # The writer came back after admission: the watcher has (or
            # will have) reset its settle count; this admission is void.
            del self._pending[file]
            return "reset"
        attempt = entry.attempts + 1
        try:
            batch = self.pipeline.featurize(
                path, alignment_sidecar(path), entry.fingerprint
            )
            self.journal.record_featurized(
                file, entry.fingerprint, batch.properties, len(batch.pairs)
            )
            self._maybe_fault("featurized")
            counts = self.pipeline.fuse(batch)
            self.journal.record_fused(
                file,
                entry.fingerprint,
                order=counts["order"],
                properties=batch.properties,
                pairs=len(batch.pairs),
                matches=counts["matches"],
            )
            self._maybe_fault("fused")
        except (TransientDataError, OSError) as error:
            return self._failed(
                file, entry, attempt, error, REASON_RETRIES_EXHAUSTED
            )
        except ReproError as error:
            if isinstance(error, DataError) and "already present" in str(error):
                # Re-dropping an integrated source name can never heal:
                # quarantine immediately without burning the budget.
                return self._quarantine(file, entry, REASON_DUPLICATE, error, attempt)
            return self._failed(file, entry, attempt, error, REASON_POISON)
        del self._pending[file]
        self._done.add((file, entry.fingerprint))
        return "fused"

    def _failed(
        self,
        file: str,
        entry: _PendingSource,
        attempt: int,
        error: Exception,
        reason: str,
    ) -> str:
        """Journal a failed attempt: schedule a retry or quarantine."""
        entry.attempts = attempt
        if attempt >= self.retry_policy.max_attempts:
            return self._quarantine(file, entry, reason, error, attempt)
        self.journal.record_retry(file, entry.fingerprint, attempt, error)
        entry.ready_at = self.clock() + self.retry_policy.delay(
            attempt, seed=self.seed, repetition=_file_repetition(file)
        )
        return "retrying"

    def _quarantine(
        self,
        file: str,
        entry: _PendingSource,
        reason: str,
        error: Exception,
        attempts: int,
    ) -> str:
        self.journal.record_quarantined(
            file, entry.fingerprint, reason, error, attempts
        )
        del self._pending[file]
        self._done.add((file, entry.fingerprint))
        return "quarantined"


def cold_rebuild(
    matcher,
    files: list[Path],
    matches_path: str | Path,
    clusters_path: str | Path,
    *,
    base: Dataset | None = None,
    threshold: float | None = None,
    seed: int = 0,
    linkage: str = "max",
) -> IngestPipeline:
    """Build matches + clusters from scratch over ``files`` in order.

    The reference the chaos suite compares against: a followed run --
    however many times it crashed and resumed -- must produce outputs
    byte-identical to this single-process rebuild over the same fused
    sequence.
    """
    pipeline = IngestPipeline(
        matcher,
        matches_path,
        clusters_path,
        threshold=threshold,
        seed=seed,
        linkage=linkage,
    )
    pipeline.bootstrap(base)
    for path in files:
        path = Path(path)
        batch = pipeline.featurize(
            path, alignment_sidecar(path), source_fingerprint(path)
        )
        pipeline.fuse(batch)
    return pipeline
