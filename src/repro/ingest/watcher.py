"""Directory watcher with a write-stability admission gate.

Source feeds land as CSV files in a followed directory, and nothing
guarantees the writer is done when the file first appears: market-feed
style producers append for seconds, network copies stall, editors write
through temp files only sometimes.  Reading too early yields a torn
dataset whose missing rows silently shift every match downstream.

:class:`SourceWatcher` therefore *admits* a candidate file only after
its size **and** content fingerprint have held still for
``settle_polls`` consecutive polls.  A file that grows, shrinks, or
mutates between polls restarts its settle counter, so a
partially-written CSV is never admitted -- the acceptance invariant the
chaos suite pins with a deliberately slow writer.  Admission is
re-armed when an already-admitted file's bytes change, so a corrected
source re-enters the pipeline under a fresh fingerprint.

The watcher is deliberately passive: :meth:`poll` performs one
observation pass and returns what changed; the
:class:`~repro.ingest.daemon.FollowDaemon` owns the loop, the clock,
and the stop event (REP010: watch loops must be stop-aware and
bounded).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path

#: Suffix of alignment sidecars: ``x.alignment.csv`` rides along with
#: ``x.csv`` and is never a source file of its own.
ALIGNMENT_SUFFIX = ".alignment.csv"

#: Fingerprints are content hashes truncated like run-journal keys:
#: long enough to never collide in one directory, short enough to grep.
_FINGERPRINT_HEX = 16


def source_fingerprint(path: Path) -> str:
    """Content fingerprint of a source file plus its alignment sidecar.

    The sidecar is folded in because the pair labels it contributes are
    part of what gets fused: an instances file whose alignment is still
    being written is just as unadmittable as a torn instances file.
    Raises ``OSError`` when either file vanishes mid-read (the caller
    treats that as instability).
    """
    hasher = hashlib.sha256()
    hasher.update(path.read_bytes())
    sidecar = alignment_sidecar(path)
    if sidecar is not None:
        hasher.update(b"\x1f")
        hasher.update(sidecar.read_bytes())
    return hasher.hexdigest()[:_FINGERPRINT_HEX]


def alignment_sidecar(path: Path) -> Path | None:
    """``x.alignment.csv`` next to ``x.csv``, if present."""
    sidecar = path.with_name(path.stem + ALIGNMENT_SUFFIX)
    return sidecar if sidecar.exists() else None


@dataclass
class _Observation:
    """What the watcher last saw of one candidate file."""

    size: int
    fingerprint: str
    stable_polls: int = 0
    admitted_fingerprint: str | None = None


@dataclass(frozen=True)
class PollResult:
    """Outcome of one observation pass.

    ``discovered`` lists (file name, fingerprint) pairs seen for the
    first time this poll (possibly still unstable -- journaled so a
    post-mortem shows the file arrived); ``admitted`` lists pairs whose
    content settled this poll, in sorted file-name order so two runs
    that see the same directory state admit in the same order
    (determinism of the fused sequence depends on it).
    """

    discovered: tuple[tuple[str, str], ...] = ()
    admitted: tuple[tuple[str, str], ...] = ()


@dataclass
class SourceWatcher:
    """Polls a directory and admits sources whose content has settled.

    Parameters
    ----------
    directory:
        The followed directory.
    settle_polls:
        Consecutive polls a file's (size, fingerprint) must hold still
        before admission.  The default of 2 means: seen identical at
        least twice after the observation that first recorded it.
    ignore:
        File names (not paths) never treated as sources -- the daemon
        passes its own outputs (matches CSV, clusters JSON, journal)
        so the loop does not eat what it writes.
    """

    directory: Path
    settle_polls: int = 2
    ignore: frozenset[str] = frozenset()
    _observations: dict[str, _Observation] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.directory = Path(self.directory)
        if self.settle_polls < 1:
            self.settle_polls = 1

    def _candidates(self) -> list[Path]:
        if not self.directory.exists():
            return []
        found = [
            path
            for path in sorted(self.directory.glob("*.csv"))
            if not path.name.endswith(ALIGNMENT_SUFFIX)
            and path.name not in self.ignore
        ]
        return found

    def poll(self) -> PollResult:
        """One observation pass: discover, settle-check, admit.

        Never raises for concurrent file mutation: a file that vanishes
        or errors mid-read simply loses its observation and starts over
        next poll.
        """
        discovered: list[tuple[str, str]] = []
        admitted: list[tuple[str, str]] = []
        seen: set[str] = set()
        for path in self._candidates():
            try:
                size = path.stat().st_size
                fingerprint = source_fingerprint(path)
            except OSError:
                self._observations.pop(path.name, None)
                continue
            seen.add(path.name)
            observation = self._observations.get(path.name)
            if observation is None:
                self._observations[path.name] = _Observation(size, fingerprint)
                discovered.append((path.name, fingerprint))
                continue
            if (
                observation.size != size
                or observation.fingerprint != fingerprint
            ):
                # The writer is still at work: restart the settle count
                # and forget any earlier admission of different bytes.
                changed_after_admission = (
                    observation.admitted_fingerprint is not None
                )
                self._observations[path.name] = _Observation(size, fingerprint)
                if changed_after_admission:
                    discovered.append((path.name, fingerprint))
                continue
            if observation.admitted_fingerprint == fingerprint:
                continue
            observation.stable_polls += 1
            if observation.stable_polls >= self.settle_polls:
                observation.admitted_fingerprint = fingerprint
                admitted.append((path.name, fingerprint))
        for name in set(self._observations) - seen:
            del self._observations[name]
        return PollResult(tuple(discovered), tuple(admitted))
