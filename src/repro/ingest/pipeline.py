"""The fusion pipeline behind follow mode: featurize, then fuse.

One admitted source file becomes one *batch*.  The pipeline splits a
batch's work at the same boundary the ingestion journal records:

``featurize``
    loads the CSV, merges it into the cumulative dataset, enumerates the
    *new* cross-source pairs and scores them -- all the expensive,
    failure-prone work, but no externally visible state yet;
``fuse``
    folds the scored batch into the incremental property clusters and
    atomically rewrites the two outputs (matches CSV, clusters JSON).

Every step is deterministic given the bootstrap inputs and the sequence
of fused files: scoring uses seeded sampling only at bootstrap, cluster
growth is the greedy order-stable :class:`IncrementalClusterer`, and
the outputs are rewritten in full (sorted clusters, fusion-ordered
match rows) rather than appended.  That is what makes ``--resume`` a
*replay*: feeding the journal's fused files through a freshly
bootstrapped pipeline, in fusion order, lands on byte-identical output
files -- the acceptance invariant the chaos suite pins with SIGKILL.

For the LEAPME systems the pipeline rides the feature store's
incremental path (:meth:`LeapmeMatcher.add_source`): only the new
source's property rows and the new pairs are featurized.  Every other
matcher takes the generic path (merge, enumerate, score), which needs
no store and -- for unsupervised matchers -- no bootstrap dataset at
all.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.matcher import LeapmeMatcher
from repro.core.pipeline import flush_persistent_distances
from repro.data.csvio import load_dataset_csv
from repro.data.model import Dataset
from repro.data.pairs import LabeledPair, build_pairs, sample_training_pairs
from repro.errors import ConfigurationError, DataError
from repro.graph.incremental import IncrementalClusterer
from repro.ioutils import atomic_open_text, atomic_write_text

#: Column header of the matches CSV -- identical to ``repro match`` so
#: downstream consumers parse follow-mode output with the same code.
MATCH_COLUMNS = (
    "left_source", "left_property", "right_source", "right_property", "score",
)


@dataclass(frozen=True)
class PreparedBatch:
    """A featurized-but-not-yet-fused source file.

    Everything :meth:`IngestPipeline.fuse` needs, precomputed so the
    journal can durably record ``featurized`` before any output state
    changes.  ``pairs``/``scores`` cover only the *new* cross-source
    pairs the addition introduces.
    """

    file: str
    fingerprint: str
    addition: Dataset
    merged: Dataset
    pairs: tuple[LabeledPair, ...]
    scores: np.ndarray

    @property
    def properties(self) -> int:
        """New properties this batch contributes."""
        return len(self.addition.properties())


class IngestPipeline:
    """Deterministic source-at-a-time fusion into matches + clusters.

    Parameters
    ----------
    matcher:
        Any :class:`~repro.core.api.Matcher`.  Supervised matchers must
        be trained via :meth:`bootstrap` before the first batch;
        unsupervised ones may start from an empty state.
    matches_path / clusters_path:
        Output files, atomically rewritten after every fused batch.
    threshold:
        Match-acceptance score (defaults to the matcher's own).
    seed:
        Seeds the bootstrap training-pair sample (REP001: the only
        randomness in the whole follow pipeline).
    linkage:
        Cluster linkage, as in :class:`IncrementalClusterer`.
    """

    def __init__(
        self,
        matcher,
        matches_path: str | Path,
        clusters_path: str | Path,
        threshold: float | None = None,
        seed: int = 0,
        linkage: str = "max",
    ) -> None:
        self.matcher = matcher
        self.matches_path = Path(matches_path)
        self.clusters_path = Path(clusters_path)
        self.threshold = threshold if threshold is not None else matcher.threshold
        self.seed = seed
        self.linkage = linkage
        self.clusterer: IncrementalClusterer | None = None
        #: Accepted match rows in fusion order; rewritten in full each
        #: fuse so the file never depends on *when* crashes happened.
        self._match_rows: list[tuple[str, str, str, str, str]] = []
        self._fused_batches = 0

    # -- bootstrap -----------------------------------------------------------
    def bootstrap(self, base: Dataset | None) -> None:
        """Prepare (and for supervised matchers, train) on ``base``.

        With a base dataset, its sources are integrated into the initial
        clusters; match rows are emitted only for *streamed* batches --
        the base is trusted input, not something to re-match.  Without
        one, a supervised matcher has nothing to learn from and is
        rejected up front rather than failing on the first batch.
        """
        if base is None:
            if self.matcher.is_supervised:
                raise ConfigurationError(
                    f"{self.matcher.name} is supervised: follow mode needs "
                    "a bootstrap dataset with an alignment to train on "
                    "(--bootstrap-instances/--bootstrap-alignment), or use "
                    "an unsupervised system"
                )
            return
        if isinstance(self.matcher, LeapmeMatcher):
            store = self.matcher.build_feature_store(base)
            self.matcher.attach_store(store)
        self.matcher.prepare(base)
        if self.matcher.is_supervised:
            rng = np.random.default_rng(self.seed)
            candidates = self._bootstrap_candidates(base)
            training = sample_training_pairs(candidates, rng=rng)
            if not training.positives():
                raise ConfigurationError(
                    "no positive training pairs in the bootstrap dataset; "
                    "provide an alignment file"
                )
            self.matcher.fit(base, training)
        self.clusterer = IncrementalClusterer(
            self.matcher, base, threshold=self.threshold, linkage=self.linkage
        )
        self.clusterer.add_all()

    def _bootstrap_candidates(self, base: Dataset):
        """Training candidates for the bootstrap fit.

        Under a blocking candidate policy the matcher trains on the
        pruned universe (the same candidates it will score), which is
        what keeps warm restarts and incremental ingestion bit-identical
        to a cold blocked rebuild.  The null policy keeps the seed path:
        ``build_pairs`` over the full cross product.
        """
        store = getattr(self.matcher, "store", None)
        if store is not None and store.universe.is_blocked and store.serves(base):
            return store.universe.subset()
        return build_pairs(base)

    # -- featurize -----------------------------------------------------------
    def featurize(
        self,
        path: Path,
        alignment_path: Path | None,
        fingerprint: str,
    ) -> PreparedBatch:
        """Load, merge, and score one admitted source file.

        Raises the loader's :class:`~repro.errors.TransientDataError` /
        :class:`~repro.errors.DataError` unchanged -- the daemon maps
        those onto retry vs. quarantine.  A source whose names are
        already integrated raises :class:`DataError` *before* any state
        is touched, so duplicate drops quarantine cleanly.
        """
        addition = load_dataset_csv(path, alignment_path, name=path.stem)
        if not addition.sources():
            raise DataError(f"no usable rows in {path}")
        if self.clusterer is None:
            merged = addition
            self.matcher.prepare(merged)
            pairs = tuple(build_pairs(merged).pairs)
        else:
            existing = self.clusterer.dataset.sources()
            overlap = set(addition.sources()) & set(existing)
            if overlap:
                raise DataError(
                    f"sources already present in dataset: {sorted(overlap)}"
                )
            if (
                isinstance(self.matcher, LeapmeMatcher)
                and self.matcher.store is not None
            ):
                new_pairs = self.matcher.add_source(addition)
                merged = self.matcher.store.universe.dataset
            else:
                merged = self.clusterer.dataset.merged_with(addition)
                self.matcher.prepare(merged)
                new_pairs = build_pairs(merged, existing, within=False)
            pairs = tuple(new_pairs.pairs)
        if pairs and not self.matcher.is_fitted:
            raise ConfigurationError(
                f"{self.matcher.name} is not fitted; bootstrap before "
                "featurizing batches"
            )
        scores = (
            self.matcher.score_pairs(merged, list(pairs))
            if pairs
            else np.zeros(0)
        )
        return PreparedBatch(
            file=path.name,
            fingerprint=fingerprint,
            addition=addition,
            merged=merged,
            pairs=pairs,
            scores=scores,
        )

    # -- fuse ----------------------------------------------------------------
    def fuse(self, batch: PreparedBatch) -> dict[str, int]:
        """Fold a prepared batch into clusters and rewrite the outputs."""
        if self.clusterer is None:
            self.clusterer = IncrementalClusterer(
                self.matcher,
                batch.merged,
                threshold=self.threshold,
                linkage=self.linkage,
            )
            changes = self.clusterer.add_all()
        else:
            changes = self.clusterer.add_dataset(batch.addition, merged=batch.merged)
        kept = 0
        for pair, score in zip(batch.pairs, batch.scores):
            if score >= self.threshold:
                self._match_rows.append(
                    (
                        pair.left.source,
                        pair.left.name,
                        pair.right.source,
                        pair.right.name,
                        f"{float(score):.4f}",
                    )
                )
                kept += 1
        self._fused_batches += 1
        self._write_outputs()
        return {
            "order": self._fused_batches,
            "matches": kept,
            "joined": changes["joined"],
            "founded": changes["founded"],
        }

    def _write_outputs(self) -> None:
        """Atomically rewrite matches CSV and clusters JSON (REP002).

        Full rewrites, not appends: the files depend only on the fused
        sequence, never on how many times the process died in between.
        """
        with atomic_open_text(self.matches_path, newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(MATCH_COLUMNS)
            writer.writerows(self._match_rows)
        atomic_write_text(self.clusters_path, self._clusters_json())
        # Same durability boundary for the name-distance kernel cache:
        # rows computed for this batch survive a kill right after the
        # batch's outputs do.  No-op unless serve wired a cache.
        flush_persistent_distances()

    def _clusters_json(self) -> str:
        assert self.clusterer is not None
        clusters = sorted(
            sorted(f"{ref.source}|{ref.name}" for ref in cluster)
            for cluster in self.clusterer.clusters()
        )
        payload = {
            "threshold": self.threshold,
            "linkage": self.linkage,
            "sources": self.clusterer.integrated_sources,
            "clusters": clusters,
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    @property
    def fused_batches(self) -> int:
        """Batches fused so far (the journal's ``order`` counter)."""
        return self._fused_batches
