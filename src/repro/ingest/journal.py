"""Ingestion journal: the crash-safe record of a follow-mode run.

Every source file a :class:`~repro.ingest.daemon.FollowDaemon` touches
moves through a small state machine::

    discovered -> admitted -> featurized -> fused
                     |                        ^
                     +--> retrying -----------+
                     |       |
                     +--> quarantined

Each transition is one fsynced JSONL append
(:func:`repro.ioutils.fsync_append_line`), so a process killed at any
point leaves a journal whose *latest* record per (file, fingerprint)
names exactly how far that source got.  ``--resume`` replays the
``fused`` records in fusion order -- re-ingesting the same bytes through
the same deterministic pipeline -- and lands on matches and clusters
bit-identical to a cold rebuild over the same source set; everything
not yet fused is simply re-discovered by the watcher.

Format
------
The first line is a header record::

    {"type": "ingest-journal", "version": 1}

Every subsequent line describes one transition of one source file::

    {"type": "source", "file": "cameras_b.csv", "fingerprint": "9f2c...",
     "status": "fused", "order": 1, "properties": 7, "pairs": 21,
     "matches": 5}

``retrying`` records carry ``attempt``/``error_type``/``error``;
``quarantined`` records carry a structured ``reason`` plus the final
error and attempt count.  Sources are keyed by *(file name,
content fingerprint)*: a file whose bytes change after quarantine is a
new source with a fresh lifecycle, while re-appends for the same
fingerprint supersede each other (latest wins), exactly as in
:class:`repro.evaluation.checkpoint.RunJournal`, whose torn-tail
reading machinery this module reuses.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.errors import JournalError
from repro.evaluation.checkpoint import read_journal_records
from repro.ioutils import fsync_append_line

INGEST_JOURNAL_TYPE = "ingest-journal"
_INGEST_JOURNAL_VERSION = 1

STATUS_DISCOVERED = "discovered"
STATUS_ADMITTED = "admitted"
STATUS_RETRYING = "retrying"
STATUS_FEATURIZED = "featurized"
STATUS_FUSED = "fused"
STATUS_QUARANTINED = "quarantined"

#: Lifecycle order, used to render describe() lines deterministically.
STATUS_ORDER = (
    STATUS_DISCOVERED,
    STATUS_ADMITTED,
    STATUS_RETRYING,
    STATUS_FEATURIZED,
    STATUS_FUSED,
    STATUS_QUARANTINED,
)

#: Structured ``reason`` values of ``quarantined`` records.
REASON_POISON = "poison-source"
REASON_RETRIES_EXHAUSTED = "retry-budget-exhausted"
REASON_DUPLICATE = "duplicate-source"
QUARANTINE_REASONS = frozenset(
    {REASON_POISON, REASON_RETRIES_EXHAUSTED, REASON_DUPLICATE}
)


@dataclass(frozen=True)
class SourceEvent:
    """One source file's transition as recorded in (or read from) a journal."""

    file: str
    fingerprint: str
    status: str
    attempt: int | None = None
    error_type: str | None = None
    error: str | None = None
    reason: str | None = None
    order: int | None = None
    properties: int | None = None
    pairs: int | None = None
    matches: int | None = None

    @property
    def key(self) -> tuple[str, str]:
        """The (file, fingerprint) identity of the source this describes."""
        return (self.file, self.fingerprint)

    def to_record(self) -> dict:
        """JSON-serialisable journal line."""
        record: dict = {
            "type": "source",
            "file": self.file,
            "fingerprint": self.fingerprint,
            "status": self.status,
        }
        for name in (
            "attempt", "error_type", "error", "reason",
            "order", "properties", "pairs", "matches",
        ):
            value = getattr(self, name)
            if value is not None:
                record[name] = value
        return record

    @classmethod
    def from_record(cls, record: dict) -> "SourceEvent":
        """Inverse of :meth:`to_record`."""
        try:
            return cls(
                file=record["file"],
                fingerprint=record["fingerprint"],
                status=record["status"],
                attempt=_opt_int(record.get("attempt")),
                error_type=record.get("error_type"),
                error=record.get("error"),
                reason=record.get("reason"),
                order=_opt_int(record.get("order")),
                properties=_opt_int(record.get("properties")),
                pairs=_opt_int(record.get("pairs")),
                matches=_opt_int(record.get("matches")),
            )
        except (KeyError, TypeError, ValueError) as problem:
            raise JournalError(
                f"malformed ingestion-journal record: {problem}"
            ) from None


def _opt_int(value) -> int | None:
    return None if value is None else int(value)


class IngestJournal:
    """Append-only JSONL journal of source-ingestion transitions.

    One instance wraps one file path; the file is created (with its
    header line) on the first append.  Reading never requires the file
    to exist -- a missing journal is an empty one, so fresh and resumed
    follow runs construct it identically.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    # -- writing -------------------------------------------------------------
    def _ensure_header(self) -> None:
        if not self.path.exists() or self.path.stat().st_size == 0:
            fsync_append_line(
                self.path,
                json.dumps(
                    {
                        "type": INGEST_JOURNAL_TYPE,
                        "version": _INGEST_JOURNAL_VERSION,
                    }
                ),
            )

    def append(self, event: SourceEvent) -> None:
        """Durably record one transition (a single fsynced line)."""
        self._ensure_header()
        fsync_append_line(self.path, json.dumps(event.to_record(), sort_keys=True))

    def record_discovered(self, file: str, fingerprint: str) -> None:
        """A candidate file was seen for the first time (maybe unstable)."""
        self.append(SourceEvent(file, fingerprint, STATUS_DISCOVERED))

    def record_admitted(self, file: str, fingerprint: str) -> None:
        """The file's size + fingerprint settled; it may now be read."""
        self.append(SourceEvent(file, fingerprint, STATUS_ADMITTED))

    def record_retry(
        self, file: str, fingerprint: str, attempt: int, error: BaseException
    ) -> None:
        """An ingestion attempt failed; a bounded-backoff retry is due."""
        self.append(
            SourceEvent(
                file,
                fingerprint,
                STATUS_RETRYING,
                attempt=attempt,
                error_type=type(error).__name__,
                error=str(error),
            )
        )

    def record_featurized(
        self, file: str, fingerprint: str, properties: int, pairs: int
    ) -> None:
        """The batch's features and scores are computed (not yet fused)."""
        self.append(
            SourceEvent(
                file,
                fingerprint,
                STATUS_FEATURIZED,
                properties=properties,
                pairs=pairs,
            )
        )

    def record_fused(
        self,
        file: str,
        fingerprint: str,
        order: int,
        properties: int,
        pairs: int,
        matches: int,
    ) -> None:
        """The batch is folded into matches + clusters and outputs written."""
        self.append(
            SourceEvent(
                file,
                fingerprint,
                STATUS_FUSED,
                order=order,
                properties=properties,
                pairs=pairs,
                matches=matches,
            )
        )

    def record_quarantined(
        self,
        file: str,
        fingerprint: str,
        reason: str,
        error: BaseException,
        attempts: int,
    ) -> None:
        """The source is set aside; healthy sources continue without it."""
        self.append(
            SourceEvent(
                file,
                fingerprint,
                STATUS_QUARANTINED,
                reason=reason,
                attempt=attempts,
                error_type=type(error).__name__,
                error=str(error),
            )
        )

    # -- reading -------------------------------------------------------------
    def events(self) -> list[SourceEvent]:
        """Every source transition, in append order (torn tail dropped)."""
        records = read_journal_records(
            self.path,
            header_type=INGEST_JOURNAL_TYPE,
            version=_INGEST_JOURNAL_VERSION,
            kind="an ingestion journal",
        )
        return [
            SourceEvent.from_record(record)
            for record in records
            if record.get("type") == "source"
        ]

    def latest(self) -> dict[tuple[str, str], SourceEvent]:
        """Latest event per (file, fingerprint), in first-seen order."""
        latest: dict[tuple[str, str], SourceEvent] = {}
        for event in self.events():
            latest[event.key] = event
        return latest

    def fused_in_order(self) -> list[SourceEvent]:
        """Sources whose latest status is ``fused``, by fusion order.

        The replay plan for ``--resume``: feeding these files through
        the pipeline again, in this order, reproduces the pre-crash
        state bit for bit.
        """
        fused = [
            event
            for event in self.latest().values()
            if event.status == STATUS_FUSED
        ]
        return sorted(fused, key=lambda event: event.order or 0)

    def quarantined(self) -> dict[tuple[str, str], SourceEvent]:
        """Sources whose latest status is ``quarantined``."""
        return {
            key: event
            for key, event in self.latest().items()
            if event.status == STATUS_QUARANTINED
        }

    def describe(self) -> str:
        """Post-mortem summary: per-source status, last failure, reasons.

        One line per (file, fingerprint) with its latest status and the
        counts that status carries, then aggregate per-status counts,
        the most recently journaled failure among sources that are
        still failing (retrying or quarantined -- a failure a later
        attempt recovered from is history, not a finding), and one line
        per quarantined source naming its structured reason.  Enough to
        diagnose a dead follow loop from ``repro describe --journal X``
        alone.
        """
        events = self.events()
        latest: dict[tuple[str, str], tuple[int, SourceEvent]] = {}
        for position, event in enumerate(events):
            latest[event.key] = (position, event)
        lines = [f"ingestion journal {self.path}:"]
        counts: dict[str, int] = {}
        failures: list[tuple[int, SourceEvent]] = []
        for position, event in latest.values():
            counts[event.status] = counts.get(event.status, 0) + 1
            if event.status in (STATUS_RETRYING, STATUS_QUARANTINED):
                failures.append((position, event))
            detail = [f"status={event.status}"]
            if event.order is not None:
                detail.append(f"order={event.order}")
            if event.properties is not None:
                detail.append(f"properties={event.properties}")
            if event.pairs is not None:
                detail.append(f"pairs={event.pairs}")
            if event.matches is not None:
                detail.append(f"matches={event.matches}")
            if event.reason is not None:
                detail.append(f"reason={event.reason}")
            lines.append(
                f"  {event.file} ({event.fingerprint}): " + ", ".join(detail)
            )
        if len(lines) == 1:
            lines.append("  (empty)")
            return "\n".join(lines)
        summary = [
            f"{counts[status]} {status}"
            for status in STATUS_ORDER
            if counts.get(status)
        ]
        lines.append("  totals: " + ", ".join(summary))
        if failures:
            _, failure = max(failures, key=lambda pair: pair[0])
            lines.append(
                f"  last failure: {failure.file}: "
                f"{failure.error_type}: {failure.error}"
                + (
                    f" (after {failure.attempt} attempt(s))"
                    if failure.attempt is not None
                    else ""
                )
            )
        for _, event in sorted(
            (pair for pair in latest.values() if pair[1].status == STATUS_QUARANTINED),
            key=lambda pair: pair[1].file,
        ):
            lines.append(
                f"  quarantined: {event.file}: {event.reason} "
                f"({event.error_type}: {event.error})"
            )
        return "\n".join(lines)
