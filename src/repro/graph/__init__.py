"""Similarity graph and property clustering.

Algorithm 1's output ``Sim`` is "a set of property pairs with similarities
(similarity graph)"; Section II notes that "such a graph can be used as
input for clustering so that all matching properties are in the same
cluster", and Section VI names deriving clusters as planned future work.
This package implements both the graph container and several clustering
strategies, built on :mod:`networkx`.
"""

from repro.graph.clustering import (
    cluster_connected_components,
    cluster_correlation,
    cluster_star,
    clustering_metrics,
)
from repro.graph.fusion import FusedAttribute, fuse_cluster, fuse_clusters
from repro.graph.incremental import IncrementalClusterer
from repro.graph.simgraph import SimilarityEdge, SimilarityGraph

__all__ = [
    "SimilarityEdge",
    "SimilarityGraph",
    "IncrementalClusterer",
    "FusedAttribute",
    "fuse_cluster",
    "fuse_clusters",
    "cluster_connected_components",
    "cluster_star",
    "cluster_correlation",
    "clustering_metrics",
]
