"""Incremental multi-source integration: add sources one at a time.

Knowledge graphs are not built in one batch -- new sources arrive and
must be folded into the existing property clusters (cf. the incremental
multi-source entity resolution of Saeedi, Peukert & Rahm, which the
paper cites as its integration context).  The
:class:`IncrementalClusterer` maintains clusters of equivalent
properties and, for each arriving source, scores its properties against
the current clusters with any fitted matcher:

* a property joins the cluster with the strongest link above the
  threshold (max-link by default, average-link optionally);
* otherwise it founds a new cluster.

Compared with batch clustering over all pairs, incremental integration
scores only ``new-properties x existing-properties`` pairs per step.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.data.model import Dataset, PropertyRef
from repro.data.pairs import LabeledPair
from repro.errors import ConfigurationError, DataError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core -> graph)
    from repro.core.api import Matcher


class IncrementalClusterer:
    """Grow property clusters source by source with a fitted matcher."""

    def __init__(
        self,
        matcher: "Matcher",
        dataset: Dataset,
        threshold: float | None = None,
        linkage: str = "max",
    ) -> None:
        if linkage not in ("max", "average"):
            raise ConfigurationError(f"linkage must be 'max' or 'average', got {linkage!r}")
        self.matcher = matcher
        self.dataset = dataset
        self.threshold = threshold if threshold is not None else matcher.threshold
        self.linkage = linkage
        self._clusters: list[set[PropertyRef]] = []
        self._integrated_sources: list[str] = []
        matcher.prepare(dataset)

    @property
    def integrated_sources(self) -> list[str]:
        """Sources added so far, in insertion order."""
        return list(self._integrated_sources)

    def clusters(self) -> list[set[PropertyRef]]:
        """Current clusters (copies; safe to mutate)."""
        return [set(cluster) for cluster in self._clusters]

    def _cluster_scores(
        self, new_refs: list[PropertyRef]
    ) -> dict[PropertyRef, list[float]]:
        """Per-new-property linkage score against every existing cluster."""
        existing: list[PropertyRef] = [
            ref for cluster in self._clusters for ref in cluster
        ]
        cluster_of: dict[PropertyRef, int] = {}
        for index, cluster in enumerate(self._clusters):
            for ref in cluster:
                cluster_of[ref] = index
        pairs = [
            LabeledPair(new, old, False)
            for new in new_refs
            for old in existing
            if old.source != new.source
        ]
        scores_by_ref: dict[PropertyRef, list[list[float]]] = {
            ref: [[] for _ in self._clusters] for ref in new_refs
        }
        if pairs:
            scores = self.matcher.score_pairs(self.dataset, pairs)
            for pair, score in zip(pairs, scores):
                scores_by_ref[pair.left][cluster_of[pair.right]].append(float(score))
        reduced: dict[PropertyRef, list[float]] = {}
        for ref, per_cluster in scores_by_ref.items():
            row = []
            for cluster_scores in per_cluster:
                if not cluster_scores:
                    row.append(-1.0)
                elif self.linkage == "max":
                    row.append(max(cluster_scores))
                else:
                    row.append(float(np.mean(cluster_scores)))
            reduced[ref] = row
        return reduced

    def add_source(self, source: str) -> dict[str, int]:
        """Integrate one source; returns ``{"joined": n, "founded": m}``.

        Properties of the source are attached greedily in decreasing
        best-score order, so the strongest evidence claims its cluster
        first.  Each touched cluster accepts at most one property of the
        new source (a source describes each reference property once).
        """
        if source in self._integrated_sources:
            raise DataError(f"source already integrated: {source}")
        if source not in self.dataset.sources():
            raise DataError(f"unknown source: {source}")
        new_refs = self.dataset.properties(source)
        joined = founded = 0
        if not self._clusters:
            for ref in new_refs:
                self._clusters.append({ref})
                founded += 1
            self._integrated_sources.append(source)
            return {"joined": 0, "founded": founded}
        scores = self._cluster_scores(new_refs)
        order = sorted(
            new_refs, key=lambda ref: -max(scores[ref], default=-1.0)
        )
        claimed: set[int] = set()
        for ref in order:
            row = scores[ref]
            best_cluster = -1
            best_score = self.threshold
            for index, score in enumerate(row):
                if index in claimed:
                    continue
                if score >= best_score:
                    best_cluster, best_score = index, score
            if best_cluster >= 0:
                self._clusters[best_cluster].add(ref)
                claimed.add(best_cluster)
                joined += 1
            else:
                self._clusters.append({ref})
                founded += 1
        self._integrated_sources.append(source)
        return {"joined": joined, "founded": founded}

    def add_dataset(
        self, addition: Dataset, merged: Dataset | None = None
    ) -> dict[str, int]:
        """Grow the clusterer's dataset with ``addition``, then integrate it.

        The streaming counterpart of :meth:`add_source`: the clusterer
        was built over yesterday's dataset and a new source file just
        arrived.  ``merged`` may be passed when the caller has already
        merged (e.g. via ``PairFeatureStore.add_source``) to avoid
        re-concatenating; it must equal
        ``self.dataset.merged_with(addition)``, which is what is
        computed when it is omitted.  Returns aggregate
        ``{"joined": n, "founded": m}`` counts over the addition's
        sources, integrated in ``addition.sources()`` order.
        """
        if merged is None:
            merged = self.dataset.merged_with(addition)
        else:
            overlap = set(self._integrated_sources) & set(addition.sources())
            if overlap:
                raise DataError(
                    f"source already integrated: {sorted(overlap)}"
                )
        self.dataset = merged
        self.matcher.prepare(merged)
        totals = {"joined": 0, "founded": 0}
        for source in addition.sources():
            changes = self.add_source(source)
            totals["joined"] += changes["joined"]
            totals["founded"] += changes["founded"]
        return totals

    def add_all(self, order: list[str] | None = None) -> dict[str, int]:
        """Integrate every (remaining) source; returns aggregate counts."""
        sources = order if order is not None else self.dataset.sources()
        totals = {"joined": 0, "founded": 0}
        for source in sources:
            if source in self._integrated_sources:
                continue
            changes = self.add_source(source)
            totals["joined"] += changes["joined"]
            totals["founded"] += changes["founded"]
        return totals
