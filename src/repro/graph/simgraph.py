"""The similarity graph: Algorithm 1's output ``Sim``."""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

import networkx as nx

from repro.data.model import PropertyRef
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SimilarityEdge:
    """One scored property pair."""

    left: PropertyRef
    right: PropertyRef
    score: float

    @property
    def key(self) -> frozenset[PropertyRef]:
        """Unordered identity of the edge."""
        return frozenset((self.left, self.right))


class SimilarityGraph:
    """A weighted undirected graph of property-pair similarities.

    Stores every scored pair; :meth:`matches` filters by threshold, and
    :meth:`to_networkx` exports the graph for clustering.
    """

    def __init__(self, edges: list[SimilarityEdge] | None = None) -> None:
        self._edges: dict[frozenset[PropertyRef], SimilarityEdge] = {}
        for edge in edges or ():
            self.add(edge.left, edge.right, edge.score)

    def add(self, left: PropertyRef, right: PropertyRef, score: float) -> None:
        """Insert or overwrite a scored pair."""
        if left == right:
            raise ConfigurationError(f"self-edge on {left}")
        if not 0.0 <= score <= 1.0:
            raise ConfigurationError(f"score must be in [0, 1], got {score}")
        self._edges[frozenset((left, right))] = SimilarityEdge(left, right, score)

    def score(self, left: PropertyRef, right: PropertyRef) -> float | None:
        """Stored score of a pair, or None if the pair was never scored."""
        edge = self._edges.get(frozenset((left, right)))
        return edge.score if edge is not None else None

    def __len__(self) -> int:
        return len(self._edges)

    def __iter__(self) -> Iterator[SimilarityEdge]:
        return iter(self._edges.values())

    def edges(self) -> list[SimilarityEdge]:
        """All scored pairs, highest score first."""
        return sorted(self._edges.values(), key=lambda edge: -edge.score)

    def matches(self, threshold: float = 0.5) -> list[SimilarityEdge]:
        """Pairs whose score reaches the threshold, highest first."""
        return [edge for edge in self.edges() if edge.score >= threshold]

    def match_keys(self, threshold: float = 0.5) -> set[frozenset[PropertyRef]]:
        """Unordered pair keys of the matches (for set-based metrics)."""
        return {edge.key for edge in self.matches(threshold)}

    def properties(self) -> list[PropertyRef]:
        """All properties mentioned by at least one edge, sorted."""
        refs: set[PropertyRef] = set()
        for edge in self._edges.values():
            refs.add(edge.left)
            refs.add(edge.right)
        return sorted(refs)

    def to_networkx(self, threshold: float = 0.0) -> nx.Graph:
        """Export edges with score >= threshold as a weighted nx.Graph."""
        graph = nx.Graph()
        graph.add_nodes_from(self.properties())
        for edge in self._edges.values():
            if edge.score >= threshold:
                graph.add_edge(edge.left, edge.right, weight=edge.score)
        return graph
