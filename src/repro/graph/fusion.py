"""Value fusion: collapse a property cluster into one KG attribute.

The paper's motivation (Section I) is that matched properties must be
*fused* when building a knowledge graph: 24 differently-named "camera
resolution" properties become one canonical attribute whose per-entity
value is reconciled from the sources.  This module provides the final
step: canonical naming, per-cluster value reconciliation, and simple
conflict-resolution strategies from the data-fusion literature.
"""

from __future__ import annotations

import re
from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.data.model import Dataset, PropertyRef
from repro.errors import ConfigurationError
from repro.text.normalize import name_tokens
from repro.text.tokenize import try_parse_numeric


@dataclass(frozen=True)
class FusedAttribute:
    """One canonical attribute produced from a property cluster."""

    canonical_name: str
    members: tuple[PropertyRef, ...]
    #: entity id -> reconciled value (entity ids remain source-local).
    values: dict[str, str] = field(default_factory=dict, compare=False)

    @property
    def n_sources(self) -> int:
        """How many sources contributed."""
        return len({ref.source for ref in self.members})

    def describe(self) -> str:
        """One-line summary."""
        return (
            f"{self.canonical_name}: {len(self.members)} properties from "
            f"{self.n_sources} sources, {len(self.values)} fused values"
        )


def canonical_name(members: list[PropertyRef]) -> str:
    """The most common normalised name among cluster members.

    Normalisation collapses the casing/separator heterogeneity so
    ``Screen_Size`` and ``screen size`` vote together; ties break
    alphabetically for determinism.
    """
    votes = Counter(" ".join(name_tokens(ref.name)) for ref in members)
    best = max(sorted(votes), key=lambda name: votes[name])
    return best


def _majority(values: list[str]) -> str:
    """Most frequent exact value, ties broken deterministically."""
    votes = Counter(values)
    return max(sorted(votes), key=lambda value: votes[value])


_NUMBER_RE = re.compile(r"\d+(?:[.,]\d+)?")


def _numeric_median(values: list[str]) -> str:
    """Median of the parseable numbers; falls back to majority vote.

    The first number embedded in each value is used, tolerating attached
    unit suffixes ("24.3MP" -> 24.3).
    """
    numbers = []
    for value in values:
        # try_parse_numeric distinguishes "not a number" from a genuine
        # -1 (the feature-vector sentinel would conflate them, REP004).
        direct = try_parse_numeric(value)
        if direct is not None:
            numbers.append(direct)
            continue
        match = _NUMBER_RE.search(value)
        if match is not None:
            parsed = try_parse_numeric(match.group(0))
            if parsed is not None:
                numbers.append(parsed)
    if not numbers:
        return _majority(values)
    median = float(np.median(numbers))
    if median.is_integer():
        return str(int(median))
    return f"{median:g}"


_STRATEGIES = {
    "majority": _majority,
    "numeric_median": _numeric_median,
}


def fuse_cluster(
    dataset: Dataset,
    cluster: set[PropertyRef],
    strategy: str = "majority",
) -> FusedAttribute:
    """Fuse one property cluster into a :class:`FusedAttribute`.

    Values are reconciled *per entity*: when several member properties
    describe the same entity (which happens for same-source members of an
    over-merged cluster, or after entity resolution has unified ids), the
    chosen strategy resolves the conflict; otherwise the single observed
    value is kept.
    """
    try:
        resolve = _STRATEGIES[strategy]
    except KeyError:
        known = ", ".join(sorted(_STRATEGIES))
        raise ConfigurationError(
            f"unknown fusion strategy {strategy!r}; known: {known}"
        ) from None
    members = tuple(sorted(cluster))
    per_entity: dict[str, list[str]] = {}
    for ref in members:
        for instance in dataset.instances_of(ref):
            per_entity.setdefault(instance.entity_id, []).append(instance.value)
    values = {
        entity: (candidates[0] if len(candidates) == 1 else resolve(candidates))
        for entity, candidates in per_entity.items()
    }
    return FusedAttribute(
        canonical_name=canonical_name(list(members)),
        members=members,
        values=values,
    )


def fuse_clusters(
    dataset: Dataset,
    clusters: list[set[PropertyRef]],
    strategy: str = "majority",
    min_sources: int = 2,
) -> list[FusedAttribute]:
    """Fuse every cluster spanning at least ``min_sources`` sources.

    Returned attributes are ordered by decreasing source coverage -- the
    attributes most worth curating first.
    """
    if min_sources < 1:
        raise ConfigurationError("min_sources must be >= 1")
    fused = [
        fuse_cluster(dataset, cluster, strategy)
        for cluster in clusters
        if len({ref.source for ref in cluster}) >= min_sources
    ]
    fused.sort(key=lambda attribute: (-attribute.n_sources, attribute.canonical_name))
    return fused
