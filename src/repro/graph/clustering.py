"""Property clustering over the similarity graph (the paper's future work).

Section VI: "we plan to evaluate different methods for deriving clusters
of equivalent properties from the match results determined with LEAPME."
Three standard strategies from the entity-clustering literature are
implemented:

* **connected components** -- the simplest (and most recall-friendly):
  every component of the thresholded match graph is one cluster;
* **star clustering** -- repeatedly pick the node with the highest
  weighted degree as a centre and claim its unclaimed neighbours,
  breaking long error chains that plague connected components;
* **correlation clustering** (greedy pivot) -- treats scores above the
  threshold as attraction and below as repulsion, assigning each node to
  the pivot cluster with the highest net attraction.

:func:`clustering_metrics` scores a clustering against ground truth with
pairwise precision/recall/F1, the standard evaluation for match-based
clusters.
"""

from __future__ import annotations

from collections import defaultdict

import networkx as nx

from repro.data.model import Dataset, PropertyRef
from repro.errors import ConfigurationError
from repro.metrics import MatchQuality
from repro.graph.simgraph import SimilarityGraph


def cluster_connected_components(
    graph: SimilarityGraph, threshold: float = 0.5
) -> list[set[PropertyRef]]:
    """Each connected component of the match graph is one cluster."""
    nx_graph = graph.to_networkx(threshold)
    return [set(component) for component in nx.connected_components(nx_graph)]


def cluster_star(
    graph: SimilarityGraph, threshold: float = 0.5
) -> list[set[PropertyRef]]:
    """Star clustering: greedy centres claim their unclaimed neighbours."""
    nx_graph = graph.to_networkx(threshold)
    weighted_degree = {
        node: sum(data["weight"] for _, _, data in nx_graph.edges(node, data=True))
        for node in nx_graph.nodes
    }
    unclaimed = set(nx_graph.nodes)
    clusters: list[set[PropertyRef]] = []
    for node in sorted(unclaimed, key=lambda n: (-weighted_degree[n], n)):
        if node not in unclaimed:
            continue
        members = {node}
        unclaimed.discard(node)
        for neighbor in nx_graph.neighbors(node):
            if neighbor in unclaimed:
                members.add(neighbor)
                unclaimed.discard(neighbor)
        clusters.append(members)
    return clusters


def cluster_correlation(
    graph: SimilarityGraph, threshold: float = 0.5
) -> list[set[PropertyRef]]:
    """Greedy pivot correlation clustering.

    Nodes are visited in decreasing weighted-degree order; each unassigned
    node becomes a pivot, and every other unassigned node joins the pivot
    whose edges attract it most (sum of ``score - threshold`` over edges
    to current members, counting missing edges as repulsion 0).
    """
    nodes = graph.properties()
    score_of: dict[frozenset[PropertyRef], float] = {
        edge.key: edge.score for edge in graph
    }
    weighted_degree: dict[PropertyRef, float] = defaultdict(float)
    for edge in graph:
        weighted_degree[edge.left] += edge.score
        weighted_degree[edge.right] += edge.score
    unassigned = set(nodes)
    clusters: list[set[PropertyRef]] = []
    for pivot in sorted(nodes, key=lambda n: (-weighted_degree[n], n)):
        if pivot not in unassigned:
            continue
        cluster = {pivot}
        unassigned.discard(pivot)
        for candidate in sorted(unassigned):
            attraction = 0.0
            for member in cluster:
                score = score_of.get(frozenset((candidate, member)))
                if score is not None:
                    attraction += score - threshold
            if attraction > 0:
                cluster.add(candidate)
        unassigned -= cluster
        clusters.append(cluster)
    return clusters


def _true_pairs(dataset: Dataset, refs: set[PropertyRef]) -> set[frozenset[PropertyRef]]:
    return {
        pair for pair in dataset.matching_pairs() if pair <= refs
    }


def clustering_metrics(
    clusters: list[set[PropertyRef]],
    dataset: Dataset,
    restrict_to: set[PropertyRef] | None = None,
) -> MatchQuality:
    """Pairwise precision/recall/F1 of a clustering against ground truth.

    Every unordered cross-source pair co-located in a cluster counts as a
    predicted match; ground truth comes from the dataset alignment.
    ``restrict_to`` limits evaluation to a property subset (e.g. the test
    properties).
    """
    seen: set[PropertyRef] = set()
    predicted: set[frozenset[PropertyRef]] = set()
    for cluster in clusters:
        overlap = seen & cluster
        if overlap:
            raise ConfigurationError(
                f"clusters overlap on {len(overlap)} properties"
            )
        seen |= cluster
        members = sorted(cluster)
        for i, left in enumerate(members):
            for right in members[i + 1 :]:
                if left.source != right.source:
                    predicted.add(frozenset((left, right)))
    universe = restrict_to if restrict_to is not None else seen
    predicted = {pair for pair in predicted if pair <= universe}
    actual = _true_pairs(dataset, universe)
    tp = len(predicted & actual)
    fp = len(predicted - actual)
    fn = len(actual - predicted)
    return MatchQuality(true_positives=tp, false_positives=fp, false_negatives=fn)
