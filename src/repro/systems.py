"""Shared matching-system factory.

One place maps a system label (``leapme``, ``lsh``, ...) to a
constructed :class:`~repro.core.api.Matcher`, used by the CLI, the
follow daemon bootstrap, and the tenant registry of the long-lived
matching service (:mod:`repro.serve`).  Keeping the mapping here means
a new baseline registers once and every entry point -- batch, follow,
HTTP -- can serve it.

Embedding policy mirrors the CLI's: built-in domains get trained
domain embeddings, user data falls back to semantics-free hash
embeddings over the dataset's own vocabulary (deterministic for a
given dataset, which is what makes tenant bootstraps replayable).
"""

from __future__ import annotations

from repro.baselines import (
    AmlMatcher,
    FcaMapMatcher,
    LshMatcher,
    NezhadiMatcher,
    SemPropMatcher,
)
from repro.blocking import CandidatePolicy
from repro.core import FeatureConfig, FeatureKinds, LeapmeMatcher
from repro.core.api import Matcher
from repro.data.model import Dataset
from repro.embeddings.hashing import hash_embeddings
from repro.errors import ReproError
from repro.text.tokenize import words

SYSTEMS = (
    "leapme",
    "leapme-emb",
    "leapme-noemb",
    "aml",
    "fcamap",
    "nezhadi",
    "semprop",
    "lsh",
)

#: Dimensionality of the hash-embedding fallback for user data.
HASH_DIMENSION = 64


def build_system_matcher(
    system: str, embeddings, policy: CandidatePolicy | None = None
) -> Matcher:
    """Construct the matcher registered under ``system``.

    ``policy`` selects the candidate-generation policy for LEAPME
    variants (they build their feature stores from it); the baseline
    matchers score whatever pairs they are handed and accept only the
    null policy.
    """
    blocked = policy is not None and not policy.is_null
    if system == "leapme":
        return LeapmeMatcher(embeddings, candidate_policy=policy)
    if system == "leapme-emb":
        return LeapmeMatcher(
            embeddings,
            FeatureConfig(kinds=FeatureKinds.EMBEDDING),
            candidate_policy=policy,
        )
    if system == "leapme-noemb":
        return LeapmeMatcher(
            embeddings,
            FeatureConfig(kinds=FeatureKinds.NON_EMBEDDING),
            candidate_policy=policy,
        )
    if blocked:
        raise ReproError(
            f"system {system!r} does not support candidate blocking "
            f"(policy {policy.label!r}); only LEAPME variants do"
        )
    if system == "aml":
        return AmlMatcher()
    if system == "fcamap":
        return FcaMapMatcher()
    if system == "nezhadi":
        return NezhadiMatcher()
    if system == "semprop":
        return SemPropMatcher(embeddings)
    if system == "lsh":
        return LshMatcher()
    raise ReproError(f"unknown system {system!r}; known: {', '.join(SYSTEMS)}")


def fallback_embeddings(dataset: Dataset | None, dimension: int = HASH_DIMENSION):
    """Hash embeddings over ``dataset``'s vocabulary (empty when ``None``).

    Deterministic for a given dataset content: the vocabulary is sorted
    before hashing, so two processes bootstrapping the same tenant land
    on bit-identical embedding matrices -- a prerequisite for the serve
    layer's warm-restart byte-identity guarantee.
    """
    vocabulary: set[str] = set()
    if dataset is not None:
        for instance in dataset.instances:
            vocabulary.update(words(instance.property_name))
            vocabulary.update(words(instance.value))
    return hash_embeddings(sorted(vocabulary), dimension=dimension)
