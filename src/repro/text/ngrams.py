"""N-gram distances (Table I rows 12-14).

Three n-gram based pair features appear in the paper, all computed over
character 3-grams of the property names:

* :func:`ngram_distance` -- Kondrak's positional n-gram distance, the measure
  implemented by the ``stringdist``/``qgrams`` family of R/Java libraries the
  original code relied on.  We use the common simplification based on the
  multiset intersection of n-gram profiles.
* :func:`ngram_cosine_distance` -- 1 minus the cosine similarity between the
  n-gram count profiles.
* :func:`ngram_jaccard_distance` -- Jaccard distance between the n-gram sets.

Strings shorter than ``n`` are padded conceptually by falling back to the
whole string as a single gram so short names still produce a signal.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Iterable


def ngrams(text: str, n: int = 3) -> list[str]:
    """Return the overlapping character ``n``-grams of ``text``.

    Strings shorter than ``n`` yield the whole string as their only gram
    (and the empty string yields no grams).

    >>> ngrams("pixel", 3)
    ['pix', 'ixe', 'xel']
    >>> ngrams("mp", 3)
    ['mp']
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if not text:
        return []
    if len(text) < n:
        return [text]
    return [text[i : i + n] for i in range(len(text) - n + 1)]


def ngram_profile(text: str, n: int = 3) -> Counter[str]:
    """Multiset of the ``n``-grams of ``text`` as a :class:`Counter`."""
    return Counter(ngrams(text, n))


def _profile_overlap(p: Counter[str], q: Counter[str]) -> int:
    """Size of the multiset intersection of two profiles."""
    return sum(min(count, q[gram]) for gram, count in p.items())


def ngram_distance(a: str, b: str, n: int = 3) -> float:
    """Normalised n-gram distance in [0, 1].

    Defined as ``1 - 2 * |P(a) ∩ P(b)| / (|P(a)| + |P(b)|)`` over the n-gram
    multisets (a Dice-style overlap), which is the standard normalisation of
    Kondrak's n-gram distance.

    >>> ngram_distance("abc", "abc")
    0.0
    >>> ngram_distance("abc", "xyz")
    1.0
    """
    profile_a = ngram_profile(a, n)
    profile_b = ngram_profile(b, n)
    total = sum(profile_a.values()) + sum(profile_b.values())
    if total == 0:
        return 0.0
    return 1.0 - 2.0 * _profile_overlap(profile_a, profile_b) / total


def ngram_cosine_distance(a: str, b: str, n: int = 3) -> float:
    """Cosine distance between the n-gram count profiles (Table I row 13).

    >>> ngram_cosine_distance("abc", "abc")
    0.0
    """
    profile_a = ngram_profile(a, n)
    profile_b = ngram_profile(b, n)
    if not profile_a and not profile_b:
        return 0.0
    if not profile_a or not profile_b:
        return 1.0
    dot = sum(count * profile_b[gram] for gram, count in profile_a.items())
    norm_a = math.sqrt(sum(count * count for count in profile_a.values()))
    norm_b = math.sqrt(sum(count * count for count in profile_b.values()))
    similarity = dot / (norm_a * norm_b)
    distance = max(0.0, min(1.0, 1.0 - similarity))
    # Identical profiles must give exactly 0 despite float rounding.
    return 0.0 if distance < 1e-9 else distance


def ngram_jaccard_distance(a: str, b: str, n: int = 3) -> float:
    """Jaccard distance between the n-gram *sets* (Table I row 14).

    >>> ngram_jaccard_distance("abc", "abc")
    0.0
    >>> ngram_jaccard_distance("abc", "xyz")
    1.0
    """
    set_a = set(ngrams(a, n))
    set_b = set(ngrams(b, n))
    if not set_a and not set_b:
        return 0.0
    union = len(set_a | set_b)
    return 1.0 - len(set_a & set_b) / union


def jaccard_distance(a: Iterable[str], b: Iterable[str]) -> float:
    """Jaccard distance between two arbitrary token collections.

    Utility shared by the LSH baseline, which operates on instance-token
    sets rather than character n-grams.
    """
    set_a, set_b = set(a), set(b)
    if not set_a and not set_b:
        return 0.0
    return 1.0 - len(set_a & set_b) / len(set_a | set_b)
