"""Edit distances (Table I rows 8-10).

Three related edit distances appear as separate pair features in the paper:

* :func:`levenshtein_distance` -- insertions, deletions, substitutions.
* :func:`optimal_string_alignment_distance` -- additionally allows the
  transposition of two *adjacent* characters, but no substring may be edited
  more than once (also called the restricted Damerau-Levenshtein distance).
* :func:`damerau_levenshtein_distance` -- the full Damerau-Levenshtein
  distance where transposed characters may take part in further edits.

All three are implemented with classic dynamic programming; the full
Damerau-Levenshtein uses the Lowrance-Wagner algorithm with a last-occurrence
table.
"""

from __future__ import annotations


def levenshtein_distance(a: str, b: str) -> int:
    """Minimum number of insertions, deletions and substitutions.

    >>> levenshtein_distance("kitten", "sitting")
    3
    """
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    # Keep the shorter string in the inner dimension for O(min(m, n)) memory.
    if len(b) > len(a):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i]
        for j, char_b in enumerate(b, start=1):
            cost = 0 if char_a == char_b else 1
            current.append(
                min(
                    previous[j] + 1,  # deletion
                    current[j - 1] + 1,  # insertion
                    previous[j - 1] + cost,  # substitution
                )
            )
        previous = current
    return previous[-1]


def optimal_string_alignment_distance(a: str, b: str) -> int:
    """Edit distance with adjacent transpositions, each substring edited once.

    Unlike the full Damerau-Levenshtein distance the OSA distance does not
    satisfy the triangle inequality, e.g. ``osa("ca", "abc") == 3`` while the
    full distance is 2.

    >>> optimal_string_alignment_distance("ca", "abc")
    3
    """
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    rows = len(a) + 1
    cols = len(b) + 1
    d = [[0] * cols for _ in range(rows)]
    for i in range(rows):
        d[i][0] = i
    for j in range(cols):
        d[0][j] = j
    for i in range(1, rows):
        for j in range(1, cols):
            cost = 0 if a[i - 1] == b[j - 1] else 1
            d[i][j] = min(
                d[i - 1][j] + 1,
                d[i][j - 1] + 1,
                d[i - 1][j - 1] + cost,
            )
            if i > 1 and j > 1 and a[i - 1] == b[j - 2] and a[i - 2] == b[j - 1]:
                d[i][j] = min(d[i][j], d[i - 2][j - 2] + 1)
    return d[-1][-1]


def damerau_levenshtein_distance(a: str, b: str) -> int:
    """Full Damerau-Levenshtein distance (Lowrance-Wagner algorithm).

    Transpositions may involve characters that are later edited again, which
    restores the triangle inequality that the OSA variant lacks.

    >>> damerau_levenshtein_distance("ca", "abc")
    2
    """
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    len_a, len_b = len(a), len(b)
    max_dist = len_a + len_b
    # d is indexed from -1 .. len, hence the +2 offsets.
    d = [[0] * (len_b + 2) for _ in range(len_a + 2)]
    d[0][0] = max_dist
    for i in range(len_a + 1):
        d[i + 1][0] = max_dist
        d[i + 1][1] = i
    for j in range(len_b + 1):
        d[0][j + 1] = max_dist
        d[1][j + 1] = j
    last_row: dict[str, int] = {}
    for i in range(1, len_a + 1):
        last_col = 0
        for j in range(1, len_b + 1):
            row = last_row.get(b[j - 1], 0)
            col = last_col
            if a[i - 1] == b[j - 1]:
                cost = 0
                last_col = j
            else:
                cost = 1
            d[i + 1][j + 1] = min(
                d[i][j] + cost,  # substitution
                d[i + 1][j] + 1,  # insertion
                d[i][j + 1] + 1,  # deletion
                d[row][col] + (i - row - 1) + 1 + (j - col - 1),  # transposition
            )
        last_row[a[i - 1]] = i
    return d[len_a + 1][len_b + 1]


def normalized_levenshtein(a: str, b: str) -> float:
    """Levenshtein distance scaled into [0, 1] by the longer string length.

    >>> normalized_levenshtein("abc", "abc")
    0.0
    >>> normalized_levenshtein("", "abcd")
    1.0
    """
    longest = max(len(a), len(b))
    if longest == 0:
        return 0.0
    return levenshtein_distance(a, b) / longest
