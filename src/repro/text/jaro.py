"""Jaro and Jaro-Winkler similarity (Table I row 15).

The Jaro similarity counts matching characters within a sliding window of
half the longer string and penalises transpositions; Jaro-Winkler boosts the
score for strings sharing a common prefix, which suits short attribute names
such as ``"mp"`` vs ``"mpx"``.
"""

from __future__ import annotations


def jaro_similarity(a: str, b: str) -> float:
    """Jaro similarity in [0, 1]; 1 for identical strings.

    >>> round(jaro_similarity("martha", "marhta"), 4)
    0.9444
    """
    if a == b:
        return 1.0
    len_a, len_b = len(a), len(b)
    if len_a == 0 or len_b == 0:
        return 0.0
    window = max(len_a, len_b) // 2 - 1
    window = max(window, 0)
    matched_a = [False] * len_a
    matched_b = [False] * len_b
    matches = 0
    for i, char_a in enumerate(a):
        lo = max(0, i - window)
        hi = min(len_b, i + window + 1)
        for j in range(lo, hi):
            if not matched_b[j] and b[j] == char_a:
                matched_a[i] = True
                matched_b[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0
    transpositions = 0
    j = 0
    for i in range(len_a):
        if matched_a[i]:
            while not matched_b[j]:
                j += 1
            if a[i] != b[j]:
                transpositions += 1
            j += 1
    transpositions //= 2
    return (
        matches / len_a + matches / len_b + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler_similarity(a: str, b: str, prefix_scale: float = 0.1, max_prefix: int = 4) -> float:
    """Jaro-Winkler similarity with the standard 0.1 prefix scale.

    >>> round(jaro_winkler_similarity("martha", "marhta"), 4)
    0.9611
    """
    if not 0.0 <= prefix_scale <= 0.25:
        raise ValueError(f"prefix_scale must be in [0, 0.25], got {prefix_scale}")
    jaro = jaro_similarity(a, b)
    prefix = 0
    for char_a, char_b in zip(a[:max_prefix], b[:max_prefix]):
        if char_a != char_b:
            break
        prefix += 1
    return jaro + prefix * prefix_scale * (1.0 - jaro)


def jaro_winkler_distance(a: str, b: str) -> float:
    """Jaro-Winkler distance, ``1 - similarity`` (the paper's pair feature).

    >>> jaro_winkler_distance("abc", "abc")
    0.0
    """
    return 1.0 - jaro_winkler_similarity(a, b)
