"""String-similarity substrate used by LEAPME's pair features and baselines.

This package implements, from scratch, every string distance listed in
Table I of the paper (rows 8-15) plus the tokenisation and character-type
analysis required by the instance meta-features (rows 1-2):

* :mod:`repro.text.chartypes` -- Unicode character-category counting.
* :mod:`repro.text.tokenize` -- word / token segmentation and token typing.
* :mod:`repro.text.levenshtein` -- Levenshtein, optimal string alignment
  (restricted Damerau-Levenshtein) and the full Damerau-Levenshtein
  distances.
* :mod:`repro.text.lcs` -- longest common substring / subsequence distances.
* :mod:`repro.text.ngrams` -- n-gram distance and n-gram profile distances
  (cosine, Jaccard).
* :mod:`repro.text.jaro` -- Jaro and Jaro-Winkler similarity/distance.
* :mod:`repro.text.similarity` -- a registry of normalised distances used to
  assemble feature vectors.
"""

from repro.text.chartypes import CharacterTypeCounts, count_character_types
from repro.text.jaro import jaro_similarity, jaro_winkler_distance, jaro_winkler_similarity
from repro.text.lcs import (
    longest_common_subsequence_length,
    longest_common_substring_distance,
    longest_common_substring_length,
)
from repro.text.levenshtein import (
    damerau_levenshtein_distance,
    levenshtein_distance,
    normalized_levenshtein,
    optimal_string_alignment_distance,
)
from repro.text.ngrams import (
    ngram_cosine_distance,
    ngram_distance,
    ngram_jaccard_distance,
    ngram_profile,
    ngrams,
)
from repro.text.similarity import (
    PAIR_DISTANCE_NAMES,
    name_distance_vector,
    normalized_distance,
)
from repro.text.tokenize import TokenTypeCounts, count_token_types, tokenize, words

__all__ = [
    "CharacterTypeCounts",
    "count_character_types",
    "TokenTypeCounts",
    "count_token_types",
    "tokenize",
    "words",
    "levenshtein_distance",
    "optimal_string_alignment_distance",
    "damerau_levenshtein_distance",
    "normalized_levenshtein",
    "longest_common_substring_length",
    "longest_common_substring_distance",
    "longest_common_subsequence_length",
    "ngrams",
    "ngram_profile",
    "ngram_distance",
    "ngram_cosine_distance",
    "ngram_jaccard_distance",
    "jaro_similarity",
    "jaro_winkler_similarity",
    "jaro_winkler_distance",
    "PAIR_DISTANCE_NAMES",
    "name_distance_vector",
    "normalized_distance",
]
