"""Tokenisation and token-type analysis (Table I, feature row 2).

The paper counts "the fraction and number of occurrences of several token
types (words, words starting with a lowercase letter, words starting with an
uppercase letter followed by a non separator character, uppercase words,
numeric strings)" for every instance value.

Tokens are maximal runs of alphanumeric characters; everything else
(punctuation, separators, symbols) delimits tokens.  This matches how the
average-embedding features treat text as bags of words.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

_TOKEN_RE = re.compile(r"[^\W_]+", re.UNICODE)
_WORD_RE = re.compile(r"[^\W\d_]+", re.UNICODE)
_NUMERIC_RE = re.compile(r"^\d+([.,]\d+)*$")
_CAMEL_RE = re.compile(r"(?<=[a-z])(?=[A-Z])")

#: Order in which token classes appear in feature vectors.
TOKEN_CLASSES: tuple[str, ...] = (
    "word",
    "lower_start",
    "capitalized",
    "upper",
    "numeric",
)


def tokenize(text: str) -> list[str]:
    """Split ``text`` into alphanumeric tokens.

    >>> tokenize("Shutter-speed: 1/4000s")
    ['Shutter', 'speed', '1', '4000s']
    """
    return _TOKEN_RE.findall(text)


def words(text: str) -> list[str]:
    """Return the lower-cased purely-alphabetic words of ``text``.

    This is the unit used for embedding lookups: the paper averages the
    embedding vectors of the *words* of a property name or value.
    camelCase boundaries are treated as word separators, matching how
    attribute names extracted from web sources are normalised.

    >>> words("Effective Pixels: 20.1 MP")
    ['effective', 'pixels', 'mp']
    >>> words("wearingStyle")
    ['wearing', 'style']
    """
    text = _CAMEL_RE.sub(" ", text)
    return [w.lower() for w in _WORD_RE.findall(text)]


@dataclass(frozen=True)
class TokenTypeCounts:
    """Raw per-class token counts for one string (Table I row 2)."""

    word: int = 0
    lower_start: int = 0
    capitalized: int = 0
    upper: int = 0
    numeric: int = 0
    total: int = 0

    def counts(self) -> list[int]:
        """Per-class counts in :data:`TOKEN_CLASSES` order."""
        return [self.word, self.lower_start, self.capitalized, self.upper, self.numeric]

    def fractions(self) -> list[float]:
        """Per-class fractions of the total token count (zeros when empty)."""
        if self.total == 0:
            return [0.0] * len(TOKEN_CLASSES)
        return [count / self.total for count in self.counts()]

    def as_features(self) -> list[float]:
        """Counts followed by fractions: the 10 features of Table I row 2."""
        return [float(c) for c in self.counts()] + self.fractions()


def _is_word(token: str) -> bool:
    return token.isalpha()


def _is_capitalized(token: str) -> bool:
    """Uppercase first letter followed by at least one non-separator char."""
    return len(token) >= 2 and token[0].isupper() and not token[1].isspace()


def count_token_types(text: str) -> TokenTypeCounts:
    """Classify the tokens of ``text`` into the paper's five token types.

    >>> counts = count_token_types("Nikon D500 camera 20.9")
    >>> (counts.word, counts.numeric)  # "20.9" splits into two numerics
    (2, 2)
    """
    tokens = tokenize(text)
    word = lower_start = capitalized = upper = numeric = 0
    for token in tokens:
        if _is_word(token):
            word += 1
            if token[0].islower():
                lower_start += 1
            if token.isupper():
                upper += 1
            if _is_capitalized(token):
                capitalized += 1
        elif _NUMERIC_RE.match(token):
            numeric += 1
    return TokenTypeCounts(
        word=word,
        lower_start=lower_start,
        capitalized=capitalized,
        upper=upper,
        numeric=numeric,
        total=len(tokens),
    )


#: Number of numeric features produced by :meth:`TokenTypeCounts.as_features`.
NUM_TOKEN_FEATURES = len(TOKEN_CLASSES) * 2


def try_parse_numeric(text: str) -> float | None:
    """The finite numeric value of ``text``, or ``None`` if not a number.

    Unlike :func:`parse_numeric`, the "not a number" outcome is
    unambiguous: a genuine value of ``"-1"`` parses to ``-1.0`` rather
    than colliding with the paper's sentinel.  Callers that *branch* on
    parseability (e.g. numeric-median fusion) must use this; the
    sentinel encoding is only for the feature vector.

    >>> try_parse_numeric("-1")
    -1.0
    >>> try_parse_numeric("f/2.8") is None
    True
    """
    stripped = text.strip()
    if not stripped:
        return None
    candidate = stripped.replace(",", ".")
    try:
        value = float(candidate)
    except ValueError:
        return None
    if value in (float("inf"), float("-inf")) or value != value:
        return None
    return value


def parse_numeric(text: str) -> float:
    """Return the numeric value of ``text`` or ``-1.0`` (Table I row 3).

    The paper encodes "the numeric value of the instance (-1 if it is not a
    number)".  Values with thousands separators or decimal commas are
    normalised before parsing.

    >>> parse_numeric("20.1")
    20.1
    >>> parse_numeric("1,5")
    1.5
    >>> parse_numeric("f/2.8")
    -1.0
    """
    value = try_parse_numeric(text)
    return -1.0 if value is None else value
