"""Registry of normalised name distances (Table I rows 8-15).

LEAPME's pair feature vector contains eight string distances between the two
property names.  :func:`name_distance_vector` computes them in a fixed,
documented order so that feature indices are stable across runs, and
:func:`normalized_distance` exposes each by name for baselines that want a
single measure.

All values are scaled into [0, 1] where 0 means identical; the three raw edit
distances are normalised by the longer string length.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import ConfigurationError
from repro.text.jaro import jaro_winkler_distance
from repro.text.lcs import longest_common_substring_distance
from repro.text.levenshtein import (
    damerau_levenshtein_distance,
    levenshtein_distance,
    optimal_string_alignment_distance,
)
from repro.text.ngrams import (
    ngram_cosine_distance,
    ngram_distance,
    ngram_jaccard_distance,
)


def _normalize_edit(distance: int, a: str, b: str) -> float:
    longest = max(len(a), len(b))
    if longest == 0:
        return 0.0
    return min(1.0, distance / longest)


def _osa(a: str, b: str) -> float:
    return _normalize_edit(optimal_string_alignment_distance(a, b), a, b)


def _levenshtein(a: str, b: str) -> float:
    return _normalize_edit(levenshtein_distance(a, b), a, b)


def _damerau(a: str, b: str) -> float:
    return _normalize_edit(damerau_levenshtein_distance(a, b), a, b)


def _trigram(a: str, b: str) -> float:
    return ngram_distance(a, b, n=3)


def _trigram_cosine(a: str, b: str) -> float:
    return ngram_cosine_distance(a, b, n=3)


def _trigram_jaccard(a: str, b: str) -> float:
    return ngram_jaccard_distance(a, b, n=3)


#: Distance name -> callable, in the order of Table I rows 8-15.
DISTANCE_FUNCTIONS: dict[str, Callable[[str, str], float]] = {
    "osa": _osa,
    "levenshtein": _levenshtein,
    "damerau_levenshtein": _damerau,
    "lcs": longest_common_substring_distance,
    "ngram": _trigram,
    "ngram_cosine": _trigram_cosine,
    "ngram_jaccard": _trigram_jaccard,
    "jaro_winkler": jaro_winkler_distance,
}

#: Stable feature order for the 8 name-distance features.
PAIR_DISTANCE_NAMES: tuple[str, ...] = tuple(DISTANCE_FUNCTIONS)


def normalized_distance(name: str, a: str, b: str) -> float:
    """Compute a single named distance, scaled into [0, 1].

    >>> normalized_distance("levenshtein", "abc", "abc")
    0.0
    """
    try:
        function = DISTANCE_FUNCTIONS[name]
    except KeyError:
        known = ", ".join(PAIR_DISTANCE_NAMES)
        raise ConfigurationError(f"unknown distance {name!r}; known: {known}") from None
    return function(a, b)


def name_distance_vector(a: str, b: str) -> list[float]:
    """All eight Table I name distances, in :data:`PAIR_DISTANCE_NAMES` order.

    Names are compared case-insensitively, matching the uncased embedding
    corpus used by the paper.

    >>> name_distance_vector("Resolution", "resolution")
    [0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]
    """
    a_low, b_low = a.lower(), b.lower()
    return [function(a_low, b_low) for function in DISTANCE_FUNCTIONS.values()]
