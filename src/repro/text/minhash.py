"""Universal-hash minhash signatures over string token sets.

Shared leaf machinery: the Duan-et-al. LSH baseline
(:mod:`repro.baselines.lsh`) and the candidate-generation blockers
(:mod:`repro.blocking.blockers`) both band these signatures.  It lives
under :mod:`repro.text` so the blocking layer can use it without
pulling the baseline-matcher package (and through it the whole core)
into its import graph.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.errors import ConfigurationError

_MERSENNE_PRIME = (1 << 61) - 1


class MinHasher:
    """Classic universal-hash minhash over string token sets."""

    def __init__(self, num_hashes: int = 64, seed: int = 0) -> None:
        if num_hashes < 1:
            raise ConfigurationError(f"num_hashes must be >= 1, got {num_hashes}")
        rng = np.random.default_rng(seed)
        self.num_hashes = num_hashes
        self._a = rng.integers(1, _MERSENNE_PRIME, size=num_hashes, dtype=np.int64)
        self._b = rng.integers(0, _MERSENNE_PRIME, size=num_hashes, dtype=np.int64)

    def signature(self, tokens: set[str]) -> np.ndarray:
        """Minhash signature of a token set (all-max for the empty set)."""
        if not tokens:
            return np.full(self.num_hashes, np.iinfo(np.int64).max, dtype=np.int64)
        token_hashes = np.array(
            [hash_token(token) for token in tokens], dtype=np.int64
        )
        # (num_hashes, n_tokens) universal hashes, minimised per row.
        products = (
            self._a[:, None] * token_hashes[None, :] + self._b[:, None]
        ) % _MERSENNE_PRIME
        return products.min(axis=1)

    @staticmethod
    def estimate_jaccard(sig_a: np.ndarray, sig_b: np.ndarray) -> float:
        """Fraction of agreeing signature rows ~ Jaccard similarity."""
        return float((sig_a == sig_b).mean())


def hash_token(token: str) -> int:
    """Stable 61-bit token hash (Python's hash() is randomised per run)."""
    digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little") % _MERSENNE_PRIME
