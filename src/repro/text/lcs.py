"""Longest common substring / subsequence measures (Table I row 11).

The paper uses "the longest common substring distance between the property
names".  We implement the standard formulation

``lcs_distance(a, b) = 1 - |LCSubstring(a, b)| / max(|a|, |b|)``

plus the longest common *subsequence* length, which some baselines use for
token-level comparisons.
"""

from __future__ import annotations


def longest_common_substring_length(a: str, b: str) -> int:
    """Length of the longest contiguous substring shared by ``a`` and ``b``.

    >>> longest_common_substring_length("megapixels", "pixel count")
    5
    """
    if not a or not b:
        return 0
    if len(b) > len(a):
        a, b = b, a
    best = 0
    previous = [0] * (len(b) + 1)
    for char_a in a:
        current = [0] * (len(b) + 1)
        for j, char_b in enumerate(b, start=1):
            if char_a == char_b:
                current[j] = previous[j - 1] + 1
                if current[j] > best:
                    best = current[j]
        previous = current
    return best


def longest_common_substring_distance(a: str, b: str) -> float:
    """Normalised LCSubstring distance in [0, 1]; 0 for identical strings.

    >>> longest_common_substring_distance("abc", "abc")
    0.0
    >>> longest_common_substring_distance("abc", "xyz")
    1.0
    """
    longest = max(len(a), len(b))
    if longest == 0:
        return 0.0
    return 1.0 - longest_common_substring_length(a, b) / longest


def longest_common_subsequence_length(a: str, b: str) -> int:
    """Length of the longest (not necessarily contiguous) common subsequence.

    >>> longest_common_subsequence_length("ABCBDAB", "BDCABA")
    4
    """
    if not a or not b:
        return 0
    if len(b) > len(a):
        a, b = b, a
    previous = [0] * (len(b) + 1)
    for char_a in a:
        current = [0]
        for j, char_b in enumerate(b, start=1):
            if char_a == char_b:
                current.append(previous[j - 1] + 1)
            else:
                current.append(max(previous[j], current[j - 1]))
        previous = current
    return previous[-1]
