"""Batched name-distance kernel (Table I rows 8-15, many pairs at once).

:func:`name_distance_matrix` computes the eight name distances of
:func:`repro.text.similarity.name_distance_vector` for a whole list of
pairs in one pass.  It is the hot-loop replacement for calling the
scalar registry per pair: benchmark grids score tens of thousands of
pairs whose *unique* lowercase name pairs number in the low thousands,
and the scalar dynamic programs dominate the wall-clock otherwise.

Three layers of work avoidance:

* **deduplication** -- pairs are lowercased and canonically ordered
  (every distance is symmetric), and each unique pair is computed once;
* **length-bucketed batched DP** -- the three edit distances and the
  LCS-substring distance run as NumPy dynamic programs over all pairs of
  one ``(len(a), len(b))`` bucket simultaneously: Levenshtein and OSA
  vectorise each DP row with a prefix-min scan, the full
  Damerau-Levenshtein runs the Lowrance-Wagner recurrence with
  per-bucket alphabet coding and batched transposition lookups;
* **shared 3-gram profiles** -- the n-gram family reuses one profile
  (counter, totals, norm, gram set) per unique *name* instead of
  re-deriving it per pair.

The scalar :func:`~repro.text.similarity.name_distance_vector` remains
the reference implementation; ``tests/text/test_batch_distances.py``
asserts exact (bit-level) equivalence on randomised unicode inputs.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Sequence

import numpy as np

from repro.text.jaro import jaro_winkler_distance
from repro.text.ngrams import ngram_profile
from repro.text.similarity import PAIR_DISTANCE_NAMES

#: Column order of the returned matrix (same as ``name_distance_vector``).
COLUMNS: tuple[str, ...] = PAIR_DISTANCE_NAMES

_COL_OSA = COLUMNS.index("osa")
_COL_LEV = COLUMNS.index("levenshtein")
_COL_DAMERAU = COLUMNS.index("damerau_levenshtein")
_COL_LCS = COLUMNS.index("lcs")
_COL_NGRAM = COLUMNS.index("ngram")
_COL_COSINE = COLUMNS.index("ngram_cosine")
_COL_JACCARD = COLUMNS.index("ngram_jaccard")
_COL_JARO = COLUMNS.index("jaro_winkler")


def _codepoints(text: str) -> list[int]:
    return [ord(char) for char in text]


def _scan_min(t: np.ndarray, boundary: int, j_arr: np.ndarray) -> np.ndarray:
    """Row update ``c[j] = min(t[j], c[j-1] + 1)`` with ``c[0] = boundary``.

    The left-neighbour dependence unrolls to
    ``c[j] = min_{k <= j} (w[k] + j - k)`` with ``w[0] = boundary`` and
    ``w[k] = t[k]`` otherwise, which a running minimum of ``w[k] - k``
    computes without a Python loop over ``j``.
    """
    batch = t.shape[0]
    w = np.empty((batch, t.shape[1] + 1), dtype=np.int64)
    w[:, 0] = boundary
    w[:, 1:] = t - j_arr[1:]
    return np.minimum.accumulate(w, axis=1) + j_arr


def _batched_levenshtein(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Levenshtein distances for code matrices ``a (B, m)``, ``b (B, n)``."""
    m, n = a.shape[1], b.shape[1]
    j_arr = np.arange(n + 1, dtype=np.int64)
    previous = np.broadcast_to(j_arr, (a.shape[0], n + 1)).copy()
    for i in range(1, m + 1):
        cost = (a[:, i - 1 : i] != b).astype(np.int64)
        t = np.minimum(previous[:, 1:] + 1, previous[:, :-1] + cost)
        previous = _scan_min(t, i, j_arr)
    return previous[:, -1]


def _batched_osa(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Optimal-string-alignment distances (adjacent transpositions)."""
    m, n = a.shape[1], b.shape[1]
    j_arr = np.arange(n + 1, dtype=np.int64)
    previous = np.broadcast_to(j_arr, (a.shape[0], n + 1)).copy()
    before_previous: np.ndarray | None = None
    for i in range(1, m + 1):
        cost = (a[:, i - 1 : i] != b).astype(np.int64)
        t = np.minimum(previous[:, 1:] + 1, previous[:, :-1] + cost)
        if i > 1 and n > 1:
            transposable = (a[:, i - 1 : i] == b[:, :-1]) & (
                a[:, i - 2 : i - 1] == b[:, 1:]
            )
            candidate = before_previous[:, :-2] + 1
            t[:, 1:] = np.where(
                transposable, np.minimum(t[:, 1:], candidate), t[:, 1:]
            )
        before_previous = previous
        previous = _scan_min(t, i, j_arr)
    return previous[:, -1]


def _batched_damerau(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Full Damerau-Levenshtein distances (batched Lowrance-Wagner).

    The transposition term ``d[row][col]`` indexes rows by the last
    occurrence of ``b[j-1]`` in ``a`` -- data-dependent, so the whole
    ``(B, m+2, n+2)`` table is kept and gathered with fancy indexing; the
    per-bucket alphabet keeps the last-occurrence table small.
    """
    batch, m = a.shape
    n = b.shape[1]
    alphabet = np.unique(np.concatenate([a.ravel(), b.ravel()]))
    a_codes = np.searchsorted(alphabet, a)
    b_codes = np.searchsorted(alphabet, b)
    max_dist = m + n
    d = np.empty((batch, m + 2, n + 2), dtype=np.int64)
    d[:, 0, :] = max_dist
    d[:, :, 0] = max_dist
    d[:, 1, 1:] = np.arange(n + 1, dtype=np.int64)
    d[:, 1:, 1] = np.arange(m + 1, dtype=np.int64)
    last_row = np.zeros((batch, len(alphabet)), dtype=np.int64)
    batch_idx = np.arange(batch)
    j_cells = np.arange(1, n + 1, dtype=np.int64)
    j_arr = np.arange(n + 1, dtype=np.int64)
    for i in range(1, m + 1):
        equal = a_codes[:, i - 1 : i] == b_codes
        # Last column (exclusive) where the current row character matched.
        matched_at = np.where(equal, j_cells, 0)
        col = np.zeros((batch, n), dtype=np.int64)
        if n > 1:
            col[:, 1:] = np.maximum.accumulate(matched_at, axis=1)[:, :-1]
        row = last_row[batch_idx[:, None], b_codes]
        transposition = (
            d[batch_idx[:, None], row, col]
            + (i - row - 1)
            + 1
            + (j_cells - col - 1)
        )
        cost = (~equal).astype(np.int64)
        substitution = d[:, i, 1 : n + 1] + cost
        deletion = d[:, i, 2 : n + 2] + 1
        t = np.minimum(np.minimum(substitution, deletion), transposition)
        d[:, i + 1, 1:] = _scan_min(t, i, j_arr)
        last_row[batch_idx, a_codes[:, i - 1]] = i
    return d[:, m + 1, n + 1]


def _batched_lcs_length(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Longest-common-substring lengths for one length bucket."""
    batch, m = a.shape
    n = b.shape[1]
    best = np.zeros(batch, dtype=np.int64)
    previous = np.zeros((batch, n + 1), dtype=np.int64)
    for i in range(1, m + 1):
        current = np.zeros((batch, n + 1), dtype=np.int64)
        current[:, 1:] = np.where(
            a[:, i - 1 : i] == b, previous[:, :-1] + 1, 0
        )
        best = np.maximum(best, current.max(axis=1))
        previous = current
    return best


def _fill_dp_columns(
    uniq: list[tuple[str, str]], out: np.ndarray
) -> None:
    """Edit-distance and LCS columns via length-bucketed batched DP."""
    shorts: list[str] = []
    longs: list[str] = []
    buckets: dict[tuple[int, int], list[int]] = {}
    for index, (first, second) in enumerate(uniq):
        if len(first) > len(second):
            first, second = second, first
        shorts.append(first)
        longs.append(second)
        buckets.setdefault((len(first), len(second)), []).append(index)
    for (m, n), members in buckets.items():
        idx = np.array(members, dtype=np.int64)
        longest = float(max(m, n))
        if m == 0:
            # One side empty: every edit distance is the other's length,
            # LCS overlap is zero.
            value = 1.0 if n else 0.0
            out[idx, _COL_OSA] = value
            out[idx, _COL_LEV] = value
            out[idx, _COL_DAMERAU] = value
            out[idx, _COL_LCS] = value
            continue
        a = np.array([_codepoints(shorts[i]) for i in members], dtype=np.int64)
        b = np.array([_codepoints(longs[i]) for i in members], dtype=np.int64)
        out[idx, _COL_OSA] = np.minimum(1.0, _batched_osa(a, b) / longest)
        out[idx, _COL_LEV] = np.minimum(
            1.0, _batched_levenshtein(a, b) / longest
        )
        out[idx, _COL_DAMERAU] = np.minimum(
            1.0, _batched_damerau(a, b) / longest
        )
        out[idx, _COL_LCS] = 1.0 - _batched_lcs_length(a, b) / longest


def _fill_ngram_columns(uniq: list[tuple[str, str]], out: np.ndarray) -> None:
    """The 3-gram family from one precomputed profile per unique name.

    The arithmetic mirrors :mod:`repro.text.ngrams` expression for
    expression so results stay bit-identical to the scalar path.
    """
    profiles: dict[str, tuple[Counter, int, float, set]] = {}

    def profile(text: str) -> tuple[Counter, int, float, set]:
        cached = profiles.get(text)
        if cached is None:
            counts = ngram_profile(text, 3)
            total = sum(counts.values())
            norm = math.sqrt(sum(count * count for count in counts.values()))
            cached = (counts, total, norm, set(counts))
            profiles[text] = cached
        return cached

    for index, (first, second) in enumerate(uniq):
        counts_a, total_a, norm_a, set_a = profile(first)
        counts_b, total_b, norm_b, set_b = profile(second)
        total = total_a + total_b
        if total == 0:
            out[index, _COL_NGRAM] = 0.0
        else:
            overlap = sum(
                min(count, counts_b[gram]) for gram, count in counts_a.items()
            )
            out[index, _COL_NGRAM] = 1.0 - 2.0 * overlap / total
        if not counts_a and not counts_b:
            out[index, _COL_COSINE] = 0.0
        elif not counts_a or not counts_b:
            out[index, _COL_COSINE] = 1.0
        else:
            dot = sum(
                count * counts_b[gram] for gram, count in counts_a.items()
            )
            similarity = dot / (norm_a * norm_b)
            distance = max(0.0, min(1.0, 1.0 - similarity))
            out[index, _COL_COSINE] = 0.0 if distance < 1e-9 else distance
        if not set_a and not set_b:
            out[index, _COL_JACCARD] = 0.0
        else:
            union = len(set_a | set_b)
            out[index, _COL_JACCARD] = 1.0 - len(set_a & set_b) / union


def unique_lowered_pairs(
    pairs: Sequence[tuple[str, str]],
) -> tuple[list[tuple[str, str]], np.ndarray]:
    """Canonical unique (lowercased, sorted) pairs and the inverse map.

    ``uniq[inverse[i]]`` is the canonical form of ``pairs[i]``; all eight
    distances are symmetric, so one orientation suffices.
    """
    unique: dict[tuple[str, str], int] = {}
    inverse = np.empty(len(pairs), dtype=np.int64)
    for index, (first, second) in enumerate(pairs):
        first, second = first.lower(), second.lower()
        if first > second:
            first, second = second, first
        key = (first, second)
        slot = unique.get(key)
        if slot is None:
            slot = len(unique)
            unique[key] = slot
        inverse[index] = slot
    return list(unique), inverse


def name_distance_matrix(
    pairs: Sequence[tuple[str, str]],
    *,
    dtype: np.dtype | type = np.float64,
) -> np.ndarray:
    """The eight Table I name distances for every pair, ``(n_pairs, 8)``.

    Row ``i`` equals ``name_distance_vector(*pairs[i])`` exactly; columns
    follow :data:`~repro.text.similarity.PAIR_DISTANCE_NAMES`.  The
    kernel always computes in float64 (the bit-equivalence contract with
    the scalar path); ``dtype`` only casts the returned matrix, for
    callers storing columns at reduced precision.
    """
    if not pairs:
        return np.zeros((0, len(COLUMNS)), dtype=dtype)
    uniq, inverse = unique_lowered_pairs(pairs)
    matrix = np.zeros((len(uniq), len(COLUMNS)))
    _fill_dp_columns(uniq, matrix)
    _fill_ngram_columns(uniq, matrix)
    matrix[:, _COL_JARO] = [jaro_winkler_distance(a, b) for a, b in uniq]
    gathered = matrix[inverse]
    if np.dtype(dtype) == gathered.dtype:
        return gathered
    return gathered.astype(dtype)
