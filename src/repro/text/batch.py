"""Batched name-distance kernel (Table I rows 8-15, many pairs at once).

:func:`name_distance_matrix` computes the eight name distances of
:func:`repro.text.similarity.name_distance_vector` for a whole list of
pairs in one pass.  It is the hot-loop replacement for calling the
scalar registry per pair: benchmark grids score tens of thousands of
pairs whose *unique* lowercase name pairs number in the low thousands,
and the scalar dynamic programs dominate the wall-clock otherwise.

Four layers of work avoidance:

* **deduplication** -- pairs are lowercased and canonically ordered
  (every distance is symmetric), and each unique pair is computed once;
  identical pairs short-circuit to the all-zero row;
* **length-banded batched DP** -- the three edit distances and the
  LCS-substring distance run as NumPy dynamic programs over all pairs
  of one *length band* simultaneously (lengths rounded up to a band
  edge, strings padded with non-matching sentinels): Levenshtein and
  OSA vectorise each DP row with a prefix-min scan and capture each
  pair's result at its true row, the full Damerau-Levenshtein runs the
  Lowrance-Wagner recurrence with per-band alphabet coding and batched
  transposition lookups.  Banding keeps small grids from fragmenting
  into hundreds of tiny per-``(len_a, len_b)`` DP launches;
* **CSR 3-gram profiles** -- the n-gram family is computed from one
  CSR-style gram x name count matrix: per-pair multiset overlap, dot
  product and set intersection all come from a single vectorised sorted
  key intersection, with no per-pair ``Counter`` arithmetic;
* **batched Jaro-Winkler** -- the greedy window matching, transposition
  ranking and common-prefix boost run across a whole band at once.

The scalar :func:`~repro.text.similarity.name_distance_vector` remains
the reference implementation; ``tests/text/test_batch_distances.py``
asserts exact (bit-level) equivalence on randomised unicode inputs.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.text.ngrams import ngram_profile
from repro.text.similarity import PAIR_DISTANCE_NAMES

#: Column order of the returned matrix (same as ``name_distance_vector``).
COLUMNS: tuple[str, ...] = PAIR_DISTANCE_NAMES

#: Version of the kernel's *numeric contract* (not its implementation).
#: Every row is pinned bit-for-bit to the scalar ``name_distance_vector``
#: reference, so this only changes when that scalar semantics changes;
#: the persistent :mod:`repro.text.distance_cache` folds it into its
#: fingerprint to invalidate stale persisted rows.
KERNEL_VERSION = 1

_COL_OSA = COLUMNS.index("osa")
_COL_LEV = COLUMNS.index("levenshtein")
_COL_DAMERAU = COLUMNS.index("damerau_levenshtein")
_COL_LCS = COLUMNS.index("lcs")
_COL_NGRAM = COLUMNS.index("ngram")
_COL_COSINE = COLUMNS.index("ngram_cosine")
_COL_JACCARD = COLUMNS.index("ngram_jaccard")
_COL_JARO = COLUMNS.index("jaro_winkler")

#: Width of the DP length bands: lengths are grouped by ``ceil(len/6)``.
#: Only the quadratic-table DPs (Damerau, LCS) band; wider bands trade
#: padded cells for fewer kernel launches, and width 6 measures best on
#: the bench grids now that Levenshtein/OSA run bit-parallel unbanded.
_BAND_WIDTH = 6

#: Jaro-Winkler keeps no DP table, so padding waste is linear and wider
#: bands (fewer, larger launches) win.
_JARO_BAND_WIDTH = 8

#: Maximum short-side length served by the bit-parallel kernels (one
#: 64-bit word per pattern); longer pairs fall back to the banded DP.
_WORD_BITS = 64

#: Padding sentinels.  Negative, so they never equal a real codepoint,
#: and distinct from each other, so padding never matches padding.
_PAD_A = -1
_PAD_B = -2


def _band(length: int, width: int = _BAND_WIDTH) -> int:
    return (length + width - 1) // width


class _NameCodes:
    """Codepoint rows shared by every band of one kernel invocation.

    Names recur across many unique pairs, so codepoints are decoded
    once per distinct name; bands then gather padded sub-matrices with
    pure NumPy indexing instead of re-running ``ord`` loops.
    """

    def __init__(self, names: Sequence[str]) -> None:
        self.index: dict[str, int] = {}
        for name in names:
            self.index.setdefault(name, len(self.index))
        self.lengths = np.array(
            [len(name) for name in self.index], dtype=np.int64
        )
        width = int(self.lengths.max()) if len(self.lengths) else 0
        self._codes = np.full((len(self.index), width), _PAD_A, dtype=np.int64)
        for name, row in self.index.items():
            if name:
                self._codes[row, : len(name)] = [ord(char) for char in name]

    def rows(self, selection: np.ndarray, fill: int) -> np.ndarray:
        """Padded code matrix for ``selection``, ``fill`` as sentinel."""
        lengths = self.lengths[selection]
        width = int(lengths.max()) if len(lengths) else 0
        codes = self._codes[selection, :width]
        if fill != _PAD_A:
            codes = np.where(
                np.arange(width) < lengths[:, None], codes, fill
            )
        return codes


def _scan_min(t: np.ndarray, boundary: int, j_arr: np.ndarray) -> np.ndarray:
    """Row update ``c[j] = min(t[j], c[j-1] + 1)`` with ``c[0] = boundary``.

    The left-neighbour dependence unrolls to
    ``c[j] = min_{k <= j} (w[k] + j - k)`` with ``w[0] = boundary`` and
    ``w[k] = t[k]`` otherwise, which a running minimum of ``w[k] - k``
    computes without a Python loop over ``j``.
    """
    batch = t.shape[0]
    w = np.empty((batch, t.shape[1] + 1), dtype=t.dtype)
    w[:, 0] = boundary
    w[:, 1:] = t - j_arr[1:]
    np.minimum.accumulate(w, axis=1, out=w)
    w += j_arr
    return w


def _capture_rows(
    result: np.ndarray, previous: np.ndarray, m_real: np.ndarray,
    n_real: np.ndarray, i: int,
) -> None:
    """Record ``previous[r, n_real[r]]`` for every pair whose short side
    ends at DP row ``i`` (the prefix property makes later, padded rows
    irrelevant to these pairs)."""
    rows = np.nonzero(m_real == i)[0]
    if rows.size:
        result[rows] = previous[rows, n_real[rows]]


def _match_masks(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Per-text-column pattern match bitmasks ``eq (B, n)``.

    Bit ``i`` of ``eq[r, j]`` is set iff ``a[r, i] == b[r, j]``; padding
    sentinels never match, so padded positions contribute no bits.
    """
    batch, m = a.shape
    n = b.shape[1]
    eq = np.zeros((batch, n), dtype=np.uint64)
    equal = np.empty((batch, n), dtype=bool)
    bits = np.empty((batch, n), dtype=np.uint64)
    for i in range(m):
        np.equal(a[:, i : i + 1], b, out=equal)
        np.multiply(equal, np.uint64(1 << i), out=bits)
        eq |= bits
    return eq


def _bit_parallel_edit(
    a: np.ndarray,
    b: np.ndarray,
    m_real: np.ndarray,
    n_real: np.ndarray,
    transpositions: bool,
) -> np.ndarray:
    """Levenshtein (or OSA) distances in one launch over all pairs.

    Myers' bit-parallel algorithm in Hyyro's global-distance
    formulation: the DP column's delta vector is packed into one 64-bit
    word per pair, so each text position costs ~a dozen bitwise ops on
    flat ``(B,)`` arrays instead of a DP row over a padded band.  With
    ``transpositions`` the ``D0`` recurrence gains Hyyro's adjacent
    transposition term, which computes the optimal-string-alignment
    distance.  High word bits beyond ``m_real`` carry garbage but never
    feed back below (only addition propagates between bits, and only
    upward), so the tracked score bit stays exact; each pair's distance
    is captured when its true text length is reached, exactly like the
    banded DP's row capture.  Requires every short side to fit one word
    (``m <= 64``); callers fall back to the banded DP above otherwise.
    """
    batch = a.shape[0]
    n = b.shape[1]
    eq = _match_masks(a, b)
    one = np.uint64(1)
    pv = np.full(batch, np.uint64(0xFFFFFFFFFFFFFFFF), dtype=np.uint64)
    mv = np.zeros(batch, dtype=np.uint64)
    score = m_real.astype(np.int64, copy=True)
    top = one << (m_real.astype(np.uint64) - one)
    result = np.empty(batch, dtype=np.int64)
    d0 = np.zeros(batch, dtype=np.uint64)
    eq_prev = np.zeros(batch, dtype=np.uint64)
    for j in range(n):
        eq_j = eq[:, j]
        if transpositions:
            d0 = ((~d0 & eq_j) << one) & eq_prev
            d0 |= (((eq_j & pv) + pv) ^ pv) | eq_j | mv
            eq_prev = eq_j
        else:
            d0 = (((eq_j & pv) + pv) ^ pv) | eq_j | mv
        ph = mv | ~(d0 | pv)
        mh = pv & d0
        score += (ph & top) != 0
        score -= (mh & top) != 0
        ph = (ph << one) | one
        pv = (mh << one) | ~(d0 | ph)
        mv = ph & d0
        rows = np.nonzero(n_real == j + 1)[0]
        if rows.size:
            result[rows] = score[rows]
    return result


def _batched_levenshtein(
    a: np.ndarray, b: np.ndarray, m_real: np.ndarray, n_real: np.ndarray
) -> np.ndarray:
    """Levenshtein distances for padded code matrices ``a (B, m)``,
    ``b (B, n)`` with true lengths ``m_real``/``n_real`` per pair."""
    m, n = a.shape[1], b.shape[1]
    result = np.empty(a.shape[0], dtype=np.int64)
    j_arr = np.arange(n + 1, dtype=np.int64)
    previous = np.broadcast_to(j_arr, (a.shape[0], n + 1)).copy()
    for i in range(1, m + 1):
        cost = (a[:, i - 1 : i] != b).astype(np.int64)
        t = np.minimum(previous[:, 1:] + 1, previous[:, :-1] + cost)
        previous = _scan_min(t, i, j_arr)
        _capture_rows(result, previous, m_real, n_real, i)
    return result


def _batched_osa(
    a: np.ndarray, b: np.ndarray, m_real: np.ndarray, n_real: np.ndarray
) -> np.ndarray:
    """Optimal-string-alignment distances (adjacent transpositions)."""
    m, n = a.shape[1], b.shape[1]
    result = np.empty(a.shape[0], dtype=np.int64)
    j_arr = np.arange(n + 1, dtype=np.int64)
    previous = np.broadcast_to(j_arr, (a.shape[0], n + 1)).copy()
    before_previous: np.ndarray | None = None
    for i in range(1, m + 1):
        cost = (a[:, i - 1 : i] != b).astype(np.int64)
        t = np.minimum(previous[:, 1:] + 1, previous[:, :-1] + cost)
        if i > 1 and n > 1:
            transposable = (a[:, i - 1 : i] == b[:, :-1]) & (
                a[:, i - 2 : i - 1] == b[:, 1:]
            )
            candidate = before_previous[:, :-2] + 1
            t[:, 1:] = np.where(
                transposable, np.minimum(t[:, 1:], candidate), t[:, 1:]
            )
        before_previous = previous
        previous = _scan_min(t, i, j_arr)
        _capture_rows(result, previous, m_real, n_real, i)
    return result


def _batched_damerau_lcs(
    a: np.ndarray, b: np.ndarray, m_real: np.ndarray, n_real: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Full Damerau-Levenshtein distances (batched Lowrance-Wagner)
    plus longest-common-substring lengths, sharing one row loop.

    The transposition term ``d[row][col]`` indexes rows by the last
    occurrence of ``b[j-1]`` in ``a`` -- data-dependent, so the whole
    ``(B, m+2, n+2)`` table is kept and gathered with fancy indexing;
    the per-band alphabet keeps the last-occurrence table small.  The
    ``max_dist`` boundary only has to exceed every real distance to act
    as infinity, so padded band dimensions leave results unchanged.
    The LCS recurrence rides the same per-row equality mask (sentinels
    never match, so padded cells are zero and raise no pair's maximum);
    fusing it here halves the number of row launches for the two
    quadratic DPs.
    """
    batch, m = a.shape
    n = b.shape[1]
    alphabet = np.unique(np.concatenate([a.ravel(), b.ravel()]))
    a_codes = np.searchsorted(alphabet, a)
    b_codes = np.searchsorted(alphabet, b)
    max_dist = m + n
    # Distances are bounded by m + n: int32 state halves memory traffic.
    d = np.empty((batch, m + 2, n + 2), dtype=np.int32)
    d[:, 0, :] = max_dist
    d[:, :, 0] = max_dist
    d[:, 1, 1:] = np.arange(n + 1, dtype=np.int32)
    d[:, 1:, 1] = np.arange(m + 1, dtype=np.int32)
    alphabet_size = len(alphabet)
    last_row = np.zeros((batch, alphabet_size), dtype=np.int32)
    batch_idx = np.arange(batch)
    j_cells = np.arange(1, n + 1, dtype=np.int32)
    j_arr = np.arange(n + 1, dtype=np.int32)
    # All row-loop intermediates write into preallocated scratch: fresh
    # large temporaries per row would each fault in new pages, which is
    # what makes this kernel slow inside freshly forked workers.
    equal = np.empty((batch, n), dtype=bool)
    scratch = np.empty((batch, n), dtype=np.int32)
    row = np.empty((batch, n), dtype=np.int32)
    transposition = np.empty((batch, n), dtype=np.int32)
    substitution = np.empty((batch, n), dtype=np.int32)
    deletion = np.empty((batch, n), dtype=np.int32)
    col = np.zeros((batch, n), dtype=np.int32)
    w = np.empty((batch, n + 1), dtype=np.int32)
    lcs_prev = np.zeros((batch, n + 1), dtype=np.int32)
    lcs_cur = np.zeros((batch, n + 1), dtype=np.int32)
    lcs_best = np.zeros(batch, dtype=np.int32)
    lcs_max = np.empty(batch, dtype=np.int32)
    # Flat-index bases so the two data-dependent gathers per row can use
    # ``np.take(..., out=...)`` instead of allocating fancy-index results.
    last_row_flat = last_row.ravel()
    row_at = (batch_idx[:, None] * alphabet_size + b_codes).astype(np.int32)
    d_flat = d.ravel()
    d_base = (batch_idx[:, None] * ((m + 2) * (n + 2))).astype(np.int32)
    for i in range(1, m + 1):
        np.equal(a_codes[:, i - 1 : i], b_codes, out=equal)
        np.add(lcs_prev[:, :-1], 1, out=scratch)
        np.multiply(scratch, equal, out=lcs_cur[:, 1:])
        lcs_cur[:, 1:].max(axis=1, out=lcs_max)
        np.maximum(lcs_best, lcs_max, out=lcs_best)
        lcs_prev, lcs_cur = lcs_cur, lcs_prev
        # Last column (exclusive) where the current row character matched.
        np.multiply(equal, j_cells, out=scratch)
        np.maximum.accumulate(scratch, axis=1, out=scratch)
        col[:, 1:] = scratch[:, :-1]
        np.take(last_row_flat, row_at, out=row)
        # d[row][col] + (i - row - 1) + 1 + (j - col - 1), regrouped so
        # the constants collapse into in-place adds.
        np.multiply(row, n + 2, out=scratch)
        scratch += col
        scratch += d_base
        np.take(d_flat, scratch, out=transposition)
        transposition -= row
        transposition -= col
        transposition += j_cells
        transposition += np.int32(i - 1)
        np.subtract(d[:, i, 1 : n + 1], equal, out=substitution)
        substitution += 1
        np.add(d[:, i, 2 : n + 2], 1, out=deletion)
        np.minimum(substitution, deletion, out=substitution)
        np.minimum(substitution, transposition, out=substitution)
        # Prefix-min scan (see _scan_min), inlined over the scratch row.
        w[:, 0] = i
        np.subtract(substitution, j_arr[1:], out=w[:, 1:])
        np.minimum.accumulate(w, axis=1, out=w)
        w += j_arr
        d[:, i + 1, 1:] = w
        last_row[batch_idx, a_codes[:, i - 1]] = i
    return d[batch_idx, m_real + 1, n_real + 1], lcs_best


def _fill_dp_columns(
    items: list[tuple[int, str, str]], out: np.ndarray, codes: _NameCodes
) -> None:
    """Edit-distance and LCS columns via length-banded batched DP."""
    shorts: list[int] = []
    longs: list[int] = []
    rows: list[int] = []
    bands: dict[tuple[int, int], list[int]] = {}
    for row, first, second in items:
        if len(first) > len(second):
            first, second = second, first
        if not first:
            # One side empty (and the pair is not identical, so the
            # other side is not): every edit distance saturates at the
            # longer length, LCS overlap is zero.
            out[row, _COL_OSA] = 1.0
            out[row, _COL_LEV] = 1.0
            out[row, _COL_DAMERAU] = 1.0
            out[row, _COL_LCS] = 1.0
            continue
        member = len(shorts)
        shorts.append(codes.index[first])
        longs.append(codes.index[second])
        rows.append(row)
        bands.setdefault(
            (_band(len(first)), _band(len(second))), []
        ).append(member)
    if not rows:
        return
    short_idx = np.array(shorts, dtype=np.int64)
    long_idx = np.array(longs, dtype=np.int64)
    row_idx = np.array(rows, dtype=np.int64)
    # Levenshtein and OSA pack into 64-bit words: one unbanded launch
    # over every pair at once, unless a short side overflows the word.
    bit_parallel = int(codes.lengths[short_idx].max()) <= _WORD_BITS
    if bit_parallel:
        a = codes.rows(short_idx, _PAD_A)
        b = codes.rows(long_idx, _PAD_B)
        m_all = codes.lengths[short_idx]
        n_all = codes.lengths[long_idx]
        longest = n_all.astype(np.float64)
        out[row_idx, _COL_LEV] = np.minimum(
            1.0,
            _bit_parallel_edit(a, b, m_all, n_all, transpositions=False)
            / longest,
        )
        out[row_idx, _COL_OSA] = np.minimum(
            1.0,
            _bit_parallel_edit(a, b, m_all, n_all, transpositions=True)
            / longest,
        )
    for members in bands.values():
        sel = np.array(members, dtype=np.int64)
        a = codes.rows(short_idx[sel], _PAD_A)
        b = codes.rows(long_idx[sel], _PAD_B)
        m_real = codes.lengths[short_idx[sel]]
        n_real = codes.lengths[long_idx[sel]]
        idx = row_idx[sel]
        longest = n_real.astype(np.float64)
        if not bit_parallel:
            out[idx, _COL_OSA] = np.minimum(
                1.0, _batched_osa(a, b, m_real, n_real) / longest
            )
            out[idx, _COL_LEV] = np.minimum(
                1.0, _batched_levenshtein(a, b, m_real, n_real) / longest
            )
        damerau, lcs_length = _batched_damerau_lcs(a, b, m_real, n_real)
        out[idx, _COL_DAMERAU] = np.minimum(1.0, damerau / longest)
        out[idx, _COL_LCS] = 1.0 - lcs_length / longest


def _concat_rows(
    flat: np.ndarray, indptr: np.ndarray, selection: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised per-row gather from a CSR layout.

    Concatenates ``flat[indptr[s]:indptr[s+1]]`` for every ``s`` in
    ``selection`` and returns ``(values, owner)`` where ``owner[k]`` is
    the position in ``selection`` that produced ``values[k]``.
    """
    lengths = indptr[selection + 1] - indptr[selection]
    owner = np.repeat(np.arange(len(selection), dtype=np.int64), lengths)
    offsets = np.cumsum(lengths) - lengths
    positions = (
        np.arange(int(lengths.sum()), dtype=np.int64)
        - offsets[owner]
        + indptr[selection][owner]
    )
    return flat[positions], owner


def _fill_ngram_columns(
    items: list[tuple[int, str, str]], out: np.ndarray
) -> None:
    """The 3-gram family from one CSR gram x name count matrix.

    Every per-pair quantity -- multiset overlap, count dot product and
    set intersection -- drops out of one sorted-key intersection of the
    two sides' (pair, gram) streams; the arithmetic then mirrors
    :mod:`repro.text.ngrams` expression for expression so results stay
    bit-identical to the scalar path.
    """
    if not items:
        return
    name_index: dict[str, int] = {}
    for _, first, second in items:
        name_index.setdefault(first, len(name_index))
        name_index.setdefault(second, len(name_index))
    gram_index: dict[str, int] = {}
    flat_ids: list[int] = []
    flat_counts: list[int] = []
    indptr = np.zeros(len(name_index) + 1, dtype=np.int64)
    distinct = np.zeros(len(name_index), dtype=np.int64)
    totals = np.zeros(len(name_index), dtype=np.int64)
    sumsq = np.zeros(len(name_index), dtype=np.int64)
    for name, slot in name_index.items():
        profile = ngram_profile(name, 3)
        for gram, count in profile.items():
            gram_id = gram_index.setdefault(gram, len(gram_index))
            flat_ids.append(gram_id)
            flat_counts.append(count)
        indptr[slot + 1] = len(flat_ids)
        distinct[slot] = len(profile)
        totals[slot] = sum(profile.values())
        sumsq[slot] = sum(count * count for count in profile.values())
    ids = np.array(flat_ids, dtype=np.int64)
    counts = np.array(flat_counts, dtype=np.int64)
    norms = np.sqrt(sumsq.astype(np.float64))

    rows = np.array([row for row, _, _ in items], dtype=np.int64)
    left = np.array([name_index[a] for _, a, _ in items], dtype=np.int64)
    right = np.array([name_index[b] for _, _, b in items], dtype=np.int64)
    vocabulary = max(len(gram_index), 1)

    ids_l, pair_l = _concat_rows(ids, indptr, left)
    ids_r, pair_r = _concat_rows(ids, indptr, right)
    counts_l, _ = _concat_rows(counts, indptr, left)
    counts_r, _ = _concat_rows(counts, indptr, right)
    # (pair, gram) composite keys: unique within each side because gram
    # ids are unique per name, so the intersection enumerates exactly
    # the grams shared by each pair.
    common, at_l, at_r = np.intersect1d(
        pair_l * vocabulary + ids_l,
        pair_r * vocabulary + ids_r,
        assume_unique=True,
        return_indices=True,
    )
    pair_of = common // vocabulary
    pairs = len(items)
    overlap = np.bincount(
        pair_of,
        weights=np.minimum(counts_l[at_l], counts_r[at_r]),
        minlength=pairs,
    )
    dot = np.bincount(
        pair_of,
        weights=(counts_l[at_l] * counts_r[at_r]).astype(np.float64),
        minlength=pairs,
    )
    shared = np.bincount(pair_of, minlength=pairs).astype(np.int64)

    total = totals[left] + totals[right]
    safe_total = np.where(total == 0, 1, total)
    out[rows, _COL_NGRAM] = np.where(
        total == 0, 0.0, 1.0 - 2.0 * overlap / safe_total
    )

    empty_l = totals[left] == 0
    empty_r = totals[right] == 0
    norm_product = norms[left] * norms[right]
    similarity = dot / np.where(norm_product == 0.0, 1.0, norm_product)
    cosine = np.maximum(0.0, np.minimum(1.0, 1.0 - similarity))
    # Identical profiles must give exactly 0 despite float rounding.
    cosine = np.where(cosine < 1e-9, 0.0, cosine)
    out[rows, _COL_COSINE] = np.where(
        empty_l & empty_r, 0.0, np.where(empty_l | empty_r, 1.0, cosine)
    )

    union = distinct[left] + distinct[right] - shared
    safe_union = np.where(union == 0, 1, union)
    out[rows, _COL_JACCARD] = np.where(
        union == 0, 0.0, 1.0 - shared / safe_union
    )


def _fill_jaro_column(
    items: list[tuple[int, str, str]], out: np.ndarray, codes: _NameCodes
) -> None:
    """Batched Jaro-Winkler distances, banded like the DP columns.

    Replicates the scalar greedy matcher step for step: the sliding
    window match loop runs over short-side positions with the whole
    band's candidate masks evaluated at once, transpositions pair the
    k-th matched characters of both sides via a stable argsort, and the
    common-prefix boost is a cumulative product of leading equalities.
    Identical pairs never reach this kernel (their row stays zero), so
    the scalar ``a == b`` short-circuit needs no batched counterpart.
    """
    bands: dict[int, list[int]] = {}
    for member, (_, first, second) in enumerate(items):
        # The greedy match loops over first-side positions, so only that
        # side's width drives launch count: band on it alone and let the
        # masks absorb the mixed second-side lengths.
        bands.setdefault(_band(len(first), _JARO_BAND_WIDTH), []).append(
            member
        )
    for members in bands.values():
        idx = np.array([items[i][0] for i in members], dtype=np.int64)
        first_idx = np.array(
            [codes.index[items[i][1]] for i in members], dtype=np.int64
        )
        second_idx = np.array(
            [codes.index[items[i][2]] for i in members], dtype=np.int64
        )
        a = codes.rows(first_idx, _PAD_A)
        b = codes.rows(second_idx, _PAD_B)
        len_a = codes.lengths[first_idx]
        len_b = codes.lengths[second_idx]
        batch, width_a = a.shape
        width_b = b.shape[1]
        window = np.maximum(np.maximum(len_a, len_b) // 2 - 1, 0)
        matched_a = np.zeros((batch, width_a), dtype=bool)
        unmatched_b = np.ones((batch, width_b), dtype=bool)
        matches = np.zeros(batch, dtype=np.int64)
        j_idx = np.arange(width_b, dtype=np.int64)
        i_idx = np.arange(width_a, dtype=np.int64)
        batch_idx = np.arange(batch)
        # Window bounds for every short-side position, computed up front;
        # the sequential loop then runs a few buffer-reusing ops per
        # position (fresh temporaries would fault new pages every trip).
        lo = np.maximum(0, i_idx[None, :] - window[:, None])
        hi = np.minimum(
            len_b[:, None], i_idx[None, :] + window[:, None] + 1
        )
        candidates = np.empty((batch, width_b), dtype=bool)
        mask = np.empty((batch, width_b), dtype=bool)
        for i in range(width_a):
            np.equal(b, a[:, i : i + 1], out=candidates)
            candidates &= unmatched_b
            np.greater_equal(j_idx, lo[:, i : i + 1], out=mask)
            candidates &= mask
            np.less(j_idx, hi[:, i : i + 1], out=mask)
            candidates &= mask
            first_j = np.argmax(candidates, axis=1)
            hit = candidates[batch_idx, first_j]
            unmatched_b[batch_idx[hit], first_j[hit]] = False
            matched_a[hit, i] = True
            matches += hit
        matched_b = ~unmatched_b
        transpositions = np.zeros(batch, dtype=np.int64)
        depth = min(width_a, width_b)
        if depth:
            # Stable sort floats matched positions to the front in
            # ascending order: column k holds each side's k-th match.
            order_a = np.argsort(~matched_a, axis=1, kind="stable")
            order_b = np.argsort(~matched_b, axis=1, kind="stable")
            seq_a = np.take_along_axis(a, order_a, axis=1)[:, :depth]
            seq_b = np.take_along_axis(b, order_b, axis=1)[:, :depth]
            mismatch = (seq_a != seq_b) & (
                np.arange(depth) < matches[:, None]
            )
            transpositions = mismatch.sum(axis=1) // 2
        safe_a = np.maximum(len_a, 1)
        safe_b = np.maximum(len_b, 1)
        safe_m = np.maximum(matches, 1)
        jaro = np.where(
            matches > 0,
            (
                matches / safe_a
                + matches / safe_b
                + (matches - transpositions) / safe_m
            )
            / 3.0,
            0.0,
        )
        depth_p = min(4, width_a, width_b)
        if depth_p:
            prefix = np.cumprod(
                a[:, :depth_p] == b[:, :depth_p], axis=1
            ).sum(axis=1)
        else:
            prefix = np.zeros(batch, dtype=np.int64)
        winkler = jaro + prefix * 0.1 * (1.0 - jaro)
        out[idx, _COL_JARO] = 1.0 - winkler


def unique_lowered_pairs(
    pairs: Sequence[tuple[str, str]],
) -> tuple[list[tuple[str, str]], np.ndarray]:
    """Canonical unique (lowercased, sorted) pairs and the inverse map.

    ``uniq[inverse[i]]`` is the canonical form of ``pairs[i]``; all eight
    distances are symmetric, so one orientation suffices.
    """
    unique: dict[tuple[str, str], int] = {}
    inverse = np.empty(len(pairs), dtype=np.int64)
    for index, (first, second) in enumerate(pairs):
        first, second = first.lower(), second.lower()
        if first > second:
            first, second = second, first
        key = (first, second)
        slot = unique.get(key)
        if slot is None:
            slot = len(unique)
            unique[key] = slot
        inverse[index] = slot
    return list(unique), inverse


def name_distance_rows(uniq: Sequence[tuple[str, str]]) -> np.ndarray:
    """Distance rows for already-canonical unique pairs, ``(len(uniq), 8)``.

    The inner kernel behind :func:`name_distance_matrix`: callers that
    maintain their own deduplication (the pipeline's memo, the
    persistent :mod:`repro.text.distance_cache`) use this to compute
    exactly the missing canonical pairs.  Inputs must already be
    lowercased; orientation is free (every distance is symmetric, and
    the kernel canonicalises internally via :func:`unique_lowered_pairs`
    semantics being idempotent on lowercase input).
    """
    matrix = np.zeros((len(uniq), len(COLUMNS)))
    items = [
        (row, first, second)
        for row, (first, second) in enumerate(uniq)
        if first != second
    ]
    if not items:
        return matrix
    codes = _NameCodes(
        [name for _, first, second in items for name in (first, second)]
    )
    _fill_dp_columns(items, matrix, codes)
    _fill_ngram_columns(items, matrix)
    _fill_jaro_column(items, matrix, codes)
    return matrix


def name_distance_matrix(
    pairs: Sequence[tuple[str, str]],
    *,
    dtype: np.dtype | type = np.float64,
) -> np.ndarray:
    """The eight Table I name distances for every pair, ``(n_pairs, 8)``.

    Row ``i`` equals ``name_distance_vector(*pairs[i])`` exactly; columns
    follow :data:`~repro.text.similarity.PAIR_DISTANCE_NAMES`.  The
    kernel always computes in float64 (the bit-equivalence contract with
    the scalar path); ``dtype`` only casts the returned matrix, for
    callers storing columns at reduced precision.
    """
    if not pairs:
        return np.zeros((0, len(COLUMNS)), dtype=dtype)
    uniq, inverse = unique_lowered_pairs(pairs)
    gathered = name_distance_rows(uniq)[inverse]
    if np.dtype(dtype) == gathered.dtype:
        return gathered
    return gathered.astype(dtype)
