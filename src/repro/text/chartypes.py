"""Unicode character-type analysis (Table I, feature row 1).

The paper counts, for every instance value, "the fraction and number of
occurrences of several character types (letters (uppercase, lowercase, and
both), mark characters, numbers, punctuation, symbols, separators, other)".
These classes map directly onto the major Unicode general categories:

========  =====================  ==========================
class     Unicode major class    examples
========  =====================  ==========================
letter    L                      ``a``, ``B``, ``ñ``
upper     Lu                     ``B``
lower     Ll                     ``a``
mark      M                      combining accents
number    N                      ``3``, ``Ⅷ``
punct     P                      ``,``, ``-``
symbol    S                      ``$``, ``+``
separator Z (plus ASCII spacing) `` ``
other     C and anything else    control characters
========  =====================  ==========================

``count_character_types`` returns both the raw counts and the fractions
relative to the string length, giving the 18 numeric features of row 1
(9 classes x {count, fraction}).
"""

from __future__ import annotations

import unicodedata
from dataclasses import dataclass, fields

#: Order in which the character classes appear in feature vectors.
CHARACTER_CLASSES: tuple[str, ...] = (
    "letter",
    "upper",
    "lower",
    "mark",
    "number",
    "punctuation",
    "symbol",
    "separator",
    "other",
)


@dataclass(frozen=True)
class CharacterTypeCounts:
    """Raw per-class character counts for one string."""

    letter: int = 0
    upper: int = 0
    lower: int = 0
    mark: int = 0
    number: int = 0
    punctuation: int = 0
    symbol: int = 0
    separator: int = 0
    other: int = 0
    total: int = 0

    def counts(self) -> list[int]:
        """Return the per-class counts in :data:`CHARACTER_CLASSES` order."""
        return [getattr(self, name) for name in CHARACTER_CLASSES]

    def fractions(self) -> list[float]:
        """Return per-class fractions of the string length.

        An empty string yields all-zero fractions rather than dividing by
        zero; this matches the behaviour the classifier expects (a neutral
        feature for missing text).
        """
        if self.total == 0:
            return [0.0] * len(CHARACTER_CLASSES)
        return [count / self.total for count in self.counts()]

    def as_features(self) -> list[float]:
        """Counts followed by fractions: the 18 features of Table I row 1."""
        return [float(c) for c in self.counts()] + self.fractions()


def _classify(char: str) -> tuple[str, ...]:
    """Return the feature classes a single character contributes to.

    A character can contribute to more than one class: an uppercase letter
    counts as both ``letter`` and ``upper``.
    """
    category = unicodedata.category(char)
    major = category[0]
    if major == "L":
        if category == "Lu":
            return ("letter", "upper")
        if category == "Ll":
            return ("letter", "lower")
        return ("letter",)
    if major == "M":
        return ("mark",)
    if major == "N":
        return ("number",)
    if major == "P":
        return ("punctuation",)
    if major == "S":
        return ("symbol",)
    if major == "Z" or char in "\t\n\r\x0b\x0c":
        return ("separator",)
    return ("other",)


def count_character_types(text: str) -> CharacterTypeCounts:
    """Count the Unicode character classes present in ``text``.

    >>> counts = count_character_types("Ab 3,$")
    >>> (counts.letter, counts.upper, counts.lower) == (2, 1, 1)
    True
    >>> (counts.number, counts.punctuation, counts.symbol) == (1, 1, 1)
    True
    """
    tallies = dict.fromkeys(CHARACTER_CLASSES, 0)
    for char in text:
        for klass in _classify(char):
            tallies[klass] += 1
    return CharacterTypeCounts(total=len(text), **tallies)


#: Number of numeric features produced by :meth:`CharacterTypeCounts.as_features`.
NUM_CHARACTER_FEATURES = len(CHARACTER_CLASSES) * 2

# Keep the dataclass field order in sync with CHARACTER_CLASSES; this is a
# module-load-time invariant check rather than a runtime branch.
_field_names = tuple(f.name for f in fields(CharacterTypeCounts))[: len(CHARACTER_CLASSES)]
if _field_names != CHARACTER_CLASSES:  # pragma: no cover - guards refactors
    raise AssertionError("CharacterTypeCounts fields out of sync with CHARACTER_CLASSES")
