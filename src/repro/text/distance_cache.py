"""Persistent, fingerprint-keyed store of name-distance rows.

The batched kernel (:mod:`repro.text.batch`) makes cold featurization
cheap; this cache makes *warm* runs free.  Long-lived ``repro serve
--follow`` daemons and repeated ``repro match --add-source`` invocations
see the same property names across process restarts, so the eight-column
distance rows of every canonical (lowercased, sorted) unique pair are
persisted once and reloaded instead of recomputed.

File format: one ``.npz`` bundle (written atomically through
:func:`repro.ioutils.atomic_save`, so a crash mid-save never corrupts a
previously good cache) holding

``fingerprint``
    the kernel fingerprint the rows were computed with,
``first`` / ``second``
    the canonical pair halves as unicode arrays, and
``matrix``
    the ``(n_pairs, 8)`` float64 distance rows.

Loading is tolerant by construction: a missing file, an unreadable or
truncated archive, mismatched array shapes or a stale fingerprint all
load as an empty cache -- the cache is a pure accelerator, never a
source of truth, so the only correct reaction to damage is to recompute.

The fingerprint pins the numeric contract, not the implementation: rows
must equal the scalar :func:`repro.text.similarity.name_distance_vector`
bit for bit (the kernel's test-pinned invariant), so
:data:`KERNEL_VERSION` only changes when that scalar contract itself
changes, invalidating persisted rows everywhere at once.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable, Iterator, Sequence
from pathlib import Path

import numpy as np

from repro.ioutils import atomic_save
from repro.text.batch import COLUMNS, KERNEL_VERSION

#: Identifies the numeric contract of persisted rows.  Derived from the
#: kernel version and the column order, so adding, removing or
#: reordering distance columns -- or changing their semantics -- makes
#: old cache files load as empty instead of serving wrong rows.
KERNEL_FINGERPRINT: str = hashlib.sha256(
    f"{KERNEL_VERSION}:{','.join(COLUMNS)}".encode()
).hexdigest()[:16]


class DistanceCache:
    """Crash-safe on-disk memo of canonical name-pair distance rows.

    ``get``/``record`` mirror a dict keyed by canonical (lowercased,
    sorted) name pairs; :meth:`save` persists atomically and is cheap to
    call often (a no-op unless new rows were recorded).
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._rows: dict[tuple[str, str], np.ndarray] = {}
        self._dirty = 0
        #: Entries served from disk at construction (0 for cold starts,
        #: also after a corrupt or fingerprint-stale file was ignored).
        self.loaded_entries = 0
        self._load()

    # -- read side ---------------------------------------------------------

    def _load(self) -> None:
        try:
            with np.load(self.path, allow_pickle=False) as data:
                if str(data["fingerprint"]) != KERNEL_FINGERPRINT:
                    return
                first = data["first"]
                second = data["second"]
                matrix = np.asarray(data["matrix"], dtype=np.float64)
            if matrix.shape != (len(first), len(COLUMNS)):
                return
            if len(first) != len(second):
                return
        except FileNotFoundError:
            return
        except Exception:  # repro: noqa[REP005] damage tolerance by contract: any unreadable cache loads as empty and is recomputed
            # Truncated archive, not a zip, bad dtypes, missing keys...
            # every flavour of damage means the same thing: recompute.
            return
        matrix.setflags(write=False)
        for i in range(len(first)):
            self._rows[(str(first[i]), str(second[i]))] = matrix[i]
        self.loaded_entries = len(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, key: tuple[str, str]) -> bool:
        return key in self._rows

    def get(self, key: tuple[str, str]) -> np.ndarray | None:
        """The persisted row for a canonical pair, or ``None``."""
        return self._rows.get(key)

    def items(self) -> Iterator[tuple[tuple[str, str], np.ndarray]]:
        return iter(self._rows.items())

    # -- write side --------------------------------------------------------

    def record(
        self,
        keys: Iterable[tuple[str, str]],
        rows: Sequence[np.ndarray] | np.ndarray,
    ) -> int:
        """Insert newly computed rows; returns how many were new.

        Existing keys are kept (first write wins -- rows are pinned to
        the scalar reference, so recomputation cannot disagree).
        """
        added = 0
        for key, row in zip(keys, rows):
            if key not in self._rows:
                self._rows[key] = row
                added += 1
        self._dirty += added
        return added

    @property
    def dirty(self) -> bool:
        """Whether there are recorded rows not yet saved."""
        return self._dirty > 0

    def save(self) -> bool:
        """Atomically persist all rows; returns whether a write happened.

        A no-op when nothing changed since the last save, so callers may
        flush after every ingestion batch without rewrite churn.
        """
        if not self._dirty:
            return False
        first = np.array([key[0] for key in self._rows], dtype=str)
        second = np.array([key[1] for key in self._rows], dtype=str)
        if len(self._rows):
            matrix = np.stack(list(self._rows.values()))
        else:
            matrix = np.zeros((0, len(COLUMNS)))

        def writer(temp: Path) -> None:
            np.savez(
                temp,
                fingerprint=np.array(KERNEL_FINGERPRINT),
                first=first,
                second=second,
                matrix=matrix,
            )

        atomic_save(self.path, writer, suffix=".npz")
        self._dirty = 0
        return True
