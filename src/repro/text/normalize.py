"""Name normalisation shared by the lexical baselines.

AML and FCA-Map normalise labels before comparing them: lower-casing,
separator splitting and light morphological normalisation (plural
stripping).  Crucially this is *generic* linguistic knowledge -- it does
not know that "mp" means "megapixels"; resolving such domain synonymy is
exactly what the paper shows these systems to lack.
"""

from __future__ import annotations

from repro.text.tokenize import words

_ES_ENDINGS = ("ches", "shes", "xes", "sses", "zes")


def light_stem(word: str) -> str:
    """Strip simple English plural suffixes.

    >>> light_stem("megapixels")
    'megapixel'
    >>> light_stem("inches")
    'inch'
    >>> light_stem("glass")
    'glass'
    """
    lowered = word.lower()
    for ending in _ES_ENDINGS:
        if lowered.endswith(ending) and len(lowered) > len(ending):
            return lowered[:-2]
    if lowered.endswith("ies") and len(lowered) > 3:
        return lowered[:-3] + "y"
    if lowered.endswith("s") and not lowered.endswith("ss") and len(lowered) > 3:
        return lowered[:-1]
    return lowered


def name_tokens(name: str, stem: bool = True) -> list[str]:
    """Normalised word tokens of a property name.

    >>> name_tokens("Effective_Pixels")
    ['effective', 'pixel']
    """
    tokens = words(name)
    if stem:
        return [light_stem(token) for token in tokens]
    return tokens


def token_set(name: str, stem: bool = True) -> frozenset[str]:
    """Normalised token set of a name (order- and duplicate-free)."""
    return frozenset(name_tokens(name, stem=stem))
