"""Deterministic fault injection for robustness testing.

Everything here exists to *prove* the fault-tolerance layer works: the
harness injects NaN features, mid-repetition exceptions, diverged
training and simulated process kills at exact, reproducible points, so
integration tests can assert that checkpoints resume and fallbacks fire.
"""

from repro.testing.faults import (
    WORKER_EXIT_CODE,
    AlwaysDivergingClassifier,
    FaultInjected,
    FaultPlan,
    FaultyMatcher,
    IngestFaultPlan,
    ServeFaultPlan,
    SimulatedKill,
    SlowSourceWriter,
    corrupt_with_nan,
    write_poison_csv,
    write_torn_csv,
)

__all__ = [
    "WORKER_EXIT_CODE",
    "AlwaysDivergingClassifier",
    "FaultInjected",
    "FaultPlan",
    "FaultyMatcher",
    "IngestFaultPlan",
    "ServeFaultPlan",
    "SimulatedKill",
    "SlowSourceWriter",
    "corrupt_with_nan",
    "write_poison_csv",
    "write_torn_csv",
]
