"""Deterministic fault-injection harness.

The runner's failure isolation, retry policy and checkpoint/resume are
only trustworthy if they can be exercised against *controlled* faults.
This module injects failure modes at exact (repetition, attempt)
coordinates:

* transient or persistent exceptions during training
  (:class:`FaultInjected`);
* diverged training (:class:`~repro.errors.TrainingDivergedError`), both
  at the matcher level and -- via :class:`AlwaysDivergingClassifier` --
  inside the resilient-classifier ladder;
* NaN-corrupted similarity scores / feature matrices
  (:func:`corrupt_with_nan`), which the numeric guards must catch;
* simulated process kills (:class:`SimulatedKill`), a ``BaseException``
  that -- like a real ``SIGKILL`` -- must *not* be absorbed by the
  per-repetition isolation, leaving the journal with the completed
  prefix only;
* **process-level faults** for the pool supervisor: a hard worker death
  (``os._exit``, no Python unwinding at all), a configurable hang (to
  trip the cell-timeout watchdog), and a SIGTERM delivered to the
  parent mid-grid (to exercise signal-safe shutdown).  These faults are
  *budgeted* -- "kill the first N executions of repetition k" -- with
  the budget counted in small files under ``FaultPlan.state_dir``, so
  the count survives the very process deaths it causes and re-dispatch
  behaves deterministically.

Determinism is the point: a plan says exactly where each fault fires, so
a test that kills a run "after repetition k" does so on every machine.
"""

from __future__ import annotations

import os
import signal
import time
from collections.abc import Mapping
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.api import Matcher
from repro.data.model import Dataset
from repro.ioutils import atomic_write_text
from repro.data.pairs import LabeledPair, PairSet
from repro.errors import ConfigurationError, ReproError, TrainingDivergedError

#: Exit status used by injected hard worker deaths, distinctive in logs.
WORKER_EXIT_CODE = 23


class FaultInjected(ReproError):
    """An exception deliberately raised by the fault harness."""


class SimulatedKill(BaseException):
    """A simulated ``SIGKILL``.

    Deliberately **not** an :class:`Exception`: per-repetition failure
    isolation catches ``Exception`` only, so this propagates straight
    out of the runner -- exactly like a killed process -- while the
    journal keeps everything completed so far.
    """


def corrupt_with_nan(
    array: np.ndarray, fraction: float = 0.1, rng: np.random.Generator | None = None
) -> np.ndarray:
    """A copy of ``array`` with ``fraction`` of its entries set to NaN.

    At least one entry is corrupted whenever the array is non-empty, so
    a guard under test can never pass by luck.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    corrupted = np.array(array, dtype=np.float64, copy=True)
    if corrupted.size == 0:
        return corrupted
    count = max(1, int(round(fraction * corrupted.size)))
    positions = rng.choice(corrupted.size, size=min(count, corrupted.size), replace=False)
    flat = corrupted.reshape(-1)
    flat[positions] = np.nan
    return corrupted


class AlwaysDivergingClassifier:
    """A primary classifier whose training always diverges.

    Plug into ``ResilientClassifier(primary_factory=AlwaysDivergingClassifier)``
    to force the ladder all the way down to the classical fallback.
    """

    def __init__(self, config=None) -> None:
        self.config = config
        self.fit_calls = 0

    def fit(self, features, labels):
        self.fit_calls += 1
        raise TrainingDivergedError("injected divergence (fault harness)")

    def match_scores(self, features):  # pragma: no cover - never fitted
        raise AssertionError("a diverging classifier never scores")


@dataclass(frozen=True)
class FaultPlan:
    """Where and how faults fire, keyed by repetition index.

    Parameters
    ----------
    fail_attempts:
        ``{repetition: n}`` -- the first ``n`` attempts of that
        repetition raise :class:`FaultInjected` (so ``n=1`` with one
        retry allowed tests recovery; ``n`` >= max attempts tests
        exhaustion).
    kill_before:
        Repetitions that raise :class:`SimulatedKill` before any work --
        "the process died right as repetition k started".
    diverge_on:
        Repetitions whose ``fit`` raises
        :class:`~repro.errors.TrainingDivergedError` on every attempt.
    nan_scores_on:
        Repetitions whose similarity scores come back NaN-corrupted,
        which the runner's numeric guard must turn into a failure.
    exit_process_on:
        ``{repetition: n}`` -- the first ``n`` *executions* of that
        repetition hard-kill their process with ``os._exit`` (no
        exception, no cleanup: what the OOM reaper does).  Requires
        ``state_dir``.
    hang_process_on:
        ``{repetition: n}`` -- the first ``n`` executions sleep for
        ``hang_seconds`` before proceeding, so a cell-timeout watchdog
        can be exercised deterministically.  Requires ``state_dir``.
    signal_parent_on:
        ``{repetition: n}`` -- the first ``n`` executions send SIGTERM
        to the parent process as the repetition starts (the worker
        itself continues).  Requires ``state_dir``.
    hang_seconds:
        Sleep duration for ``hang_process_on`` executions.
    state_dir:
        Directory for cross-process fault budgets.  Process-level
        faults must count their firings somewhere that survives the
        process death they cause; a file per (kind, repetition) does.
    """

    fail_attempts: Mapping[int, int] = field(default_factory=dict)
    kill_before: frozenset[int] = frozenset()
    diverge_on: frozenset[int] = frozenset()
    nan_scores_on: frozenset[int] = frozenset()
    exit_process_on: Mapping[int, int] = field(default_factory=dict)
    hang_process_on: Mapping[int, int] = field(default_factory=dict)
    signal_parent_on: Mapping[int, int] = field(default_factory=dict)
    hang_seconds: float = 3600.0
    state_dir: str | None = None

    def __post_init__(self) -> None:
        needs_state = (
            self.exit_process_on or self.hang_process_on or self.signal_parent_on
        )
        if needs_state and self.state_dir is None:
            raise ConfigurationError(
                "process-level faults (exit/hang/signal) need "
                "FaultPlan.state_dir to count their budget across processes"
            )

    @classmethod
    def failing(cls, *repetitions: int, attempts: int = 10**9) -> "FaultPlan":
        """A plan where the given repetitions always fail."""
        return cls(fail_attempts={rep: attempts for rep in repetitions})

    @classmethod
    def kill_at(cls, repetition: int) -> "FaultPlan":
        """A plan that simulates a process kill as ``repetition`` starts."""
        return cls(kill_before=frozenset({repetition}))

    @classmethod
    def worker_exit(
        cls, repetition: int, *, state_dir: str, times: int = 1
    ) -> "FaultPlan":
        """Hard-kill the worker the first ``times`` runs of ``repetition``."""
        return cls(exit_process_on={repetition: times}, state_dir=state_dir)

    @classmethod
    def worker_hang(
        cls,
        repetition: int,
        *,
        state_dir: str,
        times: int = 1,
        seconds: float = 3600.0,
    ) -> "FaultPlan":
        """Hang the first ``times`` runs of ``repetition`` for ``seconds``."""
        return cls(
            hang_process_on={repetition: times},
            hang_seconds=seconds,
            state_dir=state_dir,
        )

    @classmethod
    def sigterm_parent(
        cls, repetition: int, *, state_dir: str, times: int = 1
    ) -> "FaultPlan":
        """SIGTERM the parent as ``repetition`` starts, ``times`` times."""
        return cls(signal_parent_on={repetition: times}, state_dir=state_dir)

    def consume_budget(self, kind: str, repetition: int, budget: int) -> bool:
        """Atomically claim one firing of a budgeted process fault.

        Returns True while fewer than ``budget`` firings of
        ``(kind, repetition)`` have been claimed, incrementing the
        on-disk counter.  Only one process executes a given repetition
        at a time (the supervisor re-dispatches only after a death), so
        a plain read-increment-write file is race-free here.
        """
        return _consume_file_budget(self.state_dir, f"{kind}-{repetition}", budget)


def _consume_file_budget(state_dir: str | None, key: str, budget: int) -> bool:
    """Claim one firing of an on-disk fault budget (see ``consume_budget``)."""
    if budget <= 0 or state_dir is None:
        return False
    counter = Path(state_dir) / f"{key}.count"
    fired = int(counter.read_text()) if counter.exists() else 0
    if fired >= budget:
        return False
    counter.parent.mkdir(parents=True, exist_ok=True)
    # Atomic even for a test counter: a fault that fires *while* the
    # counter is being written must not corrupt the budget (REP002).
    atomic_write_text(counter, str(fired + 1))
    return True


@dataclass(frozen=True)
class IngestFaultPlan:
    """Process kills at exact journaled stages of the follow daemon.

    The daemon calls :meth:`maybe_exit` right after appending each
    lifecycle record; ``exit_after={"fused": 1}`` therefore means "hard-
    kill the process immediately after the *first* ``fused`` record
    lands in the journal" -- the worst possible instant for that stage,
    since everything after the append is lost.  Budgets are counted in
    ``state_dir`` files (the process about to die cannot count in
    memory), so a resumed daemon given the same plan does not die again.
    """

    exit_after: Mapping[str, int] = field(default_factory=dict)
    state_dir: str | None = None

    def __post_init__(self) -> None:
        if self.exit_after and self.state_dir is None:
            raise ConfigurationError(
                "IngestFaultPlan.state_dir is required: the kill budget "
                "must survive the process deaths it causes"
            )

    def maybe_exit(self, stage: str) -> None:
        """Hard-kill the process if ``stage`` still has kill budget."""
        if _consume_file_budget(
            self.state_dir, f"ingest-{stage}", self.exit_after.get(stage, 0)
        ):
            os._exit(WORKER_EXIT_CODE)


@dataclass(frozen=True)
class ServeFaultPlan:
    """Process kills at exact journaled stages of the tenant registry.

    The registry calls :meth:`maybe_exit` right after appending each
    lifecycle record -- and additionally at the ``reload`` point, after
    a copy-on-swap successor state is fully built but *before* its
    ``source-added`` record lands -- so ``exit_after={"source-added": 1}``
    means "hard-kill immediately after the first reload is journaled
    but before the swap becomes visible".  Budgets are counted in
    ``state_dir`` files exactly like :class:`IngestFaultPlan`, so a
    warm-restarted registry given the same plan does not die again.
    """

    exit_after: Mapping[str, int] = field(default_factory=dict)
    state_dir: str | None = None

    def __post_init__(self) -> None:
        if self.exit_after and self.state_dir is None:
            raise ConfigurationError(
                "ServeFaultPlan.state_dir is required: the kill budget "
                "must survive the process deaths it causes"
            )

    def maybe_exit(self, stage: str) -> None:
        """Hard-kill the process if ``stage`` still has kill budget."""
        if _consume_file_budget(
            self.state_dir, f"serve-{stage}", self.exit_after.get(stage, 0)
        ):
            os._exit(WORKER_EXIT_CODE)


def write_torn_csv(path: str | Path, rows: list[list[str]], keep: float = 0.5) -> None:
    """Write a CSV whose final line is cut mid-row, as a dying writer would.

    ``rows`` includes the header.  The file contains the first ``keep``
    fraction of the full byte stream, cut without regard for line
    boundaries -- exactly what a crashed (non-atomic) producer leaves
    behind.  Note a torn file whose writer is *gone* is stable, so the
    watcher will admit it; the loader then quarantines the torn row.
    The never-admit guarantee is about files still being written, which
    :class:`SlowSourceWriter` simulates.
    """
    text = "\n".join(",".join(row) for row in rows) + "\n"
    cut = max(1, int(len(text) * keep))
    Path(path).write_text(text[:cut], encoding="utf-8")  # repro: noqa[REP002] simulating a crashed non-atomic producer is the point


def write_poison_csv(path: str | Path) -> None:
    """Write a structurally broken source file (wrong header columns).

    Loading raises a permanent :class:`~repro.errors.DataError` on
    every attempt: the canonical poison source that must end up
    quarantined after its bounded retry budget while healthy sources
    keep fusing.
    """
    Path(path).write_text(  # repro: noqa[REP002] a broken source file is the desired artifact
        "wrong,header,columns\nso,this,fails\n", encoding="utf-8"
    )


class SlowSourceWriter:
    """Writes a file in small chunks with pauses, like a slow producer.

    Drives the watcher's never-admit-mid-write guarantee: while the
    writer is between chunks the file is readable but incomplete, and
    only after :meth:`finish` (or the last chunk) may an admission
    happen.  Chunks are written with plain appends -- deliberately
    non-atomic, this simulates the producers the stability gate exists
    for.  ``step`` is manual (no thread, no clock): tests interleave
    ``step()`` with watcher polls deterministically.
    """

    def __init__(self, path: str | Path, text: str, chunks: int = 4) -> None:
        if chunks < 1:
            raise ConfigurationError("chunks must be >= 1")
        self.path = Path(path)
        size = max(1, (len(text) + chunks - 1) // chunks)
        self._chunks = [text[i : i + size] for i in range(0, len(text), size)]
        self._written = 0

    @property
    def finished(self) -> bool:
        """Whether every chunk has been written."""
        return self._written >= len(self._chunks)

    def step(self) -> bool:
        """Append one more chunk; returns True while unfinished."""
        if self.finished:
            return False
        with self.path.open("a", encoding="utf-8") as handle:  # repro: noqa[REP002] the slow, torn-visible append is what the watcher must survive
            handle.write(self._chunks[self._written])
        self._written += 1
        return not self.finished

    def finish(self) -> None:
        """Write all remaining chunks."""
        while self.step():
            pass


class FaultyMatcher(Matcher):
    """Wraps any matcher and injects the faults of a :class:`FaultPlan`.

    The runner announces ``(repetition, attempt)`` through
    ``notify_repetition`` before each attempt; the wrapper uses those
    coordinates to decide which fault (if any) to fire, and keeps an
    ``injected`` log of ``(repetition, attempt, kind)`` triples plus an
    ``executed_repetitions`` set so tests can assert exactly what ran.
    """

    def __init__(self, inner: Matcher, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan
        self.name = inner.name
        self.is_supervised = inner.is_supervised
        self.threshold = inner.threshold
        self.injected: list[tuple[int, int, str]] = []
        self.executed_repetitions: set[int] = set()
        self._repetition = -1
        self._attempt = 1

    def notify_repetition(self, repetition: int, attempt: int) -> None:
        """Runner hook: the coordinates of the attempt about to run."""
        self._repetition = repetition
        self._attempt = attempt
        self.executed_repetitions.add(repetition)
        if repetition in self.plan.kill_before:
            self.injected.append((repetition, attempt, "kill"))
            raise SimulatedKill(f"simulated kill before repetition {repetition}")
        self._maybe_process_fault(repetition)
        inner_notify = getattr(self.inner, "notify_repetition", None)
        if inner_notify is not None:
            inner_notify(repetition, attempt)

    def _maybe_process_fault(self, repetition: int) -> None:
        """Fire budgeted process-level faults (exit / hang / parent signal)."""
        plan = self.plan
        if plan.consume_budget(
            "exit", repetition, plan.exit_process_on.get(repetition, 0)
        ):
            # A hard death: no exception, no unwinding, no result sent
            # back -- exactly what the supervisor must contain.
            os._exit(WORKER_EXIT_CODE)
        if plan.consume_budget(
            "hang", repetition, plan.hang_process_on.get(repetition, 0)
        ):
            time.sleep(plan.hang_seconds)
        if plan.consume_budget(
            "sigterm", repetition, plan.signal_parent_on.get(repetition, 0)
        ):
            os.kill(os.getppid(), signal.SIGTERM)

    def _maybe_fail(self, stage: str) -> None:
        budget = self.plan.fail_attempts.get(self._repetition, 0)
        if self._attempt <= budget:
            self.injected.append((self._repetition, self._attempt, "fail"))
            raise FaultInjected(
                f"injected {stage} failure at repetition {self._repetition}, "
                f"attempt {self._attempt}"
            )

    def prepare(self, dataset: Dataset) -> None:
        self.inner.prepare(dataset)

    def fit(self, dataset: Dataset, training_pairs: PairSet) -> None:
        self._maybe_fail("fit")
        if self._repetition in self.plan.diverge_on:
            self.injected.append((self._repetition, self._attempt, "diverge"))
            raise TrainingDivergedError(
                f"injected divergence at repetition {self._repetition}"
            )
        self.inner.fit(dataset, training_pairs)

    def score_pairs(self, dataset: Dataset, pairs: list[LabeledPair]) -> np.ndarray:
        if not self.is_supervised:
            # Unsupervised matchers have no fit; inject here instead.
            self._maybe_fail("score")
        scores = self.inner.score_pairs(dataset, pairs)
        if self._repetition in self.plan.nan_scores_on:
            self.injected.append((self._repetition, self._attempt, "nan"))
            scores = corrupt_with_nan(scores)
        return scores

    @property
    def last_degradation(self):
        """Pass through the wrapped matcher's degradation report."""
        return getattr(self.inner, "last_degradation", None)
