"""Deterministic fault-injection harness.

The runner's failure isolation, retry policy and checkpoint/resume are
only trustworthy if they can be exercised against *controlled* faults.
This module injects four failure modes at exact (repetition, attempt)
coordinates:

* transient or persistent exceptions during training
  (:class:`FaultInjected`);
* diverged training (:class:`~repro.errors.TrainingDivergedError`), both
  at the matcher level and -- via :class:`AlwaysDivergingClassifier` --
  inside the resilient-classifier ladder;
* NaN-corrupted similarity scores / feature matrices
  (:func:`corrupt_with_nan`), which the numeric guards must catch;
* simulated process kills (:class:`SimulatedKill`), a ``BaseException``
  that -- like a real ``SIGKILL`` -- must *not* be absorbed by the
  per-repetition isolation, leaving the journal with the completed
  prefix only.

Determinism is the point: a plan says exactly where each fault fires, so
a test that kills a run "after repetition k" does so on every machine.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

import numpy as np

from repro.core.api import Matcher
from repro.data.model import Dataset
from repro.data.pairs import LabeledPair, PairSet
from repro.errors import ReproError, TrainingDivergedError


class FaultInjected(ReproError):
    """An exception deliberately raised by the fault harness."""


class SimulatedKill(BaseException):
    """A simulated ``SIGKILL``.

    Deliberately **not** an :class:`Exception`: per-repetition failure
    isolation catches ``Exception`` only, so this propagates straight
    out of the runner -- exactly like a killed process -- while the
    journal keeps everything completed so far.
    """


def corrupt_with_nan(
    array: np.ndarray, fraction: float = 0.1, rng: np.random.Generator | None = None
) -> np.ndarray:
    """A copy of ``array`` with ``fraction`` of its entries set to NaN.

    At least one entry is corrupted whenever the array is non-empty, so
    a guard under test can never pass by luck.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    corrupted = np.array(array, dtype=np.float64, copy=True)
    if corrupted.size == 0:
        return corrupted
    count = max(1, int(round(fraction * corrupted.size)))
    positions = rng.choice(corrupted.size, size=min(count, corrupted.size), replace=False)
    flat = corrupted.reshape(-1)
    flat[positions] = np.nan
    return corrupted


class AlwaysDivergingClassifier:
    """A primary classifier whose training always diverges.

    Plug into ``ResilientClassifier(primary_factory=AlwaysDivergingClassifier)``
    to force the ladder all the way down to the classical fallback.
    """

    def __init__(self, config=None) -> None:
        self.config = config
        self.fit_calls = 0

    def fit(self, features, labels):
        self.fit_calls += 1
        raise TrainingDivergedError("injected divergence (fault harness)")

    def match_scores(self, features):  # pragma: no cover - never fitted
        raise AssertionError("a diverging classifier never scores")


@dataclass(frozen=True)
class FaultPlan:
    """Where and how faults fire, keyed by repetition index.

    Parameters
    ----------
    fail_attempts:
        ``{repetition: n}`` -- the first ``n`` attempts of that
        repetition raise :class:`FaultInjected` (so ``n=1`` with one
        retry allowed tests recovery; ``n`` >= max attempts tests
        exhaustion).
    kill_before:
        Repetitions that raise :class:`SimulatedKill` before any work --
        "the process died right as repetition k started".
    diverge_on:
        Repetitions whose ``fit`` raises
        :class:`~repro.errors.TrainingDivergedError` on every attempt.
    nan_scores_on:
        Repetitions whose similarity scores come back NaN-corrupted,
        which the runner's numeric guard must turn into a failure.
    """

    fail_attempts: Mapping[int, int] = field(default_factory=dict)
    kill_before: frozenset[int] = frozenset()
    diverge_on: frozenset[int] = frozenset()
    nan_scores_on: frozenset[int] = frozenset()

    @classmethod
    def failing(cls, *repetitions: int, attempts: int = 10**9) -> "FaultPlan":
        """A plan where the given repetitions always fail."""
        return cls(fail_attempts={rep: attempts for rep in repetitions})

    @classmethod
    def kill_at(cls, repetition: int) -> "FaultPlan":
        """A plan that simulates a process kill as ``repetition`` starts."""
        return cls(kill_before=frozenset({repetition}))


class FaultyMatcher(Matcher):
    """Wraps any matcher and injects the faults of a :class:`FaultPlan`.

    The runner announces ``(repetition, attempt)`` through
    ``notify_repetition`` before each attempt; the wrapper uses those
    coordinates to decide which fault (if any) to fire, and keeps an
    ``injected`` log of ``(repetition, attempt, kind)`` triples plus an
    ``executed_repetitions`` set so tests can assert exactly what ran.
    """

    def __init__(self, inner: Matcher, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan
        self.name = inner.name
        self.is_supervised = inner.is_supervised
        self.threshold = inner.threshold
        self.injected: list[tuple[int, int, str]] = []
        self.executed_repetitions: set[int] = set()
        self._repetition = -1
        self._attempt = 1

    def notify_repetition(self, repetition: int, attempt: int) -> None:
        """Runner hook: the coordinates of the attempt about to run."""
        self._repetition = repetition
        self._attempt = attempt
        self.executed_repetitions.add(repetition)
        if repetition in self.plan.kill_before:
            self.injected.append((repetition, attempt, "kill"))
            raise SimulatedKill(f"simulated kill before repetition {repetition}")
        inner_notify = getattr(self.inner, "notify_repetition", None)
        if inner_notify is not None:
            inner_notify(repetition, attempt)

    def _maybe_fail(self, stage: str) -> None:
        budget = self.plan.fail_attempts.get(self._repetition, 0)
        if self._attempt <= budget:
            self.injected.append((self._repetition, self._attempt, "fail"))
            raise FaultInjected(
                f"injected {stage} failure at repetition {self._repetition}, "
                f"attempt {self._attempt}"
            )

    def prepare(self, dataset: Dataset) -> None:
        self.inner.prepare(dataset)

    def fit(self, dataset: Dataset, training_pairs: PairSet) -> None:
        self._maybe_fail("fit")
        if self._repetition in self.plan.diverge_on:
            self.injected.append((self._repetition, self._attempt, "diverge"))
            raise TrainingDivergedError(
                f"injected divergence at repetition {self._repetition}"
            )
        self.inner.fit(dataset, training_pairs)

    def score_pairs(self, dataset: Dataset, pairs: list[LabeledPair]) -> np.ndarray:
        if not self.is_supervised:
            # Unsupervised matchers have no fit; inject here instead.
            self._maybe_fail("score")
        scores = self.inner.score_pairs(dataset, pairs)
        if self._repetition in self.plan.nan_scores_on:
            self.injected.append((self._repetition, self._attempt, "nan"))
            scores = corrupt_with_nan(scores)
        return scores

    @property
    def last_degradation(self):
        """Pass through the wrapped matcher's degradation report."""
        return getattr(self.inner, "last_degradation", None)
