"""GloVe-style embedding training: PPMI weighting + truncated SVD.

GloVe factorises a log-co-occurrence matrix; the count-based classic that
approximates the same geometry is the truncated SVD of the positive
pointwise-mutual-information (PPMI) matrix (Levy & Goldberg, 2014, showed
the two families are near-equivalent).  Using PPMI+SVD keeps training exact,
deterministic and fast in scipy, which matters for a reproducible test
suite -- the downstream matcher only needs the *geometry* (synonyms close,
non-synonyms far), not GloVe's specific loss.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import svds

from repro.embeddings.base import WordEmbeddings
from repro.embeddings.cooccurrence import CooccurrenceCounts
from repro.errors import ConfigurationError, DimensionError


def ppmi_matrix(counts: sparse.csr_matrix, shift: float = 0.0) -> sparse.csr_matrix:
    """Positive (shifted) PMI transform of a co-occurrence matrix.

    ``pmi(w, c) = log(#(w,c) * total / (#(w) * #(c)))`` clipped at zero,
    optionally shifted by ``log(k)`` to emulate negative sampling with
    ``k`` negatives (pass ``shift=log(k)``).
    """
    if counts.shape[0] != counts.shape[1]:
        raise DimensionError(f"co-occurrence matrix must be square, got {counts.shape}")
    coo = counts.tocoo()
    total = coo.data.sum()
    if total == 0:
        return sparse.csr_matrix(counts.shape, dtype=np.float64)
    row_sums = np.asarray(counts.sum(axis=1)).ravel()
    col_sums = np.asarray(counts.sum(axis=0)).ravel()
    with np.errstate(divide="ignore"):
        pmi = np.log(coo.data * total / (row_sums[coo.row] * col_sums[coo.col]))
    pmi -= shift
    keep = pmi > 0
    return sparse.csr_matrix(
        (pmi[keep], (coo.row[keep], coo.col[keep])), shape=counts.shape
    )


def train_glove_like(
    counts: CooccurrenceCounts,
    dimension: int = 300,
    shift: float = 0.0,
    eigenvalue_power: float = 0.5,
    anisotropy: float = 0.0,
    seed: int = 0,
) -> WordEmbeddings:
    """Train embeddings from co-occurrence counts via PPMI + truncated SVD.

    Parameters
    ----------
    counts:
        Output of :func:`repro.embeddings.cooccurrence.build_cooccurrence`.
    dimension:
        Embedding dimensionality.  Capped at ``vocab_size - 1`` (an svds
        requirement); rows are zero-padded back up to ``dimension`` so the
        caller always receives the dimensionality it asked for, matching the
        fixed 300-d feature layout of the paper.
    shift:
        PPMI shift (``log k``), 0 for plain PPMI.
    eigenvalue_power:
        Power applied to the singular values when forming word vectors;
        0.5 (symmetric split) is the standard choice that best matches
        GloVe geometry.
    anisotropy:
        Strength of the common component added to every word vector.
        Published embeddings are strongly anisotropic -- all vectors share
        a dominant "common discourse" direction (Arora et al., 2017), so
        the cosine of two *unrelated* words sits around
        ``anisotropy^2 / (1 + anisotropy^2)`` instead of 0.  Training
        SVD on a clean synthetic corpus yields isotropic vectors; this
        parameter restores the realistic noise floor.  0 disables it.
    seed:
        Seed for the svds starting vector, making training deterministic.
    """
    if dimension < 1:
        raise ConfigurationError(f"dimension must be >= 1, got {dimension}")
    vocab_size = len(counts.vocabulary)
    if vocab_size == 0:
        raise ConfigurationError("cannot train embeddings on an empty vocabulary")
    matrix = ppmi_matrix(counts.matrix, shift=shift)
    rank = min(dimension, vocab_size - 1)
    if rank < 1 or matrix.nnz == 0:
        vectors = np.zeros((vocab_size, dimension))
        return WordEmbeddings(counts.vocabulary, vectors)
    rng = np.random.default_rng(seed)
    v0 = rng.standard_normal(vocab_size)
    u, s, _ = svds(matrix.astype(np.float64), k=rank, v0=v0)
    # svds returns singular values in ascending order; flip to descending.
    order = np.argsort(s)[::-1]
    u, s = u[:, order], s[order]
    vectors = u * (s ** eigenvalue_power)
    # Fix the sign convention so training is fully deterministic: make the
    # largest-magnitude entry of every component positive.
    for j in range(vectors.shape[1]):
        column = vectors[:, j]
        pivot = np.argmax(np.abs(column))
        if column[pivot] < 0:
            vectors[:, j] = -column
    if vectors.shape[1] < dimension:
        pad = np.zeros((vocab_size, dimension - vectors.shape[1]))
        vectors = np.hstack([vectors, pad])
    if anisotropy > 0.0:
        norms = np.linalg.norm(vectors, axis=1)
        mean_norm = float(norms[norms > 0].mean()) if (norms > 0).any() else 1.0
        common = np.ones(dimension) / np.sqrt(dimension)
        vectors = vectors + anisotropy * mean_norm * common
    return WordEmbeddings(counts.vocabulary, vectors)
