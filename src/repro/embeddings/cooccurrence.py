"""Windowed word co-occurrence counting over a tokenised corpus.

This is the statistics-gathering half of GloVe: for every pair of words
appearing within ``window`` tokens of each other we accumulate a weight of
``1 / distance``, the same harmonic weighting GloVe uses.  Counts are stored
in a scipy CSR matrix so even large synthetic corpora stay cheap.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.embeddings.vocab import Vocabulary
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CooccurrenceCounts:
    """Symmetric co-occurrence matrix plus the vocabulary indexing it."""

    vocabulary: Vocabulary
    matrix: sparse.csr_matrix

    @property
    def nnz(self) -> int:
        """Number of stored (non-zero) co-occurrence cells."""
        return self.matrix.nnz

    def count(self, a: str, b: str) -> float:
        """Co-occurrence weight between two words (0 when either is unknown)."""
        ia = self.vocabulary.get(a.lower())
        ib = self.vocabulary.get(b.lower())
        if ia is None or ib is None:
            return 0.0
        return float(self.matrix[ia, ib])


def build_cooccurrence(
    sentences: Iterable[list[str]],
    vocabulary: Vocabulary | None = None,
    window: int = 4,
) -> CooccurrenceCounts:
    """Count harmonic-weighted co-occurrences within ``window`` tokens.

    Parameters
    ----------
    sentences:
        Tokenised sentences; tokens are lower-cased before counting.
    vocabulary:
        Optional pre-built vocabulary.  When omitted, one is built from the
        sentences themselves (frequency-ordered).  Tokens missing from an
        explicit vocabulary are skipped.
    window:
        Maximum distance between co-occurring tokens.
    """
    if window < 1:
        raise ConfigurationError(f"window must be >= 1, got {window}")
    materialized = [[token.lower() for token in sentence] for sentence in sentences]
    if vocabulary is None:
        vocabulary = Vocabulary.from_corpus(materialized)
    size = len(vocabulary)
    accumulator: dict[tuple[int, int], float] = {}
    for sentence in materialized:
        ids = [vocabulary.get(token) for token in sentence]
        for position, center in enumerate(ids):
            if center is None:
                continue
            upper = min(len(ids), position + window + 1)
            for offset in range(position + 1, upper):
                context = ids[offset]
                if context is None:
                    continue
                weight = 1.0 / (offset - position)
                accumulator[(center, context)] = (
                    accumulator.get((center, context), 0.0) + weight
                )
                accumulator[(context, center)] = (
                    accumulator.get((context, center), 0.0) + weight
                )
    if accumulator:
        keys = np.array(list(accumulator.keys()), dtype=np.int64)
        values = np.array(list(accumulator.values()), dtype=np.float64)
        matrix = sparse.csr_matrix(
            (values, (keys[:, 0], keys[:, 1])), shape=(size, size)
        )
    else:
        matrix = sparse.csr_matrix((size, size), dtype=np.float64)
    return CooccurrenceCounts(vocabulary=vocabulary, matrix=matrix)
