"""Synonym lexicon: which domain words mean the same thing.

The predictive power the paper gets from pre-trained GloVe is that words
such as "mp", "megapixels" and "resolution" are close in embedding space
even though their surface strings are dissimilar.  The lexicon is the
ground-truth source of that semantic structure in this reproduction:

* the corpus generator emits sentences in which members of a synonym group
  co-occur with the same context words, so the trained embeddings place
  them near each other;
* the dataset generators draw heterogeneous property names from the same
  groups, so matching properties have dissimilar strings but similar
  embeddings -- exactly the regime the paper studies;
* the AML baseline uses it as its "background knowledge resource"
  (the role WordNet plays in the original tool).

Crucially, the *matcher under test never sees the lexicon*: LEAPME only
consumes the trained embedding matrix, as it would consume GloVe.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Mapping
from pathlib import Path

from repro.errors import DataError
from repro.ioutils import atomic_write_text


class SynonymLexicon:
    """A set of disjoint synonym groups over lower-cased words."""

    def __init__(self, groups: Iterable[Iterable[str]] = ()) -> None:
        self._groups: list[frozenset[str]] = []
        self._group_of: dict[str, int] = {}
        for group in groups:
            self.add_group(group)

    def add_group(self, members: Iterable[str]) -> int:
        """Add a synonym group; returns its id.

        Words are lower-cased.  A word may belong to at most one group;
        re-adding a known word raises :class:`DataError` because overlapping
        groups would make the generated semantics ambiguous.
        """
        normalized = frozenset(word.lower() for word in members)
        if not normalized:
            raise DataError("synonym group must not be empty")
        for word in normalized:
            if word in self._group_of:
                raise DataError(f"word {word!r} already belongs to a synonym group")
        group_id = len(self._groups)
        self._groups.append(normalized)
        for word in normalized:
            self._group_of[word] = group_id
        return group_id

    def group_of(self, word: str) -> int | None:
        """Id of the group containing ``word`` (case-insensitive), or None."""
        return self._group_of.get(word.lower())

    def synonyms(self, word: str) -> frozenset[str]:
        """All words in the same group as ``word``, including itself.

        Unknown words are their own singleton group.
        """
        group_id = self.group_of(word)
        if group_id is None:
            return frozenset({word.lower()})
        return self._groups[group_id]

    def are_synonyms(self, a: str, b: str) -> bool:
        """True when ``a`` and ``b`` share a group or are equal ignoring case."""
        if a.lower() == b.lower():
            return True
        group_a = self.group_of(a)
        return group_a is not None and group_a == self.group_of(b)

    def groups(self) -> list[frozenset[str]]:
        """All groups (copies of internal state)."""
        return list(self._groups)

    def vocabulary(self) -> set[str]:
        """Every word known to the lexicon."""
        return set(self._group_of)

    def __len__(self) -> int:
        return len(self._groups)

    def merged_with(self, other: "SynonymLexicon") -> "SynonymLexicon":
        """Union of two lexicons; overlapping groups are unioned transitively."""
        merged = SynonymLexicon()
        pending = [set(group) for group in self._groups]
        pending.extend(set(group) for group in other._groups)
        # Union-find style merge of any groups sharing a word.
        changed = True
        while changed:
            changed = False
            result: list[set[str]] = []
            for group in pending:
                for existing in result:
                    if existing & group:
                        existing |= group
                        changed = True
                        break
                else:
                    result.append(set(group))
            pending = result
        for group in pending:
            merged.add_group(group)
        return merged

    def to_dict(self) -> dict[str, list[list[str]]]:
        """JSON-serialisable representation."""
        return {"groups": [sorted(group) for group in self._groups]}

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "SynonymLexicon":
        """Inverse of :meth:`to_dict`."""
        groups = payload.get("groups")
        if not isinstance(groups, list):
            raise DataError("lexicon payload must contain a 'groups' list")
        return cls(groups)  # type: ignore[arg-type]

    def save(self, path: str | Path) -> None:
        """Write the lexicon as JSON (atomically; REP002)."""
        atomic_write_text(path, json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load(cls, path: str | Path) -> "SynonymLexicon":
        """Read a lexicon written by :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text()))
