"""Deterministic feature-hashing embeddings.

A semantics-free control model: every word gets a pseudo-random unit
vector derived from a stable hash of its characters.  Different words are
near-orthogonal in expectation, so synonym structure is invisible -- using
these embeddings in LEAPME isolates how much of its performance comes
from embedding *semantics* rather than from merely having 300 extra
features.  Also handy wherever a cheap, corpus-free embedding is needed
(e.g. property-based tests).
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.embeddings.base import WordEmbeddings
from repro.embeddings.vocab import Vocabulary
from repro.errors import ConfigurationError


def _hash_seed(word: str, salt: int) -> int:
    """Stable 64-bit seed for a word (Python's hash() is randomised)."""
    digest = hashlib.sha256(f"{salt}:{word}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def hash_vector(word: str, dimension: int, salt: int = 0) -> np.ndarray:
    """Unit-norm pseudo-random vector for ``word``; stable across processes."""
    rng = np.random.default_rng(_hash_seed(word.lower(), salt))
    vector = rng.standard_normal(dimension)
    norm = np.linalg.norm(vector)
    return vector / norm


def hash_embeddings(
    words: list[str],
    dimension: int = 300,
    salt: int = 0,
) -> WordEmbeddings:
    """Build a :class:`WordEmbeddings` over ``words`` via feature hashing.

    >>> emb = hash_embeddings(["mp", "megapixels"], dimension=16)
    >>> abs(emb.cosine_similarity("mp", "megapixels")) < 0.9
    True
    """
    if dimension < 1:
        raise ConfigurationError(f"dimension must be >= 1, got {dimension}")
    vocabulary = Vocabulary(word.lower() for word in words)
    vectors = np.stack(
        [hash_vector(token, dimension, salt) for token in vocabulary.tokens()]
    ) if len(vocabulary) else np.zeros((0, dimension))
    return WordEmbeddings(vocabulary, vectors)
