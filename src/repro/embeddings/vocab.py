"""Token <-> index vocabulary shared by all embedding models."""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Iterator

from repro.errors import VocabularyError


class Vocabulary:
    """A bidirectional mapping between tokens and dense integer ids.

    Ids are assigned in insertion order, so building a vocabulary from the
    same token stream always produces the same mapping -- a requirement for
    reproducible embedding training.
    """

    def __init__(self, tokens: Iterable[str] = ()) -> None:
        self._index: dict[str, int] = {}
        self._tokens: list[str] = []
        for token in tokens:
            self.add(token)

    def add(self, token: str) -> int:
        """Insert ``token`` if new and return its id."""
        existing = self._index.get(token)
        if existing is not None:
            return existing
        token_id = len(self._tokens)
        self._index[token] = token_id
        self._tokens.append(token)
        return token_id

    def id_of(self, token: str) -> int:
        """Return the id of ``token`` or raise :class:`VocabularyError`."""
        try:
            return self._index[token]
        except KeyError:
            raise VocabularyError(f"token not in vocabulary: {token!r}") from None

    def get(self, token: str, default: int | None = None) -> int | None:
        """Return the id of ``token`` or ``default`` when unknown."""
        return self._index.get(token, default)

    def token_of(self, token_id: int) -> str:
        """Return the token with the given id."""
        try:
            return self._tokens[token_id]
        except IndexError:
            raise VocabularyError(f"id out of range: {token_id}") from None

    def __contains__(self, token: str) -> bool:
        return token in self._index

    def __len__(self) -> int:
        return len(self._tokens)

    def __iter__(self) -> Iterator[str]:
        return iter(self._tokens)

    def tokens(self) -> list[str]:
        """All tokens in id order (a copy; safe to mutate)."""
        return list(self._tokens)

    @classmethod
    def from_corpus(
        cls,
        sentences: Iterable[list[str]],
        min_count: int = 1,
        max_size: int | None = None,
    ) -> "Vocabulary":
        """Build a frequency-filtered vocabulary from tokenised sentences.

        Tokens are ordered by descending frequency (ties broken
        alphabetically) so truncating with ``max_size`` keeps the most
        frequent words, mirroring how published embedding vocabularies are
        constructed.
        """
        counts: Counter[str] = Counter()
        for sentence in sentences:
            counts.update(sentence)
        ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
        kept = [token for token, count in ranked if count >= min_count]
        if max_size is not None:
            kept = kept[:max_size]
        return cls(kept)
