"""Synthetic domain-corpus generator for embedding training.

Pre-trained GloVe encodes the fact that "megapixels", "mp" and
"resolution" appear in similar contexts on the web.  Without network
access we recreate that distributional structure directly.  Three word
populations are emitted:

* **group members** -- for each synonym group the generator invents a
  pool of *context words* (stable per group under the seed) and emits
  sentences combining a random group member with samples from the
  group's pool, so members land near each other after training;
* **soft words** -- ambiguous words ("resolution" relates to both camera
  megapixels and screen dots) are anchored in sentences whose contexts
  are drawn from a *mixture* of their related groups' pools, yielding a
  vector moderately similar to several groups, exactly as GloVe places
  polysemous words;
* **singletons** -- every other surface word (junk attribute tokens,
  name decorations, free-text vocabulary) gets its own private context
  pool and hence a distinctive vector far from everything, instead of
  the out-of-vocabulary zero vector.

A ``contamination`` fraction of context slots is filled from unrelated
pools so that similarities do not saturate at exactly 1.0.  The
generator never reveals which words were grouped -- downstream code sees
only sentences, exactly as GloVe training sees only web text.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping, Sequence

import numpy as np

from repro.embeddings.lexicon import SynonymLexicon
from repro.errors import ConfigurationError

_FILLER_WORDS = (
    "the", "a", "of", "with", "for", "and", "this", "that", "is", "has",
    "product", "item", "value", "new", "best",
    "great", "top", "good", "offers", "includes", "supports",
)


class CorpusGenerator:
    """Generate tokenised sentences exhibiting a domain's semantics.

    Parameters
    ----------
    lexicon:
        Synonym groups whose members must end up with similar embeddings.
    soft_words:
        ``{word: related group ids}`` for ambiguous words that should end
        up moderately similar to several groups.
    singletons:
        Words that should receive distinctive stand-alone vectors.
    context_pool_size:
        Number of distinct context words invented per group.  Larger pools
        make the co-occurrence signal softer (more GloVe-like noise).
    words_per_sentence:
        Sentence length; contexts are drawn within a window during
        co-occurrence counting so this bounds the effective window.
    contamination:
        Probability that a context slot is filled from a *different*
        group's pool (or global filler) instead of the anchor group's.
    namespace:
        Prefix applied to invented context-pool words.  When corpora from
        several domains are concatenated (the transfer-learning setting),
        distinct namespaces stop "group 0 of cameras" and "group 0 of
        phones" from accidentally sharing contexts.
    seed:
        Seed for the deterministic :class:`numpy.random.Generator`.
    """

    def __init__(
        self,
        lexicon: SynonymLexicon,
        soft_words: Mapping[str, Sequence[int]] | None = None,
        singletons: Sequence[str] = (),
        context_pool_size: int = 12,
        words_per_sentence: int = 8,
        contamination: float = 0.3,
        namespace: str = "",
        seed: int = 0,
    ) -> None:
        if context_pool_size < 2:
            raise ConfigurationError("context_pool_size must be at least 2")
        if words_per_sentence < 3:
            raise ConfigurationError("words_per_sentence must be at least 3")
        if not 0.0 <= contamination < 1.0:
            raise ConfigurationError("contamination must be in [0, 1)")
        self._lexicon = lexicon
        self._soft_words = {
            word.lower(): tuple(groups) for word, groups in (soft_words or {}).items()
        }
        n_groups = len(lexicon.groups())
        for word, groups in self._soft_words.items():
            bad = [g for g in groups if not 0 <= g < n_groups]
            if bad:
                raise ConfigurationError(
                    f"soft word {word!r} references unknown groups {bad}"
                )
        self._singletons = tuple(dict.fromkeys(w.lower() for w in singletons))
        self._words_per_sentence = words_per_sentence
        self._contamination = contamination
        self._rng = np.random.default_rng(seed)
        prefix = f"{namespace}_" if namespace else ""
        self._context_pools = [
            [f"{prefix}ctx{gid}w{k}" for k in range(context_pool_size)]
            for gid in range(n_groups)
        ]
        self._singleton_pools = {
            word: [f"{prefix}sgl{idx}w{k}" for k in range(context_pool_size)]
            for idx, word in enumerate(self._singletons)
        }
        self._group_turns: dict[int, int] = {}

    def _pool_word(self, pool: list[str]) -> str:
        return pool[int(self._rng.integers(len(pool)))]

    def _context_word(self, pool: list[str]) -> str:
        """Draw one context word, possibly contaminated from elsewhere."""
        if self._rng.random() < self._contamination:
            if self._rng.random() < 0.5 or len(self._context_pools) < 2:
                return _FILLER_WORDS[self._rng.integers(len(_FILLER_WORDS))]
            other = int(self._rng.integers(len(self._context_pools)))
            pool = self._context_pools[other]
        return self._pool_word(pool)

    def _sentence(self, anchor: str, pools: list[list[str]]) -> list[str]:
        """One sentence around ``anchor`` with contexts from ``pools``."""
        n_context = self._words_per_sentence - 2
        context = []
        for _ in range(n_context):
            pool = pools[int(self._rng.integers(len(pools)))]
            context.append(self._context_word(pool))
        filler = _FILLER_WORDS[self._rng.integers(len(_FILLER_WORDS))]
        return context[: n_context // 2] + [anchor] + context[n_context // 2 :] + [filler]

    def _sentence_for_group(self, group_id: int) -> list[str]:
        # Anchors rotate round-robin through the group so every member is
        # guaranteed corpus coverage (random choice can starve a member of
        # a large group, which would wrongly leave it out-of-vocabulary).
        members = sorted(self._lexicon.groups()[group_id])
        turn = self._group_turns.get(group_id, 0)
        self._group_turns[group_id] = turn + 1
        anchor = members[turn % len(members)]
        return self._sentence(anchor, [self._context_pools[group_id]])

    def _sentence_for_soft(self, word: str) -> list[str]:
        pools = [self._context_pools[g] for g in self._soft_words[word]]
        return self._sentence(word, pools)

    def _sentence_for_singleton(self, word: str) -> list[str]:
        return self._sentence(word, [self._singleton_pools[word]])

    def _background_sentence(self) -> list[str]:
        return [
            _FILLER_WORDS[self._rng.integers(len(_FILLER_WORDS))]
            for _ in range(self._words_per_sentence)
        ]

    def sentences(
        self,
        sentences_per_group: int = 60,
        background_fraction: float = 0.2,
    ) -> Iterator[list[str]]:
        """Yield the full synthetic corpus.

        ``sentences_per_group`` sentences are produced for every synonym
        group, soft word and singleton, interleaved with background noise
        sentences making up ``background_fraction`` of the total.
        """
        if not 0.0 <= background_fraction < 1.0:
            raise ConfigurationError("background_fraction must be in [0, 1)")
        n_groups = len(self._lexicon.groups())
        anchors = n_groups + len(self._soft_words) + len(self._singletons)
        total_anchor_sentences = anchors * sentences_per_group
        n_background = int(
            total_anchor_sentences * background_fraction / (1.0 - background_fraction)
        )
        for _ in range(sentences_per_group):
            for group_id in range(n_groups):
                yield self._sentence_for_group(group_id)
            for word in self._soft_words:
                yield self._sentence_for_soft(word)
            for word in self._singletons:
                yield self._sentence_for_singleton(word)
        for _ in range(n_background):
            yield self._background_sentence()

    def corpus(self, sentences_per_group: int = 60) -> list[list[str]]:
        """Materialise :meth:`sentences` into a list."""
        return list(self.sentences(sentences_per_group=sentences_per_group))
