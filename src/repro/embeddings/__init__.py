"""Word-embedding substrate (the paper's pre-trained GloVe substitute).

The paper uses 300-dimensional GloVe vectors pre-trained on Common Crawl.
Operating offline, this package instead *trains* embeddings from scratch:

* :mod:`repro.embeddings.vocab` -- token <-> index vocabulary.
* :mod:`repro.embeddings.lexicon` -- synonym lexicon describing which
  domain words are semantically equivalent ("mp" ~ "megapixels").
* :mod:`repro.embeddings.corpus` -- synthetic domain-corpus generator whose
  sentences make synonym-group members share contexts.
* :mod:`repro.embeddings.cooccurrence` -- windowed co-occurrence counting.
* :mod:`repro.embeddings.glove_like` -- PPMI + truncated-SVD embeddings,
  the classic count-based approximation of GloVe/word2vec geometry.
* :mod:`repro.embeddings.hashing` -- deterministic feature-hashing
  embeddings used as a semantics-free control.
* :mod:`repro.embeddings.base` -- the :class:`WordEmbeddings` container
  with the paper's out-of-vocabulary policy (unknown word -> zero vector)
  and average-of-words text encoding.
* :mod:`repro.embeddings.sif` -- SIF-weighted text encoding (smooth
  inverse frequency + common-direction removal, Arora et al. 2017).
* :mod:`repro.embeddings.store` -- ``.npz`` persistence.
"""

from repro.embeddings.base import WordEmbeddings
from repro.embeddings.cooccurrence import CooccurrenceCounts, build_cooccurrence
from repro.embeddings.corpus import CorpusGenerator
from repro.embeddings.glove_like import train_glove_like
from repro.embeddings.hashing import hash_embeddings
from repro.embeddings.lexicon import SynonymLexicon
from repro.embeddings.sif import SifEncoder
from repro.embeddings.store import load_embeddings, save_embeddings
from repro.embeddings.vocab import Vocabulary

__all__ = [
    "WordEmbeddings",
    "Vocabulary",
    "SynonymLexicon",
    "CorpusGenerator",
    "CooccurrenceCounts",
    "build_cooccurrence",
    "train_glove_like",
    "hash_embeddings",
    "SifEncoder",
    "save_embeddings",
    "load_embeddings",
]
