"""Persistence for trained embeddings (``.npz`` with an embedded vocab)."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.embeddings.base import WordEmbeddings
from repro.embeddings.vocab import Vocabulary
from repro.errors import DataError
from repro.ioutils import atomic_save


def save_embeddings(embeddings: WordEmbeddings, path: str | Path) -> None:
    """Write embeddings to a compressed ``.npz`` file.

    The vocabulary is stored as a unicode array aligned with the vector
    rows, so a single file round-trips the whole model.  The write is
    atomic: a kill mid-save never leaves a truncated archive.
    """
    tokens = np.array(embeddings.vocabulary.tokens(), dtype=np.str_)
    atomic_save(
        Path(path),
        lambda temp: np.savez_compressed(temp, tokens=tokens, vectors=embeddings.vectors),
        suffix=".npz",
    )


def load_embeddings(path: str | Path) -> WordEmbeddings:
    """Read embeddings written by :func:`save_embeddings`."""
    path = Path(path)
    if not path.exists():
        raise DataError(f"embedding file not found: {path}")
    with np.load(path, allow_pickle=False) as payload:
        if "tokens" not in payload or "vectors" not in payload:
            raise DataError(f"not an embedding file (missing arrays): {path}")
        tokens = [str(token) for token in payload["tokens"]]
        vectors = payload["vectors"]
    # Loaded vectors feed fork-COW prebuilds (schema + columns shipped to
    # worker processes) and fingerprint-keyed feature caches; freezing
    # them guarantees no consumer can silently desync those copies.
    vectors.setflags(write=False)
    return WordEmbeddings(Vocabulary(tokens), vectors)
