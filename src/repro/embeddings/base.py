"""The :class:`WordEmbeddings` container and text encoding.

Implements the paper's embedding-lookup semantics exactly:

* each known word maps to a fixed vector;
* "unknown words are mapped to a vector filled with zeroes";
* "for each property value and name we determine the average embeddings of
  the individual words".
"""

from __future__ import annotations

import numpy as np

from repro.embeddings.vocab import Vocabulary
from repro.errors import DimensionError
from repro.text.tokenize import words


class WordEmbeddings:
    """A vocabulary plus an aligned ``(len(vocab), dim)`` vector matrix."""

    def __init__(self, vocabulary: Vocabulary, vectors: np.ndarray) -> None:
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2:
            raise DimensionError(f"vectors must be 2-D, got shape {vectors.shape}")
        if vectors.shape[0] != len(vocabulary):
            raise DimensionError(
                f"vector count {vectors.shape[0]} != vocabulary size {len(vocabulary)}"
            )
        self._vocabulary = vocabulary
        self._vectors = vectors

    @property
    def vocabulary(self) -> Vocabulary:
        """The vocabulary indexing the rows of :attr:`vectors`."""
        return self._vocabulary

    @property
    def vectors(self) -> np.ndarray:
        """The raw embedding matrix (not a copy; treat as read-only)."""
        return self._vectors

    @property
    def dimension(self) -> int:
        """Dimensionality of each word vector."""
        return self._vectors.shape[1]

    def __len__(self) -> int:
        return self._vectors.shape[0]

    def __contains__(self, word: str) -> bool:
        return word.lower() in self._vocabulary

    def vector(self, word: str) -> np.ndarray:
        """Vector of ``word`` (case-insensitive); zeros when unknown.

        This is the paper's out-of-vocabulary policy: "Unknown words are
        mapped to a vector filled with zeroes."
        """
        index = self._vocabulary.get(word.lower())
        if index is None:
            return np.zeros(self.dimension)
        return self._vectors[index]

    def embed_text(self, text: str) -> np.ndarray:
        """Average of the word vectors of ``text`` (Table I rows 4 and 6).

        Words are extracted with :func:`repro.text.tokenize.words`.  Text
        containing no words -- or only unknown words -- yields the zero
        vector, the neutral element of averaging.
        """
        tokens = words(text)
        if not tokens:
            return np.zeros(self.dimension)
        total = np.zeros(self.dimension)
        for token in tokens:
            total += self.vector(token)
        return total / len(tokens)

    def cosine_similarity(self, a: str, b: str) -> float:
        """Cosine similarity of two words' vectors (0.0 when either is zero)."""
        return cosine(self.vector(a), self.vector(b))

    def text_similarity(self, a: str, b: str) -> float:
        """Cosine similarity of the averaged text embeddings."""
        return cosine(self.embed_text(a), self.embed_text(b))

    def nearest(self, word: str, k: int = 5) -> list[tuple[str, float]]:
        """The ``k`` vocabulary words most cosine-similar to ``word``.

        The query word itself is excluded.  Useful for diagnostics and for
        asserting that synonym groups were learned.
        """
        query = self.vector(word)
        norm = np.linalg.norm(query)
        if norm == 0:
            return []
        norms = np.linalg.norm(self._vectors, axis=1)
        with np.errstate(divide="ignore", invalid="ignore"):
            scores = self._vectors @ query / (norms * norm)
        scores = np.nan_to_num(scores, nan=-1.0)
        own = self._vocabulary.get(word.lower())
        if own is not None:
            scores[own] = -np.inf
        top = np.argsort(scores)[::-1][:k]
        return [(self._vocabulary.token_of(int(i)), float(scores[i])) for i in top]


def cosine(u: np.ndarray, v: np.ndarray) -> float:
    """Cosine similarity with the zero-vector convention of the paper.

    Zero vectors (unknown text) have similarity 0 with everything,
    including other zero vectors -- the classifier must not be told two
    unknown values are identical.
    """
    norm_u = np.linalg.norm(u)
    norm_v = np.linalg.norm(v)
    if norm_u == 0.0 or norm_v == 0.0:
        return 0.0
    return float(np.dot(u, v) / (norm_u * norm_v))
