"""SIF text encoding: smooth inverse-frequency weighted averaging.

The paper averages word vectors uniformly.  Arora, Liang & Ma (2017)
showed that two cheap corrections make averaged embeddings markedly
better sentence representations:

1. weight each word by ``a / (a + p(word))`` where ``p`` is the word's
   corpus frequency -- frequent filler words ("the", "spec") contribute
   less;
2. remove the projection onto the corpus' *common discourse direction*
   (the first principal component of the text vectors) -- the same
   anisotropic component :func:`repro.embeddings.glove_like.train_glove_like`
   models explicitly.

:class:`SifEncoder` wraps a :class:`~repro.embeddings.base.WordEmbeddings`
with this scheme; it is API-compatible with the plain ``embed_text`` and
can be dropped into :class:`~repro.core.property_features.PropertyFeatureTable`
(see the ablation bench for the measured effect).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable

import numpy as np

from repro.embeddings.base import WordEmbeddings
from repro.errors import ConfigurationError
from repro.text.tokenize import words


class SifEncoder:
    """Weighted-average text encoder over an existing embedding space.

    Parameters
    ----------
    embeddings:
        The underlying word vectors.
    word_frequencies:
        ``{word: relative frequency}``; unseen words get the smallest
        observed frequency (maximum weight).  Build it from the training
        corpus via :meth:`frequencies_from_sentences` or from dataset
        text via :meth:`frequencies_from_texts`.
    a:
        The SIF smoothing constant; 1e-3 is the paper's default.
    """

    def __init__(
        self,
        embeddings: WordEmbeddings,
        word_frequencies: dict[str, float],
        a: float = 1e-3,
    ) -> None:
        if a <= 0:
            raise ConfigurationError(f"a must be positive, got {a}")
        if not word_frequencies:
            raise ConfigurationError("word_frequencies must not be empty")
        self.embeddings = embeddings
        self.a = a
        self._frequencies = {
            word.lower(): frequency for word, frequency in word_frequencies.items()
        }
        self._min_frequency = min(self._frequencies.values())
        self._common_direction: np.ndarray | None = None

    @property
    def dimension(self) -> int:
        """Dimensionality of the produced vectors."""
        return self.embeddings.dimension

    @staticmethod
    def frequencies_from_sentences(
        sentences: Iterable[list[str]],
    ) -> dict[str, float]:
        """Relative word frequencies from a tokenised corpus."""
        counts: Counter[str] = Counter()
        for sentence in sentences:
            counts.update(token.lower() for token in sentence)
        total = sum(counts.values())
        if total == 0:
            raise ConfigurationError("corpus is empty")
        return {word: count / total for word, count in counts.items()}

    @staticmethod
    def frequencies_from_texts(texts: Iterable[str]) -> dict[str, float]:
        """Relative word frequencies from raw strings (names, values)."""
        counts: Counter[str] = Counter()
        for text in texts:
            counts.update(words(text))
        total = sum(counts.values())
        if total == 0:
            raise ConfigurationError("no words in the given texts")
        return {word: count / total for word, count in counts.items()}

    def _weight(self, word: str) -> float:
        frequency = self._frequencies.get(word, self._min_frequency)
        return self.a / (self.a + frequency)

    def _weighted_average(self, text: str) -> np.ndarray:
        tokens = words(text)
        if not tokens:
            return np.zeros(self.dimension)
        total = np.zeros(self.dimension)
        weight_sum = 0.0
        for token in tokens:
            weight = self._weight(token)
            total += weight * self.embeddings.vector(token)
            weight_sum += weight
        if weight_sum == 0.0:
            return np.zeros(self.dimension)
        return total / weight_sum

    def fit_common_direction(self, texts: Iterable[str]) -> "SifEncoder":
        """Estimate the common discourse direction from sample texts.

        The first right singular vector of the stacked weighted-average
        vectors; subsequent :meth:`embed_text` calls remove its
        projection.  Skipped silently when fewer than two non-zero
        vectors are available.
        """
        matrix = np.stack([self._weighted_average(text) for text in texts])
        norms = np.linalg.norm(matrix, axis=1)
        matrix = matrix[norms > 0]
        if len(matrix) < 2:
            self._common_direction = None
            return self
        _, _, vt = np.linalg.svd(matrix, full_matrices=False)
        self._common_direction = vt[0]
        return self

    def embed_text(self, text: str) -> np.ndarray:
        """SIF-weighted average, minus the common-direction projection."""
        vector = self._weighted_average(text)
        if self._common_direction is not None:
            vector = vector - np.dot(vector, self._common_direction) * self._common_direction
        return vector

    # -- WordEmbeddings-compatible passthroughs ------------------------------
    def vector(self, word: str) -> np.ndarray:
        """Single-word lookup (unweighted; weights only matter in averages)."""
        return self.embeddings.vector(word)
