"""The repo-specific rules (REP001-REP011, REP016).

Each rule encodes one invariant the reproduction's correctness story
depends on, with a pointer to where the invariant came from; DESIGN.md
§8 is the prose counterpart of this module.  Rules only see one module
at a time -- cross-module reachability (e.g. a worker calling a journal
helper defined elsewhere) is approximated by intra-module call-graph
closure plus naming conventions, which is deliberately conservative:
the goal is catching regressions in the shapes this repo actually
uses, not a general-purpose type system.
"""

from __future__ import annotations

import ast

from repro.analysis.registry import (
    ROLE_LIBRARY,
    ROLE_SCRIPTS,
    ROLE_TESTS,
    Rule,
    register,
)

# ----------------------------------------------------------------------
# shared helpers


def _call_name(node: ast.Call) -> str | None:
    """Bare name of the called function (last attribute segment)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _constant_float(node: ast.AST) -> float | None:
    """The float value of a (possibly negated) float literal, else None."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        inner = _constant_float(node.operand)
        if inner is None:
            return None
        return -inner if isinstance(node.op, ast.USub) else inner
    if isinstance(node, ast.Constant) and type(node.value) is float:
        return node.value
    return None


def _function_table(tree: ast.Module) -> dict[str, ast.AST]:
    """Top-level (sync or async) function definitions by name."""
    return {
        node.name: node
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _worker_entry_names(ctx) -> set[str]:
    """Functions that run inside pool workers, per this repo's idioms.

    A function is a worker entry when it is submitted to an executor
    (``pool.submit(f, ...)``), installed as a pool ``initializer=`` or
    process ``target=``, or follows the ``*worker*`` naming convention
    used throughout :mod:`repro.evaluation.parallel`.
    """
    table = _function_table(ctx.tree)
    entries = {name for name in table if "worker" in name.lower()}
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in {"submit", "apply_async"}
            and node.args
            and isinstance(node.args[0], ast.Name)
        ):
            entries.add(node.args[0].id)
        for keyword in node.keywords:
            if keyword.arg in {"initializer", "target"} and isinstance(
                keyword.value, ast.Name
            ):
                entries.add(keyword.value.id)
    return {name for name in entries if name in table}


def _worker_closure(ctx) -> set[str]:
    """Worker entries plus every same-module function they reach."""
    table = _function_table(ctx.tree)
    closure = set(_worker_entry_names(ctx))
    frontier = list(closure)
    while frontier:
        current = frontier.pop()
        for node in ast.walk(table[current]):
            if isinstance(node, ast.Call):
                callee = None
                if isinstance(node.func, ast.Name):
                    callee = node.func.id
                if callee in table and callee not in closure:
                    closure.add(callee)
                    frontier.append(callee)
    return closure


# ----------------------------------------------------------------------
# REP001 -- unseeded / global RNG


#: numpy.random attributes that construct *seeded, local* generators.
_NP_RANDOM_ALLOWED = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "MT19937",
    "SFC64",
}
#: stdlib random attributes that are not global-state draws.
_STDLIB_RANDOM_ALLOWED = {"Random", "SystemRandom", "getstate", "setstate"}


@register
class UnseededRandomRule(Rule):
    """REP001: every random draw must come from a seeded local generator.

    The paper's protocol (25 repetitions x 9 feature configs, seeded
    source splits) is only reproducible because all randomness derives
    from ``default_rng((seed, repetition))`` streams.  A single
    ``np.random.shuffle`` or bare ``random.random()`` draws from hidden
    global state, breaks byte-identical parallel/serial equivalence,
    and silently shifts reported P/R/F1.
    """

    code = "REP001"
    name = "unseeded-random"
    summary = "global/unseeded RNG call; use a seeded np.random.default_rng stream"

    def visit_Call(self, node: ast.Call, ctx) -> None:
        target = ctx.resolve_call_target(node.func)
        if target is None:
            return
        if target.startswith("numpy.random."):
            attr = target.split(".")[-1]
            if attr not in _NP_RANDOM_ALLOWED:
                ctx.report(
                    self,
                    node,
                    f"global numpy RNG call '{target}' -- thread a seeded "
                    "np.random.default_rng generator instead",
                )
        elif target.startswith("random.") and target.count(".") == 1:
            attr = target.split(".")[-1]
            if attr not in _STDLIB_RANDOM_ALLOWED:
                ctx.report(
                    self,
                    node,
                    f"global stdlib RNG call '{target}' -- use "
                    "random.Random(seed) or a numpy generator",
                )


# ----------------------------------------------------------------------
# REP002 -- non-atomic writes


_WRITE_METHOD_NAMES = {"write_text", "write_bytes"}


def _mode_argument(node: ast.Call, position: int) -> str | None:
    """The literal mode string of an ``open`` call, if present."""
    for keyword in node.keywords:
        if keyword.arg == "mode":
            value = keyword.value
            return value.value if isinstance(value, ast.Constant) else None
    if len(node.args) > position:
        value = node.args[position]
        return value.value if isinstance(value, ast.Constant) else None
    return None


def _is_writing_mode(mode: str | None) -> bool:
    return mode is not None and any(flag in mode for flag in ("w", "a", "x", "+"))


@register
class NonAtomicWriteRule(Rule):
    """REP002: artifact writes must go through :mod:`repro.ioutils`.

    A process killed mid-write must never leave a corrupt or
    half-written file (PR 1's durability contract).  Direct
    ``open(..., "w")`` / ``Path.write_text`` truncates in place; the
    ioutils helpers write a temp sibling, fsync, and ``os.replace``.
    Tests are exempt (fixture files carry no durability contract), as
    is ioutils itself.
    """

    code = "REP002"
    name = "non-atomic-write"
    summary = "in-place file write; route through repro.ioutils atomic helpers"
    scopes = frozenset({ROLE_LIBRARY, ROLE_SCRIPTS})
    exempt_modules = ("repro.ioutils",)

    def visit_Call(self, node: ast.Call, ctx) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            if _is_writing_mode(_mode_argument(node, position=1)):
                ctx.report(
                    self,
                    node,
                    "non-atomic open(..., 'w') -- use repro.ioutils "
                    "(atomic_write_text/atomic_open_text/atomic_path)",
                )
        elif isinstance(func, ast.Attribute):
            if func.attr == "open" and _is_writing_mode(
                _mode_argument(node, position=0)
            ):
                ctx.report(
                    self,
                    node,
                    "non-atomic Path.open(...) write -- use repro.ioutils "
                    "(atomic_write_text/atomic_open_text/atomic_path)",
                )
            elif func.attr in _WRITE_METHOD_NAMES:
                ctx.report(
                    self,
                    node,
                    f"non-atomic Path.{func.attr}() -- use "
                    "repro.ioutils.atomic_write_text/atomic_write_bytes",
                )


# ----------------------------------------------------------------------
# REP003 -- wall-clock time for deadlines


@register
class WallClockRule(Rule):
    """REP003: deadlines and durations must not read the wall clock.

    ``time.time()`` jumps under NTP adjustment and DST; the supervisor's
    ``--cell-timeout`` watchdog and every timing report use
    ``time.monotonic()`` / ``perf_counter``.  Wall-clock reads are only
    legitimate for human-facing timestamps, which should say so with a
    ``# repro: noqa[REP003]`` suppression.
    """

    code = "REP003"
    name = "wall-clock-deadline"
    summary = "time.time() used; deadlines/durations need monotonic clocks"
    scopes = frozenset({ROLE_LIBRARY, ROLE_SCRIPTS})

    def visit_Call(self, node: ast.Call, ctx) -> None:
        if ctx.resolve_call_target(node.func) == "time.time":
            ctx.report(
                self,
                node,
                "wall-clock time.time() -- use time.monotonic() for "
                "deadlines or time.perf_counter() for durations",
            )


# ----------------------------------------------------------------------
# REP004 -- float equality


@register
class FloatEqualityRule(Rule):
    """REP004: float ``==``/``!=`` outside exact-zero guard idioms.

    Exact comparison against a nonzero float literal is a rounding bug
    waiting to happen (thresholds, learning rates).  Comparing against
    ``0.0`` stays allowed: ``if denom == 0.0`` guards a division by an
    exactly-representable sentinel and is idiomatic throughout the
    numeric stack (``scale[scale == 0.0] = 1.0``).  Tests are exempt --
    the suite deliberately asserts byte-identical reproducibility.
    """

    code = "REP004"
    name = "float-equality"
    summary = "float ==/!= against nonzero literal; use math.isclose or a tolerance"
    scopes = frozenset({ROLE_LIBRARY, ROLE_SCRIPTS})

    def visit_Compare(self, node: ast.Compare, ctx) -> None:
        left = node.left
        for op, right in zip(node.ops, node.comparators):
            if isinstance(op, (ast.Eq, ast.NotEq)):
                for side in (left, right):
                    value = _constant_float(side)
                    if value is not None and value != 0.0:
                        ctx.report(
                            self,
                            node,
                            f"exact float comparison against {value!r} -- "
                            "use math.isclose or an explicit tolerance",
                        )
                        break
            left = right


# ----------------------------------------------------------------------
# REP005 -- swallowed broad exception handlers


_BROAD_EXCEPTION_NAMES = {"Exception", "BaseException"}
_STRUCTURED_CALL_NAMES = {
    # logging
    "print", "log", "debug", "info", "warning", "warn", "error",
    "exception", "critical",
    # this repo's structured failure records
    "record", "record_failure", "record_skip", "record_quality",
    "quarantine", "fail", "add_note",
}


def _is_broad_handler(handler: ast.ExceptHandler) -> bool:
    kind = handler.type
    if kind is None:
        return True
    names = []
    if isinstance(kind, ast.Tuple):
        names = [elt.id for elt in kind.elts if isinstance(elt, ast.Name)]
    elif isinstance(kind, ast.Name):
        names = [kind.id]
    return any(name in _BROAD_EXCEPTION_NAMES for name in names)


@register
class SwallowedExceptionRule(Rule):
    """REP005: broad handlers must re-raise, record, or log.

    PR 1's failure-isolation contract: a repetition may fail, but the
    failure becomes a *structured record* (journal ``failed`` entry,
    retry bookkeeping) -- never a silent ``pass``.  A broad handler is
    fine when its body raises, references the bound exception (feeding
    it into structured handling), or calls a logging/record API.
    """

    code = "REP005"
    name = "swallowed-exception"
    summary = "broad except swallows the error; re-raise, record, or log it"
    scopes = frozenset({ROLE_LIBRARY, ROLE_SCRIPTS})

    def visit_ExceptHandler(self, node: ast.ExceptHandler, ctx) -> None:
        if not _is_broad_handler(node):
            return
        for statement in node.body:
            for child in ast.walk(statement):
                if isinstance(child, ast.Raise):
                    return
                if (
                    node.name is not None
                    and isinstance(child, ast.Name)
                    and child.id == node.name
                ):
                    return
                if isinstance(child, ast.Call):
                    name = _call_name(child)
                    if name in _STRUCTURED_CALL_NAMES:
                        return
        label = "bare except" if node.type is None else "broad except"
        ctx.report(
            self,
            node,
            f"{label} swallows the exception -- re-raise it, bind and "
            "record it as a structured failure, or log it",
        )


# ----------------------------------------------------------------------
# REP006 -- journal writes from worker code paths


_JOURNAL_METHOD_NAMES = {
    "fsync_append_line",
    "record_quality",
    "record_skip",
    "record_failure",
}


@register
class WorkerJournalWriteRule(Rule):
    """REP006: only the parent process writes the run journal.

    The journal is a single-writer, fsynced append stream; byte-level
    serial/parallel equivalence and torn-tail recovery both depend on
    it (DESIGN.md §6).  Any journal write lexically reachable from a
    worker entry point (a function submitted to an executor, a pool
    initializer, or a ``*worker*``-named helper) would introduce a
    second writer racing the parent's serial-order drain.
    """

    code = "REP006"
    name = "worker-journal-write"
    summary = "journal write reachable from worker-pool code; parent-only"
    scopes = frozenset({ROLE_LIBRARY})

    def end_module(self, ctx) -> None:
        closure = _worker_closure(ctx)
        if not closure:
            return
        table = _function_table(ctx.tree)
        for name in sorted(closure):
            for node in ast.walk(table[name]):
                if not isinstance(node, ast.Call):
                    continue
                if self._is_journal_write(node, ctx):
                    ctx.report(
                        self,
                        node,
                        f"journal write inside worker-reachable '{name}' -- "
                        "only the parent process may touch the journal",
                    )

    @staticmethod
    def _is_journal_write(node: ast.Call, ctx) -> bool:
        name = _call_name(node)
        if name in _JOURNAL_METHOD_NAMES:
            return True
        dotted = ctx.dotted_name(node.func) or (name or "")
        if "journal" in dotted.lower():
            return True
        if name == "append":
            receiver = node.func.value if isinstance(node.func, ast.Attribute) else None
            receiver_name = ctx.dotted_name(receiver) if receiver is not None else None
            if receiver_name is not None and "journal" in receiver_name.lower():
                return True
        return False


# ----------------------------------------------------------------------
# REP007 -- mutable default arguments


@register
class MutableDefaultRule(Rule):
    """REP007: mutable default arguments are shared across calls."""

    code = "REP007"
    name = "mutable-default"
    summary = "mutable default argument; default to None and create inside"

    def visit_FunctionDef(self, node, ctx) -> None:
        self._check(node, ctx)

    def visit_AsyncFunctionDef(self, node, ctx) -> None:
        self._check(node, ctx)

    def _check(self, node, ctx) -> None:
        defaults = list(node.args.defaults) + [
            default for default in node.args.kw_defaults if default is not None
        ]
        for default in defaults:
            if self._is_mutable(default):
                ctx.report(
                    self,
                    default,
                    f"mutable default argument in '{node.name}' -- one "
                    "object is shared by every call; default to None",
                )

    @staticmethod
    def _is_mutable(node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in {"list", "dict", "set", "bytearray"}
        return False


# ----------------------------------------------------------------------
# REP008 -- fork-unsafe module-level mutable state


_MUTATOR_METHOD_NAMES = {
    "append", "add", "update", "pop", "clear", "extend", "insert",
    "remove", "discard", "setdefault", "popitem",
}


@register
class ForkUnsafeStateRule(Rule):
    """REP008: worker-module globals may only be mutated by worker code.

    Fork children snapshot module state at pool creation.  A parent
    mutating a worker module's global afterwards diverges silently from
    its children (and a ``spawn`` child never sees it at all), so
    per-process caches like ``parallel._STATE`` must be written only by
    code that runs *inside* the worker.  Intentional parent-side
    exceptions (the pre-fork copy-on-write prebuild) must say so with a
    ``# repro: noqa[REP008]`` justification at the mutation site.
    """

    code = "REP008"
    name = "fork-unsafe-state"
    summary = "module-level mutable state mutated outside worker code paths"
    scopes = frozenset({ROLE_LIBRARY})

    def end_module(self, ctx) -> None:
        closure = _worker_closure(ctx)
        if not closure:
            return  # not a worker module
        tracked: set[str] = set()
        for node in ctx.tree.body:
            if isinstance(node, ast.Assign) and self._is_mutable_literal(node.value):
                tracked.update(
                    target.id
                    for target in node.targets
                    if isinstance(target, ast.Name)
                )
            elif (
                isinstance(node, ast.AnnAssign)
                and node.value is not None
                and isinstance(node.target, ast.Name)
                and self._is_mutable_literal(node.value)
            ):
                tracked.add(node.target.id)
        if not tracked:
            return
        for node in ast.walk(ctx.tree):
            name = self._mutated_global(node, tracked, ctx)
            if name is None:
                continue
            owner = ctx.top_level_function(node)
            if owner is None:
                continue  # import-time initialisation happens pre-fork
            if owner.name in closure:
                continue  # worker-side state, owned by the child process
            ctx.report(
                self,
                node,
                f"worker-module global '{name}' mutated in '{owner.name}', "
                "which is not a worker code path -- fork children will not "
                "see (or will race) this state",
            )

    @staticmethod
    def _is_mutable_literal(node: ast.AST) -> bool:
        if isinstance(node, (ast.Dict, ast.List, ast.Set)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in {"list", "dict", "set"}
        return False

    @staticmethod
    def _mutated_global(node: ast.AST, tracked: set[str], ctx) -> str | None:
        """The tracked global ``node`` mutates, or ``None``."""
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            receiver = node.func.value
            if (
                isinstance(receiver, ast.Name)
                and receiver.id in tracked
                and node.func.attr in _MUTATOR_METHOD_NAMES
            ):
                return receiver.id
        targets: list[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.Delete)):
            targets = node.targets if isinstance(node, ast.Delete) else [node.target]
        for target in targets:
            if (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)
                and target.value.id in tracked
            ):
                return target.value.id
        return None


# ----------------------------------------------------------------------
# REP009 -- impure feature stages


def _stage_classes(tree: ast.Module) -> list[ast.ClassDef]:
    """Classes deriving (directly, by name) from ``FeatureStage``."""
    found = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for base in node.bases:
            name = base.attr if isinstance(base, ast.Attribute) else (
                base.id if isinstance(base, ast.Name) else None
            )
            if name is not None and name.endswith("FeatureStage"):
                found.append(node)
                break
    return found


@register
class ImpureFeatureStageRule(Rule):
    """REP009: feature stages must be pure column producers.

    The pipeline's correctness contracts -- fingerprint-keyed row reuse,
    bit-identical ``add_source`` deltas, and fork-COW prebuilds shipping
    stage outputs to workers -- all assume a stage is a deterministic
    function of ``(dataset, embeddings)``.  A stage that imports
    ``repro.evaluation`` inverts the layering (evaluation orchestrates
    featurization, never the reverse) and drags the process-pool
    machinery into every featurizing process; a stage that writes files
    smuggles side effects into code the cache may silently *skip* on a
    fingerprint hit, so reruns stop being reproducible.
    """

    code = "REP009"
    name = "impure-feature-stage"
    summary = "feature-stage module imports evaluation or stage writes files"
    scopes = frozenset({ROLE_LIBRARY, ROLE_SCRIPTS})

    def end_module(self, ctx) -> None:
        stages = _stage_classes(ctx.tree)
        if not stages:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if self._is_evaluation_module(alias.name):
                        self._report_import(node, alias.name, ctx)
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if self._is_evaluation_module(module) or (
                    node.level > 0
                    and (module == "evaluation" or module.startswith("evaluation."))
                ):
                    self._report_import(node, module, ctx)
                elif module in {"repro", ""}:
                    for alias in node.names:
                        if alias.name == "evaluation":
                            self._report_import(node, "evaluation", ctx)
        for stage in stages:
            for node in ast.walk(stage):
                if isinstance(node, ast.Call):
                    self._check_write(stage, node, ctx)

    @staticmethod
    def _is_evaluation_module(name: str) -> bool:
        return name == "repro.evaluation" or name.startswith("repro.evaluation.")

    def _report_import(self, node: ast.AST, module: str, ctx) -> None:
        ctx.report(
            self,
            node,
            f"feature-stage module imports '{module}' -- stages are pure "
            "column producers; evaluation orchestrates them, never the "
            "reverse",
        )

    def _check_write(self, stage: ast.ClassDef, node: ast.Call, ctx) -> None:
        func = node.func
        writes = False
        if isinstance(func, ast.Name) and func.id == "open":
            writes = _is_writing_mode(_mode_argument(node, position=1))
        elif isinstance(func, ast.Attribute):
            if func.attr == "open":
                writes = _is_writing_mode(_mode_argument(node, position=0))
            elif func.attr in _WRITE_METHOD_NAMES | {
                "save", "savez", "savez_compressed", "savetxt", "to_csv",
                "atomic_write_text", "atomic_write_bytes", "atomic_save",
            }:
                writes = True
        if writes:
            ctx.report(
                self,
                node,
                f"file write inside feature stage '{stage.name}' -- stage "
                "output may be served from the fingerprint cache without "
                "running, so side effects are unreproducible",
            )


# ----------------------------------------------------------------------
# REP010 -- watch/ingest loop discipline


@register
class UnstoppableWatchLoopRule(Rule):
    """REP010: watch/ingest loops must be stop-aware and signal-friendly.

    A follow daemon lives inside an infinite loop, and two shapes turn
    that loop into a process you can only ``kill -9``: sleeping with
    ``time.sleep`` (uninterruptible by the stop event, so SIGTERM waits
    out the whole poll interval and shutdown drains nothing) and
    spinning ``while True`` without ever consulting a stop event (no
    clean shutdown path at all, so every stop is a crash and every
    restart a resume-from-kill).  The sanctioned idiom is the one
    :class:`repro.ingest.daemon.FollowDaemon` uses: pause with
    ``stop_event.wait(poll_interval)`` and gate iterations on
    ``stop_event.is_set()``.  The rule binds modules whose dotted name
    mentions ``ingest`` or ``watch`` -- loop discipline elsewhere (e.g.
    the pool supervisor) has its own shapes and its own tests.
    """

    code = "REP010"
    name = "unstoppable-watch-loop"
    summary = "watch/ingest loop sleeps uninterruptibly or spins without a stop check"
    scopes = frozenset({ROLE_LIBRARY})

    _MODULE_TAGS = ("ingest", "watch")
    _STOP_ATTRS = frozenset({"is_set", "wait"})

    def applies(self, role: str, module: str | None) -> bool:
        if not super().applies(role, module):
            return False
        # None covers inline snippets (fixtures); real library modules
        # under src/repro always resolve to a dotted name.
        return module is None or any(tag in module for tag in self._MODULE_TAGS)

    def visit_Call(self, node: ast.Call, ctx) -> None:
        if ctx.resolve_call_target(node.func) == "time.sleep":
            ctx.report(
                self,
                node,
                "time.sleep in watch/ingest code -- pause with "
                "stop_event.wait(interval) so SIGINT/SIGTERM can cut the "
                "wait short",
            )

    def visit_While(self, node: ast.While, ctx) -> None:
        if not (
            isinstance(node.test, ast.Constant) and bool(node.test.value)
        ):
            return
        for inner in node.body:
            for descendant in ast.walk(inner):
                if (
                    isinstance(descendant, ast.Call)
                    and isinstance(descendant.func, ast.Attribute)
                    and descendant.func.attr in self._STOP_ATTRS
                ):
                    return
        ctx.report(
            self,
            node,
            "unbounded 'while True' in watch/ingest code -- consult a "
            "stop event (stop_event.is_set() / stop_event.wait(...)) "
            "every iteration so the loop can shut down cleanly",
        )


# ----------------------------------------------------------------------
# REP011 -- serve/handler discipline: bounded queues, bounded blocking


@register
class UnboundedServeBlockingRule(Rule):
    """REP011: serve/handler code must bound every queue and every wait.

    The long-lived matching service (PR 8) extends REP010's loop
    discipline to the request-serving layer, where the failure modes
    are subtler: a handler that *queues without bound* turns overload
    into an OOM kill instead of deterministic 429 shedding, and a
    handler that *blocks without a deadline* pins a thread a stop event
    can never reclaim, so drain-then-exit hangs until ``kill -9``.
    Four shapes are flagged in modules whose dotted name mentions
    ``serve`` or ``handler``:

    * ``time.sleep`` -- pause with ``stop_event.wait(interval)``
      (inherited from REP010);
    * constant-truthy ``while`` loops that never consult a stop event
      (inherited from REP010);
    * unbounded queue construction: ``queue.Queue()`` /
      ``LifoQueue`` / ``PriorityQueue`` without a positive ``maxsize``,
      ``queue.SimpleQueue()`` (never bounded), and
      ``collections.deque()`` without ``maxlen`` -- admission depth
      must be a constructor-time bound, not a hope;
    * zero-argument blocking calls -- ``.accept()``, ``.get()``,
      ``.acquire()``, ``.wait()``, ``.join()`` with neither a timeout
      argument nor a keyword -- each blocks forever by default; pass a
      timeout/deadline (``cond.wait(remaining)``,
      ``thread.join(grace)``) or use a shape that polls
      (``serve_forever(poll_interval=...)``).

    The sanctioned idioms are the ones :mod:`repro.serve.admission` and
    :mod:`repro.serve.server` use: a ``Condition`` with
    deadline-sliced waits, counters bounded at admission, and
    ``stop_event.wait(slice)`` as the only pause.
    """

    code = "REP011"
    name = "unbounded-serve-blocking"
    summary = (
        "serve/handler code grows a queue without bound or blocks "
        "without a stop event or deadline"
    )
    scopes = frozenset({ROLE_LIBRARY})

    _MODULE_TAGS = ("serve", "handler")
    _STOP_ATTRS = frozenset({"is_set", "wait"})
    #: Queue constructors that accept (but may omit) a size bound.
    _SIZED_QUEUES = frozenset(
        {"queue.Queue", "queue.LifoQueue", "queue.PriorityQueue"}
    )
    #: Blocking-by-default methods; zero arguments means no deadline.
    _BLOCKING_ATTRS = frozenset({"accept", "get", "acquire", "wait", "join"})

    def applies(self, role: str, module: str | None) -> bool:
        if not super().applies(role, module):
            return False
        # None covers inline snippets (fixtures); real library modules
        # under src/repro always resolve to a dotted name.
        return module is None or any(tag in module for tag in self._MODULE_TAGS)

    def _check_queue_construction(self, node: ast.Call, ctx) -> bool:
        target = ctx.resolve_call_target(node.func)
        if target is None:
            return False
        if target == "queue.SimpleQueue":
            ctx.report(
                self,
                node,
                "queue.SimpleQueue in serve/handler code is unbounded by "
                "construction -- use queue.Queue(maxsize=N) or an "
                "admission counter so overload sheds instead of growing",
            )
            return True
        if target in self._SIZED_QUEUES:
            maxsize = None
            if node.args:
                maxsize = node.args[0]
            for keyword in node.keywords:
                if keyword.arg == "maxsize":
                    maxsize = keyword.value
            bounded = maxsize is not None and not (
                isinstance(maxsize, ast.Constant)
                and isinstance(maxsize.value, int)
                and maxsize.value <= 0
            )
            if not bounded:
                ctx.report(
                    self,
                    node,
                    f"{target} without a positive maxsize in serve/handler "
                    "code -- bound the queue so overload sheds (429) "
                    "instead of growing without limit",
                )
            return True
        if target == "collections.deque":
            has_maxlen = len(node.args) >= 2 or any(
                keyword.arg == "maxlen" for keyword in node.keywords
            )
            if not has_maxlen:
                ctx.report(
                    self,
                    node,
                    "collections.deque without maxlen in serve/handler "
                    "code -- give buffers an explicit bound",
                )
            return True
        return False

    def visit_Call(self, node: ast.Call, ctx) -> None:
        if ctx.resolve_call_target(node.func) == "time.sleep":
            ctx.report(
                self,
                node,
                "time.sleep in serve/handler code -- pause with "
                "stop_event.wait(interval) so drain can cut the wait short",
            )
            return
        if self._check_queue_construction(node, ctx):
            return
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in self._BLOCKING_ATTRS
            and not node.args
            and not node.keywords
        ):
            ctx.report(
                self,
                node,
                f".{node.func.attr}() with no timeout in serve/handler "
                "code blocks forever by default -- pass a deadline "
                "(e.g. cond.wait(remaining), thread.join(grace)) so a "
                "draining server can reclaim the thread",
            )

    def visit_While(self, node: ast.While, ctx) -> None:
        if not (
            isinstance(node.test, ast.Constant) and bool(node.test.value)
        ):
            return
        for inner in node.body:
            for descendant in ast.walk(inner):
                if (
                    isinstance(descendant, ast.Call)
                    and isinstance(descendant.func, ast.Attribute)
                    and descendant.func.attr in self._STOP_ATTRS
                ):
                    return
        ctx.report(
            self,
            node,
            "unbounded 'while True' in serve/handler code -- consult a "
            "stop event every iteration so drain-then-exit can finish",
        )


# ----------------------------------------------------------------------
# REP016 -- quadratic cross-source pair enumeration


def _target_names(target: ast.AST) -> set[str]:
    """All plain names bound by a loop/comprehension target."""
    return {node.id for node in ast.walk(target) if isinstance(node, ast.Name)}


@register
class QuadraticPairEnumerationRule(Rule):
    """REP016: candidate pairs come from the blocking layer, not ad-hoc loops.

    PR 10 made candidate generation a first-class stage: the sanctioned
    enumerations of cross-source property pairs are
    :func:`repro.data.pairs.build_pairs` /
    ``cross_source_index_pairs`` and a
    :class:`repro.blocking.CandidatePolicy` bucket walk.  A hand-rolled
    nested loop over ``dataset.properties()`` guarded by a
    ``left.source != right.source`` check re-materialises the O(n^2)
    cross product the blocking layer exists to avoid -- and bypasses
    whatever policy the run was configured with, so its pair set
    silently disagrees with the universe every other stage uses.  The
    rule keys on *full property sweeps* (iterables derived from a
    ``.properties()`` call): pairing within an already-small scope --
    cluster members, one alignment group -- is quadratic only in that
    scope's size and stays silent.
    """

    code = "REP016"
    name = "quadratic-pair-enumeration"
    summary = (
        "nested cross-source pair loop over properties(); use "
        "repro.data.pairs or a blocking CandidatePolicy"
    )
    scopes = frozenset({ROLE_LIBRARY, ROLE_SCRIPTS})

    #: The blocking layer and the canonical enumerator own this shape.
    _EXEMPT_PREFIXES = ("repro.blocking", "repro.data.pairs")

    def applies(self, role: str, module: str | None) -> bool:
        if not super().applies(role, module):
            return False
        return module is None or not any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in self._EXEMPT_PREFIXES
        )

    def begin_module(self, ctx) -> None:
        self._sweep_names: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign) and _is_properties_call(node.value):
                self._sweep_names.update(
                    target.id
                    for target in node.targets
                    if isinstance(target, ast.Name)
                )

    def _is_sweep(self, node: ast.AST) -> bool:
        """Whether a loop iterable walks a full property list."""
        if _is_properties_call(node):
            return True
        if isinstance(node, ast.Name):
            return node.id in self._sweep_names
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in {"enumerate", "sorted", "list", "reversed"}
            and node.args
        ):
            return self._is_sweep(node.args[0])
        # refs[i + 1:] -- the upper-triangle idiom still sweeps refs.
        if isinstance(node, ast.Subscript):
            return self._is_sweep(node.value)
        return False

    def visit_For(self, node: ast.For, ctx) -> None:
        if not self._is_sweep(node.iter):
            return
        outer_names = _target_names(node.target)
        for inner in ast.walk(node):
            if inner is node or not isinstance(inner, ast.For):
                continue
            if not self._is_sweep(inner.iter):
                continue
            guard = self._source_compare(
                inner.body, outer_names, _target_names(inner.target)
            )
            if guard is not None:
                self._report(ctx, guard)

    def visit_ListComp(self, node, ctx) -> None:
        self._check_comprehension(node, ctx)

    def visit_SetComp(self, node, ctx) -> None:
        self._check_comprehension(node, ctx)

    def visit_GeneratorExp(self, node, ctx) -> None:
        self._check_comprehension(node, ctx)

    def _check_comprehension(self, node, ctx) -> None:
        generators = node.generators
        conditions = [cond for gen in generators for cond in gen.ifs]
        for index, outer in enumerate(generators):
            if not self._is_sweep(outer.iter):
                continue
            outer_names = _target_names(outer.target)
            for inner in generators[index + 1 :]:
                if not self._is_sweep(inner.iter):
                    continue
                guard = self._source_compare(
                    conditions, outer_names, _target_names(inner.target)
                )
                if guard is not None:
                    self._report(ctx, guard)
                    return

    @staticmethod
    def _source_compare(
        roots: list, outer_names: set[str], inner_names: set[str]
    ):
        """A ``a.source ==/!= b.source`` compare across the two loops."""
        for root in roots:
            for node in ast.walk(root):
                if not isinstance(node, ast.Compare):
                    continue
                if len(node.ops) != 1 or not isinstance(
                    node.ops[0], (ast.Eq, ast.NotEq)
                ):
                    continue
                names = [
                    side.value.id
                    for side in (node.left, node.comparators[0])
                    if isinstance(side, ast.Attribute)
                    and side.attr == "source"
                    and isinstance(side.value, ast.Name)
                ]
                if len(names) == 2 and (
                    (names[0] in outer_names and names[1] in inner_names)
                    or (names[0] in inner_names and names[1] in outer_names)
                ):
                    return node
        return None

    def _report(self, ctx, node) -> None:
        ctx.report(
            self,
            node,
            "quadratic cross-source pair enumeration -- use "
            "repro.data.pairs.build_pairs / cross_source_index_pairs, or "
            "a repro.blocking CandidatePolicy, so the run's configured "
            "candidate universe is the only pair universe",
        )


def _is_properties_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "properties"
    )
