"""The checked-in baseline of grandfathered findings.

The baseline file (``.repro-lint-baseline.json`` at the repo root)
records *intentional exceptions*: findings a human reviewed and chose
to keep, typically legacy code scheduled for a later PR.  Lint treats
a baselined finding as non-fatal but still reports its count, and
complains about *stale* entries (baselined findings that no longer
occur) so the file shrinks monotonically instead of rotting.

Entries match on ``(path, rule, normalized source line text)`` rather
than line numbers, so unrelated edits that shift a file do not
invalidate the baseline; duplicate identical lines are matched as a
multiset.  Policy: :data:`NEVER_BASELINED` rules (REP001, REP002,
REP013) must be *fixed*, never baselined -- unseeded RNG and torn
writes corrupt results silently, and a lock-order cycle is a latent
deadlock, so none has an acceptable legacy state.  ``--write-baseline``
refuses to grandfather them and the CLI rejects baseline files that
contain them (also enforced by ``tests/analysis/test_self_clean.py``).

Writing the baseline goes through :func:`repro.ioutils.atomic_write_text`
-- the analyzer practices the invariant it enforces.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.registry import Violation
from repro.errors import ReproError
from repro.ioutils import atomic_write_text

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = ".repro-lint-baseline.json"

#: Rules whose findings may never be grandfathered: fix or noqa with a
#: written justification, there is no acceptable legacy state.
NEVER_BASELINED = frozenset({"REP001", "REP002", "REP013"})


def _entry_key(path: str, rule: str, snippet: str) -> tuple[str, str, str]:
    return (Path(path).as_posix(), rule, " ".join(snippet.split()))


@dataclass
class BaselineMatch:
    """Outcome of filtering violations against a baseline."""

    fresh: list[Violation] = field(default_factory=list)
    baselined: list[Violation] = field(default_factory=list)
    stale_entries: list[dict] = field(default_factory=list)


class Baseline:
    """Multiset of grandfathered findings keyed on content, not line."""

    def __init__(self, entries: list[dict] | None = None) -> None:
        self.entries = list(entries or ())
        self._counts: Counter = Counter(
            _entry_key(entry["path"], entry["rule"], entry.get("snippet", ""))
            for entry in self.entries
        )

    def __len__(self) -> int:
        return len(self.entries)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        path = Path(path)
        if not path.exists():
            return cls()
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            raise ReproError(f"unreadable baseline {path}: {error}") from error
        entries = payload.get("entries")
        if not isinstance(entries, list):
            raise ReproError(f"baseline {path} has no 'entries' list")
        return cls(entries)

    @classmethod
    def from_violations(cls, violations: list[Violation]) -> "Baseline":
        return cls(
            [
                {
                    "path": Path(violation.path).as_posix(),
                    "rule": violation.rule,
                    "line": violation.line,
                    "snippet": violation.snippet,
                }
                for violation in sorted(violations)
            ]
        )

    def save(self, path: str | Path) -> None:
        payload = {"version": BASELINE_VERSION, "entries": self.entries}
        atomic_write_text(path, json.dumps(payload, indent=2, sort_keys=True) + "\n")

    def apply(
        self,
        violations: list[Violation],
        *,
        ran_rules: set[str] | None = None,
    ) -> BaselineMatch:
        """Split violations into fresh vs baselined; surface stale entries.

        ``ran_rules`` names the rules this run actually executed
        (``None`` means all): an entry for a rule that was deselected
        cannot be judged stale -- its finding was never looked for.
        """
        remaining = Counter(self._counts)
        match = BaselineMatch()
        for violation in violations:
            key = _entry_key(violation.path, violation.rule, violation.snippet)
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                match.baselined.append(violation)
            else:
                match.fresh.append(violation)
        for entry in self.entries:
            if ran_rules is not None and entry["rule"] not in ran_rules:
                continue
            key = _entry_key(entry["path"], entry["rule"], entry.get("snippet", ""))
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                match.stale_entries.append(entry)
        return match

    def rules_present(self) -> set[str]:
        """The rule codes with at least one baseline entry."""
        return {entry["rule"] for entry in self.entries}
